//! Sweep the calibrated Anton performance model across system sizes and
//! machine configurations (the Figure 5 / §5.1 design space).
//!
//! `cargo run --release -p anton-core --example performance_model`

use anton_machine::{MachineConfig, PerfModel, SystemStats};

fn synthetic_stats(n_atoms: usize) -> SystemStats {
    // Protein-in-water at biomolecular density, paper-standard parameters.
    let edge = (n_atoms as f64 / 0.0963).cbrt();
    SystemStats {
        n_atoms,
        box_edge: [edge; 3],
        cutoff: 11.0,
        spread_cutoff: 7.5,
        mesh: [if n_atoms > 60_000 { 64 } else { 32 }; 3],
        dt_fs: 2.5,
        longrange_every: 2,
        n_correction_pairs: n_atoms * 2,
        n_bonded_terms: n_atoms / 6,
        protein_atoms: n_atoms / 12,
        n_constraint_pairs: n_atoms,
    }
}

fn main() {
    let model = PerfModel::anton_512();
    println!("512-node Anton, protein-in-water (the Figure 5 sweep):");
    println!(
        "{:>9} | {:>8} | {:>10} | {:>8}",
        "atoms", "µs/day", "µs/step", "subdiv"
    );
    for n in [5_000usize, 10_000, 25_000, 50_000, 75_000, 100_000, 125_000] {
        let b = model.breakdown(&synthetic_stats(n));
        println!(
            "{n:>9} | {:>8.2} | {:>10.2} | {:>8}",
            b.us_per_day, b.avg_step_us, b.chosen_subdiv
        );
    }

    println!("\nDHFR across node counts (§5.1):");
    println!("{:>6} | {:>14} | {:>8}", "nodes", "torus", "µs/day");
    let dhfr = anton_machine::perf::dhfr_stats(13.0, 32);
    for k in [1usize, 2, 8, 32, 128, 512, 2048, 8192, 32768] {
        let cfg = MachineConfig::with_nodes(k);
        let b = PerfModel::new(cfg).breakdown(&dhfr);
        println!(
            "{k:>6} | {:>14} | {:>8.2}",
            format!("{:?}", cfg.torus),
            b.us_per_day
        );
    }
    println!(
        "\nNote the small-system plateau: beyond 512 nodes a 23.5k-atom system gains\n\
         little (the paper: larger configurations \"will likely not benefit chemical\n\
         systems with only a few thousand atoms\")."
    );
}
