//! Minimal gpW folding experiment on the public API: build the Gō model,
//! run Langevin dynamics near the melting temperature, and report the
//! native-contact coordinate (the Figure 7 workflow in miniature).
//!
//! `cargo run --release -p anton-core --example folding_gpw`

use anton_analysis::detect_transitions;
use anton_refmd::LangevinIntegrator;
use anton_systems::GoModel;

fn main() {
    let model = GoModel::gpw();
    println!(
        "gpW Gō model: {} beads, {} native contacts",
        model.n_beads(),
        model.contacts.len()
    );

    let native = model.native.clone();
    let n = model.n_beads();
    // Slightly below this model's melting point: folded with excursions.
    let mut li = LangevinIntegrator::new(model, native, vec![100.0; n], 650.0, 0.004, 12.0, 7);

    let mut q = Vec::new();
    for s in 0..300_000 {
        li.step();
        if s % 200 == 0 {
            q.push(li.provider.fraction_native(&li.positions));
        }
    }
    let ev = detect_transitions(&q, 0.75, 0.35);
    let (qmin, qmax) = q
        .iter()
        .fold((1.0f64, 0.0f64), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    println!(
        "Q(t): min {qmin:.2}, max {qmax:.2}; folded fraction {:.2}; {} unfolding / {} folding events",
        ev.folded_fraction,
        ev.unfolding_at.len(),
        ev.folding_at.len()
    );
    println!("(the full Figure 7 harness: cargo run -p anton-bench --bin fig7)");
}
