//! Quickstart: build a small solvated system, run the Anton engine, and
//! demonstrate the three §4 numerical properties in a few seconds.
//!
//! `cargo run --release -p anton-core --example quickstart`

use anton_core::{AntonSimulation, Decomposition, ThermostatKind};
use anton_forcefield::water::TIP3P;
use anton_geometry::PeriodicBox;
use anton_systems::spec::{RunParams, System};
use anton_systems::waterbox::pure_water_topology;

fn build() -> System {
    let pbox = PeriodicBox::cubic(18.0);
    let (topology, positions) = pure_water_topology(&pbox, &TIP3P, 150, 42);
    System {
        name: "quickstart-water".into(),
        pbox,
        topology,
        positions,
        params: RunParams::paper(7.5, 16),
    }
}

fn main() {
    // 1. Determinism: two runs, bitwise identical state.
    let run = |decomposition| {
        let mut sim = AntonSimulation::builder(build())
            .velocities_from_temperature(300.0, 7)
            .decomposition(decomposition)
            .thermostat(ThermostatKind::Berendsen {
                target_k: 300.0,
                tau_fs: 25.0,
            })
            .build();
        sim.run_cycles(40);
        sim
    };
    let a = run(Decomposition::SingleRank);
    let b = run(Decomposition::SingleRank);
    println!(
        "determinism        : two runs bitwise equal  = {}",
        a.state == b.state
    );

    // 2. Parallel invariance: same trajectory on a simulated 64-node torus.
    let c = run(Decomposition::Nodes(64));
    println!(
        "parallel invariance: 1 rank vs 64 nodes      = {}",
        a.state == c.state
    );

    // 3. Exact reversibility (no constraints → use an unconstrained copy).
    let mut sys = build();
    sys.topology.constraint_groups.clear();
    sys.topology.molecule_starts = vec![0, sys.n_atoms() as u32];
    let mut sim = AntonSimulation::builder(sys)
        .velocities_from_temperature(150.0, 9)
        .build();
    let x0 = sim.state.clone();
    sim.run_cycles(20);
    sim.negate_velocities();
    sim.run_cycles(20);
    sim.negate_velocities();
    println!(
        "exact reversibility: recovered initial state = {}",
        sim.state == x0
    );

    println!(
        "\nenergy after 40 cycles: {:.2} kcal/mol at {:.0} K over {} atoms",
        a.total_energy(),
        a.temperature_k(),
        a.system.n_atoms()
    );
}
