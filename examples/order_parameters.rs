//! Order parameters from a short Anton-engine run of a synthetic protein
//! chain (the Figure 6 workflow in miniature).
//!
//! `cargo run --release -p anton-core --example order_parameters`

use anton_analysis::{kabsch_rotation, order_parameters};
use anton_core::{AntonSimulation, ThermostatKind};
use anton_geometry::{PeriodicBox, Vec3};
use anton_systems::protein::{build_chain, chain_topology};
use anton_systems::spec::{RunParams, System};

fn main() {
    let chain = build_chain(24, Vec3::splat(15.0), 7.0, 5.8);
    let nh = chain.nh_pairs.clone();
    let sys = System {
        name: "chain24".into(),
        pbox: PeriodicBox::cubic(30.0),
        topology: chain_topology(&chain, 3.15, 0.152),
        positions: chain.positions,
        params: RunParams::paper(9.0, 16),
    };
    sys.validate().unwrap();
    let backbone: Vec<usize> = nh.iter().map(|&(n, _)| n as usize).collect();
    let reference: Vec<Vec3> = backbone.iter().map(|&i| sys.positions[i]).collect();

    let mut sim = AntonSimulation::builder(sys)
        .velocities_from_temperature(300.0, 3)
        .thermostat(ThermostatKind::Berendsen {
            target_k: 300.0,
            tau_fs: 100.0,
        })
        .build();
    sim.run_cycles(50); // equilibrate

    let mut frames = Vec::new();
    for _ in 0..400 {
        sim.run_cycles(2);
        let pos = sim.positions_f64();
        let mobile: Vec<Vec3> = backbone.iter().map(|&i| pos[i]).collect();
        let rot = kabsch_rotation(&mobile, &reference);
        frames.push(
            nh.iter()
                .map(|&(n, h)| rot.mul_vec(pos[h as usize] - pos[n as usize]))
                .collect::<Vec<_>>(),
        );
    }
    let s2 = order_parameters(&frames);
    println!("residue   S²   (1 = rigid, 0 = isotropic; short window → high values)");
    for (i, v) in s2.iter().enumerate() {
        let bar = "#".repeat((v * 40.0) as usize);
        println!("{:>6}  {v:>5.3}  |{bar}", i + 1);
    }
    println!("(the full Figure 6 harness: cargo run -p anton-bench --bin fig6)");
}
