//! The §5.3 BPTI millisecond experiment, scaled to what a workstation can
//! verify: construct the exact 17,758-particle system, simulate a short
//! verified segment on the Anton engine, and project the time-to-millisecond
//! from the machine model.
//!
//! `cargo run --release -p anton-core --example millisecond_bpti`

use anton_core::{system_stats, AntonSimulation, ThermostatKind};
use anton_machine::PerfModel;
use anton_systems::bpti;

fn main() {
    let sys = bpti(2024);
    println!(
        "BPTI system: {} particles ({} four-site waters, {} ions) in a {:.1} Å box",
        sys.n_atoms(),
        sys.topology.virtual_sites.len(),
        sys.topology.charge.iter().filter(|&&q| q == -1.0).count(),
        sys.pbox.edge().x
    );

    let stats = system_stats(&sys);
    let rate = PerfModel::anton_512().breakdown(&stats).us_per_day;
    println!(
        "modeled 512-node Anton rate: {rate:.1} µs/day → 1,031 µs in ~{:.0} days",
        1031.0 / rate
    );

    let mut sim = AntonSimulation::builder(sys)
        .velocities_from_temperature(300.0, 7)
        .thermostat(ThermostatKind::Berendsen {
            target_k: 300.0,
            tau_fs: 100.0,
        })
        .build();
    println!("running 4 cycles (20 fs) as a correctness probe…");
    let t = std::time::Instant::now();
    sim.run_cycles(4);
    let wall = t.elapsed().as_secs_f64();
    println!(
        "E = {:.1} kcal/mol, T = {:.0} K; {:.2} s/step on this host",
        sim.total_energy(),
        sim.temperature_k(),
        wall / 8.0
    );
    let host_rate = 2.5 * 86_400.0 / (wall / 8.0) * 1e-9; // µs/day simulated
    println!(
        "this host would need ~{:.0} years for the millisecond — the gap Anton was built to close",
        1031.0 / host_rate / 365.0
    );
}
