//! Offline stand-in for the `bytes` crate: a `Vec<u8>`-backed implementation
//! of the little-endian `Buf`/`BufMut` accessors used for bit-exact
//! checkpoint serialization in `anton-core`.

/// Immutable byte buffer with a read cursor (consuming `Buf` reads advance
/// the cursor, as with the real crate's `Bytes`).
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn from_vec(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from_vec(data.to_vec())
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes::from_vec(data)
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

/// Read access with a cursor (little-endian accessors only).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Append access (little-endian accessors only).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::with_capacity(24);
        b.put_u64_le(7);
        b.put_i32_le(-3);
        b.put_i64_le(i64::MIN);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 20);
        assert_eq!(r.get_u64_le(), 7);
        assert_eq!(r.get_i32_le(), -3);
        assert_eq!(r.get_i64_le(), i64::MIN);
        assert_eq!(r.remaining(), 0);
    }
}
