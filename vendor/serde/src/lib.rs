//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in a hermetic container with no crates.io access.
//! The real serde is used only for `#[derive(Serialize, Deserialize)]` on
//! plain-old-data types; nothing in the workspace calls serialization
//! methods or uses the traits as bounds. This stub provides the two trait
//! names plus no-op derive macros so those derives compile unchanged. If
//! network access ever becomes available, deleting `[patch.crates-io]` from
//! the workspace manifest restores the real crate with zero source changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name. The no-op derive does
/// not implement it; no code in this workspace requires the impl.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name and lifetime arity.
pub trait Deserialize<'de>: Sized {}
