//! No-op derive macros for the offline serde stand-in (see vendor/serde).
//!
//! The workspace derives `Serialize`/`Deserialize` on data types but never
//! serializes anything, so emitting no impls is sufficient and avoids a
//! dependency on `syn`/`quote` (unavailable offline).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
