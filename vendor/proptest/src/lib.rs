//! Offline stand-in for the `proptest` crate surface used in this workspace.
//!
//! Supports `proptest! { #[test] fn f(x in strategy, ...) { body } }` with
//! range strategies over integers and floats, `any::<T>()` for primitives,
//! `proptest::collection::vec`, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros. Each test runs [`CASES`] deterministic cases seeded
//! from the test's module path, so failures are reproducible run-to-run (no
//! shrinking — the failing inputs are printed instead).

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// Cases each property runs (accepted, i.e. not rejected by `prop_assume!`).
pub const CASES: u32 = 256;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip this case.
    Reject(String),
    /// An assertion failed: the property is falsified.
    Fail(String),
}

/// Deterministic per-test RNG (SplitMix64).
pub struct TestRng(u64);

impl TestRng {
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Holds the RNG for one property test. Seeded from the test name so every
/// property sees an independent, stable stream.
pub struct TestRunner {
    rng: TestRng,
}

impl TestRunner {
    pub fn new(name: &str) -> TestRunner {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner { rng: TestRng(h) }
    }

    #[inline]
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree; a
/// strategy just samples uniformly.
pub trait Strategy {
    type Value: core::fmt::Debug;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! strategy_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = if span <= u64::MAX as u128 {
                    (rng.next_u64() as u128 * span) >> 64
                } else {
                    rng.next_u64() as u128 % span
                };
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = if span <= u64::MAX as u128 {
                    (rng.next_u64() as u128 * span) >> 64
                } else {
                    rng.next_u64() as u128 % span
                };
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
strategy_int_range!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

macro_rules! strategy_float_range {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
strategy_float_range!(f32, f64);

/// Primitives supported by [`any`].
pub trait ArbitraryPrim: core::fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl ArbitraryPrim for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

impl ArbitraryPrim for u128 {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl ArbitraryPrim for i128 {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl ArbitraryPrim for bool {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryPrim for f64 {
    /// Finite floats spanning many magnitudes (no NaN/inf: the numeric
    /// properties in this workspace are about finite values).
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let exp = (rng.next_u64() % 1200) as i32 - 600;
        let mant = rng.unit_f64() * 2.0 - 1.0;
        mant * (2.0f64).powi(exp.clamp(-300, 300))
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryPrim> Strategy for Any<T> {
    type Value = T;
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: uniform over the whole domain of a primitive type.
pub fn any<T: ArbitraryPrim>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.size, rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{any, Strategy, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Expands each `fn name(arg in strategy, ...) { body }` into a `#[test]`
/// running [`CASES`](crate::CASES) deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __runner =
                    $crate::TestRunner::new(concat!(module_path!(), "::", stringify!($name)));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                while __accepted < $crate::CASES {
                    __attempts += 1;
                    if __attempts > $crate::CASES * 64 {
                        panic!(concat!(
                            "proptest ", stringify!($name),
                            ": too many cases rejected by prop_assume!"
                        ));
                    }
                    $(let $arg = $crate::Strategy::sample(&($strat), __runner.rng());)*
                    let __dbg = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)*),
                        $(&$arg),*
                    );
                    let __result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match __result {
                        ::core::result::Result::Ok(()) => __accepted += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "property {} falsified at case #{}:\n{}\ninputs:\n{}",
                                stringify!($name), __accepted, __msg, __dbg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "{} != {}: {:?} vs {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} ({:?} vs {:?})", format!($($fmt)+), __l, __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "{} == {}: both {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in -50i32..50, b in 0usize..=7, x in -2.0f64..2.0) {
            prop_assert!((-50..50).contains(&a));
            prop_assert!(b <= 7);
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn assume_rejects(v in any::<i64>()) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn vectors_sized(vals in crate::collection::vec(0i64..10, 2..20)) {
            prop_assert!(vals.len() >= 2 && vals.len() < 20);
            prop_assert!(vals.iter().all(|&v| (0..10).contains(&v)));
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = crate::TestRunner::new("x");
        let mut b = crate::TestRunner::new("x");
        for _ in 0..32 {
            assert_eq!(a.rng().next_u64(), b.rng().next_u64());
        }
    }
}
