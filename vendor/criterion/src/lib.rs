//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides `Criterion`, `black_box`, `criterion_group!`/`criterion_main!`
//! and benchmark groups with the call signatures used by this workspace's
//! benches. Measurement is a simple adaptive-batch wall-clock timer printing
//! ns/iter — adequate for relative comparisons during development.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Runs one benchmark body repeatedly.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..3 {
            black_box(f());
        }
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(20) || batch >= 1 << 24 {
                self.ns_per_iter = dt.as_nanos() as f64 / batch as f64;
                return;
            }
            batch *= 2;
        }
    }
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: f64::NAN };
        f(&mut b);
        println!("bench {name:<40} {:>14.1} ns/iter", b.ns_per_iter);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string() }
    }
}

pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: f64::NAN };
        f(&mut b);
        println!("bench {:<40} {:>14.1} ns/iter", format!("{}/{}", self.name, name), b.ns_per_iter);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
