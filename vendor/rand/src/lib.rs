//! Offline stand-in for the `rand` 0.8 API surface used in this workspace.
//!
//! Implements `rngs::SmallRng` as xoshiro256++ with the same SplitMix64
//! `seed_from_u64` expansion as rand 0.8.5, so seeded streams of `next_u64`,
//! `gen::<f64>()` (53-bit multiply convention) and `gen::<i64>()` are
//! bit-identical to the real crate. `gen_range` uses a simple widening-
//! multiply reduction: uniform and deterministic, though not stream-identical
//! to rand's rejection sampler (nothing in the workspace depends on that).

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Upper 32 bits, matching rand 0.8's xoshiro256++ `next_u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only `seed_from_u64` is used in this workspace).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types drawable from the "standard" distribution via [`Rng::gen`].
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // rand 0.8 Standard: 53 high bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64,
              u32 => next_u32, i32 => next_u32, u16 => next_u32, i16 => next_u32,
              u8 => next_u32, i8 => next_u32, u128 => next_u64, i128 => next_u64);

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`. The blanket
/// [`SampleRange`] impls below tie the range's element type to `gen_range`'s
/// return type, which is what lets literal defaulting (`-0.03..0.03` → f64)
/// work exactly as it does with the real crate.
pub trait SampleUniform: Sized {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Widening-multiply reduction of a 64-bit draw (spans here always fit u64;
    // the u128 type just keeps full-range i64/u64 spans representable).
    if span <= u64::MAX as u128 {
        (rng.next_u64() as u128 * span) >> 64
    } else {
        rng.next_u64() as u128 % span
    }
}

macro_rules! uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

macro_rules! uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                _inclusive: bool,
            ) -> $t {
                let unit = <$t as StandardSample>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// The user-facing random-value interface, blanket-implemented for every
/// [`RngCore`] just like the real crate.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the algorithm behind rand 0.8's 64-bit `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        /// SplitMix64 state expansion, identical to rand 0.8.5.
        fn seed_from_u64(mut state: u64) -> SmallRng {
            const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut s = [0u64; 4];
            for word in s.iter_mut() {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *word = z ^ (z >> 31);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4]; // xoshiro's all-zero state is degenerate
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<i64>(), b.gen::<i64>());
        }
    }

    #[test]
    fn f64_in_unit_interval_and_ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            let k = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&k));
            let k = rng.gen_range(0usize..=9);
            assert!(k <= 9);
            let f = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&f));
        }
    }

    #[test]
    fn full_range_i64_span_does_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let v = rng.gen_range(-(1i64 << 61)..(1i64 << 61));
            assert!((-(1i64 << 61)..(1i64 << 61)).contains(&v));
        }
    }
}
