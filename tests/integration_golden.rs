//! Golden-trajectory tier: a checked-in checksum sequence for a fixed
//! waterbox run, asserted bitwise against every supported execution shape.
//!
//! The paper's §4 invariance claims say the trajectory is a pure function of
//! the system and the parameters — not of the node decomposition, not of the
//! host thread count, and (since the trace subsystem is observability-only)
//! not of whether tracing is enabled. The other integration tests check
//! those properties *relative to each other* within one build; this tier
//! pins the trajectory to constants recorded in the repository, so any
//! change that silently perturbs the arithmetic — a reordered accumulation,
//! a rounding-rule slip, a trace probe that leaks into simulation state —
//! fails against history, not just against a sibling run.
//!
//! To regenerate after an *intentional* numerics change:
//!
//! ```text
//! cargo test -p anton-core --test integration_golden -- --ignored --nocapture
//! ```
//!
//! and paste the printed block over the constants below. Treat that diff
//! with the suspicion it deserves.

use anton_analysis::battery::{assert_verified, Verifier, VerifyEveryExt};
use anton_core::{AntonSimulation, Decomposition, TracePhase};
use anton_systems::spec::RunParams;
use anton_systems::System;

/// Cycles run per configuration; one checksum is recorded after each.
const CYCLES: usize = 3;

/// FNV-1a over the exact state bytes after each cycle of the golden run
/// (340-water box, seed below). Every node count, thread count, and tracing
/// mode must reproduce this exact sequence.
const GOLDEN_CYCLE_CHECKSUMS: [u64; CYCLES] =
    [0xa10ecc809d695dc8, 0xa46a112b6ac6fc42, 0xc2212d9714372970];

/// The final-state checksum (last element of the sequence), kept as its own
/// named constant because it is the headline value quoted in BENCH/TRACE
/// artifacts.
const GOLDEN_FINAL_CHECKSUM: u64 = 0xc2212d9714372970;

/// The same 1020-atom waterbox the scaling benchmark measures: 340 TIP3P
/// waters in a 22 Å cube under the paper's run parameters.
fn golden_waterbox() -> System {
    let pbox = anton_geometry::PeriodicBox::cubic(22.0);
    let (topology, positions) = anton_systems::waterbox::pure_water_topology(
        &pbox,
        &anton_forcefield::water::TIP3P,
        340,
        3,
    );
    System {
        name: "golden-water".into(),
        pbox,
        topology,
        positions,
        params: RunParams::paper(7.5, 16),
    }
}

/// FNV-1a over the exact raw state bytes (the same hash the scaling
/// benchmark reports, so golden constants and bench rows cross-check).
fn state_checksum(sim: &AntonSimulation) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in sim.state.to_bytes().as_slice() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Run the golden configuration and return the per-cycle checksum sequence.
fn run_golden(nodes: usize, threads: usize, tracing: bool) -> Vec<u64> {
    let decomposition = if nodes == 1 {
        Decomposition::SingleRank
    } else {
        Decomposition::Nodes(nodes)
    };
    let mut sim = AntonSimulation::builder(golden_waterbox())
        .velocities_from_temperature(300.0, 7)
        .decomposition(decomposition)
        .threads(threads)
        .tracing(tracing)
        .verify_every(1)
        .build();
    let sums = (0..CYCLES)
        .map(|_| {
            sim.run_cycles(1);
            state_checksum(&sim)
        })
        .collect();
    // Every golden run also carries the full invariant battery: third law,
    // serial force consistency, mesh charge, census, momentum and energy —
    // all clean on every cycle.
    assert_verified(&sim);
    sums
}

fn assert_golden(nodes: usize) {
    for threads in [1usize, 4] {
        for tracing in [false, true] {
            let got = run_golden(nodes, threads, tracing);
            assert_eq!(
                got.as_slice(),
                &GOLDEN_CYCLE_CHECKSUMS,
                "golden trajectory diverged: nodes={nodes} threads={threads} tracing={tracing}"
            );
            assert_eq!(
                *got.last().unwrap(),
                GOLDEN_FINAL_CHECKSUM,
                "final checksum mismatch: nodes={nodes} threads={threads} tracing={tracing}"
            );
        }
    }
}

/// A unique scratch checkpoint directory per configuration (the golden
/// resume tests run concurrently under the default test harness).
fn scratch_ckpt_dir(tag: &str, nodes: usize, threads: usize, tracing: bool) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "anton-golden-ckpt-{}-{tag}-{nodes}n-{threads}t-{}",
        std::process::id(),
        if tracing { "traced" } else { "plain" }
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The checkpoint tier of the determinism contract: run the golden
/// trajectory with checkpointing on, "crash" after cycle 2, resume from
/// the store, finish — and land on the same checked-in checksums the
/// uninterrupted run pins. Asserted across {1,8,64} nodes × {1,4}
/// threads × tracing {on,off} like the golden tier itself.
fn assert_resume_golden(nodes: usize) {
    let k = golden_waterbox().params.longrange_every.max(1) as u64;
    for threads in [1usize, 4] {
        for tracing in [false, true] {
            let ctx = format!("nodes={nodes} threads={threads} tracing={tracing}");
            let dir = scratch_ckpt_dir("resume", nodes, threads, tracing);
            let decomposition = if nodes == 1 {
                Decomposition::SingleRank
            } else {
                Decomposition::Nodes(nodes)
            };
            {
                let mut sim = AntonSimulation::builder(golden_waterbox())
                    .velocities_from_temperature(300.0, 7)
                    .decomposition(decomposition)
                    .threads(threads)
                    .tracing(tracing)
                    .checkpoint_every(1)
                    .checkpoint_dir(&dir)
                    .build();
                sim.run_cycles(CYCLES - 1);
                assert_eq!(
                    state_checksum(&sim),
                    GOLDEN_CYCLE_CHECKSUMS[CYCLES - 2],
                    "pre-interrupt state diverged: {ctx}"
                );
                // The "crash": drop without any orderly shutdown.
            }
            let mut sim = AntonSimulation::builder(golden_waterbox())
                .velocities_from_temperature(300.0, 7)
                .decomposition(decomposition)
                .threads(threads)
                .tracing(tracing)
                .verify_every(1)
                .resume_from(&dir)
                .unwrap_or_else(|e| panic!("resume failed ({ctx}): {e}"));
            assert_eq!(
                sim.step_count(),
                (CYCLES as u64 - 1) * k,
                "resumed at the wrong step: {ctx}"
            );
            // Re-verify the closed-form invariants directly on the restored
            // state, before any further cycle runs: the refreshed force
            // buffers, mesh charge, and carried-over exchange counters must
            // already satisfy every identity.
            let mut restored = Verifier::new(&sim);
            restored.sample(&sim);
            restored.assert_clean();
            sim.run_cycles(1);
            assert_eq!(
                state_checksum(&sim),
                GOLDEN_FINAL_CHECKSUM,
                "interrupt-and-resume diverged from golden: {ctx}"
            );
            // The installed battery sampled the post-resume cycle too.
            assert_verified(&sim);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn golden_trajectory_single_rank() {
    assert_golden(1);
}

#[test]
fn golden_trajectory_8_nodes() {
    assert_golden(8);
}

#[test]
fn golden_trajectory_64_nodes() {
    assert_golden(64);
}

#[test]
fn golden_resume_single_rank() {
    assert_resume_golden(1);
}

#[test]
fn golden_resume_8_nodes() {
    assert_resume_golden(8);
}

#[test]
fn golden_resume_64_nodes() {
    assert_resume_golden(64);
}

#[test]
fn tracing_payload_is_deterministic_across_threads() {
    // The trace is observability-only, but its *modeled* payload — which
    // phases ran, how many spans each produced, and the exchange-plan
    // message/byte counts attributed to them — is itself a deterministic
    // function of the decomposition. Hash everything except the measured
    // wall-clock fields and require thread-count invariance.
    let payload_checksum = |threads: usize| -> u64 {
        let mut sim = AntonSimulation::builder(golden_waterbox())
            .velocities_from_temperature(300.0, 7)
            .decomposition(Decomposition::Nodes(8))
            .threads(threads)
            .tracing(true)
            .build();
        sim.run_cycles(2);
        let buf = sim.trace().buf().expect("tracing was enabled");
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
        };
        for s in buf.spans() {
            mix(s.phase.index() as u64);
            mix(s.rank as u64);
            mix(s.step);
        }
        for c in buf.counters() {
            mix(c.phase.index() as u64);
            mix(c.rank as u64);
            mix(c.step);
            mix(c.messages);
            mix(c.bytes);
            mix(c.modeled_us.to_bits());
        }
        mix(buf.dropped_spans());
        mix(buf.dropped_counters());
        h
    };
    let reference = payload_checksum(1);
    assert_eq!(payload_checksum(2), reference);
    assert_eq!(payload_checksum(4), reference);
}

#[test]
fn disabled_tracing_records_nothing() {
    let mut sim = AntonSimulation::builder(golden_waterbox())
        .velocities_from_temperature(300.0, 7)
        .decomposition(Decomposition::Nodes(8))
        .threads(2)
        .build();
    sim.run_cycles(1);
    assert!(!sim.trace().is_on());
    assert!(sim.trace().buf().is_none());
}

#[test]
fn enabled_tracing_covers_every_pipeline_phase() {
    // Checkpointing is enabled so the `checkpoint` phase (emitted only when
    // a store is configured) appears alongside the per-step pipeline phases.
    let dir = scratch_ckpt_dir("phases", 8, 2, true);
    let mut sim = AntonSimulation::builder(golden_waterbox())
        .velocities_from_temperature(300.0, 7)
        .decomposition(Decomposition::Nodes(8))
        .threads(2)
        .tracing(true)
        .checkpoint_every(1)
        .checkpoint_dir(&dir)
        .build();
    sim.run_cycles(2);
    let buf = sim.trace().buf().expect("tracing was enabled");
    let mut seen = [false; TracePhase::ALL.len()];
    for s in buf.spans() {
        seen[s.phase.index()] = true;
    }
    for c in buf.counters() {
        seen[c.phase.index()] = true;
    }
    for (phase, seen) in TracePhase::ALL.iter().zip(seen) {
        assert!(seen, "phase {} never appeared in the trace", phase.name());
    }
    assert_eq!(buf.dropped_spans(), 0, "span capacity too small for run");
    assert_eq!(buf.dropped_counters(), 0, "counter capacity too small");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regeneration helper: prints the constant block to paste above.
#[test]
#[ignore]
fn print_golden_checksums() {
    let seq = run_golden(1, 1, false);
    println!("const GOLDEN_CYCLE_CHECKSUMS: [u64; CYCLES] = [");
    for c in &seq {
        println!("    0x{c:016x},");
    }
    println!("];");
    println!(
        "const GOLDEN_FINAL_CHECKSUM: u64 = 0x{:016x};",
        seq.last().unwrap()
    );
}
