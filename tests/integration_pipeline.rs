//! End-to-end pipeline checks: paper benchmark systems build to spec, feed
//! the performance model coherently, and the model hits the paper's
//! calibration targets from real (not hard-coded) workload counts.

use anton_core::system_stats;
use anton_machine::PerfModel;
use anton_systems::{bpti, table4_system, TABLE4};

#[test]
fn dhfr_built_system_reproduces_headline_rate() {
    // The 16.4 µs/day headline, driven end-to-end from the *built* system.
    let sys = table4_system(&TABLE4[1], 1);
    let stats = system_stats(&sys);
    let rate = PerfModel::anton_512().breakdown(&stats).us_per_day;
    assert!(
        (rate - 16.4).abs() < 4.0,
        "DHFR rate from built system: {rate} µs/day (paper 16.4)"
    );
}

#[test]
fn figure5_ordering_holds_across_built_systems() {
    // Rates must decrease with system size (Figure 5's shape), using the
    // actual constructed systems end to end.
    let mut last = f64::INFINITY;
    for e in &TABLE4 {
        let sys = table4_system(e, 1);
        let rate = PerfModel::anton_512()
            .breakdown(&system_stats(&sys))
            .us_per_day;
        assert!(
            rate < last * 1.05,
            "{}: rate {rate} did not decrease (prev {last})",
            e.name
        );
        // Within a factor ~1.6 of the paper's value.
        let ratio = rate / e.paper_us_per_day;
        assert!(
            (0.6..1.7).contains(&ratio),
            "{}: {rate:.1} vs paper {:.1}",
            e.name,
            e.paper_us_per_day
        );
        last = rate;
    }
}

#[test]
fn bpti_system_matches_section_5_3_exactly() {
    let sys = bpti(3);
    assert_eq!(sys.n_atoms(), 17758);
    assert_eq!(sys.topology.virtual_sites.len(), 4215);
    assert_eq!(
        sys.topology.charge.iter().filter(|&&q| q == -1.0).count(),
        6
    );
    assert!((sys.pbox.edge().x - 51.3).abs() < 1e-9);
    assert_eq!(sys.params.mesh, [32; 3]);
    assert!((sys.params.cutoff - 10.4).abs() < 1e-9);
    assert!((sys.params.spread_cutoff - 7.1).abs() < 1e-9);
    assert!(sys.topology.total_charge().abs() < 1e-9);
    // 892 protein atoms = everything that is not water or ion.
    let water_and_ions = 4215 * 4 + 6;
    assert_eq!(sys.n_atoms() - water_and_ions, 892);
}

#[test]
fn all_table4_systems_build_and_validate() {
    // The large builds are the expensive part; cover the four smallest here
    // (the two giants are exercised by the fig5_table4 harness).
    for e in TABLE4.iter().take(4) {
        let sys = table4_system(e, 1);
        assert_eq!(sys.n_atoms(), e.n_atoms, "{}", e.name);
        sys.validate()
            .unwrap_or_else(|err| panic!("{}: {err}", e.name));
        let s = system_stats(&sys);
        assert!(s.protein_atoms > 0);
        assert!(
            (s.density() - 0.0963).abs() < 0.01,
            "{}: density {}",
            e.name,
            s.density()
        );
    }
}
