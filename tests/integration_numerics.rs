//! Cross-crate integration tests of the paper's §4 numerical claims on a
//! *heterogeneous* system (protein + water + every force class active):
//! determinism, parallel invariance, and exact reversibility exercised
//! through the full pipeline — range-limited PPIP tables, GSE mesh,
//! corrections, bonded terms, constraints and virtual machinery together.

use anton_core::{AntonSimulation, Decomposition, ThermostatKind};
use anton_forcefield::water::TIP3P;
use anton_systems::catalog::build_solvated;
use anton_systems::spec::RunParams;

/// A small protein-in-water system (exact atom count, neutral, solvated)
/// exercising bonds, angles, dihedrals, exclusions, 1-4 pairs, constraints.
fn mini_protein_system(seed: u64) -> anton_systems::System {
    build_solvated(
        "mini",
        1200,
        23.0,
        RunParams::paper(8.0, 16),
        &TIP3P,
        16,
        0,
        0,
        seed,
    )
}

#[test]
fn full_engine_is_deterministic_across_runs() {
    let run = || {
        let mut sim = AntonSimulation::builder(mini_protein_system(3))
            .velocities_from_temperature(300.0, 11)
            .build();
        sim.run_cycles(6);
        let energy_bits = sim.total_energy().to_bits();
        (sim.state, energy_bits)
    };
    let (s1, e1) = run();
    let (s2, e2) = run();
    assert_eq!(s1, s2);
    assert_eq!(e1, e2, "energies must match bitwise");
}

#[test]
fn full_engine_is_parallel_invariant_with_all_force_classes() {
    let run = |d| {
        let mut sim = AntonSimulation::builder(mini_protein_system(5))
            .velocities_from_temperature(300.0, 13)
            .decomposition(d)
            .build();
        sim.run_cycles(4);
        sim.state
    };
    let reference = run(Decomposition::SingleRank);
    for nodes in [2usize, 16, 128] {
        assert_eq!(
            run(Decomposition::Nodes(nodes)),
            reference,
            "protein-in-water trajectory diverged on {nodes} simulated nodes"
        );
    }
}

#[test]
fn full_engine_reversibility_without_constraints() {
    // Paper §4: exact reversibility holds without constraints/thermostat —
    // on a single rank and equally on a decomposed, multi-threaded engine
    // (the rank fan-out only reorders wrapping adds, which cancel exactly
    // under velocity negation too).
    let reverse_run = |decomposition, threads| {
        let mut sys = mini_protein_system(7);
        sys.topology.constraint_groups.clear();
        let mut sim = AntonSimulation::builder(sys)
            .velocities_from_temperature(200.0, 17)
            .decomposition(decomposition)
            .threads(threads)
            .build();
        let x0 = sim.state.clone();
        sim.run_cycles(10);
        sim.negate_velocities();
        sim.run_cycles(10);
        sim.negate_velocities();
        assert_eq!(
            sim.state, x0,
            "reversibility violated: {decomposition:?}, {threads} threads"
        );
    };
    reverse_run(Decomposition::SingleRank, 1);
    reverse_run(Decomposition::Nodes(8), 4);
}

#[test]
fn checkpoint_restart_continues_bitwise() {
    // Save mid-run, restore into a fresh engine, continue: the trajectory
    // must be bitwise identical to the uninterrupted run — determinism
    // surviving serialization.
    let sys = mini_protein_system(21);
    let mut straight = AntonSimulation::builder(sys.clone())
        .velocities_from_temperature(300.0, 23)
        .build();
    straight.run_cycles(3);
    let snapshot = straight.state.to_bytes();
    straight.run_cycles(3);

    let restored_state = anton_core::FixedState::from_bytes(snapshot).unwrap();
    let mut resumed = AntonSimulation::builder(sys)
        .velocities_from_temperature(300.0, 23) // placeholder; overwritten below
        .build();
    resumed.state = restored_state;
    resumed.refresh_all_forces();
    resumed.run_cycles(3);
    assert_eq!(resumed.state, straight.state);
}

#[test]
fn thermostatted_runs_are_still_deterministic() {
    let run = || {
        let mut sim = AntonSimulation::builder(mini_protein_system(9))
            .velocities_from_temperature(250.0, 19)
            .thermostat(ThermostatKind::Berendsen {
                target_k: 300.0,
                tau_fs: 50.0,
            })
            .build();
        sim.run_cycles(8);
        sim.state
    };
    assert_eq!(run(), run());
}
