//! Cross-engine accuracy: the Anton engine's forces and energies against the
//! double-precision reference engine and the conservative reference — the
//! Table 4 measurement machinery, end to end, on a small solvated protein.

use anton_core::AntonSimulation;
use anton_forcefield::water::TIP3P;
use anton_refmd::reference::reference_forces;
use anton_refmd::TaskProfile;
use anton_refmd::{ForceEvaluator, RefSimulation, Thermostat};
use anton_systems::catalog::build_solvated;
use anton_systems::spec::RunParams;
use anton_systems::velocities::init_velocities;

fn system(seed: u64) -> anton_systems::System {
    // Sized so the water lattice never needs keep-out relaxation: a strained
    // start (hot contacts) is exactly what the engines treat differently
    // (table clamps vs bare kernels) and what Table 4 does not measure.
    build_solvated(
        "acc",
        2114,
        28.0,
        RunParams::paper(8.5, 32),
        &TIP3P,
        10,
        0,
        0,
        seed,
    )
}

#[test]
fn anton_total_force_error_is_paper_scale() {
    // Total force error: Anton vs conservative double-precision reference.
    // Paper Table 4: 58–81 ×10⁻⁶; "ratios of 1e-3 are generally considered
    // acceptable". Our GSE parameters are chosen like the paper's, so we
    // must land well below 1e-3.
    let sys = system(3);
    let sim = AntonSimulation::builder(sys.clone())
        .velocities_from_temperature(300.0, 5)
        .build();
    let (f_ref, _) = reference_forces(&sys, &sim.positions_f64());
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, r) in f_ref.iter().enumerate() {
        num += (sim.total_force_f64(i) - *r).norm2();
        den += r.norm2();
    }
    let err = (num / den).sqrt();
    assert!(err < 1.0e-3, "total force error {err:e}");
    assert!(err > 1.0e-6, "implausibly exact: {err:e}");
}

#[test]
fn engines_agree_on_potential_energy() {
    let sys = system(7);
    let anton = AntonSimulation::builder(sys.clone())
        .velocities_from_temperature(300.0, 9)
        .build();
    let ev = ForceEvaluator::new(&sys);
    let mut pos = sys.positions.clone();
    let mut forces = vec![anton_geometry::Vec3::ZERO; sys.n_atoms()];
    let mut prof = TaskProfile::default();
    let en = ev.all_forces(&sys, &mut pos, &mut forces, &mut prof);
    let (e_a, e_r) = (anton.potential_energy(), en.potential());
    // GSE (Anton) and SPME (reference) carry slightly different mesh
    // self-interaction constants; 1% agreement on the absolute potential is
    // the expected envelope at paper-like parameters.
    let rel = (e_a - e_r).abs() / e_r.abs();
    assert!(
        rel < 1e-2,
        "potential energy mismatch: anton {e_a} vs refmd {e_r}"
    );
}

#[test]
fn short_trajectories_stay_statistically_consistent() {
    // The engines integrate different arithmetic, so trajectories diverge
    // chaotically — but conserved/thermodynamic quantities must agree.
    // Pure water: a relaxed, well-conditioned starting configuration.
    let pbox = anton_geometry::PeriodicBox::cubic(18.0);
    let (top, positions) = anton_systems::waterbox::pure_water_topology(&pbox, &TIP3P, 150, 11);
    let sys = anton_systems::System {
        name: "w".into(),
        pbox,
        topology: top,
        positions,
        params: RunParams::paper(7.5, 32),
    };
    let mut anton = AntonSimulation::builder(sys.clone())
        .velocities_from_temperature(300.0, 13)
        .build();
    let vel = init_velocities(&sys.topology, 300.0, 13);
    let mut refs = RefSimulation::new(sys, vel, Thermostat::None);
    anton.run_cycles(15);
    for _ in 0..15 {
        refs.run_cycle();
    }
    let (ta, tr) = (anton.temperature_k(), refs.temperature_k());
    assert!(
        (ta - tr).abs() < 60.0,
        "temperatures diverged: {ta} vs {tr}"
    );
    // Energies agree up to the engines' different mesh self-term ripple
    // (a constant offset scale, physically immaterial).
    let (ea, er) = (anton.total_energy(), refs.total_energy());
    let dof = anton.system.topology.degrees_of_freedom() as f64;
    assert!(
        ((ea - er) / dof).abs() < 0.05,
        "total energies diverged: {ea} vs {er} ({} kcal/mol/DoF)",
        (ea - er) / dof
    );
}
