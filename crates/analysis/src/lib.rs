//! Trajectory analysis for the paper's evaluation quantities.
//!
//! * [`drift`] — NVE energy-drift fits in the paper's Table 4 units
//!   (kcal/mol per degree of freedom per simulated µs).
//! * [`kabsch`] — optimal-rotation structural alignment (needed before
//!   computing order parameters, which must exclude overall tumbling).
//! * [`order_params`] — backbone amide S² order parameters (Figure 6).
//! * [`folding`] — native-contact reaction coordinate processing and
//!   folding/unfolding event detection (Figure 7).
//! * [`stats`] — small statistics helpers (linear regression, mean/sem).
//! * [`verify`] / [`battery`] — the closed-form invariant verifier: exact
//!   integer identities (third law, force consistency, mesh charge,
//!   exchange census) plus bounded NVE momentum/energy checks, run
//!   against a live engine every sampled cycle (DESIGN.md §16).
//! * [`artifacts`] — deterministic, schema-versioned CSV tables for the
//!   paper-shaped results (Table 2/4, scaling and trace figures).

pub mod artifacts;
pub mod battery;
pub mod drift;
pub mod folding;
pub mod kabsch;
pub mod order_params;
pub mod stats;
pub mod structure;
pub mod verify;
pub mod xyz;

pub use artifacts::{micro_from_f64, Cell, Table, TABLE_SCHEMA};
pub use battery::{
    assert_verified, verifier_of, violations_of, Verifier, VerifierObserver, VerifyConfig,
    VerifyEveryExt,
};
pub use drift::energy_drift_per_dof_us;
pub use folding::{detect_transitions, FoldingEvents};
pub use kabsch::kabsch_rotation;
pub use order_params::order_parameters;
pub use stats::{linear_fit, mean_sem};
pub use structure::{mean_squared_displacement, Rdf};
pub use verify::{Identity, Violation};
pub use xyz::XyzWriter;
