//! Trajectory analysis for the paper's evaluation quantities.
//!
//! * [`drift`] — NVE energy-drift fits in the paper's Table 4 units
//!   (kcal/mol per degree of freedom per simulated µs).
//! * [`kabsch`] — optimal-rotation structural alignment (needed before
//!   computing order parameters, which must exclude overall tumbling).
//! * [`order_params`] — backbone amide S² order parameters (Figure 6).
//! * [`folding`] — native-contact reaction coordinate processing and
//!   folding/unfolding event detection (Figure 7).
//! * [`stats`] — small statistics helpers (linear regression, mean/sem).

pub mod drift;
pub mod folding;
pub mod kabsch;
pub mod order_params;
pub mod stats;
pub mod structure;
pub mod xyz;

pub use drift::energy_drift_per_dof_us;
pub use folding::{detect_transitions, FoldingEvents};
pub use kabsch::kabsch_rotation;
pub use order_params::order_parameters;
pub use stats::{linear_fit, mean_sem};
pub use structure::{mean_squared_displacement, Rdf};
pub use xyz::XyzWriter;
