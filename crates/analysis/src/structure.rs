//! Structural/dynamic observables: radial distribution functions and
//! mean-squared displacement.
//!
//! Used to check that the engines produce liquid-like water (an implicit
//! prerequisite of every simulation in the paper) and to measure diffusion
//! from trajectories.

use anton_geometry::{PeriodicBox, Vec3};

/// Accumulates a radial distribution function g(r) between two site sets.
#[derive(Clone, Debug)]
pub struct Rdf {
    pub r_max: f64,
    pub bins: Vec<f64>,
    frames: usize,
    n_a: usize,
    n_b: usize,
    volume: f64,
    same_set: bool,
}

impl Rdf {
    pub fn new(r_max: f64, n_bins: usize) -> Rdf {
        Rdf {
            r_max,
            bins: vec![0.0; n_bins],
            frames: 0,
            n_a: 0,
            n_b: 0,
            volume: 0.0,
            same_set: false,
        }
    }

    /// Accumulate one frame of A–A distances (`sites` indices into `pos`).
    pub fn add_frame_self(&mut self, pbox: &PeriodicBox, pos: &[Vec3], sites: &[usize]) {
        self.frames += 1;
        self.n_a = sites.len();
        self.n_b = sites.len();
        self.volume = pbox.volume();
        self.same_set = true;
        let nb = self.bins.len() as f64;
        for (k, &i) in sites.iter().enumerate() {
            for &j in &sites[k + 1..] {
                let r = pbox.dist2(pos[i], pos[j]).sqrt();
                if r < self.r_max {
                    self.bins[(r / self.r_max * nb) as usize] += 2.0; // both directions
                }
            }
        }
    }

    /// Normalized g(r) with bin centers: `(r, g)` pairs.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        assert!(self.frames > 0);
        let dr = self.r_max / self.bins.len() as f64;
        let rho_b = self.n_b as f64 / self.volume;
        self.bins
            .iter()
            .enumerate()
            .map(|(k, &count)| {
                let r_lo = k as f64 * dr;
                let r_hi = r_lo + dr;
                let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
                let ideal = self.n_a as f64 * rho_b * shell * self.frames as f64;
                (
                    r_lo + dr / 2.0,
                    if ideal > 0.0 { count / ideal } else { 0.0 },
                )
            })
            .collect()
    }
}

/// Mean-squared displacement over a stored trajectory of unwrapped
/// positions; returns `(lag_index, msd)` pairs. The diffusion coefficient
/// follows from `D = msd / (6 t)` in the linear regime.
pub fn mean_squared_displacement(frames: &[Vec<Vec3>], max_lag: usize) -> Vec<(usize, f64)> {
    assert!(frames.len() >= 2);
    let n = frames[0].len();
    (1..=max_lag.min(frames.len() - 1))
        .map(|lag| {
            let mut acc = 0.0;
            let mut count = 0usize;
            for t in 0..(frames.len() - lag) {
                for (a, b) in frames[t + lag].iter().zip(&frames[t]) {
                    acc += (*a - *b).norm2();
                }
                count += n;
            }
            (lag, acc / count as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ideal_gas_rdf_is_flat_unity() {
        let pbox = PeriodicBox::cubic(20.0);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut rdf = Rdf::new(8.0, 40);
        for _ in 0..20 {
            let pos: Vec<Vec3> = (0..300)
                .map(|_| {
                    Vec3::new(
                        rng.gen::<f64>() * 20.0,
                        rng.gen::<f64>() * 20.0,
                        rng.gen::<f64>() * 20.0,
                    )
                })
                .collect();
            let sites: Vec<usize> = (0..300).collect();
            rdf.add_frame_self(&pbox, &pos, &sites);
        }
        let g = rdf.normalized();
        // Away from tiny-shell noise, g(r) ≈ 1 everywhere for an ideal gas.
        for &(r, v) in g.iter().filter(|&&(r, _)| r > 2.0) {
            assert!((v - 1.0).abs() < 0.15, "g({r:.2}) = {v:.3}");
        }
    }

    #[test]
    fn lattice_rdf_peaks_at_lattice_spacing() {
        let pbox = PeriodicBox::cubic(16.0);
        let mut pos = Vec::new();
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    pos.push(Vec3::new(x as f64 * 4.0, y as f64 * 4.0, z as f64 * 4.0));
                }
            }
        }
        let sites: Vec<usize> = (0..64).collect();
        let mut rdf = Rdf::new(6.0, 60);
        rdf.add_frame_self(&pbox, &pos, &sites);
        let g = rdf.normalized();
        // Strong first-neighbor peak at r ≈ 4.0, and an empty gap below it.
        let peak = g
            .iter()
            .cloned()
            .filter(|&(r, _)| r < 4.5)
            .fold((0.0, 0.0), |best, x| if x.1 > best.1 { x } else { best });
        assert!((peak.0 - 4.0).abs() < 0.15, "first peak at {}", peak.0);
        assert!(peak.1 > 5.0, "peak amplitude {}", peak.1);
        for &(r, v) in g.iter().filter(|&&(r, _)| r > 0.5 && r < 3.5) {
            assert!(v < 0.01, "unexpected density at r={r}: {v}");
        }
    }

    #[test]
    fn msd_of_ballistic_motion_is_quadratic() {
        // x(t) = v t → msd(lag) = |v|² lag².
        let v = Vec3::new(0.1, -0.05, 0.2);
        let frames: Vec<Vec<Vec3>> = (0..50).map(|t| vec![v * t as f64]).collect();
        let msd = mean_squared_displacement(&frames, 10);
        for &(lag, m) in &msd {
            let want = v.norm2() * (lag * lag) as f64;
            assert!((m - want).abs() < 1e-9, "lag {lag}: {m} vs {want}");
        }
    }

    #[test]
    fn msd_of_frozen_system_is_zero() {
        let frames: Vec<Vec<Vec3>> = (0..10).map(|_| vec![Vec3::new(1.0, 2.0, 3.0); 5]).collect();
        for (_, m) in mean_squared_displacement(&frames, 5) {
            assert_eq!(m, 0.0);
        }
    }
}
