//! XYZ trajectory output.
//!
//! The paper's Figure 1 is a rendering of BPTI from the millisecond
//! trajectory; this writer emits the universal `.xyz` multi-frame format so
//! any molecular viewer (VMD, PyMOL, OVITO) can render trajectories produced
//! by the engines in this workspace.

use anton_geometry::Vec3;
use std::io::{self, Write};

/// Streams frames in multi-frame XYZ format.
pub struct XyzWriter<W: Write> {
    out: W,
    /// One element symbol per atom (reused every frame).
    elements: Vec<String>,
    frames_written: usize,
}

impl<W: Write> XyzWriter<W> {
    pub fn new(out: W, elements: Vec<String>) -> XyzWriter<W> {
        XyzWriter {
            out,
            elements,
            frames_written: 0,
        }
    }

    /// Guess element symbols from masses (amu), good enough for viewers.
    pub fn elements_from_masses(masses: &[f64]) -> Vec<String> {
        masses
            .iter()
            .map(|&m| {
                match m {
                    m if m <= 0.0 => "X", // virtual site
                    m if m < 3.0 => "H",
                    m if m < 13.5 => "C",
                    m if m < 15.5 => "N",
                    m if m < 17.5 => "O",
                    m if m < 36.0 => "Cl",
                    _ => "Ar",
                }
                .to_string()
            })
            .collect()
    }

    /// Write one frame; `comment` lands on the XYZ comment line.
    pub fn write_frame(&mut self, positions: &[Vec3], comment: &str) -> io::Result<()> {
        assert_eq!(positions.len(), self.elements.len());
        writeln!(self.out, "{}", positions.len())?;
        writeln!(self.out, "{}", comment.replace('\n', " "))?;
        for (e, p) in self.elements.iter().zip(positions) {
            writeln!(self.out, "{e} {:.6} {:.6} {:.6}", p.x, p.y, p.z)?;
        }
        self.frames_written += 1;
        Ok(())
    }

    pub fn frames_written(&self) -> usize {
        self.frames_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_parseable_frames() {
        let mut buf = Vec::new();
        {
            let elements =
                XyzWriter::<&mut Vec<u8>>::elements_from_masses(&[15.9994, 1.008, 1.008]);
            assert_eq!(elements, vec!["O", "H", "H"]);
            let mut w = XyzWriter::new(&mut buf, elements);
            let frame = vec![
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(0.9572, 0.0, 0.0),
                Vec3::new(-0.24, 0.9266, 0.0),
            ];
            w.write_frame(&frame, "t = 0 fs").unwrap();
            w.write_frame(&frame, "t = 2.5 fs").unwrap();
            assert_eq!(w.frames_written(), 2);
        }
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 10);
        assert_eq!(lines[0], "3");
        assert_eq!(lines[1], "t = 0 fs");
        assert!(lines[2].starts_with("O 0.000000"));
        assert_eq!(lines[5], "3");
    }

    #[test]
    fn mass_to_element_covers_workspace_types() {
        let e = XyzWriter::<Vec<u8>>::elements_from_masses(&[
            0.0, 1.008, 12.011, 14.0067, 15.9994, 35.453, 39.9,
        ]);
        assert_eq!(e, vec!["X", "H", "C", "N", "O", "Cl", "Ar"]);
    }
}
