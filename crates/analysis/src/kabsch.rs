//! Kabsch optimal-rotation alignment.
//!
//! Order parameters measure *internal* motion, so each trajectory frame is
//! first superposed onto a reference structure (removing translation and
//! rotation). The optimal rotation comes from the polar decomposition of the
//! cross-covariance matrix, computed here with the symmetric Jacobi
//! eigensolver of `anton-geometry`.

use anton_geometry::{Mat3, Vec3};

/// Centroid of a point set.
pub fn centroid(points: &[Vec3]) -> Vec3 {
    points.iter().fold(Vec3::ZERO, |a, &p| a + p) / points.len() as f64
}

/// The rotation matrix that best maps `mobile` (centered) onto `target`
/// (centered) in the least-squares sense.
pub fn kabsch_rotation(mobile: &[Vec3], target: &[Vec3]) -> Mat3 {
    assert_eq!(mobile.len(), target.len());
    assert!(mobile.len() >= 3);
    let cm = centroid(mobile);
    let ct = centroid(target);
    // Cross-covariance H = Σ (m − cm)(t − ct)ᵀ.
    let mut h = Mat3::ZERO;
    for (m, t) in mobile.iter().zip(target) {
        h = h.add(Mat3::outer(*m - cm, *t - ct));
    }
    // Polar decomposition: R = (HᵀH)^(−1/2) Hᵀ … transposed appropriately:
    // with B = HᵀH = VΛVᵀ, R = H V Λ^(−1/2) Vᵀ, then transpose to map
    // mobile→target and fix a possible reflection.
    let b = h.transpose().mul_mat(h);
    let (vals, v) = b.sym_eigen();
    let inv_sqrt = Mat3([
        [1.0 / vals[0].max(1e-12).sqrt(), 0.0, 0.0],
        [0.0, 1.0 / vals[1].max(1e-12).sqrt(), 0.0],
        [0.0, 0.0, 1.0 / vals[2].max(1e-12).sqrt()],
    ]);
    let mut r = h
        .mul_mat(v.mul_mat(inv_sqrt).mul_mat(v.transpose()))
        .transpose();
    if r.det() < 0.0 {
        // Reflection: flip the axis of the smallest eigenvalue.
        let u = v.col(2);
        let flip = Mat3::IDENTITY.add(Mat3::outer(u, u).scale(-2.0));
        r = h
            .mul_mat(v.mul_mat(inv_sqrt).mul_mat(v.transpose()))
            .mul_mat(flip)
            .transpose();
        // Ensure we actually produced a rotation.
        if r.det() < 0.0 {
            r = Mat3::IDENTITY;
        }
    }
    r
}

/// Superpose `mobile` onto `target`: returns transformed copies of `mobile`.
pub fn superpose(mobile: &[Vec3], target: &[Vec3]) -> Vec<Vec3> {
    let r = kabsch_rotation(mobile, target);
    let cm = centroid(mobile);
    let ct = centroid(target);
    mobile.iter().map(|&p| r.mul_vec(p - cm) + ct).collect()
}

/// RMSD after optimal superposition.
pub fn rmsd(mobile: &[Vec3], target: &[Vec3]) -> f64 {
    let s = superpose(mobile, target);
    (s.iter()
        .zip(target)
        .map(|(a, b)| (*a - *b).norm2())
        .sum::<f64>()
        / s.len() as f64)
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_points() -> Vec<Vec3> {
        vec![
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 2.0, 0.0),
            Vec3::new(0.0, 0.0, 3.0),
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(-1.0, 0.5, 2.0),
        ]
    }

    fn rot_z(theta: f64) -> Mat3 {
        Mat3([
            [theta.cos(), -theta.sin(), 0.0],
            [theta.sin(), theta.cos(), 0.0],
            [0.0, 0.0, 1.0],
        ])
    }

    #[test]
    fn recovers_pure_rotation() {
        let p = test_points();
        let r_true = rot_z(0.7);
        let q: Vec<Vec3> = p
            .iter()
            .map(|&x| r_true.mul_vec(x) + Vec3::new(3.0, -1.0, 2.0))
            .collect();
        assert!(rmsd(&p, &q) < 1e-10);
        let r = kabsch_rotation(&p, &q);
        assert!((r.det() - 1.0).abs() < 1e-9);
        for i in 0..3 {
            for j in 0..3 {
                assert!((r.0[i][j] - r_true.0[i][j]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn rmsd_zero_on_identity() {
        let p = test_points();
        assert!(rmsd(&p, &p) < 1e-12);
    }

    #[test]
    fn rmsd_detects_distortion() {
        let p = test_points();
        let mut q = p.clone();
        q[0] += Vec3::new(0.5, 0.0, 0.0);
        let d = rmsd(&p, &q);
        assert!(d > 0.1 && d < 0.5, "rmsd {d}");
    }
}
