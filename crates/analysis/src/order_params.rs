//! Backbone amide S² order parameters (Figure 6).
//!
//! Order parameters "characterize the amount of movement of each amino acid
//! in a protein (an order parameter near 1 indicates that the amino acid has
//! little mobility…)". For a unit bond vector u(t) sampled over a (aligned)
//! trajectory, the standard expression is
//!
//! ```text
//!   S² = 3/2 (⟨x²⟩² + ⟨y²⟩² + ⟨z²⟩² + 2⟨xy⟩² + 2⟨xz⟩² + 2⟨yz⟩²) − 1/2
//! ```

use anton_geometry::Vec3;

/// Accumulator for one vector's orientational statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct OrderAccumulator {
    xx: f64,
    yy: f64,
    zz: f64,
    xy: f64,
    xz: f64,
    yz: f64,
    n: u64,
}

impl OrderAccumulator {
    /// Add one (not necessarily normalized) bond vector sample.
    pub fn add(&mut self, v: Vec3) {
        if let Some(u) = v.normalized() {
            self.xx += u.x * u.x;
            self.yy += u.y * u.y;
            self.zz += u.z * u.z;
            self.xy += u.x * u.y;
            self.xz += u.x * u.z;
            self.yz += u.y * u.z;
            self.n += 1;
        }
    }

    /// The S² estimate.
    pub fn s2(&self) -> f64 {
        assert!(self.n > 0, "no samples");
        let n = self.n as f64;
        let (xx, yy, zz) = (self.xx / n, self.yy / n, self.zz / n);
        let (xy, xz, yz) = (self.xy / n, self.xz / n, self.yz / n);
        1.5 * (xx * xx + yy * yy + zz * zz + 2.0 * (xy * xy + xz * xz + yz * yz)) - 0.5
    }
}

/// S² per vector from a trajectory of bond-vector frames:
/// `frames[t][k]` is vector `k` at time `t` (already in the aligned frame).
pub fn order_parameters(frames: &[Vec<Vec3>]) -> Vec<f64> {
    assert!(!frames.is_empty());
    let k = frames[0].len();
    let mut acc = vec![OrderAccumulator::default(); k];
    for frame in frames {
        assert_eq!(frame.len(), k);
        for (a, &v) in acc.iter_mut().zip(frame) {
            a.add(v);
        }
    }
    acc.iter().map(|a| a.s2()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rigid_vector_has_s2_one() {
        let frames: Vec<Vec<Vec3>> = (0..100).map(|_| vec![Vec3::new(0.3, -0.2, 0.93)]).collect();
        let s2 = order_parameters(&frames);
        assert!((s2[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn isotropic_vector_has_s2_zero() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let frames: Vec<Vec<Vec3>> = (0..60_000)
            .map(|_| loop {
                let v = Vec3::new(
                    rng.gen::<f64>() * 2.0 - 1.0,
                    rng.gen::<f64>() * 2.0 - 1.0,
                    rng.gen::<f64>() * 2.0 - 1.0,
                );
                if v.norm2() <= 1.0 && v.norm2() > 1e-3 {
                    return vec![v];
                }
            })
            .collect();
        let s2 = order_parameters(&frames);
        assert!(s2[0].abs() < 0.02, "S² = {}", s2[0]);
    }

    #[test]
    fn wobble_in_cone_matches_analytic() {
        // Diffusion in a cone of half-angle θ₀:
        // S² = [cosθ₀(1 + cosθ₀)/2]².
        let theta0: f64 = 0.5;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let frames: Vec<Vec<Vec3>> = (0..200_000)
            .map(|_| {
                // Uniform over the spherical cap.
                let cos_t = 1.0 - rng.gen::<f64>() * (1.0 - theta0.cos());
                let sin_t = (1.0 - cos_t * cos_t).sqrt();
                let phi = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
                vec![Vec3::new(sin_t * phi.cos(), sin_t * phi.sin(), cos_t)]
            })
            .collect();
        let s2 = order_parameters(&frames)[0];
        let want = (theta0.cos() * (1.0 + theta0.cos()) / 2.0).powi(2);
        assert!((s2 - want).abs() < 0.01, "S² {s2} vs analytic {want}");
    }
}
