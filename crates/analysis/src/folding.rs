//! Folding/unfolding event detection (Figure 7).
//!
//! The paper's 236 µs gpW run at the melting temperature shows repeated
//! folding and unfolding. On the fraction-of-native-contacts coordinate
//! Q(t), we detect transitions with a two-threshold (hysteresis) scheme so
//! that barrier recrossings don't inflate the event count.

use serde::{Deserialize, Serialize};

/// Detected transitions.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FoldingEvents {
    /// Sample indices where a folding event completed (Q crossed up
    /// through the folded threshold from the unfolded state).
    pub folding_at: Vec<usize>,
    /// Sample indices where an unfolding event completed.
    pub unfolding_at: Vec<usize>,
    /// Fraction of samples in the folded state.
    pub folded_fraction: f64,
}

/// Two-threshold transition detection on Q(t).
pub fn detect_transitions(q: &[f64], folded_above: f64, unfolded_below: f64) -> FoldingEvents {
    assert!(folded_above > unfolded_below);
    let mut events = FoldingEvents::default();
    // Initial state from the first sample.
    let mut folded = q.first().is_some_and(|&v| v >= folded_above);
    let mut folded_samples = 0usize;
    for (i, &v) in q.iter().enumerate() {
        if folded {
            if v <= unfolded_below {
                folded = false;
                events.unfolding_at.push(i);
            }
        } else if v >= folded_above {
            folded = true;
            events.folding_at.push(i);
        }
        if folded {
            folded_samples += 1;
        }
    }
    events.folded_fraction = folded_samples as f64 / q.len().max(1) as f64;
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_square_wave() {
        // folded (0.9) for 50, unfolded (0.2) for 50, folded again.
        let mut q = vec![0.9; 50];
        q.extend(vec![0.2; 50]);
        q.extend(vec![0.9; 50]);
        let ev = detect_transitions(&q, 0.75, 0.35);
        assert_eq!(ev.unfolding_at, vec![50]);
        assert_eq!(ev.folding_at, vec![100]);
        assert!((ev.folded_fraction - 100.0 / 150.0).abs() < 0.01);
    }

    #[test]
    fn hysteresis_ignores_recrossings() {
        // Chatter around 0.55 must produce no events.
        let q: Vec<f64> = (0..200)
            .map(|i| 0.55 + 0.1 * ((i % 2) as f64 - 0.5))
            .collect();
        let ev = detect_transitions(&q, 0.75, 0.35);
        assert!(ev.folding_at.is_empty());
        assert!(ev.unfolding_at.is_empty());
    }

    #[test]
    fn counts_multiple_events() {
        let mut q = Vec::new();
        for _ in 0..4 {
            q.extend(vec![0.9; 20]);
            q.extend(vec![0.2; 20]);
        }
        let ev = detect_transitions(&q, 0.75, 0.35);
        assert_eq!(ev.unfolding_at.len(), 4);
        assert_eq!(ev.folding_at.len(), 3);
    }
}
