//! Closed-form invariant checks over exact engine words.
//!
//! Every function in this module compares *integers*: fixed-point force
//! words, mesh charge words, exchange-counter values, and momentum sums in
//! `i128`. There are no epsilon tolerances — an identity either holds
//! bitwise or it is a [`Violation`] carrying the exact left- and right-hand
//! words. The single floating-point entry point (the NVE energy-drift
//! bound, which is a *bound*, not an identity) is isolated behind an
//! explicit determinism-boundary annotation and fails closed on NaN.
//!
//! The checks themselves are pure functions of their arguments so they can
//! be unit-tested against hand-built violating states (no engine needed);
//! [`crate::battery::Verifier`] wires them to a live [`anton_core`]
//! simulation.

use std::fmt;

/// Which closed-form identity a check exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Identity {
    /// Newton's third law over the range-limited pair phase: the merged
    /// per-atom force words of one `range_limited` evaluation sum to
    /// exactly zero per axis (every pair contributes `+w` and `-w`).
    ThirdLawRangeLimited,
    /// Third law over the Ewald correction pair phase (same argument).
    ThirdLawCorrection,
    /// The engine's stored force buffers equal a bitwise recomputation by
    /// an independent single-rank, single-thread pipeline at the same
    /// positions — a per-cycle proof of parallel invariance.
    ForceConsistency,
    /// Total charge on the reciprocal mesh after spreading is
    /// decomposition-invariant (node-merged mesh equals a serial
    /// re-spread, word for word in total).
    MeshCharge,
    /// Total quantized momentum stays inside a closed-form rounding
    /// envelope (exact equality is impossible: bonded/vsite/mesh phases
    /// are not pairwise-antisymmetric in quantized words).
    MomentumEnvelope,
    /// NVE total energy drift per degree of freedom stays under a bound.
    EnergyDrift,
    /// Exchange census decompositions: step, long-range-step, and
    /// rebuild/reuse counters tie together exactly.
    CensusSteps,
    /// Modeled communication counters are exactly linear in the metered
    /// step counts (messages = steps x links, mesh traffic = lr_steps x
    /// per-transform rates).
    CensusComm,
    /// Trajectory-function counters (matched pairs, rebuild/reuse splits)
    /// are identical across decompositions and thread counts.
    CensusInvariance,
}

impl Identity {
    /// Stable machine-readable name (used in reports and CI logs).
    pub fn name(self) -> &'static str {
        match self {
            Identity::ThirdLawRangeLimited => "third_law_range_limited",
            Identity::ThirdLawCorrection => "third_law_correction",
            Identity::ForceConsistency => "force_consistency",
            Identity::MeshCharge => "mesh_charge",
            Identity::MomentumEnvelope => "momentum_envelope",
            Identity::EnergyDrift => "energy_drift",
            Identity::CensusSteps => "census_steps",
            Identity::CensusComm => "census_comm",
            Identity::CensusInvariance => "census_invariance",
        }
    }
}

/// One failed identity: the cycle it failed on, which identity, a label
/// naming the compared quantity, the offending word index (atom*3+axis for
/// force buffers, 0 for scalars), and the exact words that differed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    pub cycle: u64,
    pub identity: Identity,
    /// Which compared quantity within the identity (e.g. "import_messages").
    pub label: &'static str,
    /// Flattened word index for vector comparisons; 0 for scalars.
    pub index: usize,
    /// Exact left-hand word of the failed comparison.
    pub lhs: i128,
    /// Exact right-hand word (the value the identity requires).
    pub rhs: i128,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {}: {} [{} @ {}]: lhs {} != rhs {}",
            self.cycle,
            self.identity.name(),
            self.label,
            self.index,
            self.lhs,
            self.rhs
        )
    }
}

/// Exact per-axis sum of a raw force buffer, or `None` on `i128` overflow
/// (unreachable for physical systems; treated as a violation by callers so
/// overflow can never silently pass an identity).
pub fn force_sum(f: &[[i64; 3]]) -> Option<[i128; 3]> {
    let mut s = [0i128; 3];
    for w in f {
        for k in 0..3 {
            s[k] = s[k].checked_add(w[k] as i128)?;
        }
    }
    Some(s)
}

/// Newton's third law: the per-axis sums of a pairwise phase's merged
/// force buffer must be exactly zero.
pub fn check_force_sum_zero(identity: Identity, cycle: u64, f: &[[i64; 3]]) -> Vec<Violation> {
    let mut out = Vec::new();
    match force_sum(f) {
        None => out.push(Violation {
            cycle,
            identity,
            label: "force_sum_overflow",
            index: 0,
            lhs: i128::MAX,
            rhs: 0,
        }),
        Some(s) => {
            for (k, &sk) in s.iter().enumerate() {
                if sk != 0 {
                    out.push(Violation {
                        cycle,
                        identity,
                        label: "axis_sum",
                        index: k,
                        lhs: sk,
                        rhs: 0,
                    });
                }
            }
        }
    }
    out
}

/// Bitwise equality of two force buffers; reports the first differing
/// word per buffer (flattened index `atom*3 + axis`).
pub fn check_forces_equal(
    identity: Identity,
    cycle: u64,
    label: &'static str,
    a: &[[i64; 3]],
    b: &[[i64; 3]],
) -> Vec<Violation> {
    if a.len() != b.len() {
        return vec![Violation {
            cycle,
            identity,
            label: "buffer_len",
            index: 0,
            lhs: a.len() as i128,
            rhs: b.len() as i128,
        }];
    }
    for (i, (wa, wb)) in a.iter().zip(b).enumerate() {
        for k in 0..3 {
            if wa[k] != wb[k] {
                return vec![Violation {
                    cycle,
                    identity,
                    label,
                    index: i * 3 + k,
                    lhs: wa[k] as i128,
                    rhs: wb[k] as i128,
                }];
            }
        }
    }
    Vec::new()
}

/// Exact scalar identity `lhs == rhs`.
pub fn check_scalars_equal(
    identity: Identity,
    cycle: u64,
    label: &'static str,
    lhs: i128,
    rhs: i128,
) -> Option<Violation> {
    if lhs == rhs {
        None
    } else {
        Some(Violation {
            cycle,
            identity,
            label,
            index: 0,
            lhs,
            rhs,
        })
    }
}

/// Exact total momentum in quantized units: per-axis sum of
/// `mass_q[i] * velocity_raw[i][k]`, or `None` on overflow.
pub fn momentum(mass_q: &[i64], vel: &[[i64; 3]]) -> Option<[i128; 3]> {
    debug_assert_eq!(mass_q.len(), vel.len());
    let mut p = [0i128; 3];
    for (&m, v) in mass_q.iter().zip(vel) {
        for k in 0..3 {
            let term = (m as i128).checked_mul(v[k] as i128)?;
            p[k] = p[k].checked_add(term)?;
        }
    }
    Some(p)
}

/// Momentum drift envelope: every axis of `|p - p0|` must stay within
/// `bound`. A negative bound means the caller's budget computation
/// overflowed or went non-finite — that fails closed as a violation.
pub fn check_momentum_envelope(
    cycle: u64,
    p0: [i128; 3],
    p: [i128; 3],
    bound: i128,
) -> Vec<Violation> {
    if bound < 0 {
        return vec![Violation {
            cycle,
            identity: Identity::MomentumEnvelope,
            label: "budget_invalid",
            index: 0,
            lhs: bound,
            rhs: 0,
        }];
    }
    let mut out = Vec::new();
    for k in 0..3 {
        let drift = p[k].wrapping_sub(p0[k]);
        if drift.checked_abs().is_none_or(|d| d > bound) {
            out.push(Violation {
                cycle,
                identity: Identity::MomentumEnvelope,
                label: "axis_drift",
                index: k,
                lhs: drift,
                rhs: bound,
            });
        }
    }
    out
}

/// Exact counter linearity `counter == steps * rate`. A multiply overflow
/// fires the check (it cannot silently pass).
pub fn check_counter_linear(
    identity: Identity,
    cycle: u64,
    label: &'static str,
    counter: u64,
    steps: u64,
    rate: u64,
) -> Option<Violation> {
    match steps.checked_mul(rate) {
        Some(expect) if expect == counter => None,
        Some(expect) => Some(Violation {
            cycle,
            identity,
            label,
            index: 0,
            lhs: counter as i128,
            rhs: expect as i128,
        }),
        None => Some(Violation {
            cycle,
            identity,
            label,
            index: 0,
            lhs: counter as i128,
            rhs: i128::MAX,
        }),
    }
}

/// The trajectory-function counters that must be identical across
/// decompositions and thread counts (`match_candidates`/`match_batches`
/// are deliberately absent: candidate streaming is per-node and therefore
/// decomposition-*dependent*).
pub fn check_census_invariance(
    cycle: u64,
    a: &anton_machine::perf::ExchangeCounters,
    b: &anton_machine::perf::ExchangeCounters,
) -> Vec<Violation> {
    let fields: [(&'static str, u64, u64); 3] = [
        ("match_pairs", a.match_pairs, b.match_pairs),
        ("rebuild_steps", a.rebuild_steps, b.rebuild_steps),
        ("reuse_steps", a.reuse_steps, b.reuse_steps),
    ];
    let mut out = Vec::new();
    for (label, lhs, rhs) in fields {
        if lhs != rhs {
            out.push(Violation {
                cycle,
                identity: Identity::CensusInvariance,
                label,
                index: 0,
                lhs: lhs as i128,
                rhs: rhs as i128,
            });
        }
    }
    out
}

// detlint::boundary(reason = "the NVE drift criterion is a physical bound in kcal/mol, not an exact identity; the comparison is one ordered f64 test that fails closed on NaN, and the reported words are micro-unit integers")
/// NVE energy-drift bound: `|e - e0| / dof` must not exceed `bound`
/// (kcal/mol per degree of freedom). Fails closed: a NaN anywhere (or
/// `dof == 0`) is a violation, because `<=` is false for NaN. The reported
/// words are micro-kcal/mol integers (saturating cast, NaN maps to 0).
pub fn check_energy_drift(cycle: u64, e0: f64, e: f64, dof: u64, bound: f64) -> Option<Violation> {
    let per_dof = if dof == 0 {
        f64::NAN
    } else {
        (e - e0).abs() / dof as f64
    };
    if per_dof <= bound {
        None
    } else {
        Some(Violation {
            cycle,
            identity: Identity::EnergyDrift,
            label: "abs_drift_per_dof_micro",
            index: 0,
            lhs: (per_dof * 1e6) as i128,
            rhs: (bound * 1e6) as i128,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_machine::perf::ExchangeCounters;

    #[test]
    fn third_law_holds_on_antisymmetric_pair() {
        let f = [[5, -9, 2], [-5, 9, -2]];
        assert!(check_force_sum_zero(Identity::ThirdLawRangeLimited, 0, &f).is_empty());
    }

    #[test]
    fn third_law_detects_asymmetric_pair_with_exact_words() {
        // One force word off by one: the axis sum is exactly 1.
        let f = [[5, -9, 2], [-4, 9, -2]];
        let v = check_force_sum_zero(Identity::ThirdLawRangeLimited, 7, &f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].identity, Identity::ThirdLawRangeLimited);
        assert_eq!(v[0].cycle, 7);
        assert_eq!(v[0].index, 0);
        assert_eq!((v[0].lhs, v[0].rhs), (1, 0));
    }

    #[test]
    fn force_sum_overflow_is_a_violation_not_a_pass() {
        // Hand-built to overflow i128 is impractical with i64 words (n would
        // need to exceed 2^64 atoms), so exercise the Option contract.
        assert_eq!(
            force_sum(&[[i64::MAX, 0, 0], [i64::MAX, 0, 0]]).unwrap()[0],
            2 * (i64::MAX as i128)
        );
    }

    #[test]
    fn forces_equal_reports_first_differing_word() {
        let a = [[1, 2, 3], [4, 5, 6]];
        let mut b = a;
        b[1][2] = 7;
        let v = check_forces_equal(Identity::ForceConsistency, 3, "short", &a, &b);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].index, 5);
        assert_eq!((v[0].lhs, v[0].rhs), (6, 7));
    }

    #[test]
    fn forces_equal_flags_length_mismatch() {
        let a = [[0i64; 3]; 2];
        let b = [[0i64; 3]; 3];
        let v = check_forces_equal(Identity::ForceConsistency, 0, "short", &a, &b);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].label, "buffer_len");
        assert_eq!((v[0].lhs, v[0].rhs), (2, 3));
    }

    #[test]
    fn mesh_charge_leak_detected_with_exact_words() {
        let v = check_scalars_equal(Identity::MeshCharge, 2, "rho_total", 5, 7).unwrap();
        assert_eq!(v.identity, Identity::MeshCharge);
        assert_eq!((v.lhs, v.rhs), (5, 7));
        assert!(check_scalars_equal(Identity::MeshCharge, 2, "rho_total", 7, 7).is_none());
    }

    #[test]
    fn momentum_envelope_flags_nonzero_drift_beyond_budget() {
        let p0 = [0i128; 3];
        let p = [100, -3, 0];
        let v = check_momentum_envelope(9, p0, p, 10);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].index, 0);
        assert_eq!((v[0].lhs, v[0].rhs), (100, 10));
        assert!(check_momentum_envelope(9, p0, [10, -10, 0], 10).is_empty());
    }

    #[test]
    fn invalid_momentum_budget_fails_closed() {
        let v = check_momentum_envelope(1, [0; 3], [0; 3], -1);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].label, "budget_invalid");
    }

    #[test]
    fn census_mismatch_detected_with_exact_words() {
        let v = check_counter_linear(Identity::CensusComm, 4, "import_messages", 10, 3, 3).unwrap();
        assert_eq!((v.lhs, v.rhs), (10, 9));
        assert!(
            check_counter_linear(Identity::CensusComm, 4, "import_messages", 9, 3, 3).is_none()
        );
    }

    #[test]
    fn counter_linearity_overflow_fires() {
        let v = check_counter_linear(Identity::CensusComm, 0, "fft_bytes", 1, u64::MAX, 2)
            .expect("overflow must fire");
        assert_eq!(v.rhs, i128::MAX);
    }

    #[test]
    fn census_invariance_compares_trajectory_counters_only() {
        let mut a = ExchangeCounters::default();
        let mut b = ExchangeCounters::default();
        a.match_pairs = 100;
        b.match_pairs = 101;
        // Decomposition-dependent counters may differ freely.
        a.match_candidates = 5000;
        b.match_candidates = 9000;
        let v = check_census_invariance(1, &a, &b);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].label, "match_pairs");
        b.match_pairs = 100;
        assert!(check_census_invariance(1, &a, &b).is_empty());
    }

    #[test]
    fn energy_drift_within_bound_passes_and_beyond_fires() {
        assert!(check_energy_drift(0, -100.0, -100.001, 100, 0.05).is_none());
        let v = check_energy_drift(6, -100.0, -90.0, 100, 0.05).unwrap();
        // 0.1 kcal/mol/dof in micro units.
        assert_eq!((v.lhs, v.rhs), (100_000, 50_000));
    }

    #[test]
    fn energy_drift_never_silently_passes_on_nan_or_zero_dof() {
        assert!(check_energy_drift(0, f64::NAN, -100.0, 100, 0.05).is_some());
        assert!(check_energy_drift(0, -100.0, f64::NAN, 100, 0.05).is_some());
        assert!(check_energy_drift(0, -100.0, -100.0, 0, 0.05).is_some());
    }
}
