//! Energy-drift measurement (Table 4).
//!
//! "Energy drift, the rate of change of total system energy … is more
//! sensitive to certain errors that could adversely affect the physical
//! predictions of a simulation." The paper reports drift in
//! kcal/mol/DoF/µs from unthermostatted runs; we fit a line through
//! (time, total energy) samples.

use crate::stats::linear_fit;

/// Fit the drift rate from `(time_fs, energy_kcal_mol)` samples; returns
/// kcal/mol per degree of freedom per simulated microsecond.
pub fn energy_drift_per_dof_us(times_fs: &[f64], energies: &[f64], dof: usize) -> f64 {
    let (_a, slope_per_fs) = linear_fit(times_fs, energies);
    // 1 µs = 1e9 fs.
    slope_per_fs * 1e9 / dof as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_injected_drift() {
        // 0.05 kcal/mol/DoF/µs over 1000 DoF = 5e-8 kcal/mol/fs.
        let dof = 1000;
        let slope = 0.05 / 1e9 * dof as f64;
        let times: Vec<f64> = (0..200).map(|i| i as f64 * 2.5).collect();
        let energies: Vec<f64> = times.iter().map(|t| -1234.0 + slope * t).collect();
        let d = energy_drift_per_dof_us(&times, &energies, dof);
        assert!((d - 0.05).abs() < 1e-6, "drift {d}");
    }

    #[test]
    fn noise_averages_out() {
        let dof = 500;
        let times: Vec<f64> = (0..2000).map(|i| i as f64 * 2.5).collect();
        // Zero drift + deterministic pseudo-noise.
        let energies: Vec<f64> = times
            .iter()
            .enumerate()
            .map(|(i, _)| -900.0 + ((i * 2654435761) % 1000) as f64 * 1e-4)
            .collect();
        let d = energy_drift_per_dof_us(&times, &energies, dof);
        assert!(d.abs() < 0.5, "spurious drift {d}");
    }
}
