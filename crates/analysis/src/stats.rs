//! Small statistics helpers.

/// Least-squares linear fit `y = a + b·x`; returns `(a, b)`.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len());
    assert!(x.len() >= 2);
    let n = x.len() as f64;
    let sx: f64 = x.iter().sum();
    let sy: f64 = y.iter().sum();
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-300, "degenerate x values");
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    (a, b)
}

/// Mean and standard error of the mean.
pub fn mean_sem(values: &[f64]) -> (f64, f64) {
    assert!(!values.is_empty());
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, (var / n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_line() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 + 2.0 * v).collect();
        let (a, b) = linear_fit(&x, &y);
        assert!((a - 3.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_sem_basics() {
        let (m, s) = mean_sem(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m - 2.5).abs() < 1e-12);
        assert!(s > 0.0);
        let (m1, s1) = mean_sem(&[7.0]);
        assert_eq!((m1, s1), (7.0, 0.0));
    }
}
