//! The invariant battery: wiring the pure checks of [`crate::verify`] to a
//! live [`AntonSimulation`].
//!
//! A [`Verifier`] owns an *independent* single-rank, single-thread
//! [`ForcePipeline`] over the same system. Each sampled cycle it recomputes
//! the short- and long-range forces at the engine's current positions and
//! demands bitwise agreement with the engine's stored buffers — so every
//! sample is simultaneously a correctness check and a proof that the
//! engine's decomposition (any node count, any thread count) reproduced the
//! serial words. On top of that it checks Newton's third law over the two
//! pairwise phases, mesh charge conservation, the exchange-census
//! identities, and (for NVE runs) a momentum rounding envelope and an
//! energy-drift bound.
//!
//! Install one with [`VerifyEveryExt::verify_every`]:
//!
//! ```no_run
//! use anton_analysis::battery::{assert_verified, VerifyEveryExt};
//! use anton_core::AntonSimulation;
//! # let system: anton_systems::System = unimplemented!();
//! let mut sim = AntonSimulation::builder(system).verify_every(1).build();
//! sim.run_cycles(5);
//! assert_verified(&sim); // every identity held on every sampled cycle
//! ```

use anton_core::engine::CycleObserver;
use anton_core::state::{FORCE_FRAC, VEL_FRAC};
use anton_core::{
    AntonSimulation, Decomposition, ForcePipeline, RawForces, SimulationBuilder, ThermostatKind,
};
use anton_fixpoint::rounding::rne_f64;
use anton_forcefield::units::ACCEL;
use anton_machine::perf::ExchangeCounters;

use crate::verify::{
    check_counter_linear, check_energy_drift, check_force_sum_zero, check_forces_equal,
    check_momentum_envelope, check_scalars_equal, momentum, Identity, Violation,
};

/// Mass quantization for the exact momentum sum (Q20 raw words, like the
/// pair-pipeline parameter RAM).
const MASS_FRAC_BITS: u32 = 20;

/// Tunable bounds for the two non-identity checks; everything else in the
/// battery is an exact integer comparison with no knobs.
#[derive(Clone, Copy, Debug)]
pub struct VerifyConfig {
    /// NVE energy-drift bound, kcal/mol per degree of freedom, measured
    /// from the verifier's baseline sample. Generous against the paper's
    /// µs-scale drift targets but tight against any integration bug.
    pub energy_drift_bound: f64,
    /// Multiplier on the closed-form momentum rounding envelope (see
    /// [`Verifier::momentum_budget`]). The envelope is a worst-case bound,
    /// so real drift sits far inside it; the slack keeps the check
    /// deterministic-by-construction rather than tuned-to-pass.
    pub momentum_slack: f64,
    /// Check the momentum envelope (NVE only; a thermostat rescales
    /// velocities and legitimately moves total momentum).
    pub check_momentum: bool,
    /// Check the energy-drift bound (NVE only).
    pub check_energy: bool,
}

impl Default for VerifyConfig {
    fn default() -> VerifyConfig {
        VerifyConfig {
            energy_drift_bound: 0.05,
            momentum_slack: 64.0,
            check_momentum: true,
            check_energy: true,
        }
    }
}

/// Closed-form invariant verifier bound to one simulation's system.
pub struct Verifier {
    cfg: VerifyConfig,
    /// Independent serial reference pipeline (SingleRank, 1 thread).
    pipeline: ForcePipeline,
    scratch: RawForces,
    recompute: RawForces,
    /// Q20 mass words (0 for massless virtual sites).
    mass_q: Vec<i64>,
    /// Σ mass_q, the per-write momentum rounding scale.
    mass_total: f64,
    /// Baseline total momentum (exact words at construction).
    p0: [i128; 3],
    /// Baseline total energy (kcal/mol) for the drift bound.
    e0: f64,
    dof: u64,
    base_step: u64,
    base_cycle: u64,
    base_counters: ExchangeCounters,
    nve: bool,
    /// Per-step, per-unit-mass velocity-word budget of the constraint
    /// rewrite (0 when the system has no constraints or they're disabled).
    shake_term: f64,
    violations: Vec<Violation>,
    samples: u64,
}

impl Verifier {
    pub fn new(sim: &AntonSimulation) -> Verifier {
        Verifier::with_config(sim, VerifyConfig::default())
    }

    pub fn with_config(sim: &AntonSimulation, cfg: VerifyConfig) -> Verifier {
        let sys = &sim.system;
        let n = sys.n_atoms();
        let pipeline = ForcePipeline::new(sys, Decomposition::SingleRank, 1);
        let mass_q: Vec<i64> = sys
            .topology
            .mass
            .iter()
            .map(|&m| {
                if m > 0.0 {
                    rne_f64(m * (1u64 << MASS_FRAC_BITS) as f64) as i64
                } else {
                    0
                }
            })
            .collect();
        let mass_total = mass_q.iter().map(|&m| m as f64).sum();
        let mut violations = Vec::new();
        let p0 = match momentum(&mass_q, &sim.state.velocities) {
            Some(p) => p,
            None => {
                violations.push(Violation {
                    cycle: sim.cycle_count(),
                    identity: Identity::MomentumEnvelope,
                    label: "baseline_overflow",
                    index: 0,
                    lhs: i128::MAX,
                    rhs: 0,
                });
                [0; 3]
            }
        };
        let n_massive = sys.topology.mass.iter().filter(|&&m| m > 0.0).count() as u64;
        let dof = (3 * n_massive)
            .saturating_sub(sys.topology.n_constraints() as u64)
            .max(1);
        let has_constraints = sim.constraints_enabled && !sys.topology.constraint_groups.is_empty();
        let shake_term = if has_constraints {
            // The SHAKE velocity rewrite v = Δx/dt re-quantizes both the
            // position (grid step (edge/2)·2⁻³¹ Å per axis) and the
            // velocity word (½ ulp): bound the per-atom velocity-word
            // error by 2·pos_ulp/dt in Å/fs scaled to Q40, plus 1 word.
            let e = sys.pbox.edge();
            let pos_ulp = e.x.max(e.y).max(e.z) / 2.0 * (2.0f64).powi(-31);
            2.0 * pos_ulp / sys.params.dt_fs * (2.0f64).powi(VEL_FRAC as i32) + 1.0
        } else {
            0.0
        };
        Verifier {
            cfg,
            pipeline,
            scratch: RawForces::zeroed(n),
            recompute: RawForces::zeroed(n),
            mass_q,
            mass_total,
            p0,
            e0: sim.total_energy(),
            dof,
            base_step: sim.step_count(),
            base_cycle: sim.cycle_count(),
            base_counters: sim.pipeline.counters,
            nve: matches!(sim.thermostat, ThermostatKind::None),
            shake_term,
            violations,
            samples: 0,
        }
    }

    /// Closed-form worst-case momentum drift (per axis, in
    /// `mass_q × velocity_raw` units) accumulated over `steps` inner steps
    /// and `cycles` outer cycles, given the current per-axis force-sum
    /// magnitudes `fs_max`/`fl_max` (Q24 words) of the short and long
    /// buffers. Three contributions, each a strict upper bound:
    ///
    /// 1. every velocity write rounds ≤ ½ ulp → ≤ ½·Σmass_q per write,
    ///    4 kick writes per step plus the constraint rewrite term;
    /// 2. the short force residual ΣF (bonded/vsite quantization breaks
    ///    exact antisymmetry) enters twice per step through the half-kick
    ///    constant dt/2·ACCEL·2^(MASS+VEL−FORCE);
    /// 3. the long residual enters twice per cycle with the k-scaled
    ///    impulse.
    fn momentum_budget(
        &self,
        sim: &AntonSimulation,
        steps: u64,
        cycles: u64,
        fs_max: f64,
        fl_max: f64,
    ) -> i128 {
        let dt = sim.system.params.dt_fs;
        let k = sim.system.params.longrange_every.max(1) as f64;
        let kick_half =
            dt / 2.0 * ACCEL * (2.0f64).powi((MASS_FRAC_BITS + VEL_FRAC - FORCE_FRAC) as i32);
        let per_step = self.mass_total * (2.0 + self.shake_term) + 2.0 * kick_half * fs_max;
        let per_cycle = 2.0 * k * kick_half * fl_max;
        let budget = self.cfg.momentum_slack
            * (steps as f64 * per_step + cycles as f64 * per_cycle + self.mass_total);
        // Saturating cast: NaN → 0, +inf → i128::MAX; a zero budget makes
        // the envelope check fail closed rather than silently pass.
        budget as i128
    }

    /// Run the full battery against the simulation's current state and
    /// record any violations. Read-only with respect to `sim`.
    pub fn sample(&mut self, sim: &AntonSimulation) {
        let cycle = sim.cycle_count();
        let sys = &sim.system;
        let state = &sim.state;

        // Newton's third law, range-limited pair phase.
        self.scratch.clear();
        self.pipeline.range_limited(sys, state, &mut self.scratch);
        self.violations.extend(check_force_sum_zero(
            Identity::ThirdLawRangeLimited,
            cycle,
            &self.scratch.f,
        ));

        // Newton's third law, Ewald correction pair phase.
        self.scratch.clear();
        self.pipeline.corrections(state, &mut self.scratch);
        self.violations.extend(check_force_sum_zero(
            Identity::ThirdLawCorrection,
            cycle,
            &self.scratch.f,
        ));

        // Force consistency: serial recomputation must reproduce the
        // engine's stored buffers word for word (forces and energies).
        self.recompute.clear();
        self.pipeline.short_range(sys, state, &mut self.recompute);
        AntonSimulation::spread_vsite_forces(&mut self.recompute, sys);
        let short = sim.short_forces();
        self.violations.extend(check_forces_equal(
            Identity::ForceConsistency,
            cycle,
            "short_forces",
            &self.recompute.f,
            &short.f,
        ));
        for (label, a, b) in [
            (
                "e_range_limited",
                self.recompute.e_range_limited,
                short.e_range_limited,
            ),
            ("e_bonded", self.recompute.e_bonded, short.e_bonded),
        ] {
            self.violations.extend(check_scalars_equal(
                Identity::ForceConsistency,
                cycle,
                label,
                a as i128,
                b as i128,
            ));
        }
        let fs_max = axis_abs_max(&short.f);

        self.recompute.clear();
        self.pipeline.long_range(sys, state, &mut self.recompute);
        AntonSimulation::spread_vsite_forces(&mut self.recompute, sys);
        let long = sim.long_forces();
        self.violations.extend(check_forces_equal(
            Identity::ForceConsistency,
            cycle,
            "long_forces",
            &self.recompute.f,
            &long.f,
        ));
        for (label, a, b) in [
            (
                "e_correction",
                self.recompute.e_correction,
                long.e_correction,
            ),
            (
                "e_reciprocal",
                self.recompute.e_reciprocal,
                long.e_reciprocal,
            ),
        ] {
            self.violations.extend(check_scalars_equal(
                Identity::ForceConsistency,
                cycle,
                label,
                a as i128,
                b as i128,
            ));
        }
        let fl_max = axis_abs_max(&long.f);

        // Mesh charge conservation: the engine's (possibly node-merged)
        // reciprocal mesh carries exactly the charge of the serial
        // re-spread the long_range recomputation above just performed.
        self.violations.extend(check_scalars_equal(
            Identity::MeshCharge,
            cycle,
            "rho_total",
            sim.pipeline.mesh_charge_total(),
            self.pipeline.mesh_charge_total(),
        ));

        // Momentum envelope and energy drift (NVE only: a thermostat
        // rescales velocities and legitimately moves both).
        let steps = sim.step_count().saturating_sub(self.base_step);
        let cycles = cycle.saturating_sub(self.base_cycle);
        if self.nve && self.cfg.check_momentum {
            match momentum(&self.mass_q, &state.velocities) {
                Some(p) => {
                    let bound = self.momentum_budget(sim, steps, cycles, fs_max, fl_max);
                    self.violations
                        .extend(check_momentum_envelope(cycle, self.p0, p, bound));
                }
                None => self.violations.push(Violation {
                    cycle,
                    identity: Identity::MomentumEnvelope,
                    label: "momentum_overflow",
                    index: 0,
                    lhs: i128::MAX,
                    rhs: 0,
                }),
            }
        }
        if self.nve && self.cfg.check_energy {
            self.violations.extend(check_energy_drift(
                cycle,
                self.e0,
                sim.total_energy(),
                self.dof,
                self.cfg.energy_drift_bound,
            ));
        }

        self.check_census(sim, cycle, steps, cycles);
        self.samples += 1;
    }

    /// Exchange-census identities over the engine pipeline's counters.
    fn check_census(&mut self, sim: &AntonSimulation, cycle: u64, steps_delta: u64, cycles: u64) {
        let c = sim.pipeline.counters;
        let b = self.base_counters;
        let k = sim.system.params.longrange_every.max(1) as u64;
        let rebuilds = (c.rebuild_steps - b.rebuild_steps) + (c.reuse_steps - b.reuse_steps);
        if sim.pipeline.rank_set().is_some() {
            // Node decomposition: every inner step is metered once, every
            // cycle evaluates long-range once, and every metered step ran
            // the range-limited phase exactly once (rebuild or reuse).
            self.violations.extend(check_counter_linear(
                Identity::CensusSteps,
                cycle,
                "steps_per_cycle",
                c.steps - b.steps,
                cycles,
                k,
            ));
            self.violations.extend(check_counter_linear(
                Identity::CensusSteps,
                cycle,
                "lr_steps_per_cycle",
                c.lr_steps - b.lr_steps,
                cycles,
                1,
            ));
            self.violations.extend(check_scalars_equal(
                Identity::CensusSteps,
                cycle,
                "rebuild_plus_reuse",
                rebuilds as i128,
                (c.steps - b.steps) as i128,
            ));
            // Modeled communication is exactly linear in the metered step
            // counts (cumulative from counter zero, so the identity also
            // survives checkpoint restore, which carries counters).
            let links = sim
                .pipeline
                .rank_set()
                .map_or(0, |rs| rs.plan.total_links()) as u64;
            for (label, counter) in [
                ("import_messages", c.import_messages),
                ("reduce_messages", c.reduce_messages),
            ] {
                self.violations.extend(check_counter_linear(
                    Identity::CensusComm,
                    cycle,
                    label,
                    counter,
                    c.steps,
                    links,
                ));
            }
            if let Some([halo_msgs, halo_bytes, fft_msgs, fft_bytes]) =
                sim.pipeline.mesh_lr_step_rates()
            {
                for (label, counter, rate) in [
                    ("mesh_halo_messages", c.mesh_halo_messages, halo_msgs),
                    ("mesh_halo_bytes", c.mesh_halo_bytes, halo_bytes),
                    ("fft_messages", c.fft_messages, fft_msgs),
                    ("fft_bytes", c.fft_bytes, fft_bytes),
                ] {
                    self.violations.extend(check_counter_linear(
                        Identity::CensusComm,
                        cycle,
                        label,
                        counter,
                        c.lr_steps,
                        rate,
                    ));
                }
            }
        } else {
            // Single rank: no exchange metering, but the match cache still
            // classifies every range-limited evaluation.
            self.violations.extend(check_counter_linear(
                Identity::CensusSteps,
                cycle,
                "rebuild_plus_reuse_per_cycle",
                rebuilds,
                cycles,
                k,
            ));
            for (label, counter) in [
                ("steps", c.steps - b.steps),
                ("lr_steps", c.lr_steps - b.lr_steps),
            ] {
                self.violations.extend(check_counter_linear(
                    Identity::CensusSteps,
                    cycle,
                    label,
                    counter,
                    steps_delta,
                    0,
                ));
            }
        }
    }

    /// All violations recorded so far, in sample order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Number of battery samples taken.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Panic with a readable report if any identity failed.
    pub fn assert_clean(&self) {
        if !self.violations.is_empty() {
            let mut msg = format!("{} invariant violation(s):\n", self.violations.len());
            for v in &self.violations {
                msg.push_str(&format!("  {v}\n"));
            }
            panic!("{msg}");
        }
    }
}

/// Max per-axis |Σf| of a force buffer, as f64 (for the momentum budget).
fn axis_abs_max(f: &[[i64; 3]]) -> f64 {
    let mut s = [0i128; 3];
    for w in f {
        for k in 0..3 {
            s[k] += w[k] as i128;
        }
    }
    s.iter().map(|&x| (x as f64).abs()).fold(0.0, f64::max)
}

/// [`CycleObserver`] adapter: constructs the [`Verifier`] lazily on the
/// first observed cycle (the builder hands the observer in before the
/// simulation exists) and samples the battery every observed cycle.
pub struct VerifierObserver {
    cfg: VerifyConfig,
    inner: Option<Verifier>,
}

impl VerifierObserver {
    pub fn new(cfg: VerifyConfig) -> VerifierObserver {
        VerifierObserver { cfg, inner: None }
    }

    /// The verifier, if at least one cycle has been observed.
    pub fn verifier(&self) -> Option<&Verifier> {
        self.inner.as_ref()
    }
}

impl CycleObserver for VerifierObserver {
    fn on_cycle(&mut self, sim: &AntonSimulation) {
        let cfg = self.cfg;
        let v = self
            .inner
            .get_or_insert_with(|| Verifier::with_config(sim, cfg));
        v.sample(sim);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Builder sugar: `.verify_every(n)` installs the invariant battery as the
/// simulation's cycle observer.
pub trait VerifyEveryExt {
    /// Run the full battery every `every` cycles with default bounds.
    fn verify_every(self, every: u64) -> SimulationBuilder;
    /// Run the battery with explicit bounds.
    fn verify_every_with(self, every: u64, cfg: VerifyConfig) -> SimulationBuilder;
}

impl VerifyEveryExt for SimulationBuilder {
    fn verify_every(self, every: u64) -> SimulationBuilder {
        self.verify_every_with(every, VerifyConfig::default())
    }

    fn verify_every_with(self, every: u64, cfg: VerifyConfig) -> SimulationBuilder {
        self.observe_every(every, Box::new(VerifierObserver::new(cfg)))
    }
}

/// The installed verifier of a simulation built with
/// [`VerifyEveryExt::verify_every`], if any cycles have been observed.
pub fn verifier_of(sim: &AntonSimulation) -> Option<&Verifier> {
    sim.observer()
        .and_then(|o| o.as_any().downcast_ref::<VerifierObserver>())
        .and_then(VerifierObserver::verifier)
}

/// Violations recorded by an installed verifier (empty slice if none).
pub fn violations_of(sim: &AntonSimulation) -> &[Violation] {
    verifier_of(sim).map_or(&[], Verifier::violations)
}

/// Assert the simulation carried a verifier, it sampled at least once, and
/// every identity held on every sampled cycle.
pub fn assert_verified(sim: &AntonSimulation) {
    let v = verifier_of(sim)
        .expect("assert_verified: no verifier installed (use .verify_every(n)) or no cycle run");
    assert!(v.samples() > 0, "assert_verified: verifier never sampled");
    v.assert_clean();
}
