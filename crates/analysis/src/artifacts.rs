//! Deterministic paper-artifact tables.
//!
//! A [`Table`] is a schema-versioned grid of typed cells rendered to CSV
//! with *integer-only* formatting: fixed-point values are carried as
//! micro-unit `i128` words and printed with exactly six decimals by
//! integer division, so the byte stream never depends on libc locale,
//! float formatting, or platform rounding. CI regenerates the checked-in
//! `results/TABLE_*.csv` files from the benchmark JSON artifacts and
//! fails on any byte of drift.

use std::fmt::Write as _;

/// Schema tag stamped into every rendered CSV header. Bump when column
/// meaning changes; adding a new table does not require a bump.
pub const TABLE_SCHEMA: &str = "anton-tables/v1";

/// One typed cell. All variants render through integer formatting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Cell {
    /// Plain integer.
    Int(i128),
    /// Fixed-point micro-units: rendered as `whole.micro6` with exactly
    /// six decimal digits (e.g. `1500000` → `1.500000`).
    Fixed6(i128),
    /// Hex word (checksums), rendered `0x0123456789abcdef`.
    Hex(u64),
    /// Verbatim text; must not contain CSV structure characters.
    Text(String),
}

impl Cell {
    pub fn text(s: impl Into<String>) -> Cell {
        Cell::Text(s.into())
    }

    fn render(&self, out: &mut String) {
        match self {
            Cell::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Cell::Fixed6(micro) => {
                let sign = if *micro < 0 { "-" } else { "" };
                let mag = micro.unsigned_abs();
                let _ = write!(out, "{sign}{}.{:06}", mag / 1_000_000, mag % 1_000_000);
            }
            Cell::Hex(v) => {
                let _ = write!(out, "0x{v:016x}");
            }
            Cell::Text(s) => {
                assert!(
                    !s.contains([',', '"', '\n', '\r']),
                    "Text cell contains CSV structure characters: {s:?}"
                );
                out.push_str(s);
            }
        }
    }
}

/// Convert a finite f64 into micro-unit words for [`Cell::Fixed6`]. The
/// *caller* is responsible for only passing values that are themselves
/// deterministic (model outputs, exact counters) — never wall-clock
/// measurements.
pub fn micro_from_f64(v: f64) -> i128 {
    assert!(v.is_finite(), "artifact cell must be finite, got {v}");
    (v * 1e6).round() as i128
}

/// A schema-versioned table with a fixed column order.
#[derive(Clone, Debug)]
pub struct Table {
    /// Artifact name, e.g. `TABLE_2` (becomes `results/TABLE_2.csv`).
    pub name: &'static str,
    /// Human title rendered as a header comment.
    pub title: &'static str,
    pub columns: Vec<&'static str>,
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    pub fn new(name: &'static str, title: &'static str, columns: &[&'static str]) -> Table {
        Table {
            name,
            title,
            columns: columns.to_vec(),
            rows: Vec::new(),
        }
    }

    /// Append a row; arity is checked against the header.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "{}: row arity {} != {} columns",
            self.name,
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Render to CSV bytes: `#`-prefixed schema/title comments, a header
    /// row, then data rows. `\n` line endings, no trailing spaces, no
    /// locale-dependent formatting anywhere.
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} {}", TABLE_SCHEMA, self.name);
        let _ = writeln!(out, "# {}", self.title);
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                cell.render(&mut out);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed6_renders_exact_six_decimals() {
        let mut s = String::new();
        Cell::Fixed6(1_500_000).render(&mut s);
        assert_eq!(s, "1.500000");
        s.clear();
        Cell::Fixed6(-42).render(&mut s);
        assert_eq!(s, "-0.000042");
        s.clear();
        Cell::Fixed6(0).render(&mut s);
        assert_eq!(s, "0.000000");
    }

    #[test]
    fn micro_conversion_rounds_half_away_from_zero() {
        assert_eq!(micro_from_f64(39.2), 39_200_000);
        assert_eq!(micro_from_f64(-0.0000015), -2);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_cells_are_rejected() {
        micro_from_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_is_rejected() {
        let mut t = Table::new("TABLE_X", "x", &["a", "b"]);
        t.push_row(vec![Cell::Int(1)]);
    }

    #[test]
    fn render_is_stable_and_newline_terminated() {
        let mut t = Table::new("TABLE_X", "demo", &["name", "n", "us", "sum"]);
        t.push_row(vec![
            Cell::text("water"),
            Cell::Int(1020),
            Cell::Fixed6(39_200_000),
            Cell::Hex(0xdeadbeef),
        ]);
        let csv = t.render_csv();
        assert_eq!(
            csv,
            "# anton-tables/v1 TABLE_X\n# demo\nname,n,us,sum\nwater,1020,39.200000,0x00000000deadbeef\n"
        );
        assert_eq!(t.render_csv(), csv);
    }

    #[test]
    #[should_panic(expected = "CSV structure")]
    fn text_cells_reject_structure_characters() {
        let mut s = String::new();
        Cell::text("a,b").render(&mut s);
    }
}
