//! Battery properties against live engines: every closed-form identity
//! holds on every cycle of random waterboxes across decompositions and
//! thread counts, and a corrupted force word / velocity word / counter is
//! detected with the right [`Identity`] kind.

use anton_analysis::battery::{assert_verified, verifier_of, Verifier, VerifyEveryExt};
use anton_analysis::verify::{check_census_invariance, Identity};
use anton_core::{AntonSimulation, Decomposition};
use anton_forcefield::water::TIP3P;
use anton_geometry::PeriodicBox;
use anton_machine::perf::ExchangeCounters;
use anton_systems::waterbox::pure_water_topology;
use anton_systems::{RunParams, System};

fn water_system(n: usize, seed: u64) -> System {
    let pbox = PeriodicBox::cubic(18.0);
    let (top, positions) = pure_water_topology(&pbox, &TIP3P, n, seed);
    System {
        name: "verify-water".into(),
        pbox,
        topology: top,
        positions,
        params: RunParams::paper(7.5, 16),
    }
}

fn verified_sim(n: usize, seed: u64, decomp: Decomposition, threads: usize) -> AntonSimulation {
    AntonSimulation::builder(water_system(n, seed))
        .velocities_from_temperature(300.0, seed ^ 0x5eed)
        .decomposition(decomp)
        .threads(threads)
        .verify_every(1)
        .build()
}

/// The identity kinds of all recorded violations.
fn kinds(v: &Verifier) -> Vec<Identity> {
    v.violations().iter().map(|x| x.identity).collect()
}

/// Tentpole property: the full battery is clean every cycle for every
/// decomposition × thread combination, and the trajectory-function
/// counters are identical across all of them.
#[test]
fn battery_clean_across_decompositions_and_threads() {
    const CYCLES: usize = 3;
    for (n, seed) in [(55, 3), (60, 9)] {
        let mut census: Vec<(String, ExchangeCounters)> = Vec::new();
        for (decomp, threads) in [
            (Decomposition::SingleRank, 1),
            (Decomposition::Nodes(1), 1),
            (Decomposition::Nodes(8), 1),
            (Decomposition::Nodes(8), 4),
            (Decomposition::Nodes(64), 4),
        ] {
            let mut sim = verified_sim(n, seed, decomp, threads);
            sim.run_cycles(CYCLES);
            assert_verified(&sim);
            let v = verifier_of(&sim).unwrap();
            assert_eq!(v.samples(), CYCLES as u64, "{decomp:?} x{threads}");
            census.push((format!("{decomp:?} x{threads}"), sim.pipeline.counters));
        }
        let (ref_name, ref_counters) = census[0].clone();
        for (name, counters) in &census[1..] {
            let diff = check_census_invariance(CYCLES as u64, &ref_counters, counters);
            assert!(
                diff.is_empty(),
                "census differs between {ref_name} and {name}: {diff:?}"
            );
        }
    }
}

#[test]
fn corrupted_force_word_detected_as_force_consistency() {
    let mut sim = verified_sim(55, 3, Decomposition::SingleRank, 1);
    sim.run_cycles(2);
    let mut v = Verifier::new(&sim);
    v.sample(&sim);
    assert!(v.violations().is_empty(), "{:?}", v.violations());

    sim.short_forces_mut().f[5][1] ^= 1;
    v.sample(&sim);
    let hit = v
        .violations()
        .iter()
        .find(|x| x.identity == Identity::ForceConsistency)
        .expect("flipped force bit must fail ForceConsistency");
    assert_eq!(hit.label, "short_forces");
    assert_eq!(hit.index, 5 * 3 + 1);
    assert_eq!((hit.lhs - hit.rhs).abs(), 1);
}

#[test]
fn corrupted_long_force_word_detected_as_force_consistency() {
    let mut sim = verified_sim(55, 3, Decomposition::Nodes(8), 2);
    sim.run_cycles(2);
    let mut v = Verifier::new(&sim);
    sim.long_forces_mut().f[0][2] = sim.long_forces().f[0][2].wrapping_add(7);
    v.sample(&sim);
    let hit = v
        .violations()
        .iter()
        .find(|x| x.identity == Identity::ForceConsistency)
        .expect("corrupted long-range word must fail ForceConsistency");
    assert_eq!(hit.label, "long_forces");
    assert_eq!(hit.index, 2);
}

#[test]
fn corrupted_velocity_word_detected_as_momentum_and_energy() {
    let mut sim = verified_sim(60, 9, Decomposition::SingleRank, 1);
    sim.run_cycles(2);
    let mut v = Verifier::new(&sim);
    v.sample(&sim);
    assert!(v.violations().is_empty(), "{:?}", v.violations());

    // A single flipped high bit in one velocity word: far outside the
    // closed-form rounding envelope, and a huge kinetic-energy jump.
    sim.state.velocities[4][0] += 1 << 40;
    v.sample(&sim);
    let k = kinds(&v);
    assert!(k.contains(&Identity::MomentumEnvelope), "{k:?}");
    assert!(k.contains(&Identity::EnergyDrift), "{k:?}");
    // Forces are position-only: the corruption must NOT leak there.
    assert!(!k.contains(&Identity::ForceConsistency), "{k:?}");
}

#[test]
fn displaced_position_detected_as_force_consistency() {
    let mut sim = verified_sim(55, 3, Decomposition::SingleRank, 1);
    sim.run_cycles(2);
    let mut v = Verifier::new(&sim);
    sim.state.set_position_frac(3, [0.111, 0.222, 0.333]);
    v.sample(&sim);
    assert!(
        kinds(&v).contains(&Identity::ForceConsistency),
        "stale stored forces after a position edit must fail consistency: {:?}",
        v.violations()
    );
}

#[test]
fn corrupted_comm_counter_detected_as_census_comm() {
    let mut sim = verified_sim(55, 3, Decomposition::Nodes(8), 1);
    sim.run_cycles(2);
    let mut v = Verifier::new(&sim);
    v.sample(&sim);
    assert!(v.violations().is_empty(), "{:?}", v.violations());

    sim.pipeline.counters.import_messages += 1;
    v.sample(&sim);
    let hit = v
        .violations()
        .iter()
        .find(|x| x.identity == Identity::CensusComm)
        .expect("import_messages skew must fail CensusComm");
    assert_eq!(hit.label, "import_messages");
    assert_eq!(hit.lhs, hit.rhs + 1);
}

#[test]
fn corrupted_lr_counter_detected_as_census() {
    let mut sim = verified_sim(55, 3, Decomposition::Nodes(8), 1);
    sim.run_cycles(2);
    let mut v = Verifier::new(&sim);
    sim.pipeline.counters.lr_steps += 1;
    v.sample(&sim);
    let k = kinds(&v);
    // The skewed lr_steps breaks both the per-cycle step census and the
    // mesh/FFT traffic linearity.
    assert!(k.contains(&Identity::CensusSteps), "{k:?}");
    assert!(k.contains(&Identity::CensusComm), "{k:?}");
}

#[test]
fn corrupted_rebuild_counter_detected_as_census_steps() {
    let mut sim = verified_sim(55, 3, Decomposition::SingleRank, 1);
    sim.run_cycles(2);
    let mut v = Verifier::new(&sim);
    sim.pipeline.counters.rebuild_steps += 1;
    v.sample(&sim);
    let hit = v
        .violations()
        .iter()
        .find(|x| x.identity == Identity::CensusSteps)
        .expect("rebuild_steps skew must fail CensusSteps");
    assert_eq!(hit.label, "rebuild_plus_reuse_per_cycle");
}

#[test]
fn census_invariance_detects_cross_run_pair_count_skew() {
    let mut sim = verified_sim(55, 3, Decomposition::SingleRank, 1);
    sim.run_cycles(2);
    let mut skewed = sim.pipeline.counters;
    skewed.match_pairs += 1;
    let diff = check_census_invariance(2, &sim.pipeline.counters, &skewed);
    assert_eq!(diff.len(), 1);
    assert_eq!(diff[0].label, "match_pairs");
}
