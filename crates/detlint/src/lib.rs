//! # detlint — determinism static analysis for the Anton workspace
//!
//! Bitwise reproducibility is a core claim of the Anton design (DESIGN.md):
//! the simulation path does all accumulation in two's-complement fixed point,
//! so results are independent of summation order, thread count and host.
//! That property is easy to destroy with one stray `f64`, one `HashMap`
//! iteration, or one `Instant::now()` branch. detlint is the tier-1 gate
//! that keeps those out.
//!
//! ## Rules
//!
//! | id | policed code | what it flags |
//! |----|--------------|---------------|
//! | D1 | fixed-point core + bit-exact state ([`policy::D1_FILES`]) | float literals, `f32`/`f64` |
//! | D2 | deterministic crates + `systems` | `HashMap`/`HashSet` (unordered iteration) |
//! | D3 | `fixpoint` outside `rounding.rs` | lossy integer `as` casts |
//! | D4 | deterministic crates | `Instant`, `SystemTime`, thread-topology reads |
//! | D5 | deterministic crates | rayon reductions (`par_iter().sum()` etc.) |
//! | D6 | workspace call graph | simulation-root call chains reaching a nondeterminism source with no audited boundary in between |
//! | D7 | deterministic crates outside `fixpoint` | unchecked `+ - * <<` on raw fixed-point values (`.raw()`) |
//! | D8 | `ckpt` + `trace` payload paths | native-endian byte serialization (`to_ne_bytes`, `transmute`, `as_bytes`, ...) |
//! | META | everywhere | malformed detlint directives |
//!
//! D1–D5, D7, D8 are per-file lexical rules ([`lint_source`]). D6 is the
//! workspace taint pass ([`lint_sources`]): it parses every deterministic
//! crate into a call graph ([`graph`]), seeds taint at D1/D4-class raw
//! sources and at nondeterminism-class `allow` sites, and propagates along
//! call edges from the `core::engine` cycle roots ([`taint`]). A reachable
//! tainted item is reported with its full call chain.
//!
//! `#[cfg(test)]` regions are exempt, as are `tests/`, `benches/`,
//! `examples/` and `src/bin` trees: the rules police shipped simulation
//! code (`crates/<c>/src/**`) only.
//!
//! ## Escape hatches
//!
//! * `// detlint::allow(D4, reason = "...")` — suppresses one rule on the
//!   directive's line and the next code line. The reason is mandatory.
//! * `// detlint::boundary(reason = "...")` — declares the next item an
//!   audited quantization boundary: D1 and D3 are permitted inside it,
//!   and the D6 taint pass treats it as an absorber (taint neither seeds
//!   inside it nor flows through it). This is how `from_f64`/`to_f64`
//!   conversions and audited observability clocks are marked.
//!
//! Malformed directives (unknown rule id, missing reason) are themselves
//! violations (META), so a typo cannot silently disable a rule.

pub mod explain;
pub mod graph;
pub mod lexer;
pub mod lint;
pub mod policy;
pub mod report;
pub mod rules;
pub mod taint;

pub use lint::{lint_sources, lint_workspace, WorkspaceLint};
pub use rules::{lint_source, Allow, Boundary, FileLint, Violation};
