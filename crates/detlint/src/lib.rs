//! # detlint — determinism static analysis for the Anton workspace
//!
//! Bitwise reproducibility is a core claim of the Anton design (DESIGN.md):
//! the simulation path does all accumulation in two's-complement fixed point,
//! so results are independent of summation order, thread count and host.
//! That property is easy to destroy with one stray `f64`, one `HashMap`
//! iteration, or one `Instant::now()` branch. detlint is the tier-1 gate
//! that keeps those out.
//!
//! ## Rules
//!
//! | id | policed code | what it flags |
//! |----|--------------|---------------|
//! | D1 | fixed-point core + bit-exact state ([`policy::D1_FILES`]) | float literals, `f32`/`f64` |
//! | D2 | deterministic crates + `systems` | `HashMap`/`HashSet` (unordered iteration) |
//! | D3 | `fixpoint` outside `rounding.rs` | lossy integer `as` casts |
//! | D4 | deterministic crates | `Instant`, `SystemTime`, thread-topology reads |
//! | D5 | deterministic crates | rayon reductions (`par_iter().sum()` etc.) |
//! | META | everywhere | malformed detlint directives |
//!
//! `#[cfg(test)]` regions are exempt, as are `tests/`, `benches/`,
//! `examples/` and `src/bin` trees: the rules police shipped simulation
//! code (`crates/<c>/src/**`) only.
//!
//! ## Escape hatches
//!
//! * `// detlint::allow(D4, reason = "...")` — suppresses one rule on the
//!   directive's line and the next code line. The reason is mandatory.
//! * `// detlint::boundary(reason = "...")` — declares the next item an
//!   audited quantization boundary: D1 and D3 are permitted inside it.
//!   This is how `from_f64`/`to_f64` conversions at the edge of the
//!   fixed-point world are marked.
//!
//! Malformed directives (unknown rule id, missing reason) are themselves
//! violations (META), so a typo cannot silently disable a rule.

pub mod lexer;
pub mod lint;
pub mod policy;
pub mod report;
pub mod rules;

pub use lint::{lint_workspace, WorkspaceLint};
pub use rules::{lint_source, Allow, Boundary, FileLint, Violation};
