//! Lightweight workspace item/call graph for the cross-crate taint pass.
//!
//! detlint stays zero-dependency, so this is not a type-checked resolver:
//! it extracts `fn` definitions (with their `impl` owner type), call sites
//! (bare `name(...)`, qualified `path::name(...)`, method `.name(...)`),
//! `struct`/`enum` item spans, and `use` edges between workspace crates —
//! all from the same token stream the per-file rules run on. Calls are
//! resolved by name with a deterministic preference order (matching owner
//! type, then matching module, then same file, same crate, used crates);
//! calls into `std` or vendored crates resolve to nothing and simply do
//! not carry taint. The result is deliberately conservative: a false edge
//! can only *add* taint, never hide it, and every D6 report prints the
//! full chain so a spurious edge is visible and cheap to cut.

use crate::lexer::{Tok, TokKind};
use crate::policy;
use std::collections::{BTreeMap, BTreeSet};

/// A `fn` definition in a deterministic crate.
#[derive(Clone, Debug)]
pub struct FnDef {
    pub name: String,
    /// `impl` self type the fn lives in, if any (`TraceClock` for both
    /// `impl TraceClock` and `impl Default for TraceClock`).
    pub owner: Option<String>,
    /// Index into [`Graph::files`].
    pub file: usize,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Line of the `}` (or `;`) ending the item.
    pub end_line: u32,
}

/// One call site inside a [`FnDef`] body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Index into [`Graph::defs`] of the enclosing (innermost) fn.
    pub caller: usize,
    pub callee: String,
    /// Last path segment before `::callee(...)`, if the call is qualified.
    pub qualifier: Option<String>,
    /// True for `.callee(...)` method syntax.
    pub is_method: bool,
    pub line: u32,
    pub col: u32,
}

/// A `struct`/`enum` item span, used to attach taint seeds that sit inside
/// a type definition (e.g. an allowed nondeterministic field) to every
/// method of that type.
#[derive(Clone, Debug)]
pub struct TypeSpan {
    pub name: String,
    pub file: usize,
    pub line: u32,
    pub end_line: u32,
}

#[derive(Debug, Default)]
pub struct Graph {
    /// Workspace-relative paths of the files in the graph, insertion order.
    pub files: Vec<String>,
    /// Crate name of each file (parallel to `files`).
    pub file_crates: Vec<String>,
    pub defs: Vec<FnDef>,
    pub calls: Vec<CallSite>,
    pub types: Vec<TypeSpan>,
    /// crate -> workspace crates it `use`s (via `anton_<c>` or bare paths).
    pub uses: BTreeMap<String, BTreeSet<String>>,
    /// fn name -> def indices, for resolution.
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Keywords that can directly precede `(` without being calls.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "in", "move", "as",
    "struct", "enum", "trait", "mod", "impl", "where", "use", "pub", "unsafe", "dyn", "ref",
];

impl Graph {
    /// Add one already-lexed file to the graph. `test_regions` are the
    /// `#[cfg(test)]` line spans from the rule pass: defs and calls inside
    /// them are invisible to the taint analysis, like every other rule.
    pub fn add_file(&mut self, rel: &str, toks: &[Tok], test_regions: &[(u32, u32)]) {
        let crate_name = policy::crate_of(rel).unwrap_or("").to_string();
        let file_idx = self.files.len();
        self.files.push(rel.to_string());
        self.file_crates.push(crate_name.clone());

        let code: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let in_tests = |line: u32| test_regions.iter().any(|&(a, b)| (a..=b).contains(&line));

        // `use` edges: first path segment after `use`, normalized to a
        // workspace crate name when it is an `anton_<c>` alias.
        for i in 0..code.len() {
            if is_ident(&code, i, "use") {
                if let Some(seg) = code.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                    if let Some(c) = crate_alias(&seg.text) {
                        self.uses
                            .entry(crate_name.clone())
                            .or_default()
                            .insert(c.to_string());
                    }
                }
            }
        }

        // `impl` spans with their self type.
        let impls = impl_spans(&code);

        // `struct` / `enum` item spans.
        for i in 0..code.len() {
            if (is_ident(&code, i, "struct") || is_ident(&code, i, "enum"))
                && code.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            {
                if in_tests(code[i].line) {
                    continue;
                }
                let end = item_end(&code, i + 2).unwrap_or(code[i + 1].line);
                self.types.push(TypeSpan {
                    name: code[i + 1].text.clone(),
                    file: file_idx,
                    line: code[i].line,
                    end_line: end,
                });
            }
        }

        // `fn` definitions. Spans are recorded as token-index ranges first
        // so call sites can be attributed to the innermost enclosing fn.
        let first_def = self.defs.len();
        let mut def_spans: Vec<(usize, usize)> = Vec::new();
        for i in 0..code.len() {
            if is_ident(&code, i, "fn") && code.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            {
                if in_tests(code[i].line) {
                    continue;
                }
                let end_idx = item_end_idx(&code, i + 2).unwrap_or(code.len() - 1);
                let owner = impls
                    .iter()
                    .filter(|im| im.start < i && i < im.end)
                    .max_by_key(|im| im.start)
                    .map(|im| im.owner.clone());
                self.defs.push(FnDef {
                    name: code[i + 1].text.clone(),
                    owner,
                    file: file_idx,
                    line: code[i].line,
                    end_line: code[end_idx].line,
                });
                def_spans.push((i, end_idx));
            }
        }
        for (d, _) in def_spans.iter().enumerate() {
            let idx = first_def + d;
            self.by_name
                .entry(self.defs[idx].name.clone())
                .or_default()
                .push(idx);
        }

        // Call sites: `name (` that is not a definition, macro, or keyword.
        for i in 0..code.len() {
            let t = code[i];
            if t.kind != TokKind::Ident || !is_punct(&code, i + 1, "(") {
                continue;
            }
            if NON_CALL_IDENTS.contains(&t.text.as_str()) {
                continue;
            }
            // `fn name(` is the definition itself; `name!(...)` never
            // reaches here because `!` sits between name and `(`.
            if i > 0 && code[i - 1].kind == TokKind::Ident && code[i - 1].text == "fn" {
                continue;
            }
            if in_tests(t.line) {
                continue;
            }
            let Some(caller) = def_spans
                .iter()
                .enumerate()
                .filter(|(_, &(s, e))| s < i && i <= e)
                .max_by_key(|(_, &(s, _))| s)
                .map(|(d, _)| first_def + d)
            else {
                continue; // top-level expression position; not simulation code
            };
            let is_method = i > 0 && is_punct(&code, i - 1, ".");
            let qualifier = if i >= 3
                && is_punct(&code, i - 1, ":")
                && is_punct(&code, i - 2, ":")
                && code[i - 3].kind == TokKind::Ident
            {
                Some(code[i - 3].text.clone())
            } else {
                None
            };
            self.calls.push(CallSite {
                caller,
                callee: t.text.clone(),
                qualifier,
                is_method,
                line: t.line,
                col: t.col,
            });
        }
    }

    /// Resolve a call site to candidate definitions, most specific first.
    /// Deterministic: candidate lists come from sorted maps and are pushed
    /// in file insertion order (the caller adds files in sorted order).
    pub fn resolve(&self, c: &CallSite) -> Vec<usize> {
        let Some(cands) = self.by_name.get(&c.callee) else {
            return Vec::new();
        };
        let caller = &self.defs[c.caller];
        let caller_crate = &self.file_crates[caller.file];

        if let Some(q) = &c.qualifier {
            let q = if q == "Self" {
                match &caller.owner {
                    Some(o) => o.clone(),
                    None => return Vec::new(),
                }
            } else {
                q.clone()
            };
            if q == "crate" || q == "self" || q == "super" {
                // Path-qualified but still inside the caller's crate.
                let same: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&d| self.file_crates[self.defs[d].file] == *caller_crate)
                    .collect();
                return same;
            }
            // 1. Inherent/trait impl owner match: `TraceClock::now_ns`.
            let owned: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&d| self.defs[d].owner.as_deref() == Some(q.as_str()))
                .collect();
            if !owned.is_empty() {
                return owned;
            }
            // 2. Module match: `clock::now_ns` -> crates/trace/src/clock.rs.
            let module: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&d| file_stem(&self.files[self.defs[d].file]) == q)
                .collect();
            if !module.is_empty() {
                return module;
            }
            // 3. Crate match: `anton_trace::merge(...)`.
            if let Some(cr) = crate_alias(&q) {
                let in_crate: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&d| self.file_crates[self.defs[d].file] == cr)
                    .collect();
                return in_crate;
            }
            // Unknown qualifier: a std/vendored type. Not a workspace call.
            return Vec::new();
        }

        // Unqualified / method call: same file, then same crate, then the
        // crates this crate uses.
        let same_file: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&d| self.defs[d].file == caller.file)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&d| self.file_crates[self.defs[d].file] == *caller_crate)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        let empty = BTreeSet::new();
        let used = self.uses.get(caller_crate).unwrap_or(&empty);
        cands
            .iter()
            .copied()
            .filter(|&d| used.contains(&self.file_crates[self.defs[d].file]))
            .collect()
    }

    /// Innermost def containing `line` of file `file`, if any.
    pub fn def_at(&self, file: usize, line: u32) -> Option<usize> {
        self.defs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.file == file && (d.line..=d.end_line).contains(&line))
            .max_by_key(|(_, d)| d.line)
            .map(|(i, _)| i)
    }

    /// Human-readable label for a def: `Owner::name` or `name`.
    pub fn label(&self, d: usize) -> String {
        let def = &self.defs[d];
        match &def.owner {
            Some(o) => format!("{o}::{}", def.name),
            None => def.name.clone(),
        }
    }
}

struct ImplSpan {
    owner: String,
    /// Token index of the `impl` keyword and of the closing `}`.
    start: usize,
    end: usize,
}

/// Parse `impl` blocks: `impl [<...>] Type [for Type] [where ...] { ... }`.
/// The owner is the *self* type: the last angle-depth-0 identifier of the
/// path after `for` (trait impls), else after the generics (inherent).
fn impl_spans(code: &[&Tok]) -> Vec<ImplSpan> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !is_ident(code, i, "impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Skip leading generic parameters.
        if is_punct(code, j, "<") {
            let mut angle = 0i32;
            while j < code.len() {
                if is_punct(code, j, "<") {
                    angle += 1;
                } else if is_punct(code, j, ">") {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Walk to the opening `{`, tracking the last angle-depth-0 ident
        // seen, resetting at `for` so the self type wins for trait impls.
        let mut angle = 0i32;
        let mut owner: Option<String> = None;
        let mut body_open = None;
        while j < code.len() {
            let t = code[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "{" if angle <= 0 => {
                        body_open = Some(j);
                        break;
                    }
                    ";" if angle <= 0 => break,
                    _ => {}
                }
            } else if t.kind == TokKind::Ident && angle == 0 {
                match t.text.as_str() {
                    "for" => owner = None,
                    "where" => break,
                    _ => owner = Some(t.text.clone()),
                }
            }
            j += 1;
        }
        // A `where` clause may sit between the type and the body.
        if body_open.is_none() {
            while j < code.len() && !is_punct(code, j, "{") {
                j += 1;
            }
            if j < code.len() {
                body_open = Some(j);
            }
        }
        let (Some(owner), Some(open)) = (owner, body_open) else {
            i += 1;
            continue;
        };
        let mut depth = 0i32;
        let mut end = code.len() - 1;
        for (k, t) in code.iter().enumerate().skip(open) {
            if t.kind == TokKind::Punct {
                if t.text == "{" {
                    depth += 1;
                } else if t.text == "}" {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                }
            }
        }
        out.push(ImplSpan {
            owner,
            start: i,
            end,
        });
        i += 1;
    }
    out
}

/// Token index of the `}` closing the first brace group at or after `from`,
/// or of a `;` at delimiter depth 0 (fn declarations without bodies).
fn item_end_idx(code: &[&Tok], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut opened_brace = false;
    for (k, t) in code.iter().enumerate().skip(from) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" => {
                    depth += 1;
                    opened_brace = true;
                }
                "}" => {
                    depth -= 1;
                    if depth == 0 && opened_brace {
                        return Some(k);
                    }
                }
                ";" if depth == 0 => return Some(k),
                _ => {}
            }
        }
    }
    None
}

fn item_end(code: &[&Tok], from: usize) -> Option<u32> {
    item_end_idx(code, from).map(|k| code[k].line)
}

fn is_punct(code: &[&Tok], i: usize, p: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
}

fn is_ident(code: &[&Tok], i: usize, name: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
}

/// `crates/trace/src/clock.rs` -> `clock`.
fn file_stem(rel: &str) -> &str {
    rel.rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("")
}

/// `anton_trace` / `trace` -> `trace`, for names that are workspace crates.
fn crate_alias(seg: &str) -> Option<&str> {
    let name = seg.strip_prefix("anton_").unwrap_or(seg);
    policy::DET_CRATES.iter().copied().find(|&c| c == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph_of(files: &[(&str, &str)]) -> Graph {
        let mut g = Graph::default();
        for (rel, src) in files {
            let toks = lex(src);
            g.add_file(rel, &toks, &[]);
        }
        g
    }

    #[test]
    fn extracts_defs_owners_and_spans() {
        let g = graph_of(&[(
            "crates/trace/src/clock.rs",
            "pub struct Clock { t: u64 }\n\
             impl Clock {\n    pub fn now(&self) -> u64 {\n        self.t\n    }\n}\n\
             impl Default for Clock {\n    fn default() -> Clock {\n        tick()\n    }\n}\n\
             fn tick() -> Clock { Clock { t: 0 } }\n",
        )]);
        let names: Vec<String> = (0..g.defs.len()).map(|d| g.label(d)).collect();
        assert_eq!(names, ["Clock::now", "Clock::default", "tick"]);
        assert_eq!(g.types.len(), 1);
        assert_eq!(g.types[0].name, "Clock");
        assert!(g.defs[0].end_line > g.defs[0].line);
    }

    #[test]
    fn resolves_method_calls_across_crates_via_use() {
        let g = graph_of(&[
            (
                "crates/trace/src/clock.rs",
                "pub struct Clock;\nimpl Clock {\n    pub fn now_ns(&self) -> u64 { 0 }\n}\n",
            ),
            (
                "crates/core/src/engine.rs",
                "use anton_trace::Clock;\n\
                 pub fn run_cycle(c: &Clock) -> u64 {\n    c.now_ns()\n}\n",
            ),
        ]);
        let call = g.calls.iter().find(|c| c.callee == "now_ns").unwrap();
        let resolved = g.resolve(call);
        assert_eq!(resolved.len(), 1);
        assert_eq!(g.label(resolved[0]), "Clock::now_ns");
    }

    #[test]
    fn qualified_calls_respect_owner_and_unknown_qualifiers_drop() {
        let g = graph_of(&[
            (
                "crates/trace/src/clock.rs",
                "pub struct Clock;\nimpl Clock {\n    pub fn new() -> Clock { Clock }\n}\n",
            ),
            (
                "crates/core/src/engine.rs",
                "use anton_trace::Clock;\n\
                 pub fn a() { let _c = Clock::new(); }\n\
                 pub fn b() { let _v: Vec<u32> = Vec::new(); }\n",
            ),
        ]);
        let calls: Vec<&CallSite> = g.calls.iter().filter(|c| c.callee == "new").collect();
        assert_eq!(calls.len(), 2);
        let by_q = |q: &str| calls.iter().find(|c| c.qualifier.as_deref() == Some(q));
        assert_eq!(g.resolve(by_q("Clock").unwrap()).len(), 1);
        assert_eq!(g.resolve(by_q("Vec").unwrap()).len(), 0);
    }

    #[test]
    fn self_qualifier_resolves_to_impl_owner() {
        let g = graph_of(&[(
            "crates/core/src/engine.rs",
            "pub struct Sim;\nimpl Sim {\n    fn kick() {}\n    pub fn run_cycle(&self) { Self::kick(); }\n}\n",
        )]);
        let call = g.calls.iter().find(|c| c.callee == "kick").unwrap();
        assert_eq!(call.qualifier.as_deref(), Some("Self"));
        let r = g.resolve(call);
        assert_eq!(r.len(), 1);
        assert_eq!(g.label(r[0]), "Sim::kick");
    }

    #[test]
    fn cfg_test_defs_and_calls_are_invisible() {
        let src = "pub fn shipped() {}\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() { super::shipped(); }\n}\n";
        let toks = lex(src);
        let mut g = Graph::default();
        g.add_file("crates/core/src/engine.rs", &toks, &[(2, 5)]);
        assert_eq!(g.defs.len(), 1);
        assert!(g.calls.is_empty());
    }
}
