//! Deterministic machine-readable report.
//!
//! The JSON is byte-stable across runs and hosts: entries are fully sorted,
//! paths are workspace-relative with forward slashes, and there are no
//! timestamps or absolute paths. CI diffs it against a checked-in baseline.

use crate::lint::WorkspaceLint;
use crate::policy;
use std::fmt::Write as _;

pub const SCHEMA: &str = "detlint-report/v1";

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub fn to_json(ws: &WorkspaceLint) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": ");
    esc(SCHEMA, &mut s);
    s.push_str(",\n");
    let _ = writeln!(s, "  \"files_scanned\": {},", ws.files.len());

    s.push_str("  \"rules\": {\n");
    for (i, rule) in policy::ALL_RULES.iter().enumerate() {
        let _ = write!(s, "    \"{rule}\": ");
        esc(policy::rule_description(rule), &mut s);
        s.push_str(if i + 1 < policy::ALL_RULES.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  },\n");

    s.push_str("  \"summary\": {\n");
    let _ = writeln!(s, "    \"total_violations\": {},", ws.violations.len());
    s.push_str("    \"by_rule\": {");
    for (i, rule) in policy::ALL_RULES.iter().enumerate() {
        let n = ws.violations.iter().filter(|v| v.rule == *rule).count();
        let _ = write!(s, "\"{rule}\": {n}");
        if i + 1 < policy::ALL_RULES.len() {
            s.push_str(", ");
        }
    }
    s.push_str("},\n");
    let _ = writeln!(s, "    \"allows\": {},", ws.allows.len());
    let _ = writeln!(s, "    \"boundaries\": {}", ws.boundaries.len());
    s.push_str("  },\n");

    s.push_str("  \"violations\": [");
    for (i, v) in ws.violations.iter().enumerate() {
        s.push_str("\n    {\"rule\": ");
        esc(v.rule, &mut s);
        s.push_str(", \"file\": ");
        esc(&v.file, &mut s);
        let _ = write!(
            s,
            ", \"line\": {}, \"col\": {}, \"message\": ",
            v.line, v.col
        );
        esc(&v.message, &mut s);
        s.push('}');
        if i + 1 < ws.violations.len() {
            s.push(',');
        }
    }
    s.push_str(if ws.violations.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    s.push_str("  \"allows\": [");
    for (i, a) in ws.allows.iter().enumerate() {
        s.push_str("\n    {\"rule\": ");
        esc(a.rule, &mut s);
        s.push_str(", \"file\": ");
        esc(&a.file, &mut s);
        let _ = write!(s, ", \"line\": {}, \"reason\": ", a.line);
        esc(&a.reason, &mut s);
        s.push('}');
        if i + 1 < ws.allows.len() {
            s.push(',');
        }
    }
    s.push_str(if ws.allows.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    s.push_str("  \"boundaries\": [");
    for (i, b) in ws.boundaries.iter().enumerate() {
        s.push_str("\n    {\"file\": ");
        esc(&b.file, &mut s);
        let _ = write!(
            s,
            ", \"line\": {}, \"end_line\": {}, \"reason\": ",
            b.line, b.end_line
        );
        esc(&b.reason, &mut s);
        s.push('}');
        if i + 1 < ws.boundaries.len() {
            s.push(',');
        }
    }
    s.push_str(if ws.boundaries.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });

    s.push_str("}\n");
    s
}
