//! `detlint explain <rule>`: self-documenting rules for CI logs.
//!
//! Each rule carries a rationale (why the determinism claim needs it) and
//! a minimal pass/fail example pair embedded at compile time from the same
//! fixture files the rule tests run against — so the examples can never
//! drift from what the engine actually flags.

use crate::policy;

pub struct RuleDoc {
    pub rule: &'static str,
    pub rationale: &'static str,
    /// (fixture name, contents) that the rule flags.
    pub fail: Option<(&'static str, &'static str)>,
    /// (fixture name, contents) showing the sanctioned shape.
    pub pass: Option<(&'static str, &'static str)>,
}

macro_rules! fixture {
    ($name:literal) => {
        Some(($name, include_str!(concat!("../fixtures/", $name))))
    };
}

pub fn rule_doc(rule: &str) -> Option<RuleDoc> {
    let doc = match rule {
        "D1" => RuleDoc {
            rule: "D1",
            rationale: "The bit-exact core accumulates in two's-complement fixed point so \
                        results are independent of summation order, thread count and host. One \
                        f64 on that path reintroduces rounding that depends on evaluation \
                        order. Floats may only appear inside `detlint::boundary` items — the \
                        audited quantization edges where values enter or leave fixed point.",
            fail: fixture!("fail_d1_float.rs"),
            pass: fixture!("pass_boundary.rs"),
        },
        "D2" => RuleDoc {
            rule: "D2",
            rationale: "HashMap/HashSet iteration order is randomized per process. Any loop \
                        over one feeds state in a host-dependent order; use BTreeMap/BTreeSet \
                        or a sorted Vec so every traversal is reproducible.",
            fail: fixture!("fail_d2_hashmap.rs"),
            pass: fixture!("pass_clean.rs"),
        },
        "D3" => RuleDoc {
            rule: "D3",
            rationale: "Lossy `as` casts truncate silently; in the fixed-point crate every \
                        narrowing must round via the audited rne_shr_* primitives in \
                        rounding.rs (the one module D3 exempts) so the round-to-nearest/even \
                        contract of the ASIC is preserved everywhere.",
            fail: fixture!("fail_d3_cast.rs"),
            pass: fixture!("pass_clean.rs"),
        },
        "D4" => RuleDoc {
            rule: "D4",
            rationale: "Wall-clock and thread-topology reads (Instant, SystemTime, \
                        available_parallelism, ...) make control flow depend on the host, not \
                        the simulation state. The sanctioned escape is an `allow(D4)` whose \
                        reason proves the value never reaches simulation state — and the D6 \
                        taint pass then checks that proof holds across calls.",
            fail: fixture!("fail_d4_instant.rs"),
            pass: fixture!("pass_allowed.rs"),
        },
        "D5" => RuleDoc {
            rule: "D5",
            rationale: "Parallel reductions (par_iter().sum(), channel drains into fold) \
                        combine in work-stealing or scheduling order — non-associative over \
                        floats. The sanctioned pattern is per-rank private buffers merged \
                        serially in fixed rank order.",
            fail: fixture!("fail_d5_rayon.rs"),
            pass: fixture!("pass_d5_ranks.rs"),
        },
        "D6" => RuleDoc {
            rule: "D6",
            rationale: "Per-file rules cannot see a sanctioned allow(D4) leaking through an \
                        ordinary function call. D6 builds the workspace call graph, seeds \
                        taint at every D1/D4-class source and nondeterminism-class allow \
                        site, and propagates callee-to-caller: a chain from a simulation \
                        root (core::engine cycle entry points) to a tainted item that does \
                        not pass through an audited `detlint::boundary` is a violation, \
                        reported with the full call chain. Fix by marking the audited \
                        absorbing item `detlint::boundary(reason = ...)` or cutting a \
                        specific edge with `allow(D6)`. The fail example below is the \
                        three-file chain engine -> helper -> source; the pass example is \
                        the same source declared as a boundary.",
            fail: fixture!("d6_source.rs"),
            pass: fixture!("d6_source_boundary.rs"),
        },
        "D7" => RuleDoc {
            rule: "D7",
            rationale: "Unchecked + - * << on raw fixed-point values panics in debug builds \
                        and silently wraps in release — off the sanctioned two's-complement \
                        path, so a wrap that the wrapping wrappers would make a documented \
                        periodic identity becomes a silent bit-exactness break instead. \
                        Outside fixpoint's wrapper modules, use wrapping_add/sub/neg, mul, \
                        rne_shr_* — or allow(D7) with the overflow-headroom argument.",
            fail: fixture!("fail_d7_raw_arith.rs"),
            pass: fixture!("pass_d7_wrapping.rs"),
        },
        "D8" => RuleDoc {
            rule: "D8",
            rationale: "Checkpoint and trace payloads are on-disk formats read back on \
                        arbitrary hosts: to_ne_bytes/from_ne_bytes/transmute bake the \
                        writer's endianness into the bytes, so a checkpoint migrated across \
                        architectures fails its checksum or silently decodes garbage. Every \
                        integer crosses into bytes via to_le_bytes/from_le_bytes; endian-free \
                        byte views (UTF-8) carry an audited allow(D8).",
            fail: fixture!("fail_d8_ne_bytes.rs"),
            pass: fixture!("pass_d8_le_bytes.rs"),
        },
        "META" => RuleDoc {
            rule: "META",
            rationale: "A typo in a detlint directive must never silently disable a rule: \
                        unknown rule ids, missing reasons, and malformed argument lists are \
                        violations themselves.",
            fail: fixture!("fail_meta_directives.rs"),
            pass: fixture!("pass_allowed.rs"),
        },
        _ => return None,
    };
    Some(doc)
}

/// Render one rule's documentation as the text printed by
/// `detlint explain <rule>`.
pub fn render(rule: &str) -> Option<String> {
    let doc = rule_doc(rule)?;
    let mut s = String::new();
    s.push_str(&format!(
        "{} — {}\n\n{}\n",
        doc.rule,
        policy::rule_description(doc.rule),
        doc.rationale
    ));
    if let Some((name, body)) = doc.fail {
        s.push_str(&format!(
            "\n--- flagged example (fixtures/{name}) ---\n{body}"
        ));
    }
    if let Some((name, body)) = doc.pass {
        s.push_str(&format!(
            "\n--- sanctioned example (fixtures/{name}) ---\n{body}"
        ));
    }
    Some(s)
}

/// The rules `explain` knows, in report order.
pub fn all_rules() -> &'static [&'static str] {
    policy::ALL_RULES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_has_a_doc_with_examples() {
        for rule in all_rules() {
            let doc = rule_doc(rule).unwrap_or_else(|| panic!("no doc for {rule}"));
            assert!(!doc.rationale.is_empty());
            assert!(doc.fail.is_some(), "{rule} needs a flagged example");
            assert!(doc.pass.is_some(), "{rule} needs a sanctioned example");
        }
        assert!(rule_doc("D99").is_none());
    }

    #[test]
    fn render_includes_description_and_both_examples() {
        let text = render("D7").unwrap();
        assert!(text.contains("unchecked"));
        assert!(text.contains("flagged example"));
        assert!(text.contains("sanctioned example"));
    }
}
