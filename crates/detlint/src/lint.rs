//! Workspace walking and aggregation.
//!
//! v2 runs two passes over the same token streams: the per-file rules
//! (D1–D5, D7, D8, META) and the workspace-level taint analysis (D6),
//! which needs every deterministic crate in one call graph.

use crate::graph::Graph;
use crate::lexer::{lex, Tok, TokKind};
use crate::rules::{lint_tokens, Allow, Boundary, Violation};
use crate::taint::{self, FileSeeds};
use crate::{policy, rules};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Aggregated lint result for a whole workspace tree.
#[derive(Debug, Default)]
pub struct WorkspaceLint {
    /// Workspace-relative paths of every `.rs` file scanned, sorted.
    pub files: Vec<String>,
    pub violations: Vec<Violation>,
    pub allows: Vec<Allow>,
    pub boundaries: Vec<Boundary>,
}

/// Directories never scanned: build output, the vendored dependency
/// stand-ins (external API mirrors, not simulation code), VCS metadata, and
/// detlint's own rule fixtures (which contain violations on purpose).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "results"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint a set of in-memory sources as one workspace: per-file rules plus
/// the cross-crate taint pass. Input order does not matter — files are
/// sorted by path first, so the result is a pure function of the set.
/// This is the unit the multi-file (D6) fixture tests drive directly.
pub fn lint_sources(files: &[(String, String)]) -> WorkspaceLint {
    let mut sorted: Vec<(&str, &str)> = files
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    sorted.sort();
    sorted.dedup_by_key(|(p, _)| *p);

    let mut ws = WorkspaceLint::default();
    let mut graph = Graph::default();
    let mut seeds: Vec<FileSeeds> = Vec::new();

    for (rel, src) in sorted {
        let toks = lex(src);
        let lint = lint_tokens(rel, &toks);
        ws.files.push(rel.to_string());

        if policy::graph_applies(rel) {
            let code: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
            let test_regions = rules::find_test_regions(&code);
            graph.add_file(rel, &toks, &test_regions);

            let in_boundary = |line: u32| {
                lint.boundaries
                    .iter()
                    .any(|b| (b.line..=b.end_line).contains(&line))
            };
            seeds.push(FileSeeds {
                file: rel.to_string(),
                boundaries: lint
                    .boundaries
                    .iter()
                    .map(|b| (b.line, b.end_line))
                    .collect(),
                sources: lint.taint_sources.clone(),
                allow_seeds: lint
                    .allows
                    .iter()
                    .filter(|a| policy::TAINT_SEED_RULES.contains(&a.rule) && !in_boundary(a.line))
                    .map(|a| {
                        (
                            a.line,
                            format!(
                                "detlint::allow({}) at {}:{} ({})",
                                a.rule, rel, a.line, a.reason
                            ),
                        )
                    })
                    .collect(),
                d6_allowed_lines: lint
                    .allowed_lines
                    .iter()
                    .filter(|(r, _)| *r == "D6")
                    .map(|&(_, l)| l)
                    .collect(),
            });
        }

        ws.violations.extend(lint.violations);
        ws.allows.extend(lint.allows);
        ws.boundaries.extend(lint.boundaries);
    }

    ws.violations.extend(taint::analyze(&graph, &seeds));

    ws.files.sort();
    ws.violations
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    ws.allows
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    ws.boundaries
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    ws
}

/// Lint every `.rs` file under `root` (the workspace checkout).
pub fn lint_workspace(root: &Path) -> io::Result<WorkspaceLint> {
    let mut paths = Vec::new();
    walk(root, &mut paths)?;

    let mut files = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        files.push((rel, src));
    }
    Ok(lint_sources(&files))
}
