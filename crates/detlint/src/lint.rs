//! Workspace walking and aggregation.

use crate::rules::{lint_source, Allow, Boundary, Violation};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Aggregated lint result for a whole workspace tree.
#[derive(Debug, Default)]
pub struct WorkspaceLint {
    /// Workspace-relative paths of every `.rs` file scanned, sorted.
    pub files: Vec<String>,
    pub violations: Vec<Violation>,
    pub allows: Vec<Allow>,
    pub boundaries: Vec<Boundary>,
}

/// Directories never scanned: build output, the vendored dependency
/// stand-ins (external API mirrors, not simulation code), VCS metadata, and
/// detlint's own rule fixtures (which contain violations on purpose).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "results"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every `.rs` file under `root` (the workspace checkout).
pub fn lint_workspace(root: &Path) -> io::Result<WorkspaceLint> {
    let mut paths = Vec::new();
    walk(root, &mut paths)?;

    let mut ws = WorkspaceLint::default();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        let lint = lint_source(&rel, &src);
        ws.files.push(rel);
        ws.violations.extend(lint.violations);
        ws.allows.extend(lint.allows);
        ws.boundaries.extend(lint.boundaries);
    }
    ws.files.sort();
    ws.violations
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    ws.allows
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    ws.boundaries
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(ws)
}
