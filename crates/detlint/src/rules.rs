//! The rule engine: directive parsing, region computation, and the
//! per-file determinism rules D1–D5, D7, D8 (plus META for malformed
//! directives). The cross-crate rule D6 lives in `taint.rs` and runs at
//! workspace level; this module additionally extracts the taint *seeds*
//! (raw D1/D4-class tokens and nondeterminism-class allow sites) that
//! feed it.

use crate::lexer::{lex, Tok, TokKind};
use crate::policy;

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule id: "D1".."D5" or "META".
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// A parsed `// detlint::allow(<rule>, reason = "...")` directive.
#[derive(Clone, Debug)]
pub struct Allow {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub reason: String,
}

/// A parsed `// detlint::boundary(reason = "...")` directive: declares the
/// next item a quantization boundary where D1/D3 are permitted.
#[derive(Clone, Debug)]
pub struct Boundary {
    pub file: String,
    pub line: u32,
    /// Last line of the item the boundary covers.
    pub end_line: u32,
    pub reason: String,
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileLint {
    pub violations: Vec<Violation>,
    pub allows: Vec<Allow>,
    pub boundaries: Vec<Boundary>,
    /// Raw D1/D4-class source tokens (outside tests and boundaries) that
    /// seed the workspace taint pass, with a short description. Allowed
    /// sites still appear here: an allow silences the per-file diagnostic
    /// but does not stop taint from flowing to callers.
    pub taint_sources: Vec<(u32, String)>,
    /// The exact (rule, line) pairs an allow covers — the directive line
    /// and the next code line — exposed so the taint pass can honor
    /// `allow(D6)` edge cuts with identical semantics.
    pub allowed_lines: Vec<(&'static str, u32)>,
}

/// Lint a single source text as if it lived at `rel_path` (workspace-relative,
/// forward slashes). This is the unit the fixture tests drive directly.
pub fn lint_source(rel_path: &str, src: &str) -> FileLint {
    let toks = lex(src);
    lint_tokens(rel_path, &toks)
}

/// Token-level entry point, shared with the workspace pass (which lexes
/// once per file for both the per-file rules and the call graph).
pub(crate) fn lint_tokens(rel_path: &str, toks: &[Tok]) -> FileLint {
    let code: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();

    let mut out = FileLint::default();
    let directives = parse_directives(rel_path, toks, &code, &mut out);
    let test_regions = find_test_regions(&code);

    let mut allowed_lines: Vec<(&'static str, u32)> = Vec::new();
    for (rule, line) in &directives.allows {
        allowed_lines.push((rule, *line));
        if let Some(next) = code.iter().map(|t| t.line).find(|&l| l > *line) {
            allowed_lines.push((rule, next));
        }
    }
    out.allowed_lines = allowed_lines.clone();

    let in_tests = |line: u32| test_regions.iter().any(|&(a, b)| (a..=b).contains(&line));
    let in_boundary = |line: u32| {
        out.boundaries
            .iter()
            .any(|b| (b.line..=b.end_line).contains(&line))
    };
    let allowed =
        |rule: &str, line: u32| allowed_lines.iter().any(|&(r, l)| r == rule && l == line);

    let mut raw: Vec<Violation> = Vec::new();
    if policy::d1_applies(rel_path) {
        rule_d1(rel_path, &code, &mut raw);
    }
    if policy::d2_applies(rel_path) {
        rule_d2(rel_path, &code, &mut raw);
    }
    if policy::d3_applies(rel_path) {
        rule_d3(rel_path, &code, &mut raw);
    }
    if policy::d4_applies(rel_path) {
        rule_d4(rel_path, &code, &mut raw);
    }
    if policy::d5_applies(rel_path) {
        rule_d5(rel_path, &code, &mut raw);
    }
    if policy::d7_applies(rel_path) {
        rule_d7(rel_path, &code, &mut raw);
    }
    if policy::d8_applies(rel_path) {
        rule_d8(rel_path, &code, &mut raw);
    }

    // Taint seeds for the workspace pass: every raw D1/D4-class site
    // outside tests and boundaries, allowed or not.
    for v in &raw {
        if matches!(v.rule, "D1" | "D4") && !in_tests(v.line) && !in_boundary(v.line) {
            let token = v.message.split('`').nth(1).unwrap_or("?");
            out.taint_sources.push((
                v.line,
                format!("{}-class `{}` at {}:{}", v.rule, token, rel_path, v.line),
            ));
        }
    }
    out.taint_sources.sort();
    out.taint_sources.dedup();

    let mut seen_lines: Vec<(&'static str, u32)> = Vec::new();
    for v in raw {
        if in_tests(v.line) {
            continue;
        }
        if matches!(v.rule, "D1" | "D3") && in_boundary(v.line) {
            continue;
        }
        if allowed(v.rule, v.line) {
            continue;
        }
        // One diagnostic per (rule, line): a single expression can trip the
        // same rule many times and the extra reports are noise.
        if seen_lines.contains(&(v.rule, v.line)) {
            continue;
        }
        seen_lines.push((v.rule, v.line));
        out.violations.push(v);
    }
    out.violations
        .sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

// ---------------------------------------------------------------------------
// Directives
// ---------------------------------------------------------------------------

struct Directives {
    /// (rule, directive line) for each well-formed allow.
    allows: Vec<(&'static str, u32)>,
}

const RULE_IDS: &[&str] = &["D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8"];

fn intern_rule(name: &str) -> Option<&'static str> {
    RULE_IDS.iter().find(|&&r| r == name).copied()
}

fn parse_directives(rel_path: &str, toks: &[Tok], code: &[&Tok], out: &mut FileLint) -> Directives {
    let mut allows = Vec::new();
    for t in toks.iter().filter(|t| t.kind == TokKind::Comment) {
        // A directive is a plain `//` line comment whose text starts with
        // `detlint::`. Doc comments and prose that merely *mention* the
        // syntax are not directives.
        let Some(body) = t.text.strip_prefix("//") else {
            continue;
        };
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        let Some(rest) = body.trim_start().strip_prefix("detlint::") else {
            continue;
        };
        let meta = |msg: String| Violation {
            rule: "META",
            file: rel_path.to_string(),
            line: t.line,
            col: t.col,
            message: msg,
        };
        let (kind, rest) = if let Some(r) = rest.strip_prefix("allow") {
            ("allow", r)
        } else if let Some(r) = rest.strip_prefix("boundary") {
            ("boundary", r)
        } else {
            out.violations.push(meta(format!(
                "unknown detlint directive; expected `detlint::allow(...)` or \
                 `detlint::boundary(...)`, found `detlint::{}`",
                rest.split(|c: char| !c.is_alphanumeric() && c != '_')
                    .next()
                    .unwrap_or("")
            )));
            continue;
        };
        let Some(args) = paren_args(rest) else {
            out.violations.push(meta(format!(
                "malformed `detlint::{kind}` directive: expected `({})`",
                if kind == "allow" {
                    "<rule>, reason = \"...\""
                } else {
                    "reason = \"...\""
                }
            )));
            continue;
        };
        let reason = args.iter().find_map(|a| kv_reason(a));
        match kind {
            "allow" => {
                let rule = args.first().and_then(|a| intern_rule(a.trim()));
                match (rule, reason) {
                    (Some(rule), Some(reason)) => {
                        allows.push((rule, t.line));
                        out.allows.push(Allow {
                            rule,
                            file: rel_path.to_string(),
                            line: t.line,
                            reason,
                        });
                    }
                    (None, _) => out.violations.push(meta(format!(
                        "`detlint::allow` needs a rule id (D1..D5) as its first \
                         argument, found `{}`",
                        args.first().map(|s| s.trim()).unwrap_or("")
                    ))),
                    (_, None) => out.violations.push(meta(
                        "`detlint::allow` requires `reason = \"...\"`: every \
                         suppression must say why it is sound"
                            .to_string(),
                    )),
                }
            }
            _ => match reason {
                Some(reason) => {
                    let end_line = boundary_end(code, t.line).unwrap_or(t.line);
                    out.boundaries.push(Boundary {
                        file: rel_path.to_string(),
                        line: t.line,
                        end_line,
                        reason,
                    });
                }
                None => out.violations.push(meta(
                    "`detlint::boundary` requires `reason = \"...\"`: every \
                     quantization boundary must be justified"
                        .to_string(),
                )),
            },
        }
    }
    Directives { allows }
}

/// Split `(a, b, c)` at the head of `s` into top-level comma-separated args,
/// honoring string quotes. Returns None if the parens are missing/unclosed.
fn paren_args(s: &str) -> Option<Vec<String>> {
    let s = s.trim_start();
    let mut chars = s.chars();
    if chars.next() != Some('(') {
        return None;
    }
    let mut args = vec![String::new()];
    let mut depth = 1u32;
    let mut in_str = false;
    let mut escaped = false;
    for c in chars {
        if in_str {
            args.last_mut().unwrap().push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                args.last_mut().unwrap().push(c);
            }
            '(' => {
                depth += 1;
                args.last_mut().unwrap().push(c);
            }
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(args);
                }
                args.last_mut().unwrap().push(c);
            }
            ',' if depth == 1 => args.push(String::new()),
            _ => args.last_mut().unwrap().push(c),
        }
    }
    None
}

/// Parse `reason = "..."` returning the quoted text.
fn kv_reason(arg: &str) -> Option<String> {
    let rest = arg.trim().strip_prefix("reason")?.trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    let reason = &rest[..end];
    if reason.trim().is_empty() {
        return None;
    }
    Some(reason.to_string())
}

/// End line of the item following a boundary directive on `line`: the
/// matching `}` of the item's body, or the first `;` at depth 0 (depth
/// counts all delimiters, so the `;` in `[f64; 3]` does not terminate).
fn boundary_end(code: &[&Tok], line: u32) -> Option<u32> {
    let start = code.iter().position(|t| t.line > line)?;
    scan_item(&code[start..]).or_else(|| code.last().map(|t| t.line))
}

/// Shared item-extent scan: returns the line of the `}` closing the first
/// brace group, or of a `;` at delimiter depth 0, whichever comes first.
fn scan_item(code: &[&Tok]) -> Option<u32> {
    let mut depth = 0i32;
    let mut opened_brace = false;
    for t in code {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" => {
                    depth += 1;
                    opened_brace = true;
                }
                "}" => {
                    depth -= 1;
                    if depth == 0 && opened_brace {
                        return Some(t.line);
                    }
                }
                ";" if depth == 0 => return Some(t.line),
                _ => {}
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Test regions
// ---------------------------------------------------------------------------

/// Line spans of items annotated `#[cfg(test)]` (typically `mod tests`),
/// where the determinism rules do not apply.
pub(crate) fn find_test_regions(code: &[&Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if is_punct(code, i, "#")
            && is_punct(code, i + 1, "[")
            && is_ident(code, i + 2, "cfg")
            && is_punct(code, i + 3, "(")
        {
            if let Some(close_paren) = match_group(code, i + 3, "(", ")") {
                let mentions_test = code[i + 3..=close_paren]
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && t.text == "test");
                if mentions_test {
                    if let Some(close_bracket) = match_group(code, i + 1, "[", "]") {
                        if let Some(end_line) = item_end_line(code, close_bracket + 1) {
                            regions.push((code[i].line, end_line));
                            let next = code
                                .iter()
                                .position(|t| t.line > end_line)
                                .unwrap_or(code.len());
                            i = next.max(i + 1);
                            continue;
                        }
                    }
                }
            }
        }
        i += 1;
    }
    regions
}

fn is_punct(code: &[&Tok], i: usize, p: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
}

fn is_ident(code: &[&Tok], i: usize, name: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
}

/// Index of the token closing the group opened at `open_at`.
fn match_group(code: &[&Tok], open_at: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open_at) {
        if t.kind == TokKind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

/// Line of the token ending the item starting at `from` (skipping any
/// further attributes): the `}` closing its body, or a `;` at depth 0.
fn item_end_line(code: &[&Tok], mut from: usize) -> Option<u32> {
    while is_punct(code, from, "#") && is_punct(code, from + 1, "[") {
        from = match_group(code, from + 1, "[", "]")? + 1;
    }
    scan_item(&code[from..])
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

fn push(raw: &mut Vec<Violation>, rule: &'static str, file: &str, t: &Tok, message: String) {
    raw.push(Violation {
        rule,
        file: file.to_string(),
        line: t.line,
        col: t.col,
        message,
    });
}

/// D1: no floats in the fixed-point core / bit-exact state.
fn rule_d1(file: &str, code: &[&Tok], raw: &mut Vec<Violation>) {
    for t in code {
        match t.kind {
            TokKind::Float => push(
                raw,
                "D1",
                file,
                t,
                format!(
                    "float literal `{}` in a bit-exact module; move it behind a \
                     `detlint::boundary` quantization boundary or express it in \
                     fixed point",
                    t.text
                ),
            ),
            TokKind::Ident if t.text == "f32" || t.text == "f64" => push(
                raw,
                "D1",
                file,
                t,
                format!(
                    "floating-point type `{}` in a bit-exact module; only \
                     annotated quantization boundaries may convert to/from floats",
                    t.text
                ),
            ),
            _ => {}
        }
    }
}

/// D2: no unordered containers in deterministic crates.
fn rule_d2(file: &str, code: &[&Tok], raw: &mut Vec<Violation>) {
    for t in code {
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "HashMap" | "HashSet") {
            push(
                raw,
                "D2",
                file,
                t,
                format!(
                    "`{}` in a deterministic crate: iteration order varies run to \
                     run; use BTreeMap/BTreeSet or a sorted Vec (or allow with a \
                     proof the use never iterates)",
                    t.text
                ),
            );
        }
    }
}

/// D3: no lossy integer `as` casts in fixpoint outside `rounding.rs`.
fn rule_d3(file: &str, code: &[&Tok], raw: &mut Vec<Violation>) {
    for i in 0..code.len() {
        if code[i].kind == TokKind::Ident && code[i].text == "as" {
            if let Some(next) = code.get(i + 1) {
                if next.kind == TokKind::Ident
                    && policy::NARROW_INT_TARGETS.contains(&next.text.as_str())
                {
                    push(
                        raw,
                        "D3",
                        file,
                        code[i],
                        format!(
                            "lossy `as {}` cast outside the audited rounding \
                             module; use the `rounding` helpers (rne_shr_*) or a \
                             checked conversion",
                            next.text
                        ),
                    );
                }
            }
        }
    }
}

/// D4: no wall-clock / thread-topology reads on the simulation path.
fn rule_d4(file: &str, code: &[&Tok], raw: &mut Vec<Violation>) {
    for t in code {
        if t.kind == TokKind::Ident && policy::D4_IDENTS.contains(&t.text.as_str()) {
            push(
                raw,
                "D4",
                file,
                t,
                format!(
                    "`{}` on the simulation path: wall-clock and thread-topology \
                     reads make behavior depend on the host, not the state",
                    t.text
                ),
            );
        }
    }
}

/// D5: no order-sensitive reductions downstream of a parallel fan-out —
/// rayon parallel iterators, or `std::thread` spawn/scope/channel drains.
fn rule_d5(file: &str, code: &[&Tok], raw: &mut Vec<Violation>) {
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let rayon = policy::D5_PAR_IDENTS.contains(&t.text.as_str());
        let threaded = policy::D5_THREAD_IDENTS.contains(&t.text.as_str());
        if !rayon && !threaded {
            continue;
        }
        // Scan the rest of the statement (to `;` at relative depth 0) for an
        // order-sensitive combinator. Reducers inside nested closures sit at
        // depth ≥ 1 and do not fire: a spawned closure may reduce its *own*
        // private buffer freely.
        let mut depth = 0i32;
        for u in code.iter().skip(i + 1) {
            if u.kind == TokKind::Punct {
                match u.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth < 0 {
                            break;
                        }
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            if u.kind == TokKind::Ident
                && depth == 0
                && policy::D5_REDUCERS.contains(&u.text.as_str())
            {
                let message = if rayon {
                    format!(
                        "parallel `{}` feeds `{}`: reduction order depends on \
                         work stealing, which is non-associative over floats; \
                         reduce in fixed point or impose a deterministic split",
                        t.text, u.text
                    )
                } else {
                    format!(
                        "cross-thread `{}` feeds `{}`: accumulation order \
                         depends on thread scheduling; fill a private per-rank \
                         buffer on each thread and merge serially in fixed \
                         rank order (DESIGN.md §8)",
                        t.text, u.text
                    )
                };
                push(raw, "D5", file, t, message);
                break;
            }
        }
    }
}

/// D7: unchecked `+ - * <<` arithmetic on raw fixed-point values outside
/// the fixpoint wrapper modules. The lexical signature is an arithmetic
/// operator adjacent to a `.raw()` read: outside `crates/fixpoint`, the
/// sanctioned operations are the wrapping/rounding wrappers, so any bare
/// operator on the two's-complement representation panics in debug builds
/// and silently wraps in release — breaking bit-exactness symptoms-first.
fn rule_d7(file: &str, code: &[&Tok], raw: &mut Vec<Violation>) {
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident
            || !policy::D7_RAW_ACCESSORS.contains(&t.text.as_str())
            || i == 0
            || !is_punct(code, i - 1, ".")
            || !is_punct(code, i + 1, "(")
            || !is_punct(code, i + 2, ")")
        {
            continue;
        }
        let after = op_at(code, i + 3);
        // A `.raw()` at token 1 has no receiver expression before the dot
        // (degenerate input); only walk backward when one can exist.
        let before = if i < 2 {
            None
        } else {
            receiver_start(code, i - 2).and_then(|s| {
                if s == 0 {
                    None
                } else {
                    op_ending_at(code, s - 1)
                }
            })
        };
        if let Some(op) = after.or(before) {
            push(
                raw,
                "D7",
                file,
                t,
                format!(
                    "raw fixed-point value from `.{}()` feeds unchecked `{op}`: debug \
                     builds panic on overflow and release builds wrap outside the \
                     sanctioned two's-complement wrappers; use the fixpoint wrapping/\
                     rounding operations (wrapping_add, mul, rne_shr_*) instead",
                    t.text
                ),
            );
        }
    }
}

/// Is the token at `i` (looking forward) a D7-relevant binary operator?
fn op_at(code: &[&Tok], i: usize) -> Option<&'static str> {
    if !code.get(i).is_some_and(|t| t.kind == TokKind::Punct) {
        return None;
    }
    match code[i].text.as_str() {
        "+" => Some("+"),
        "-" => Some("-"),
        "*" => Some("*"),
        "<" if is_punct(code, i + 1, "<") => Some("<<"),
        _ => None,
    }
}

/// Is the token at `i` (looking backward) a D7-relevant operator? `<<`
/// lexes as two `<` puncts, so check the pair ending at `i`.
fn op_ending_at(code: &[&Tok], i: usize) -> Option<&'static str> {
    if !code.get(i).is_some_and(|t| t.kind == TokKind::Punct) {
        return None;
    }
    match code[i].text.as_str() {
        "+" => Some("+"),
        "*" => Some("*"),
        "<" if i > 0 && is_punct(code, i - 1, "<") => Some("<<"),
        // A lone leading `-` may be unary negation — which is *also*
        // unchecked on the raw representation, so it is flagged too.
        "-" => Some("-"),
        _ => None,
    }
}

/// Walk backward over the receiver expression of a method call whose `.`
/// sits at `dot + 1`: path segments, field accesses, index and call
/// suffixes. Returns the index of the receiver's first token.
fn receiver_start(code: &[&Tok], mut j: usize) -> Option<usize> {
    loop {
        let t = code.get(j)?;
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, ")") | (TokKind::Punct, "]") => {
                let open = if t.text == ")" { "(" } else { "[" };
                let mut depth = 0i32;
                loop {
                    let u = code.get(j)?;
                    if u.kind == TokKind::Punct {
                        if u.text == t.text {
                            depth += 1;
                        } else if u.text == open {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                    }
                    j = j.checked_sub(1)?;
                }
                if j == 0 {
                    return Some(0);
                }
                j -= 1;
            }
            (TokKind::Ident, _) | (TokKind::Int, _) => {
                if j >= 2 && is_punct(code, j - 1, ".") {
                    j -= 2;
                } else if j >= 3 && is_punct(code, j - 1, ":") && is_punct(code, j - 2, ":") {
                    j -= 3;
                } else {
                    return Some(j);
                }
            }
            _ => return Some(j + 1),
        }
    }
}

/// D8: non-endian-explicit byte serialization in checkpoint/trace payload
/// paths. On-disk formats must be byte-identical across hosts; native-
/// endian encodes, `transmute`, and untyped byte views make the payload
/// depend on the writer's architecture.
fn rule_d8(file: &str, code: &[&Tok], raw: &mut Vec<Violation>) {
    for t in code {
        if t.kind == TokKind::Ident && policy::D8_IDENTS.contains(&t.text.as_str()) {
            push(
                raw,
                "D8",
                file,
                t,
                format!(
                    "`{}` in a host-portable payload path: byte layout must not \
                     depend on the writer's architecture; use to_le_bytes/\
                     from_le_bytes (or allow with a proof the bytes are \
                     endian-free, e.g. UTF-8)",
                    t.text
                ),
            );
        }
    }
}
