//! Which rules apply where.
//!
//! The determinism policy (DESIGN.md, "Determinism policy") splits the
//! workspace into the *simulation path* — crates whose arithmetic must be
//! bitwise reproducible — and everything else (reference MD, analysis,
//! benches, tests), where ordinary floating point is fine.

/// Crates on the simulation path: wall-clock reads (D4) and parallel
/// reductions (D5) are policed here. `analysis` is included because its
/// verifier recomputes engine state word-for-word and renders byte-stable
/// artifacts — a nondeterministic check would report phantom violations.
pub const DET_CRATES: &[&str] = &[
    "fixpoint", "geometry", "fft", "ewald", "nt", "machine", "core", "trace", "ckpt", "analysis",
    "fleet",
];

/// Crates where unordered-container iteration (D2) is policed. `systems`
/// builds the initial conditions every deterministic run starts from, so it
/// is held to the same ordering discipline as the simulation path itself.
pub const D2_EXTRA_CRATES: &[&str] = &["systems"];

/// Files where floating point is banned outside annotated quantization
/// boundaries (D1): the fixed-point arithmetic core and the bit-exact
/// simulation state. The rest of the simulation path is allowed interior
/// f64 because every value is quantized through `rounding::rne_f64` before
/// it reaches an accumulator (see DESIGN.md).
pub const D1_FILES: &[&str] = &[
    "crates/fixpoint/src/lib.rs",
    "crates/fixpoint/src/fx32.rs",
    "crates/fixpoint/src/q.rs",
    "crates/fixpoint/src/fxvec.rs",
    "crates/core/src/state.rs",
    // The closed-form identity checks: every comparison must be an exact
    // integer-word test, never a float tolerance (the one physical-bound
    // check, energy drift, sits behind an audited boundary).
    "crates/analysis/src/verify.rs",
];

/// The one module where lossy integer `as` casts are audited by hand (D3
/// does not apply): every rounding primitive lives here.
pub const D3_AUDITED: &str = "crates/fixpoint/src/rounding.rs";

/// Narrowing / sign-changing `as` targets flagged by D3.
pub const NARROW_INT_TARGETS: &[&str] = &["i8", "i16", "i32", "u8", "u16", "u32", "isize", "usize"];

/// Wall-clock and concurrency-topology identifiers flagged by D4.
pub const D4_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "available_parallelism",
    "thread_rng",
    "num_cpus",
];

/// Rayon parallel-iterator entry points scanned by D5.
pub const D5_PAR_IDENTS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_bridge",
];

/// `std::thread` fan-out / channel-drain entry points scanned by D5: the
/// same order-sensitivity arises when hand-rolled threads feed a reduction
/// (channel drain order = thread finish order). The sanctioned pattern is
/// per-thread private buffers merged serially in fixed rank order
/// (DESIGN.md §8); reducers *inside* a spawned closure never fire because
/// the closure body sits at nested delimiter depth.
pub const D5_THREAD_IDENTS: &[&str] = &["spawn", "scope", "try_iter", "recv", "recv_timeout"];

/// Reduction combinators that are order-sensitive over floats.
pub const D5_REDUCERS: &[&str] = &["sum", "reduce", "fold", "product"];

/// Simulation-path roots for the cross-crate taint analysis (D6): the
/// engine entry points every deterministic trajectory flows through. A
/// function transitively reachable from one of these that calls a tainted,
/// non-boundary item is a D6 violation.
pub const D6_ROOTS: &[(&str, &str)] = &[
    ("crates/core/src/engine.rs", "run_cycle"),
    ("crates/core/src/engine.rs", "run_cycles"),
    ("crates/core/src/engine.rs", "inner_step"),
];

/// Allow directives of these rules seed taint (D6): each one marks a site
/// where host-dependent behavior was deliberately admitted, so every caller
/// chain reaching it must pass through an audited `detlint::boundary`.
/// D1/D3 allows are value-precision escapes — deterministic by construction
/// — and do not seed.
pub const TAINT_SEED_RULES: &[&str] = &["D2", "D4", "D5"];

/// Method names whose raw fixed-point result must not feed bare `+ - * <<`
/// arithmetic outside the fixpoint crate (D7): these expose the two's-
/// complement representation, where unchecked ops panic in debug builds and
/// silently wrap in release — breaking bit-exactness symptoms-first.
pub const D7_RAW_ACCESSORS: &[&str] = &["raw"];

/// Byte-serialization identifiers that are not endian-explicit (D8):
/// checkpoint and trace payloads must be byte-identical across hosts, so
/// every integer crossing into bytes goes through `to_le_bytes`/
/// `from_le_bytes` (or an audited allow for endian-free data like UTF-8).
pub const D8_IDENTS: &[&str] = &[
    "to_ne_bytes",
    "from_ne_bytes",
    "as_ne_bytes",
    "transmute",
    "as_bytes",
    "align_to",
    "from_raw_parts",
];

/// `crates/<name>/...` → `<name>`.
pub fn crate_of(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Rules only police shipped simulation code: `crates/<c>/src/**`.
/// Integration tests, benches and binaries compare against f64 references
/// by design, and `#[cfg(test)]` regions inside src are skipped separately.
fn in_src(rel: &str) -> bool {
    crate_of(rel).is_some_and(|c| rel.starts_with(&format!("crates/{c}/src/")))
}

pub fn d1_applies(rel: &str) -> bool {
    D1_FILES.contains(&rel)
}

pub fn d2_applies(rel: &str) -> bool {
    in_src(rel)
        && crate_of(rel).is_some_and(|c| DET_CRATES.contains(&c) || D2_EXTRA_CRATES.contains(&c))
}

pub fn d3_applies(rel: &str) -> bool {
    in_src(rel) && crate_of(rel) == Some("fixpoint") && rel != D3_AUDITED
}

pub fn d4_applies(rel: &str) -> bool {
    in_src(rel) && crate_of(rel).is_some_and(|c| DET_CRATES.contains(&c))
}

pub fn d5_applies(rel: &str) -> bool {
    in_src(rel) && crate_of(rel).is_some_and(|c| DET_CRATES.contains(&c))
}

/// Files included in the cross-crate call graph (D6 taint analysis): the
/// same set D4 polices — shipped source of the deterministic crates.
pub fn graph_applies(rel: &str) -> bool {
    d4_applies(rel)
}

/// D7 polices raw fixed-point arithmetic everywhere on the simulation path
/// *except* inside `fixpoint` itself, whose modules are the sanctioned
/// wrappers (every `.raw()` manipulation there is audited alongside the
/// rounding primitives).
pub fn d7_applies(rel: &str) -> bool {
    in_src(rel) && crate_of(rel).is_some_and(|c| DET_CRATES.contains(&c) && c != "fixpoint")
}

/// D8 polices byte serialization in the crates whose payloads are
/// host-portable on-disk formats: checkpoints and traces.
pub fn d8_applies(rel: &str) -> bool {
    in_src(rel) && matches!(crate_of(rel), Some("ckpt") | Some("trace"))
}

/// One-line description per rule, embedded in the JSON report.
pub fn rule_description(rule: &str) -> &'static str {
    match rule {
        "D1" => "no floating point in fixed-point core / bit-exact state outside annotated quantization boundaries",
        "D2" => "no HashMap/HashSet in deterministic crates (unordered iteration)",
        "D3" => "no lossy integer `as` casts in fixpoint outside the audited rounding module",
        "D4" => "no wall-clock or thread-topology reads on the simulation path",
        "D5" => "no order-sensitive parallel reductions on the simulation path",
        "D6" => "no call chain from a simulation root to a nondeterminism source outside an audited boundary (cross-crate taint)",
        "D7" => "no unchecked + - * << arithmetic on raw fixed-point values outside the fixpoint wrapper modules",
        "D8" => "no non-endian-explicit byte serialization (to_ne_bytes/transmute/as_bytes) in checkpoint or trace payload paths",
        "META" => "malformed or incomplete detlint directive",
        _ => "unknown rule",
    }
}

pub const ALL_RULES: &[&str] = &["D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "META"];
