//! Which rules apply where.
//!
//! The determinism policy (DESIGN.md, "Determinism policy") splits the
//! workspace into the *simulation path* — crates whose arithmetic must be
//! bitwise reproducible — and everything else (reference MD, analysis,
//! benches, tests), where ordinary floating point is fine.

/// Crates on the simulation path: wall-clock reads (D4) and parallel
/// reductions (D5) are policed here.
pub const DET_CRATES: &[&str] = &[
    "fixpoint", "geometry", "fft", "ewald", "nt", "machine", "core", "trace", "ckpt",
];

/// Crates where unordered-container iteration (D2) is policed. `systems`
/// builds the initial conditions every deterministic run starts from, so it
/// is held to the same ordering discipline as the simulation path itself.
pub const D2_EXTRA_CRATES: &[&str] = &["systems"];

/// Files where floating point is banned outside annotated quantization
/// boundaries (D1): the fixed-point arithmetic core and the bit-exact
/// simulation state. The rest of the simulation path is allowed interior
/// f64 because every value is quantized through `rounding::rne_f64` before
/// it reaches an accumulator (see DESIGN.md).
pub const D1_FILES: &[&str] = &[
    "crates/fixpoint/src/lib.rs",
    "crates/fixpoint/src/fx32.rs",
    "crates/fixpoint/src/q.rs",
    "crates/fixpoint/src/fxvec.rs",
    "crates/core/src/state.rs",
];

/// The one module where lossy integer `as` casts are audited by hand (D3
/// does not apply): every rounding primitive lives here.
pub const D3_AUDITED: &str = "crates/fixpoint/src/rounding.rs";

/// Narrowing / sign-changing `as` targets flagged by D3.
pub const NARROW_INT_TARGETS: &[&str] = &["i8", "i16", "i32", "u8", "u16", "u32", "isize", "usize"];

/// Wall-clock and concurrency-topology identifiers flagged by D4.
pub const D4_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "available_parallelism",
    "thread_rng",
    "num_cpus",
];

/// Rayon parallel-iterator entry points scanned by D5.
pub const D5_PAR_IDENTS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_bridge",
];

/// `std::thread` fan-out / channel-drain entry points scanned by D5: the
/// same order-sensitivity arises when hand-rolled threads feed a reduction
/// (channel drain order = thread finish order). The sanctioned pattern is
/// per-thread private buffers merged serially in fixed rank order
/// (DESIGN.md §8); reducers *inside* a spawned closure never fire because
/// the closure body sits at nested delimiter depth.
pub const D5_THREAD_IDENTS: &[&str] = &["spawn", "scope", "try_iter", "recv", "recv_timeout"];

/// Reduction combinators that are order-sensitive over floats.
pub const D5_REDUCERS: &[&str] = &["sum", "reduce", "fold", "product"];

/// `crates/<name>/...` → `<name>`.
pub fn crate_of(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Rules only police shipped simulation code: `crates/<c>/src/**`.
/// Integration tests, benches and binaries compare against f64 references
/// by design, and `#[cfg(test)]` regions inside src are skipped separately.
fn in_src(rel: &str) -> bool {
    crate_of(rel).is_some_and(|c| rel.starts_with(&format!("crates/{c}/src/")))
}

pub fn d1_applies(rel: &str) -> bool {
    D1_FILES.contains(&rel)
}

pub fn d2_applies(rel: &str) -> bool {
    in_src(rel)
        && crate_of(rel).is_some_and(|c| DET_CRATES.contains(&c) || D2_EXTRA_CRATES.contains(&c))
}

pub fn d3_applies(rel: &str) -> bool {
    in_src(rel) && crate_of(rel) == Some("fixpoint") && rel != D3_AUDITED
}

pub fn d4_applies(rel: &str) -> bool {
    in_src(rel) && crate_of(rel).is_some_and(|c| DET_CRATES.contains(&c))
}

pub fn d5_applies(rel: &str) -> bool {
    in_src(rel) && crate_of(rel).is_some_and(|c| DET_CRATES.contains(&c))
}

/// One-line description per rule, embedded in the JSON report.
pub fn rule_description(rule: &str) -> &'static str {
    match rule {
        "D1" => "no floating point in fixed-point core / bit-exact state outside annotated quantization boundaries",
        "D2" => "no HashMap/HashSet in deterministic crates (unordered iteration)",
        "D3" => "no lossy integer `as` casts in fixpoint outside the audited rounding module",
        "D4" => "no wall-clock or thread-topology reads on the simulation path",
        "D5" => "no order-sensitive parallel reductions on the simulation path",
        "META" => "malformed or incomplete detlint directive",
        _ => "unknown rule",
    }
}

pub const ALL_RULES: &[&str] = &["D1", "D2", "D3", "D4", "D5", "META"];
