//! Cross-crate nondeterminism taint analysis (rule D6).
//!
//! Per-file rules D1–D5 see tokens; they cannot see a sanctioned
//! `allow(D4)` leaking host-dependent values through an ordinary function
//! call. This pass makes the policy flow-aware:
//!
//! * **Sources.** Every D4-class identifier (wall clock, thread topology)
//!   and every D1-class float token in a bit-exact file seeds taint in its
//!   enclosing `fn` — *whether or not* a `detlint::allow` silences the
//!   per-file diagnostic. Allow directives of the nondeterminism-class
//!   rules (D2/D4/D5) seed taint themselves: an allow says "this site is
//!   sound *here*", not "values derived from it may flow anywhere". A seed
//!   inside a `struct`/`enum` body (an allowed nondeterministic field)
//!   taints the *type*: every method of that type becomes a source.
//! * **Boundaries.** An item under `detlint::boundary(reason = ...)`
//!   absorbs taint: it is the audited point past which nondeterminism is
//!   structurally unable to influence simulation state (e.g. the trace
//!   clock read whose value only ever lands in observability payload).
//!   Boundary items never become tainted and never propagate.
//! * **Propagation.** Taint flows callee -> caller along the call graph to
//!   a fixed point. A call edge can be cut with `detlint::allow(D6,
//!   reason = ...)` on the call-site line.
//! * **Violation.** A call chain from a simulation root
//!   ([`policy::D6_ROOTS`], the engine cycle entry points) to a seeded,
//!   non-boundary item is reported as D6 with the full chain, anchored at
//!   the call site entering the source.

use crate::graph::Graph;
use crate::policy;
use crate::rules::Violation;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Per-file inputs to the taint pass, assembled by `lint.rs` from the same
/// token stream and directive parse the per-file rules used.
#[derive(Debug, Default, Clone)]
pub struct FileSeeds {
    /// Workspace-relative path; must match the graph's file set.
    pub file: String,
    /// `detlint::boundary` spans (directive line ..= item end line).
    pub boundaries: Vec<(u32, u32)>,
    /// Raw D1/D4-class source tokens: (line, description).
    pub sources: Vec<(u32, String)>,
    /// Nondeterminism-class allow sites: (line, description).
    pub allow_seeds: Vec<(u32, String)>,
    /// Lines where `detlint::allow(D6)` cuts outgoing call edges.
    pub d6_allowed_lines: Vec<u32>,
}

pub fn analyze(graph: &Graph, seeds: &[FileSeeds]) -> Vec<Violation> {
    let file_index: BTreeMap<&str, usize> = graph
        .files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.as_str(), i))
        .collect();

    // Boundary defs: definition line covered by a boundary span.
    let mut boundary = vec![false; graph.defs.len()];
    for fs in seeds {
        let Some(&fi) = file_index.get(fs.file.as_str()) else {
            continue;
        };
        for (d, def) in graph.defs.iter().enumerate() {
            if def.file == fi
                && fs
                    .boundaries
                    .iter()
                    .any(|&(a, b)| (a..=b).contains(&def.line))
            {
                boundary[d] = true;
            }
        }
    }

    // Seed defs and seed types.
    let mut seed_why: BTreeMap<usize, String> = BTreeMap::new();
    let mut tainted_types: BTreeMap<(usize, String), String> = BTreeMap::new();
    for fs in seeds {
        let Some(&fi) = file_index.get(fs.file.as_str()) else {
            continue;
        };
        let marks = fs.sources.iter().chain(fs.allow_seeds.iter());
        for (line, why) in marks {
            if let Some(d) = graph.def_at(fi, *line) {
                if !boundary[d] {
                    seed_why.entry(d).or_insert_with(|| why.clone());
                }
                continue;
            }
            // Not inside a fn: a field or const inside a type definition
            // taints the type itself.
            for ty in graph.types.iter().filter(|t| t.file == fi) {
                if (ty.line..=ty.end_line).contains(line) {
                    tainted_types
                        .entry((fi, ty.name.clone()))
                        .or_insert_with(|| why.clone());
                }
            }
        }
    }
    for ((_, ty_name), why) in &tainted_types {
        for (d, def) in graph.defs.iter().enumerate() {
            if def.owner.as_deref() == Some(ty_name.as_str()) && !boundary[d] {
                seed_why
                    .entry(d)
                    .or_insert_with(|| format!("method of `{ty_name}`, whose {why}"));
            }
        }
    }

    // Adjacency with call-site anchors, D6-allowed edges cut.
    let d6_allowed: BTreeSet<(usize, u32)> = seeds
        .iter()
        .filter_map(|fs| file_index.get(fs.file.as_str()).map(|&fi| (fi, fs)))
        .flat_map(|(fi, fs)| fs.d6_allowed_lines.iter().map(move |&l| (fi, l)))
        .collect();
    let mut adj: Vec<Vec<(usize, u32, u32)>> = vec![Vec::new(); graph.defs.len()];
    for call in &graph.calls {
        let caller_file = graph.defs[call.caller].file;
        if d6_allowed.contains(&(caller_file, call.line)) {
            continue;
        }
        for target in graph.resolve(call) {
            if target == call.caller || boundary[target] {
                continue;
            }
            adj[call.caller].push((target, call.line, call.col));
        }
    }
    for edges in &mut adj {
        edges.sort();
        edges.dedup_by_key(|e| e.0);
    }

    // Roots.
    let roots: Vec<usize> = policy::D6_ROOTS
        .iter()
        .filter_map(|(file, name)| {
            let &fi = file_index.get(file)?;
            graph
                .defs
                .iter()
                .position(|d| d.file == fi && d.name == *name)
        })
        .filter(|&d| !boundary[d])
        .collect();

    // BFS from the roots, recording parents, collecting one violation per
    // seeded def reached.
    let mut parent: BTreeMap<usize, (usize, u32, u32)> = BTreeMap::new();
    let mut visited: BTreeSet<usize> = roots.iter().copied().collect();
    let mut queue: VecDeque<usize> = roots.iter().copied().collect();
    let mut hits: Vec<usize> = Vec::new();
    while let Some(d) = queue.pop_front() {
        if seed_why.contains_key(&d) {
            hits.push(d);
        }
        for &(g, line, col) in &adj[d] {
            if visited.insert(g) {
                parent.insert(g, (d, line, col));
                queue.push_back(g);
            }
        }
    }

    let mut out = Vec::new();
    for s in hits {
        // Reconstruct root -> ... -> s.
        let mut chain = vec![s];
        let mut cur = s;
        while let Some(&(p, _, _)) = parent.get(&cur) {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        let rendered: Vec<String> = chain
            .iter()
            .map(|&d| {
                let def = &graph.defs[d];
                format!(
                    "{} ({}:{})",
                    graph.label(d),
                    graph.files[def.file],
                    def.line
                )
            })
            .collect();
        let why = &seed_why[&s];
        // Anchor at the call site entering the source; a root that is
        // itself a source anchors at its own definition.
        let (file, line, col) = match parent.get(&s) {
            Some(&(p, line, col)) => (graph.files[graph.defs[p].file].clone(), line, col),
            None => {
                let def = &graph.defs[s];
                (graph.files[def.file].clone(), def.line, 1)
            }
        };
        out.push(Violation {
            rule: "D6",
            file,
            line,
            col,
            message: format!(
                "simulation path reaches nondeterminism source `{}` outside an audited \
                 boundary: {} [source: {}]; mark the audited absorbing item with \
                 `detlint::boundary(reason = ...)` or cut this edge with \
                 `detlint::allow(D6, reason = ...)`",
                graph.label(s),
                rendered.join(" -> "),
                why
            ),
        });
    }
    out.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    out
}
