//! CLI:
//!   `detlint check [--root <dir>] [--json <file>] [--no-json] [--github]`
//!   `detlint explain <rule>|all`
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/IO error.
//! `--github` additionally emits each violation as a GitHub Actions
//! `::error file=...,line=...` workflow command so findings annotate the
//! PR diff inline instead of only landing in the job log.

use std::path::PathBuf;
use std::process::ExitCode;

fn default_root() -> PathBuf {
    // When run via cargo, locate the workspace checkout relative to this
    // crate; otherwise fall back to the current directory.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir)
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| ".".into()),
        Err(_) => ".".into(),
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = default_root();
    let mut json: Option<PathBuf> = None;
    let mut no_json = false;
    let mut github = false;
    let mut explain: Option<String> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            // `check` is the default subcommand; it may also be omitted.
            "check" => {}
            "explain" => match args.next() {
                Some(rule) => explain = Some(rule),
                None => return usage("explain needs a rule id (D1..D8, META) or `all`"),
            },
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs a value"),
            },
            "--no-json" => no_json = true,
            "--github" => github = true,
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if let Some(rule) = explain {
        return run_explain(&rule);
    }

    let ws = match detlint::lint_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("detlint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for v in &ws.violations {
        println!(
            "error[{}]: {}:{}:{}: {}",
            v.rule, v.file, v.line, v.col, v.message
        );
        if github {
            // GitHub workflow commands strip at newlines; messages are
            // single-line by construction, but escape the command's
            // reserved characters anyway.
            let esc = |s: &str| {
                s.replace('%', "%25")
                    .replace('\r', "%0D")
                    .replace('\n', "%0A")
            };
            println!(
                "::error file={},line={},col={},title=detlint {}::{}",
                esc(&v.file),
                v.line,
                v.col,
                v.rule,
                esc(&v.message)
            );
        }
    }
    println!(
        "detlint: {} files scanned, {} violation(s), {} allow(s), {} boundary item(s)",
        ws.files.len(),
        ws.violations.len(),
        ws.allows.len(),
        ws.boundaries.len()
    );
    if !ws.violations.is_empty() {
        let mut rules: Vec<&str> = ws.violations.iter().map(|v| v.rule).collect();
        rules.sort();
        rules.dedup();
        for rule in rules {
            println!("detlint: run `detlint explain {rule}` for rationale and examples");
        }
    }

    if !no_json {
        let path = json.unwrap_or_else(|| root.join("results/detlint_report.json"));
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("detlint: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&path, detlint::report::to_json(&ws)) {
            eprintln!("detlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("detlint: report written to {}", path.display());
    }

    if ws.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn run_explain(rule: &str) -> ExitCode {
    if rule.eq_ignore_ascii_case("all") {
        for (i, r) in detlint::explain::all_rules().iter().enumerate() {
            if i > 0 {
                println!("\n{}\n", "=".repeat(72));
            }
            if let Some(text) = detlint::explain::render(r) {
                println!("{text}");
            }
        }
        return ExitCode::SUCCESS;
    }
    let canonical = rule.to_ascii_uppercase();
    match detlint::explain::render(&canonical) {
        Some(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        None => usage(&format!(
            "unknown rule `{rule}`; expected one of {} or `all`",
            detlint::explain::all_rules().join(", ")
        )),
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("detlint: {msg}");
    print_usage();
    ExitCode::from(2)
}

fn print_usage() {
    eprintln!(
        "usage: detlint [check] [--root <dir>] [--json <file>] [--no-json] [--github]\n\
         \x20      detlint explain <rule>|all"
    );
}
