//! CLI: `cargo run -p detlint -- check [--root <dir>] [--json <file>] [--no-json]`
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn default_root() -> PathBuf {
    // When run via cargo, locate the workspace checkout relative to this
    // crate; otherwise fall back to the current directory.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir)
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| ".".into()),
        Err(_) => ".".into(),
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = default_root();
    let mut json: Option<PathBuf> = None;
    let mut no_json = false;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            // `check` is the only subcommand; it may also be omitted.
            "check" => {}
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs a value"),
            },
            "--no-json" => no_json = true,
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let ws = match detlint::lint_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("detlint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for v in &ws.violations {
        println!(
            "error[{}]: {}:{}:{}: {}",
            v.rule, v.file, v.line, v.col, v.message
        );
    }
    println!(
        "detlint: {} files scanned, {} violation(s), {} allow(s), {} boundary item(s)",
        ws.files.len(),
        ws.violations.len(),
        ws.allows.len(),
        ws.boundaries.len()
    );

    if !no_json {
        let path = json.unwrap_or_else(|| root.join("results/detlint_report.json"));
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("detlint: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&path, detlint::report::to_json(&ws)) {
            eprintln!("detlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("detlint: report written to {}", path.display());
    }

    if ws.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("detlint: {msg}");
    print_usage();
    ExitCode::from(2)
}

fn print_usage() {
    eprintln!("usage: detlint [check] [--root <dir>] [--json <file>] [--no-json]");
}
