//! A small, self-contained Rust lexer.
//!
//! detlint cannot depend on `syn` (the workspace builds offline), and its
//! rules are lexical anyway: float literals, `as` casts, identifier uses,
//! comment directives. The lexer handles the full literal grammar well
//! enough to never mis-tokenize real source: nested block comments, raw
//! strings/identifiers, byte strings, char-vs-lifetime disambiguation,
//! numeric literals with suffixes and exponents.

/// Token classification. Comments are kept as tokens: detlint directives
/// live in them, and line-accurate suppression needs their positions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Int,
    Float,
    Str,
    Char,
    Lifetime,
    Punct,
    Comment,
}

#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Vec<Tok> {
        let mut out = Vec::new();
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            let tok = if c == '/' && self.peek(1) == Some('/') {
                self.line_comment()
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment()
            } else if self.raw_string_ahead() {
                self.raw_string()
            } else if c == 'b' && matches!(self.peek(1), Some('"') | Some('\'')) {
                self.bump(); // consume the b prefix, then lex normally
                if self.peek(0) == Some('"') {
                    self.string()
                } else {
                    self.char_or_lifetime()
                }
            } else if self.raw_ident_ahead() {
                self.bump();
                self.bump(); // r#
                self.ident()
            } else if c == '"' {
                self.string()
            } else if c == '\'' {
                self.char_or_lifetime()
            } else if c.is_ascii_digit() {
                self.number()
            } else if c.is_alphabetic() || c == '_' {
                self.ident()
            } else {
                let c = self.bump().unwrap();
                Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line: 0,
                    col: 0,
                }
            };
            out.push(Tok { line, col, ..tok });
        }
        out
    }

    /// `r"..."`, `r#"..."#`, `br"..."`, `br#"..."#` ahead?
    fn raw_string_ahead(&self) -> bool {
        let mut i = 0;
        if self.peek(i) == Some('b') {
            i += 1;
        }
        if self.peek(i) != Some('r') {
            return false;
        }
        i += 1;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    /// `r#ident` (raw identifier, not followed by `"` or another `#`)?
    fn raw_ident_ahead(&self) -> bool {
        self.peek(0) == Some('r')
            && self.peek(1) == Some('#')
            && self.peek(2).is_some_and(|c| c.is_alphabetic() || c == '_')
    }

    fn line_comment(&mut self) -> Tok {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(self.bump().unwrap());
        }
        Tok {
            kind: TokKind::Comment,
            text,
            line: 0,
            col: 0,
        }
    }

    fn block_comment(&mut self) -> Tok {
        let mut text = String::new();
        let mut depth = 0u32;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push(self.bump().unwrap());
                text.push(self.bump().unwrap());
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push(self.bump().unwrap());
                text.push(self.bump().unwrap());
                if depth == 0 {
                    break;
                }
            } else {
                text.push(self.bump().unwrap());
            }
        }
        Tok {
            kind: TokKind::Comment,
            text,
            line: 0,
            col: 0,
        }
    }

    fn raw_string(&mut self) -> Tok {
        let mut text = String::new();
        if self.peek(0) == Some('b') {
            text.push(self.bump().unwrap());
        }
        text.push(self.bump().unwrap()); // r
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            text.push(self.bump().unwrap());
            hashes += 1;
        }
        text.push(self.bump().unwrap()); // opening quote
        loop {
            match self.bump() {
                None => break,
                Some('"') => {
                    text.push('"');
                    let mut i = 0;
                    while i < hashes && self.peek(0) == Some('#') {
                        text.push(self.bump().unwrap());
                        i += 1;
                    }
                    if i == hashes {
                        break;
                    }
                }
                Some(c) => text.push(c),
            }
        }
        Tok {
            kind: TokKind::Str,
            text,
            line: 0,
            col: 0,
        }
    }

    fn string(&mut self) -> Tok {
        let mut text = String::new();
        text.push(self.bump().unwrap()); // opening quote
        loop {
            match self.bump() {
                None => break,
                Some('\\') => {
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                Some('"') => {
                    text.push('"');
                    break;
                }
                Some(c) => text.push(c),
            }
        }
        Tok {
            kind: TokKind::Str,
            text,
            line: 0,
            col: 0,
        }
    }

    fn char_or_lifetime(&mut self) -> Tok {
        // `'a` (lifetime) vs `'a'` (char). A lifetime is `'` + ident with no
        // closing quote right after the identifier.
        let mut i = 1;
        let is_lifetime = match self.peek(1) {
            Some(c) if c.is_alphabetic() || c == '_' => {
                while self
                    .peek(i)
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    i += 1;
                }
                self.peek(i) != Some('\'')
            }
            _ => false,
        };
        let mut text = String::new();
        if is_lifetime {
            for _ in 0..i {
                text.push(self.bump().unwrap());
            }
            return Tok {
                kind: TokKind::Lifetime,
                text,
                line: 0,
                col: 0,
            };
        }
        text.push(self.bump().unwrap()); // opening quote
        loop {
            match self.bump() {
                None => break,
                Some('\\') => {
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                Some('\'') => {
                    text.push('\'');
                    break;
                }
                Some(c) => text.push(c),
            }
        }
        Tok {
            kind: TokKind::Char,
            text,
            line: 0,
            col: 0,
        }
    }

    fn number(&mut self) -> Tok {
        let mut text = String::new();
        let mut is_float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('o') | Some('b')) {
            text.push(self.bump().unwrap());
            text.push(self.bump().unwrap());
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
            {
                text.push(self.bump().unwrap());
            }
        } else {
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                text.push(self.bump().unwrap());
            }
            // Fractional part: a dot NOT starting `..` (range) or a method
            // call / field access (`1.max(2)`, `tuple.0` never reaches here).
            if self.peek(0) == Some('.') {
                match self.peek(1) {
                    Some(c) if c.is_ascii_digit() => {
                        is_float = true;
                        text.push(self.bump().unwrap());
                        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                            text.push(self.bump().unwrap());
                        }
                    }
                    Some('.') => {}
                    Some(c) if c.is_alphabetic() || c == '_' => {}
                    _ => {
                        // Trailing-dot float (`2.`).
                        is_float = true;
                        text.push(self.bump().unwrap());
                    }
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some('e') | Some('E')) {
                let sign = matches!(self.peek(1), Some('+') | Some('-'));
                let digit_at = if sign { 2 } else { 1 };
                if self.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                    is_float = true;
                    text.push(self.bump().unwrap());
                    if sign {
                        text.push(self.bump().unwrap());
                    }
                    while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                        text.push(self.bump().unwrap());
                    }
                }
            }
        }
        // Type suffix (`u8`, `i64`, `f64`, `usize`, ...).
        let mut suffix = String::new();
        while self
            .peek(0)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            suffix.push(self.bump().unwrap());
        }
        if suffix.starts_with('f') {
            is_float = true;
        }
        text.push_str(&suffix);
        let kind = if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        };
        Tok {
            kind,
            text,
            line: 0,
            col: 0,
        }
    }

    fn ident(&mut self) -> Tok {
        let mut text = String::new();
        while self
            .peek(0)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            text.push(self.bump().unwrap());
        }
        Tok {
            kind: TokKind::Ident,
            text,
            line: 0,
            col: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("0..8 1.25 1e5 0x1e5 2.5e-3 1f64 7i32 1_000.5");
        let floats: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, ["1.25", "1e5", "2.5e-3", "1f64", "1_000.5"]);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Int && t == "0x1e5"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Int && t == "7i32"));
    }

    #[test]
    fn int_method_call_is_not_float() {
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokKind::Int, "1".to_string()));
        assert_eq!(toks[1], (TokKind::Punct, ".".to_string()));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("'a' 'static x: &'a str '\\n'");
        assert_eq!(toks[0].0, TokKind::Char);
        assert_eq!(toks[1], (TokKind::Lifetime, "'static".to_string()));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert_eq!(toks.last().unwrap().0, TokKind::Char);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "HashMap 1.0 // not a comment"; s"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Float && t == "1.0"));
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::Comment));
    }

    #[test]
    fn raw_strings_and_nested_comments() {
        let toks = kinds("r#\"a \" b\"# /* outer /* inner */ still */ x");
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[1].0, TokKind::Comment);
        assert_eq!(toks[2], (TokKind::Ident, "x".to_string()));
    }

    #[test]
    fn raw_string_hash_depths_and_partial_terminators() {
        // `"#` inside an `r##"..."##` literal is *not* a terminator — the
        // hash count must match exactly. The identifier after the literal
        // proves the lexer resynchronized at the right byte.
        let toks = kinds("r##\"ends with \"# then more\"## after");
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[1], (TokKind::Ident, "after".to_string()));

        // Zero-hash raw string: backslash is literal, not an escape, so
        // `\"` terminates it.
        let toks = kinds(r#"r"a \" b"#);
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[0].1, "r\"a \\\"");
        assert_eq!(toks[1], (TokKind::Ident, "b".to_string()));

        // Byte raw strings take the same path.
        let toks = kinds("br#\"Instant \" inside\"# x");
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[1], (TokKind::Ident, "x".to_string()));
    }

    #[test]
    fn rule_idents_inside_literals_are_not_idents() {
        for src in [
            "r#\"HashMap Instant f64 to_ne_bytes\"#",
            "\"HashMap Instant f64 to_ne_bytes\"",
            "/* HashMap /* Instant */ f64 */",
            "br##\"SystemTime\"##",
        ] {
            let idents: Vec<String> = lex(src)
                .into_iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text)
                .collect();
            assert_eq!(idents, Vec::<String>::new(), "leak from {src}");
        }
    }

    #[test]
    fn nested_comment_depth_and_tricky_openers() {
        // `/*/` opens a comment whose `/` is not also a closer; depth
        // bookkeeping must survive immediate re-opens.
        let toks = kinds("/*/ still open */ x /* a /* b */ /* c */ d */ y");
        assert_eq!(toks[0].0, TokKind::Comment);
        assert_eq!(toks[1], (TokKind::Ident, "x".to_string()));
        assert_eq!(toks[2].0, TokKind::Comment);
        assert_eq!(toks[3], (TokKind::Ident, "y".to_string()));
    }

    #[test]
    fn unterminated_literals_do_not_panic_or_loop() {
        // Half-open inputs (truncated files, fuzz soup): the lexer must
        // consume to EOF without panicking.
        for src in [
            "r#\"never closed",
            "r##\"wrong depth\"#",
            "\"no close",
            "/* no close /* deeper",
            "b'",
            "'",
            "r#",
        ] {
            let _ = lex(src);
        }
    }

    #[test]
    fn byte_char_with_quote_does_not_desync() {
        // `b'"'` contains a double quote as the char payload; the lexer
        // must not treat it as a string opener.
        let toks = kinds("(br#\"bytes\"#, b'\"') f64");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "f64"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
    }

    #[test]
    fn positions_are_line_accurate() {
        let toks = lex("a\n  b\n// c\nd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!(toks[2].kind, TokKind::Comment);
        assert_eq!(toks[2].line, 3);
        assert_eq!((toks[3].line, toks[3].col), (4, 1));
    }
}
