//! Fixture-driven tests: one pass and one fail case per rule, driven
//! through the public `lint_source` API with a virtual workspace path.

use detlint::lint_source;

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn rules_hit(virtual_path: &str, name: &str) -> Vec<(String, u32)> {
    lint_source(virtual_path, &fixture(name))
        .violations
        .iter()
        .map(|v| (v.rule.to_string(), v.line))
        .collect()
}

#[test]
fn d1_flags_floats_in_fixed_point_core() {
    let hits = rules_hit("crates/fixpoint/src/fx32.rs", "fail_d1_float.rs");
    assert_eq!(hits, [("D1".into(), 4), ("D1".into(), 5), ("D1".into(), 8)]);
}

#[test]
fn d1_does_not_police_non_core_files() {
    // Same source under a crate outside the D1 file list: no violations.
    let hits = rules_hit("crates/refmd/src/anything.rs", "fail_d1_float.rs");
    assert_eq!(hits, []);
}

#[test]
fn d2_flags_unordered_containers() {
    let hits = rules_hit("crates/nt/src/bad.rs", "fail_d2_hashmap.rs");
    assert_eq!(hits, [("D2".into(), 4), ("D2".into(), 6)]);
}

#[test]
fn d2_covers_systems_but_not_refmd() {
    assert_eq!(
        rules_hit("crates/systems/src/bad.rs", "fail_d2_hashmap.rs"),
        [("D2".into(), 4), ("D2".into(), 6)]
    );
    assert_eq!(
        rules_hit("crates/refmd/src/ok.rs", "fail_d2_hashmap.rs"),
        []
    );
}

#[test]
fn d3_flags_lossy_casts_outside_rounding() {
    let hits = rules_hit("crates/fixpoint/src/bad.rs", "fail_d3_cast.rs");
    assert_eq!(hits, [("D3".into(), 5)]);
}

#[test]
fn d3_exempts_the_audited_rounding_module() {
    let hits = rules_hit("crates/fixpoint/src/rounding.rs", "fail_d3_cast.rs");
    assert_eq!(hits, []);
}

#[test]
fn d4_flags_wall_clock_and_thread_topology() {
    let hits = rules_hit("crates/core/src/bad.rs", "fail_d4_instant.rs");
    assert_eq!(hits, [("D4".into(), 4), ("D4".into(), 7), ("D4".into(), 8)]);
}

#[test]
fn d5_flags_parallel_float_reductions() {
    let hits = rules_hit("crates/ewald/src/bad.rs", "fail_d5_rayon.rs");
    assert_eq!(hits, [("D5".into(), 5)]);
}

#[test]
fn d5_flags_cross_thread_channel_reductions() {
    let hits = rules_hit("crates/core/src/bad.rs", "fail_d5_thread.rs");
    assert_eq!(hits, [("D5".into(), 6)]);
}

#[test]
fn d5_accepts_rank_indexed_merge_after_scoped_fanout() {
    // The sanctioned pattern: scoped threads fill disjoint buffers, the
    // caller merges serially — reducers inside the spawned closures are
    // private and must not fire.
    let hits = rules_hit("crates/core/src/good.rs", "pass_d5_ranks.rs");
    assert_eq!(hits, []);
}

#[test]
fn d5_accepts_pencil_fanout_with_rank_ordered_mesh_merge() {
    // The distributed-FFT shape: scoped workers own disjoint pencil chunks,
    // the charge meshes merge serially in rank order after the scope.
    let hits = rules_hit("crates/fft/src/good.rs", "pass_d5_fft_pencils.rs");
    assert_eq!(hits, []);
}

#[test]
fn d5_flags_unordered_pencil_merge() {
    let hits = rules_hit("crates/fft/src/bad.rs", "fail_d5_fft_merge.rs");
    assert_eq!(hits, [("D5".into(), 6)]);
}

#[test]
fn trace_crate_is_on_the_simulation_path() {
    // The trace crate joined DET_CRATES: an unsanctioned wall-clock read
    // there is a D4 violation like anywhere else in the deterministic core.
    let hits = rules_hit("crates/trace/src/bad.rs", "fail_trace_wallclock.rs");
    assert_eq!(hits, [("D4".into(), 5), ("D4".into(), 8)]);
}

#[test]
fn sanctioned_trace_shape_passes() {
    // The shape the real `anton-trace` uses: one audited clock origin
    // behind an allow(D4), integer timestamps in per-rank lanes, serial
    // rank-ordered merge after the scoped fan-out.
    let lint = lint_source(
        "crates/trace/src/good.rs",
        &fixture("pass_trace_rank_merge.rs"),
    );
    assert_eq!(lint.violations, []);
    assert_eq!(lint.allows.len(), 1);
    assert_eq!(lint.allows[0].rule, "D4");
    assert!(!lint.allows[0].reason.is_empty());
}

#[test]
fn ckpt_crate_is_on_the_simulation_path() {
    // `ckpt` joined DET_CRATES: deriving checkpoint names from the wall
    // clock makes recovery order host-dependent — D4 fires on the import
    // and on the read.
    let hits = rules_hit("crates/ckpt/src/bad.rs", "fail_ckpt_wallclock_name.rs");
    assert_eq!(hits, [("D4".into(), 6), ("D4".into(), 9)]);
}

#[test]
fn sanctioned_ckpt_atomic_write_shape_passes() {
    // The shape the real `anton-ckpt` store uses: step-derived names,
    // tmp + fsync + atomic rename, and exactly one audited wall-clock
    // read for the advisory manifest timestamp.
    let lint = lint_source(
        "crates/ckpt/src/good.rs",
        &fixture("pass_ckpt_atomic_write.rs"),
    );
    assert_eq!(lint.violations, []);
    assert_eq!(lint.allows.len(), 1);
    assert_eq!(lint.allows[0].rule, "D4");
    assert!(!lint.allows[0].reason.is_empty());
}

#[test]
fn meta_flags_malformed_directives() {
    let hits = rules_hit("crates/core/src/bad.rs", "fail_meta_directives.rs");
    let rules: Vec<&str> = hits.iter().map(|(r, _)| r.as_str()).collect();
    assert_eq!(rules, ["META", "META", "META", "META"]);
}

#[test]
fn allow_suppresses_exactly_its_rule_and_records_reason() {
    let lint = lint_source("crates/ewald/src/good.rs", &fixture("pass_allowed.rs"));
    assert_eq!(lint.violations, []);
    assert_eq!(lint.allows.len(), 2);
    assert!(lint
        .allows
        .iter()
        .all(|a| a.rule == "D4" && !a.reason.is_empty()));
}

#[test]
fn allow_for_the_wrong_rule_does_not_suppress() {
    let src = fixture("pass_allowed.rs").replace("allow(D4", "allow(D2");
    let lint = lint_source("crates/ewald/src/good.rs", &src);
    assert!(lint.violations.iter().all(|v| v.rule == "D4"));
    assert_eq!(lint.violations.len(), 2);
}

#[test]
fn boundary_admits_d1_and_d3_for_the_item() {
    let lint = lint_source("crates/fixpoint/src/fx32.rs", &fixture("pass_boundary.rs"));
    assert_eq!(lint.violations, []);
    assert_eq!(lint.boundaries.len(), 1);
    let b = &lint.boundaries[0];
    assert!(
        b.end_line > b.line,
        "boundary should span the following item"
    );
}

#[test]
fn boundary_does_not_leak_past_its_item() {
    // Append a float after the boundary item: it must be flagged.
    let src = format!(
        "{}\npub fn leak() -> f64 {{ 0.25 }}\n",
        fixture("pass_boundary.rs")
    );
    let lint = lint_source("crates/fixpoint/src/fx32.rs", &src);
    assert_eq!(lint.violations.len(), 1);
    assert_eq!(lint.violations[0].rule, "D1");
}

#[test]
fn cfg_test_regions_are_exempt() {
    let lint = lint_source("crates/nt/src/good.rs", &fixture("pass_cfg_test.rs"));
    assert_eq!(lint.violations, []);
}

#[test]
fn clean_fixed_point_code_passes() {
    let lint = lint_source("crates/fixpoint/src/fx32.rs", &fixture("pass_clean.rs"));
    assert_eq!(lint.violations, []);
}

/// The real workspace must be clean: this is the same gate as
/// `cargo run -p detlint -- check`, run as a plain unit test so `cargo test`
/// alone already enforces the determinism policy.
#[test]
fn workspace_is_clean() {
    let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let ws = detlint::lint_workspace(std::path::Path::new(&root)).expect("scan workspace");
    assert!(
        ws.files.len() > 50,
        "workspace scan looks wrong: only {} files",
        ws.files.len()
    );
    let rendered: Vec<String> = ws
        .violations
        .iter()
        .map(|v| format!("[{}] {}:{}:{} {}", v.rule, v.file, v.line, v.col, v.message))
        .collect();
    assert!(
        rendered.is_empty(),
        "determinism violations:\n{}",
        rendered.join("\n")
    );
    assert!(ws.allows.iter().all(|a| !a.reason.trim().is_empty()));
}
