//! Fixture-driven tests: one pass and one fail case per rule, driven
//! through the public `lint_source` API with a virtual workspace path.

use detlint::lint_source;

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn rules_hit(virtual_path: &str, name: &str) -> Vec<(String, u32)> {
    lint_source(virtual_path, &fixture(name))
        .violations
        .iter()
        .map(|v| (v.rule.to_string(), v.line))
        .collect()
}

#[test]
fn d1_flags_floats_in_fixed_point_core() {
    let hits = rules_hit("crates/fixpoint/src/fx32.rs", "fail_d1_float.rs");
    assert_eq!(hits, [("D1".into(), 4), ("D1".into(), 5), ("D1".into(), 8)]);
}

#[test]
fn d1_does_not_police_non_core_files() {
    // Same source under a crate outside the D1 file list: no violations.
    let hits = rules_hit("crates/refmd/src/anything.rs", "fail_d1_float.rs");
    assert_eq!(hits, []);
}

#[test]
fn d2_flags_unordered_containers() {
    let hits = rules_hit("crates/nt/src/bad.rs", "fail_d2_hashmap.rs");
    assert_eq!(hits, [("D2".into(), 4), ("D2".into(), 6)]);
}

#[test]
fn d2_covers_systems_but_not_refmd() {
    assert_eq!(
        rules_hit("crates/systems/src/bad.rs", "fail_d2_hashmap.rs"),
        [("D2".into(), 4), ("D2".into(), 6)]
    );
    assert_eq!(
        rules_hit("crates/refmd/src/ok.rs", "fail_d2_hashmap.rs"),
        []
    );
}

#[test]
fn d3_flags_lossy_casts_outside_rounding() {
    let hits = rules_hit("crates/fixpoint/src/bad.rs", "fail_d3_cast.rs");
    assert_eq!(hits, [("D3".into(), 5)]);
}

#[test]
fn d3_exempts_the_audited_rounding_module() {
    let hits = rules_hit("crates/fixpoint/src/rounding.rs", "fail_d3_cast.rs");
    assert_eq!(hits, []);
}

#[test]
fn d4_flags_wall_clock_and_thread_topology() {
    let hits = rules_hit("crates/core/src/bad.rs", "fail_d4_instant.rs");
    assert_eq!(hits, [("D4".into(), 4), ("D4".into(), 7), ("D4".into(), 8)]);
}

#[test]
fn d5_flags_parallel_float_reductions() {
    let hits = rules_hit("crates/ewald/src/bad.rs", "fail_d5_rayon.rs");
    assert_eq!(hits, [("D5".into(), 5)]);
}

#[test]
fn d5_flags_cross_thread_channel_reductions() {
    let hits = rules_hit("crates/core/src/bad.rs", "fail_d5_thread.rs");
    assert_eq!(hits, [("D5".into(), 6)]);
}

#[test]
fn d5_accepts_rank_indexed_merge_after_scoped_fanout() {
    // The sanctioned pattern: scoped threads fill disjoint buffers, the
    // caller merges serially — reducers inside the spawned closures are
    // private and must not fire.
    let hits = rules_hit("crates/core/src/good.rs", "pass_d5_ranks.rs");
    assert_eq!(hits, []);
}

#[test]
fn d5_accepts_pencil_fanout_with_rank_ordered_mesh_merge() {
    // The distributed-FFT shape: scoped workers own disjoint pencil chunks,
    // the charge meshes merge serially in rank order after the scope.
    let hits = rules_hit("crates/fft/src/good.rs", "pass_d5_fft_pencils.rs");
    assert_eq!(hits, []);
}

#[test]
fn d5_flags_unordered_pencil_merge() {
    let hits = rules_hit("crates/fft/src/bad.rs", "fail_d5_fft_merge.rs");
    assert_eq!(hits, [("D5".into(), 6)]);
}

#[test]
fn d5_accepts_fixed_order_batch_merge() {
    // The batched match/evaluate shape: scoped workers fill disjoint
    // per-rank batch queues, the caller merges serially in rank order.
    let hits = rules_hit("crates/core/src/good.rs", "pass_d5_batch_merge.rs");
    assert_eq!(hits, []);
}

#[test]
fn d5_flags_arrival_order_batch_merge() {
    // Same pipeline with batches drained off a channel: the accumulation
    // order becomes the thread finish order — D5 fires on the reduction.
    let hits = rules_hit("crates/core/src/bad.rs", "fail_d5_batch_merge.rs");
    assert_eq!(hits, [("D5".into(), 7)]);
}

#[test]
fn d5_flags_cache_epoch_channel_merge() {
    // The match-cache rebuild decision folded out of a channel drain: the
    // epoch becomes a function of thread completion order, so the cached
    // pair list (and everything downstream of it) stops being a pure
    // function of the trajectory — D5 fires on the fold.
    let hits = rules_hit("crates/core/src/bad.rs", "fail_d5_cache_epoch_merge.rs");
    assert_eq!(hits, [("D5".into(), 8)]);
}

#[test]
fn d5_accepts_slab_ordered_cache_epoch_merge() {
    // The sanctioned monitor shape: per-slab maxima in disjoint slots,
    // folded serially in slab order — the rebuild schedule is trajectory-
    // determined and identical on every decomposition.
    let hits = rules_hit("crates/core/src/good.rs", "pass_d5_cache_epoch_merge.rs");
    assert_eq!(hits, []);
}

#[test]
fn trace_crate_is_on_the_simulation_path() {
    // The trace crate joined DET_CRATES: an unsanctioned wall-clock read
    // there is a D4 violation like anywhere else in the deterministic core.
    let hits = rules_hit("crates/trace/src/bad.rs", "fail_trace_wallclock.rs");
    assert_eq!(hits, [("D4".into(), 5), ("D4".into(), 8)]);
}

#[test]
fn sanctioned_trace_shape_passes() {
    // The shape the real `anton-trace` uses: one audited clock origin
    // behind an allow(D4), integer timestamps in per-rank lanes, serial
    // rank-ordered merge after the scoped fan-out.
    let lint = lint_source(
        "crates/trace/src/good.rs",
        &fixture("pass_trace_rank_merge.rs"),
    );
    assert_eq!(lint.violations, []);
    assert_eq!(lint.allows.len(), 1);
    assert_eq!(lint.allows[0].rule, "D4");
    assert!(!lint.allows[0].reason.is_empty());
}

#[test]
fn ckpt_crate_is_on_the_simulation_path() {
    // `ckpt` joined DET_CRATES: deriving checkpoint names from the wall
    // clock makes recovery order host-dependent — D4 fires on the import
    // and on the read.
    let hits = rules_hit("crates/ckpt/src/bad.rs", "fail_ckpt_wallclock_name.rs");
    assert_eq!(hits, [("D4".into(), 6), ("D4".into(), 9)]);
}

#[test]
fn sanctioned_ckpt_atomic_write_shape_passes() {
    // The shape the real `anton-ckpt` store uses: step-derived names,
    // tmp + fsync + atomic rename, and exactly one audited wall-clock
    // read for the advisory manifest timestamp.
    let lint = lint_source(
        "crates/ckpt/src/good.rs",
        &fixture("pass_ckpt_atomic_write.rs"),
    );
    assert_eq!(lint.violations, []);
    assert_eq!(lint.allows.len(), 1);
    assert_eq!(lint.allows[0].rule, "D4");
    assert!(!lint.allows[0].reason.is_empty());
}

#[test]
fn meta_flags_malformed_directives() {
    let hits = rules_hit("crates/core/src/bad.rs", "fail_meta_directives.rs");
    let rules: Vec<&str> = hits.iter().map(|(r, _)| r.as_str()).collect();
    assert_eq!(rules, ["META", "META", "META", "META"]);
}

#[test]
fn allow_suppresses_exactly_its_rule_and_records_reason() {
    let lint = lint_source("crates/ewald/src/good.rs", &fixture("pass_allowed.rs"));
    assert_eq!(lint.violations, []);
    assert_eq!(lint.allows.len(), 2);
    assert!(lint
        .allows
        .iter()
        .all(|a| a.rule == "D4" && !a.reason.is_empty()));
}

#[test]
fn allow_for_the_wrong_rule_does_not_suppress() {
    let src = fixture("pass_allowed.rs").replace("allow(D4", "allow(D2");
    let lint = lint_source("crates/ewald/src/good.rs", &src);
    assert!(lint.violations.iter().all(|v| v.rule == "D4"));
    assert_eq!(lint.violations.len(), 2);
}

#[test]
fn boundary_admits_d1_and_d3_for_the_item() {
    let lint = lint_source("crates/fixpoint/src/fx32.rs", &fixture("pass_boundary.rs"));
    assert_eq!(lint.violations, []);
    assert_eq!(lint.boundaries.len(), 1);
    let b = &lint.boundaries[0];
    assert!(
        b.end_line > b.line,
        "boundary should span the following item"
    );
}

#[test]
fn boundary_does_not_leak_past_its_item() {
    // Append a float after the boundary item: it must be flagged.
    let src = format!(
        "{}\npub fn leak() -> f64 {{ 0.25 }}\n",
        fixture("pass_boundary.rs")
    );
    let lint = lint_source("crates/fixpoint/src/fx32.rs", &src);
    assert_eq!(lint.violations.len(), 1);
    assert_eq!(lint.violations[0].rule, "D1");
}

#[test]
fn cfg_test_regions_are_exempt() {
    let lint = lint_source("crates/nt/src/good.rs", &fixture("pass_cfg_test.rs"));
    assert_eq!(lint.violations, []);
}

#[test]
fn clean_fixed_point_code_passes() {
    let lint = lint_source("crates/fixpoint/src/fx32.rs", &fixture("pass_clean.rs"));
    assert_eq!(lint.violations, []);
}

#[test]
fn d6_taints_across_an_intermediate_call_invisible_per_file() {
    // The canonical leak the per-file rules cannot see: every file lints
    // clean in isolation (the source's Instant is behind an allow(D4)),
    // but engine -> helper -> source is a chain from a simulation root
    // into a nondeterminism source with no boundary in between.
    let files = vec![
        (
            "crates/core/src/engine.rs".to_string(),
            fixture("d6_engine.rs"),
        ),
        (
            "crates/nt/src/helper.rs".to_string(),
            fixture("d6_helper.rs"),
        ),
        (
            "crates/trace/src/stamp.rs".to_string(),
            fixture("d6_source.rs"),
        ),
    ];
    let per_file_clean = files
        .iter()
        .all(|(p, s)| lint_source(p, s).violations.is_empty());
    assert!(per_file_clean, "each file must be clean in isolation");

    let ws = detlint::lint_sources(&files);
    let d6: Vec<_> = ws.violations.iter().filter(|v| v.rule == "D6").collect();
    assert_eq!(d6.len(), 1, "violations: {:?}", ws.violations);
    let v = d6[0];
    assert_eq!(v.file, "crates/nt/src/helper.rs");
    assert!(v.message.contains("run_cycle"), "{}", v.message);
    assert!(v.message.contains("pace_budget"), "{}", v.message);
    assert!(v.message.contains("host_jitter_ns"), "{}", v.message);
    assert!(
        v.message
            .contains("D4-class `Instant` at crates/trace/src/stamp.rs"),
        "{}",
        v.message
    );
}

#[test]
fn d6_boundary_absorbs_the_taint() {
    // Same chain, but the source item is declared an audited boundary:
    // taint is absorbed and the chain is sanctioned.
    let files = vec![
        (
            "crates/core/src/engine.rs".to_string(),
            fixture("d6_engine.rs"),
        ),
        (
            "crates/nt/src/helper.rs".to_string(),
            fixture("d6_helper.rs"),
        ),
        (
            "crates/trace/src/stamp.rs".to_string(),
            fixture("d6_source_boundary.rs"),
        ),
    ];
    let ws = detlint::lint_sources(&files);
    assert_eq!(ws.violations, [], "boundary must absorb the chain");
}

#[test]
fn d6_allow_on_the_call_site_cuts_the_edge() {
    // allow(D6) on the edge that enters the source sanctions exactly that
    // call without blessing the source for other callers.
    let helper = fixture("d6_helper.rs").replace(
        "    1 + host_jitter_ns(step) % 2",
        "    // detlint::allow(D6, reason = \"jitter only widens the pacing budget; the result gates sleep, not state\")\n    1 + host_jitter_ns(step) % 2",
    );
    assert!(helper.contains("allow(D6"), "fixture edit must apply");
    let files = vec![
        (
            "crates/core/src/engine.rs".to_string(),
            fixture("d6_engine.rs"),
        ),
        ("crates/nt/src/helper.rs".to_string(), helper),
        (
            "crates/trace/src/stamp.rs".to_string(),
            fixture("d6_source.rs"),
        ),
    ];
    let ws = detlint::lint_sources(&files);
    assert_eq!(ws.violations, [], "allow(D6) must cut the edge");
}

#[test]
fn d7_flags_unchecked_raw_fixed_point_arithmetic() {
    let hits = rules_hit("crates/core/src/bad.rs", "fail_d7_raw_arith.rs");
    let rules: Vec<&str> = hits.iter().map(|(r, _)| r.as_str()).collect();
    assert_eq!(rules, ["D7", "D7", "D7", "D7"], "hits: {hits:?}");
}

#[test]
fn d7_exempts_fixpoint_wrappers_and_sanctioned_shapes() {
    // Inside fixpoint the wrappers themselves are the sanctioned home of
    // raw arithmetic; outside, wrapping_* / shifts-right / comparisons and
    // an audited allow(D7) are all clean.
    // (the fixture's `as usize` index trips D3 under fixpoint — only D7's
    // silence matters here)
    let fixpoint_hits = rules_hit("crates/fixpoint/src/fx32.rs", "fail_d7_raw_arith.rs");
    assert!(
        fixpoint_hits.iter().all(|(r, _)| r != "D7"),
        "hits: {fixpoint_hits:?}"
    );
    assert_eq!(
        rules_hit("crates/core/src/good.rs", "pass_d7_wrapping.rs"),
        []
    );
}

#[test]
fn d7_flags_raw_arith_in_batch_kernels() {
    // A match-batch kernel doing bare `+ - * <<` on raw lanes: every
    // unchecked op adjacent to a `.raw()` read fires; the comparison-only
    // cutoff test stays silent.
    let hits = rules_hit("crates/core/src/bad.rs", "fail_d7_batch_kernel.rs");
    let rules: Vec<&str> = hits.iter().map(|(r, _)| r.as_str()).collect();
    assert_eq!(rules, ["D7", "D7", "D7", "D7"], "hits: {hits:?}");
}

#[test]
fn d7_accepts_sanctioned_batch_kernel_shape() {
    // The shape the real match stage uses: raw bits on their own binding,
    // wrapping ops, right shifts, masks and comparisons only.
    let hits = rules_hit("crates/core/src/good.rs", "pass_d7_batch_kernel.rs");
    assert_eq!(hits, []);
}

#[test]
fn d7_flags_raw_q20_displacement_monitor() {
    // A displacement monitor doing bare `- * <<` on raw Q20 components:
    // the subtraction, the doubled threshold, and the shift all fire; the
    // epoch-equality comparison stays silent.
    let hits = rules_hit("crates/core/src/bad.rs", "fail_d7_q20_displacement.rs");
    let rules: Vec<&str> = hits.iter().map(|(r, _)| r.as_str()).collect();
    assert_eq!(rules, ["D7", "D7", "D7"], "hits: {hits:?}");
}

#[test]
fn d7_accepts_wrapped_displacement_monitor() {
    // The real monitor's shape: wrapping_sub displacements, the doubled
    // threshold behind an audited allow, raw reads only in comparisons.
    let hits = rules_hit("crates/core/src/good.rs", "pass_d7_q20_displacement.rs");
    assert_eq!(hits, []);
}

#[test]
fn d8_flags_native_endian_bytes_in_payload_paths() {
    let hits = rules_hit("crates/ckpt/src/bad.rs", "fail_d8_ne_bytes.rs");
    let rules: Vec<&str> = hits.iter().map(|(r, _)| r.as_str()).collect();
    assert_eq!(rules, ["D8", "D8", "D8"], "hits: {hits:?}");
}

#[test]
fn d8_scope_is_ckpt_and_trace_only() {
    // The same source outside the payload crates is not D8's business.
    assert_eq!(
        rules_hit("crates/core/src/bad.rs", "fail_d8_ne_bytes.rs"),
        []
    );
    assert_eq!(
        rules_hit("crates/trace/src/good.rs", "pass_d8_le_bytes.rs"),
        []
    );
}

#[test]
fn analysis_verify_is_a_d1_file() {
    // `analysis` joined the simulation path and verify.rs joined the D1
    // list: a float-tolerance comparison in an identity check fires like
    // any float in the fixed-point core.
    let hits = rules_hit(
        "crates/analysis/src/verify.rs",
        "fail_analysis_float_tolerance.rs",
    );
    assert_eq!(hits, [("D1".into(), 5), ("D1".into(), 6), ("D1".into(), 9)]);
    // The ban is scoped to the identity checks: the statistics modules of
    // the same crate keep ordinary floating point.
    assert_eq!(
        rules_hit(
            "crates/analysis/src/stats.rs",
            "fail_analysis_float_tolerance.rs"
        ),
        []
    );
}

#[test]
fn exact_integer_identity_checks_pass_in_analysis() {
    let hits = rules_hit(
        "crates/analysis/src/verify.rs",
        "pass_analysis_exact_sum.rs",
    );
    assert_eq!(hits, []);
}

#[test]
fn raw_strings_and_nested_comments_do_not_smuggle_violations() {
    let lint = lint_source(
        "crates/core/src/good.rs",
        &fixture("pass_raw_string_smuggle.rs"),
    );
    assert_eq!(lint.violations, []);
}

/// The real workspace must be clean: this is the same gate as
/// `cargo run -p detlint -- check`, run as a plain unit test so `cargo test`
/// alone already enforces the determinism policy.
#[test]
fn workspace_is_clean() {
    let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let ws = detlint::lint_workspace(std::path::Path::new(&root)).expect("scan workspace");
    assert!(
        ws.files.len() > 50,
        "workspace scan looks wrong: only {} files",
        ws.files.len()
    );
    let rendered: Vec<String> = ws
        .violations
        .iter()
        .map(|v| format!("[{}] {}:{}:{} {}", v.rule, v.file, v.line, v.col, v.message))
        .collect();
    assert!(
        rendered.is_empty(),
        "determinism violations:\n{}",
        rendered.join("\n")
    );
    assert!(ws.allows.iter().all(|a| !a.reason.trim().is_empty()));
}
