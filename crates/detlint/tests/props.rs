//! Property tests: the linter is a tier-1 CI gate, so it must never panic
//! on any input — including half-open string literals, unbalanced comment
//! markers, and mangled directives — and its output must be a pure,
//! order-independent function of the file set.

use proptest::prelude::*;

/// Fragments chosen to hit every lexer mode transition (raw strings with
/// varying hash depth, byte strings, char-vs-lifetime, nested comments),
/// every directive parse path, and every rule's trigger tokens. Sampled
/// indices concatenate them in random order so modes open without closing,
/// close without opening, and interleave.
const FRAGMENTS: &[&str] = &[
    "r#\"",
    "\"#",
    "r\"",
    "r##\"",
    "\"##",
    "\"",
    "b\"",
    "br#\"",
    "'",
    "b'",
    "'a",
    "\\",
    "\\\"",
    "/*",
    "*/",
    "//",
    "// detlint::allow(D4, reason = \"x\")",
    "// detlint::allow(D99, reason = \"x\")",
    "// detlint::allow(D4)",
    "// detlint::boundary(reason = \"y\")",
    "// detlint::boundary(",
    "detlint::allow",
    "HashMap",
    "Instant",
    "SystemTime",
    "f64",
    "1.5",
    "1e9",
    "0x1f",
    "par_iter",
    ".sum()",
    "to_ne_bytes",
    "transmute",
    ".raw()",
    "+",
    "<<",
    "*",
    "as usize",
    "fn f() {",
    "pub fn g(x: u64) -> u64 {",
    "}",
    "impl Foo {",
    "impl<T> Bar for Foo {",
    "struct S {",
    "use a::b;",
    "use anton_trace::clock;",
    "#[cfg(test)]",
    "mod tests {",
    "Self::helper()",
    "x.method()",
    "ident",
    ";",
    " ",
    "\n",
];

/// Virtual paths spanning every rule's applicability domain.
const PATHS: &[&str] = &[
    "crates/fixpoint/src/fx32.rs",
    "crates/fixpoint/src/rounding.rs",
    "crates/core/src/engine.rs",
    "crates/core/src/bad.rs",
    "crates/trace/src/clock.rs",
    "crates/ckpt/src/store.rs",
    "crates/nt/src/helper.rs",
    "crates/ewald/src/spme.rs",
    "crates/systems/src/water.rs",
    "crates/refmd/src/anything.rs",
    "crates/core/tests/exempt.rs",
];

fn soup(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&i| FRAGMENTS[i % FRAGMENTS.len()])
        .collect()
}

proptest! {
    /// The lexer consumes any fragment soup without panicking and every
    /// token it produces carries a sane position.
    #[test]
    fn lexer_never_panics(idx in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..96)) {
        let src = soup(&idx);
        let toks = detlint::lexer::lex(&src);
        for t in &toks {
            prop_assert!(t.line >= 1);
            prop_assert!(t.col >= 1);
            prop_assert!(!t.text.is_empty());
        }
    }

    /// The full per-file rule engine (directive parser included) never
    /// panics, whatever the path and source.
    #[test]
    fn lint_source_never_panics(
        p in 0usize..PATHS.len(),
        idx in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..96),
    ) {
        let _ = detlint::lint_source(PATHS[p], &soup(&idx));
    }

    /// Linting is a pure function: the same input yields byte-identical
    /// findings every run (no hidden iteration-order or global state).
    #[test]
    fn lint_source_is_deterministic(
        p in 0usize..PATHS.len(),
        idx in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..96),
    ) {
        let src = soup(&idx);
        let a = detlint::lint_source(PATHS[p], &src);
        let b = detlint::lint_source(PATHS[p], &src);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    /// The workspace pass (call graph + taint included) is independent of
    /// the order files are presented in: any permutation of the file list
    /// produces an identical JSON report.
    #[test]
    fn lint_sources_is_order_invariant(
        lens in proptest::collection::vec(0usize..64, 1..5),
        idx in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..256),
        seed in 0u64..1024,
    ) {
        // Graph-visible paths on purpose so the taint pass runs over the
        // soup; slice one source per path out of the shared index pool.
        let paths = [
            "crates/core/src/engine.rs",
            "crates/nt/src/helper.rs",
            "crates/trace/src/stamp.rs",
            "crates/ckpt/src/store.rs",
        ];
        let mut files: Vec<(String, String)> = Vec::new();
        let mut cursor = 0usize;
        for (i, len) in lens.iter().enumerate() {
            let end = (cursor + len).min(idx.len());
            files.push((paths[i % paths.len()].to_string(), soup(&idx[cursor..end])));
            cursor = end;
        }

        // A deterministic permutation derived from `seed` (proptest owns
        // the randomness; Fisher–Yates over a tiny LCG).
        let mut shuffled = files.clone();
        let mut state = seed.wrapping_add(1);
        for i in (1..shuffled.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = usize::try_from(state % (i as u64 + 1)).expect("< len");
            shuffled.swap(i, j);
        }

        let a = detlint::lint_sources(&files);
        let b = detlint::lint_sources(&shuffled);
        prop_assert_eq!(detlint::report::to_json(&a), detlint::report::to_json(&b));
    }
}
