// Fixture: linted as crates/core/src/engine.rs — the simulation root. The
// body is squeaky-clean under D1–D5: the nondeterminism only enters two
// calls away, which is exactly what the per-file rules cannot see.

use anton_nt::pace_budget;

pub struct Sim {
    step: u64,
}

impl Sim {
    pub fn run_cycle(&mut self) {
        let budget = pace_budget(self.step);
        self.step += budget;
    }
}
