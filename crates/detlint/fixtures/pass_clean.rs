// Fixture: linted as crates/fixpoint/src/fx32.rs — plain fixed-point code
// trips nothing, including tricky lexical look-alikes.

pub fn lerp_fixed(a: i64, b: i64, t_frac: i64) -> i64 {
    // Strings and comments may mention 1.0, f64, HashMap, Instant freely.
    let _label = "uses f64? no: 1.0 / HashMap / Instant are just text here";
    a.wrapping_add(((b.wrapping_sub(a) as i128 * t_frac as i128) >> 31) as i64)
}

pub fn ranges_are_not_floats(n: usize) -> usize {
    (0..8).chain(0..n).max().unwrap_or(0)
}
