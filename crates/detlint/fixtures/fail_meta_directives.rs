// Fixture: linted as crates/core/src/bad.rs — META fires on malformed
// directives so a typo can never silently disable a rule.

// detlint::allow(D9, reason = "no such rule")
pub fn a() {}

// detlint::allow(D4)
pub fn b() {}

// detlint::boundary(because = "wrong key")
pub fn c() {}

// detlint::permit(D4, reason = "unknown verb")
pub fn d() {}
