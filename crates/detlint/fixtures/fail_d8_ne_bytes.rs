// Fixture: linted as crates/ckpt/src/bad.rs — D8 fires on byte
// serialization that depends on the writer's architecture: a checkpoint
// written on a little-endian host would fail its checksum (or silently
// decode garbage) on a big-endian one.

pub fn encode_step(step: u64, out: &mut Vec<u8>) {
    out.extend_from_slice(&step.to_ne_bytes());
}

pub fn decode_step(b: [u8; 8]) -> u64 {
    u64::from_ne_bytes(b)
}

pub fn reinterpret(words: &[u64]) -> &[u8] {
    // detlint::allow(D2, reason = "wrong rule id on purpose: this must not suppress D8")
    unsafe { std::mem::transmute(words) }
}
