// Fixture: linted as crates/core/src/good.rs — rule-triggering identifiers
// inside raw strings, ordinary strings, and nested block comments are
// *text*, not code: none of these may fire, and the lexer must come out of
// every literal in sync so the real code after them still lints correctly.

pub fn doc_table() -> &'static str {
    r#"HashMap 1.0 f64 Instant::now() par_iter().sum() to_ne_bytes"#
}

pub fn tricky_terminators() -> String {
    let a = r##"ends with "# then more "## .to_string();
    let b = "escaped \" quote with Instant inside";
    let c = r"raw with backslash \ then HashMap";
    format!("{a}{b}{c}")
}

/* outer /* nested: Instant::now(), HashMap<f64, f64> */ still comment */
pub fn after_comments(x: u64) -> u64 {
    x.wrapping_mul(3)
}

pub fn byte_strings() -> (&'static [u8], u8) {
    (br#"SystemTime inside bytes"#, b'"')
}
