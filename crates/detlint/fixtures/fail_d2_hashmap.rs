// Fixture: linted as crates/nt/src/bad.rs — D2 fires on unordered
// containers in a deterministic crate.

use std::collections::HashMap;

pub fn total(m: &HashMap<u32, u32>) -> u32 {
    m.values().sum()
}
