// Fixture: linted as crates/ckpt/src/good.rs — the sanctioned checkpoint
// store shape. File names derive from the step counter (deterministic,
// zero-padded), writes go through tmp + fsync + atomic rename, and the
// single wall-clock read (the manifest's advisory written-at column) sits
// behind an audited detlint::allow(D4).

use std::io::Write;
use std::path::{Path, PathBuf};

pub fn checkpoint_path(dir: &Path, step: u64) -> PathBuf {
    // Deterministic: a pure function of simulation progress.
    dir.join(format!("ckpt-{step:012}.ant"))
}

pub fn write_atomic(dir: &Path, step: u64, bytes: &[u8]) -> std::io::Result<PathBuf> {
    let final_path = checkpoint_path(dir, step);
    let tmp_path = dir.join(format!("ckpt-{step:012}.ant.tmp"));
    {
        let mut f = std::fs::File::create(&tmp_path)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    Ok(final_path)
}

pub fn manifest_timestamp_ms() -> u64 {
    // detlint::allow(D4, reason = "advisory manifest written-at column: operator bookkeeping at the file-I/O boundary; recovery order and file names derive from the step counter, never from this value")
    let now = std::time::SystemTime::now();
    now.duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}
