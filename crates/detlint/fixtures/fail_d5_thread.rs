// Fixture: linted as crates/core/src/bad.rs — D5 fires when a std::thread
// fan-out or channel drain feeds an order-sensitive float reduction: the
// accumulation order is the thread finish order.

pub fn total_energy(rx: &std::sync::mpsc::Receiver<f64>) -> f64 {
    rx.try_iter().sum()
}

pub fn drained(rx: &std::sync::mpsc::Receiver<f64>) -> usize {
    // Order-insensitive combinators are fine even on a channel drain.
    rx.try_iter().count()
}
