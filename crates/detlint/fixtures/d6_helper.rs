// Fixture: linted as crates/nt/src/helper.rs — an ordinary-looking helper
// crate function. Nothing here trips D1–D5 either; it merely forwards to
// the tainted source in the trace crate.

use anton_trace::host_jitter_ns;

pub fn pace_budget(step: u64) -> u64 {
    1 + host_jitter_ns(step) % 2
}
