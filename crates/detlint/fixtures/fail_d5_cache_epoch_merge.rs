// Fixture: linted as crates/core/src/bad.rs — D5 fires when the match-cache
// rebuild decision is derived from per-thread displacement maxima draining
// off a channel: the fold sees slab results in thread-completion order, so
// ties between equal maxima (and any non-associative combine swapped in
// later) make the cache epoch a function of scheduling, not the trajectory.

pub fn rebuild_epoch(rx: &std::sync::mpsc::Receiver<i64>, threshold: i64) -> bool {
    let max_disp = rx.try_iter().fold(0i64, i64::max);
    max_disp >= threshold
}

pub fn slabs_reported(rx: &std::sync::mpsc::Receiver<i64>) -> usize {
    // Order-insensitive combinators stay fine even on a channel drain.
    rx.try_iter().count()
}
