// Fixture: linted as crates/analysis/src/verify.rs — D1 bans float
// tolerance comparisons in the identity checks: every verifier test must
// be an exact integer-word comparison (or sit behind an audited boundary).

pub fn momentum_close_enough(lhs: f64, rhs: f64) -> bool {
    (lhs - rhs).abs() < 1.0e-6
}

pub const TOLERANCE: f32 = 1.0e-6;
