// Fixture: linted as crates/analysis/src/verify.rs — the sanctioned
// identity shape: exact integer sums with checked arithmetic, compared
// word-for-word; no floats, no tolerances.

pub fn force_sum_is_zero(forces: &[[i64; 3]]) -> bool {
    let mut total = [0i128; 3];
    for f in forces {
        for (axis, word) in f.iter().enumerate() {
            total[axis] = match total[axis].checked_add(*word as i128) {
                Some(t) => t,
                None => return false,
            };
        }
    }
    total == [0, 0, 0]
}

pub fn counters_linear(counter: u64, steps: u64, rate: u64) -> bool {
    steps
        .checked_mul(rate)
        .is_some_and(|expect| counter == expect)
}
