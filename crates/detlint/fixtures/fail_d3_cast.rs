// Fixture: linted as crates/fixpoint/src/bad.rs — D3 fires on lossy
// integer casts outside the audited rounding module.

pub fn truncate(x: i64) -> i32 {
    x as i32
}

pub fn widen_is_fine(x: i32) -> i64 {
    x as i64
}
