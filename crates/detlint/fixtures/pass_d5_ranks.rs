// Fixture: linted as crates/core/src/good.rs — the sanctioned deterministic
// fan-out (DESIGN.md §8): scoped threads fill disjoint per-rank buffers and
// the caller merges them serially in fixed rank order with wrapping adds.
// Reducers inside the spawned closures operate on private data only.

pub fn rank_sums(items: &mut [Vec<i64>]) -> i64 {
    std::thread::scope(|s| {
        for chunk in items.chunks_mut(2) {
            s.spawn(move || {
                for buf in chunk.iter_mut() {
                    let local: i64 = buf.iter().copied().sum();
                    buf.push(local);
                }
            });
        }
    });
    let mut total: i64 = 0;
    for buf in items.iter() {
        total = total.wrapping_add(*buf.last().unwrap());
    }
    total
}
