// Fixture: linted as crates/trace/src/bad.rs — the trace crate sits on the
// simulation path, so an unsanctioned wall-clock read (no allow directive)
// is a D4 violation like anywhere else in the deterministic core.

use std::time::Instant;

pub fn timestamp_ns() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}
