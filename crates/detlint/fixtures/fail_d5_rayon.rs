// Fixture: linted as crates/ewald/src/bad.rs — D5 fires on order-sensitive
// reductions downstream of a rayon parallel iterator.

pub fn energy(contributions: &[f64]) -> f64 {
    contributions.par_iter().map(|x| x * x).sum::<f64>()
}

pub fn max_is_fine(contributions: &[u64]) -> u64 {
    contributions.par_iter().copied().max().unwrap_or(0)
}
