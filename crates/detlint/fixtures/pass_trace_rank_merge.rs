// Fixture: linted as crates/trace/src/good.rs — the sanctioned trace shape.
// The single wall-clock read sits behind an audited detlint::allow(D4);
// per-rank lanes are filled by scoped workers (private buffers, integer
// timestamps only) and drained serially in fixed rank order.

pub struct TraceClock {
    // detlint::allow(D4, reason = "trace clock origin: measured ns are observability payload only; no trace value ever flows back into simulation state")
    origin: std::time::Instant,
}

impl TraceClock {
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

pub struct Lane {
    pub entries: Vec<(u64, u64)>,
}

pub fn record_and_merge(lanes: &mut [Lane], clock: &TraceClock) -> Vec<(u32, u64, u64)> {
    std::thread::scope(|s| {
        for lane in lanes.iter_mut() {
            s.spawn(move || {
                let t = clock.now_ns();
                lane.entries.push((t, clock.now_ns()));
            });
        }
    });
    // Deterministic merge: slice order is rank order, never finish order.
    let mut spans = Vec::new();
    for (rank, lane) in lanes.iter_mut().enumerate() {
        for (start, end) in lane.entries.drain(..) {
            spans.push((rank as u32, start, end));
        }
    }
    spans
}
