// Fixture: linted as crates/core/src/bad.rs — D7 fires on unchecked
// arithmetic adjacent to a raw fixed-point read: outside fixpoint's
// wrapper modules the bare ops panic in debug and silently wrap in
// release, off the sanctioned two's-complement path.

use anton_fixpoint::{Fx32, Q20};

pub fn drift(a: Fx32, b: Fx32) -> i32 {
    a.raw() + b.raw()
}

pub fn scaled(q: Q20) -> i64 {
    q.raw() << 4
}

pub fn lever(q: Q20, k: i64) -> i64 {
    k * q.raw()
}

pub fn span(a: Q20, b: Q20) -> i64 {
    a.raw() - b.raw()
}

pub fn compare_is_fine(a: Fx32, b: Fx32) -> bool {
    a.raw() == b.raw()
}

pub fn index_is_fine(cells: &[u32], q: Q20) -> u32 {
    cells[q.raw() as usize]
}
