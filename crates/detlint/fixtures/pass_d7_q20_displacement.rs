// Fixture: linted as crates/core/src/good.rs — the displacement monitor in
// its sanctioned shape: minimum-image displacements via wrapping_sub, the
// doubled-threshold test via the audited shift with its headroom argument,
// and raw reads confined to comparisons.

use anton_fixpoint::{Fx32, Q20};

pub fn displacement(cur: Fx32, reference: Fx32) -> Fx32 {
    // Wrapping subtraction *is* the minimum-image convention in box-fraction
    // coordinates; no raw arithmetic escapes the wrapper.
    cur.wrapping_sub(reference)
}

pub fn crossed(max_disp: Q20, slack: Q20) -> bool {
    // detlint::allow(D7, reason = "2*max_disp with max_disp bounded by the pairlist slack, orders of magnitude under the Q20 headroom; audited in DESIGN.md §15")
    (max_disp.raw() << 1) >= slack.raw()
}

pub fn epoch_unchanged(a: Fx32, b: Fx32) -> bool {
    a.raw() == b.raw()
}
