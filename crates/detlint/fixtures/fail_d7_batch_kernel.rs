// Fixture: linted as crates/core/src/bad.rs — D7 fires on a match-batch
// kernel doing bare arithmetic on raw fixed-point lanes: the unchecked ops
// panic in debug and silently wrap in release, off the sanctioned
// two's-complement path the batch pipeline is audited against.

use anton_fixpoint::{Fx32, Q20};

pub fn lane_delta(x: [Fx32; 8], y: [Fx32; 8], lane: usize) -> i32 {
    x[lane].raw() - y[lane].raw()
}

pub fn lane_r2(d: Q20) -> i64 {
    d.raw() * d.raw()
}

pub fn lane_scaled(d: Q20, half_edge: i64) -> i64 {
    half_edge + d.raw()
}

pub fn lane_widened(d: Q20) -> i64 {
    d.raw() << 20
}

pub fn lane_cutoff_is_fine(r2: Q20, rc2: Q20) -> bool {
    r2.raw() <= rc2.raw()
}
