// Fixture: linted as crates/core/src/good.rs — the sanctioned shapes: all
// arithmetic on fixed-point values goes through the fixpoint wrappers
// (wrapping_add/sub/neg, mul, rne_shr_*); raw reads only feed comparisons,
// indexing, serialization, or explicitly allowed audited sites.

use anton_fixpoint::{Fx32, Q20};

pub fn drift(a: Fx32, b: Fx32) -> Fx32 {
    a.wrapping_add(b)
}

pub fn minimum_image(a: Fx32, b: Fx32) -> Fx32 {
    a.wrapping_sub(b)
}

pub fn product(a: Q20, b: Q20) -> Q20 {
    a.mul(b)
}

pub fn bucket(q: Q20, shift: u32) -> usize {
    (q.raw() >> shift) as usize
}

pub fn audited(q: Q20) -> i64 {
    // detlint::allow(D7, reason = "doubling a Q20 whose magnitude is bounded by the box edge; audited against the Q20 headroom analysis in DESIGN.md")
    q.raw() << 1
}
