// Fixture: linted as crates/trace/src/stamp.rs — a sanctioned-looking
// allow(D4) site. File-by-file this is clean: the allow suppresses D4.
// But the returned value is derived from the wall clock, and the taint
// pass must flag any call chain from a simulation root into it that does
// not pass through an audited boundary.

pub fn host_jitter_ns(step: u64) -> u64 {
    // detlint::allow(D4, reason = "span stamp for observability output")
    let t0 = std::time::Instant::now();
    step ^ t0.elapsed().as_nanos() as u64
}
