// Fixture: linted as crates/fft/src/good.rs — the sanctioned distributed-FFT
// mesh pattern (DESIGN.md §10): scoped workers transform disjoint pencil
// chunks of the grid, and the caller merges per-rank charge meshes serially
// in fixed rank order with wrapping adds. No cross-thread reduction occurs.

pub fn transform_pencils(grid: &mut [i64], pencil: usize) {
    std::thread::scope(|s| {
        for chunk in grid.chunks_mut(pencil) {
            s.spawn(move || {
                for v in chunk.iter_mut() {
                    *v = v.wrapping_mul(3);
                }
            });
        }
    });
}

pub fn merge_rank_meshes(mesh: &mut [i64], per_rank: &[Vec<i64>]) {
    for rank in per_rank.iter() {
        for (a, b) in mesh.iter_mut().zip(rank.iter()) {
            *a = a.wrapping_add(*b);
        }
    }
}
