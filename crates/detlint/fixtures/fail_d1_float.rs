// Fixture: linted as crates/fixpoint/src/fx32.rs — D1 fires on float
// literals and float types outside a declared quantization boundary.

pub fn half(x: f64) -> f64 {
    x * 0.5
}

pub const SCALE: f32 = 1.5e3;
