// Fixture: linted as crates/ewald/src/good.rs — a well-formed allow
// suppresses exactly its rule on the directive line and the next code line.

// detlint::allow(D4, reason = "coarse profiling timer; result never feeds the trajectory")
use std::time::Instant;

pub fn profiled() -> u128 {
    // detlint::allow(D4, reason = "coarse profiling timer; result never feeds the trajectory")
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}
