// Fixture: linted as crates/fixpoint/src/fx32.rs — a declared quantization
// boundary admits D1 floats and D3 casts for the whole following item.

// detlint::boundary(reason = "documented f64 -> fixed quantization edge")
pub fn from_f64(x: f64) -> i32 {
    let scaled = x * (1u64 << 31) as f64;
    scaled as i64 as i32
}

pub fn pure_fixed(a: i32, b: i32) -> i32 {
    a.wrapping_add(b)
}
