// Fixture: linted as crates/ckpt/src/bad.rs — checkpoint file names
// derived from wall-clock time. Recovery order then depends on the host
// clock instead of simulation progress, so D4 fires on both the import
// and the read.

use std::time::SystemTime;

pub fn checkpoint_name() -> String {
    let stamp = SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    format!("ckpt-{stamp}.ant")
}
