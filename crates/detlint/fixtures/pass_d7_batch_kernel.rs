// Fixture: linted as crates/core/src/good.rs — a match-batch kernel in its
// sanctioned shape: raw fraction bits come out of the wrappers once, on
// their own binding, and all arithmetic on them goes through wrapping ops,
// right shifts, and comparisons; the cutoff is a mask, not a branch on
// unchecked arithmetic.

use anton_fixpoint::{Fx32, Q20};

pub fn lane_r2_mask(x: [Fx32; 8], y: [Fx32; 8], cutoff: Q20) -> u8 {
    let limit = cutoff.raw();
    let mut mask = 0u8;
    for lane in 0..8 {
        let dx = x[lane].wrapping_sub(y[lane]);
        let d = dx.raw();
        let lb = (i64::from(d).wrapping_mul(i64::from(d))) >> 31;
        if lb <= limit {
            mask |= 1u8 << lane;
        }
    }
    mask
}

pub fn lane_bucket(q: Q20, shift: u32) -> usize {
    (q.raw() >> shift) as usize
}
