// Fixture: linted as crates/core/src/bad.rs — D4 fires on wall-clock and
// thread-topology reads on the simulation path.

use std::time::Instant;

pub fn adaptive_budget() -> u64 {
    let t0 = Instant::now();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    t0.elapsed().as_nanos() as u64 * threads as u64
}
