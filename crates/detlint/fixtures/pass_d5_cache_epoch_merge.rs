// Fixture: linted as crates/core/src/good.rs — the displacement monitor in
// its sanctioned shape: scoped workers write each slab's maximum into its
// own pre-allocated slot, then the caller folds the slots serially in slab
// order. The rebuild decision is a pure function of the trajectory — the
// same epoch schedule on every node count, thread count, and rerun.

pub fn slab_maxima(slabs: &mut [(Vec<i64>, i64)]) {
    std::thread::scope(|s| {
        for (disps, max_out) in slabs.iter_mut() {
            s.spawn(move || {
                for &d in disps.iter() {
                    if d > *max_out {
                        *max_out = d;
                    }
                }
            });
        }
    });
}

pub fn rebuild_epoch(slabs: &mut [(Vec<i64>, i64)], threshold: i64) -> bool {
    slab_maxima(slabs);
    // Serial merge in slab order: deterministic regardless of which worker
    // finished first (max is order-free today, but the shape stays safe if
    // the combine ever becomes order-sensitive).
    let mut max_disp = 0i64;
    for (_, m) in slabs.iter() {
        max_disp = max_disp.max(*m);
    }
    max_disp >= threshold
}
