// Fixture: linted as crates/trace/src/stamp.rs — the audited resolution of
// the d6_source.rs leak: the item is declared a boundary, asserting (with
// a reviewed reason) that nondeterminism is structurally absorbed here and
// cannot influence simulation state. The taint pass treats the item as
// opaque: taint neither seeds inside it nor flows through it.

// detlint::boundary(reason = "audited absorber: the jitter value is folded into an observability stamp that never reaches an accumulator; callers receive a value used only for trace payload")
pub fn host_jitter_ns(step: u64) -> u64 {
    // detlint::allow(D4, reason = "span stamp for observability output")
    let t0 = std::time::Instant::now();
    step ^ t0.elapsed().as_nanos() as u64
}
