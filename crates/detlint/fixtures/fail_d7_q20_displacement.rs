// Fixture: linted as crates/core/src/bad.rs — D7 fires on bare arithmetic
// over raw Q20 displacement components in a match-cache monitor: outside
// the fixpoint wrappers the subtraction panics in debug and wraps in
// release, and the doubled threshold comparison silently loses the top bit
// for displacements near the Q20 headroom.

use anton_fixpoint::{Fx32, Q20};

pub fn displacement(cur: Fx32, reference: Fx32) -> i32 {
    cur.raw() - reference.raw()
}

pub fn crossed(max_disp: Q20, slack: Q20) -> bool {
    2 * max_disp.raw() >= slack.raw()
}

pub fn padded(d: Q20) -> i64 {
    d.raw() << 1
}

pub fn epoch_unchanged(a: Fx32, b: Fx32) -> bool {
    // Comparisons on the raw representation stay fine.
    a.raw() == b.raw()
}
