// Fixture: linted as crates/ckpt/src/good.rs — the sanctioned payload
// shape: every integer crosses into bytes through an explicit little-
// endian encode, and the one untyped byte view (UTF-8 text) carries an
// audited allow.

pub fn encode_step(step: u64, out: &mut Vec<u8>) {
    out.extend_from_slice(&step.to_le_bytes());
}

pub fn decode_step(b: [u8; 8]) -> u64 {
    u64::from_le_bytes(b)
}

pub fn hash_name(h: &mut u64, name: &str) {
    // detlint::allow(D8, reason = "str::as_bytes is UTF-8: a byte sequence with no host-endian structure")
    for &b in name.as_bytes() {
        *h = (*h ^ b as u64).wrapping_mul(0x100000001b3);
    }
}
