// Fixture: linted as crates/core/src/good.rs — the batched match/evaluate
// fan-out in its sanctioned shape: scoped workers fill disjoint per-rank
// batch queues (private force buffers included), then the caller walks the
// queues serially in fixed rank order and merges with wrapping adds. No
// reduction ever sees data in thread-completion order.

pub struct RankBatches {
    pub lanes: Vec<[i64; 8]>,
    pub forces: Vec<i64>,
}

pub fn fanout_and_merge(ranks: &mut [RankBatches], out: &mut [i64]) {
    std::thread::scope(|s| {
        for rank in ranks.iter_mut() {
            s.spawn(move || {
                for lane in rank.lanes.iter() {
                    let local: i64 = lane.iter().copied().sum();
                    rank.forces.push(local);
                }
            });
        }
    });
    // Serial merge in rank order: batch lane order is the force order.
    for rank in ranks.iter() {
        for (slot, f) in rank.forces.iter().enumerate() {
            out[slot % out.len()] = out[slot % out.len()].wrapping_add(*f);
        }
    }
}
