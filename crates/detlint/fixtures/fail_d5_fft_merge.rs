// Fixture: linted as crates/fft/src/bad.rs — D5 fires when distributed-FFT
// pencil results drain off a channel straight into a reduction: the merge
// order is the worker finish order, not the fixed rank order.

pub fn merged_charge(rx: &std::sync::mpsc::Receiver<f64>) -> f64 {
    rx.try_iter().fold(0.0, |acc, q| acc + q)
}

pub fn pencil_count(rx: &std::sync::mpsc::Receiver<f64>) -> usize {
    // Order-insensitive drains stay legal.
    rx.try_iter().count()
}
