// Fixture: linted as crates/nt/src/good.rs — `#[cfg(test)]` regions are
// exempt from every rule.

pub fn shipped(a: u32, b: u32) -> u32 {
    a.wrapping_add(b)
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    use std::time::Instant;

    #[test]
    fn test_code_may_use_anything() {
        let t0 = Instant::now();
        let mut seen = HashSet::new();
        seen.insert(1.5f64.to_bits());
        assert!(t0.elapsed().as_nanos() < u128::MAX && seen.len() == 1);
    }
}
