// Fixture: linted as crates/core/src/bad.rs — D5 fires when evaluated
// batches come back over a channel and merge in arrival order: the energy
// accumulation order is then the thread finish order, not the fixed batch
// order the determinism contract requires.

pub fn merge_batch_energies(rx: &std::sync::mpsc::Receiver<f64>) -> f64 {
    rx.try_iter().sum()
}

pub fn batches_received(rx: &std::sync::mpsc::Receiver<f64>) -> usize {
    // Order-insensitive combinators are fine even on a channel drain.
    rx.try_iter().count()
}
