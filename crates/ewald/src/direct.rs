//! Direct-space (range-limited) pair kernels.
//!
//! These are the interactions Anton computes on the HTIS PPIP array: the
//! erfc-screened Coulomb term of the Ewald decomposition plus Lennard-Jones,
//! for every pair under the cutoff. Excluded pairs and scaled 1-4 pairs are
//! handled as *correction forces* (paper §3.1), which on Anton run on the
//! correction pipeline in the flexible subsystem.

use anton_forcefield::units::{erf, erfc, COULOMB};

/// Fast erfc with ~1.5e-7 absolute error (Abramowitz & Stegun 7.1.26),
/// matching what throughput-oriented MD codes use in their inner loops.
#[inline]
pub fn erfc_fast(x: f64) -> f64 {
    debug_assert!(x >= 0.0);
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

/// How a pair participates in the nonbonded sums.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairClass {
    /// Full interaction (not excluded).
    Normal,
    /// 1-2/1-3: no direct interaction; reciprocal-space contribution must be
    /// cancelled by a correction force.
    Excluded,
    /// 1-4: scaled by the force-field policy.
    Scaled14,
}

/// Direct-space kernel bound to an Ewald splitting parameter.
#[derive(Clone, Copy, Debug)]
pub struct DirectKernel {
    pub beta: f64,
    pub cutoff: f64,
    /// Use the fast erfc approximation (production path) instead of the
    /// high-accuracy one (reference path).
    pub fast_erfc: bool,
}

impl DirectKernel {
    pub fn new(beta: f64, cutoff: f64) -> DirectKernel {
        DirectKernel {
            beta,
            cutoff,
            fast_erfc: true,
        }
    }

    pub fn reference(beta: f64, cutoff: f64) -> DirectKernel {
        DirectKernel {
            beta,
            cutoff,
            fast_erfc: false,
        }
    }

    #[inline]
    fn erfc_impl(&self, x: f64) -> f64 {
        if self.fast_erfc {
            erfc_fast(x)
        } else {
            erfc(x)
        }
    }

    /// Energy and `force/r` of the screened Coulomb term `qq·erfc(βr)/r`
    /// (energy in kcal/mol with `qq` in e²; multiply `f_over_r` by the
    /// displacement vector to get the force on atom i for `d = r_i - r_j`).
    #[inline]
    pub fn coulomb(&self, qq: f64, r2: f64) -> (f64, f64) {
        let r = r2.sqrt();
        let x = self.beta * r;
        let erfc_x = self.erfc_impl(x);
        let e = COULOMB * qq * erfc_x / r;
        // d/dr [erfc(βr)/r] = -erfc/r² - (2β/√π) e^{-β²r²} / r.
        let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
        let f_over_r =
            COULOMB * qq * (erfc_x / r + two_over_sqrt_pi * self.beta * (-x * x).exp()) / r2;
        (e, f_over_r)
    }

    /// Correction removing the reciprocal-space contribution of an excluded
    /// pair: `U = -qq·erf(βr)/r` (always uses the accurate erf — corrections
    /// are cheap and must cancel the mesh term precisely).
    #[inline]
    pub fn exclusion_correction(&self, qq: f64, r2: f64) -> (f64, f64) {
        let r = r2.sqrt();
        let x = self.beta * r;
        let erf_x = erf(x);
        let e = -COULOMB * qq * erf_x / r;
        let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
        // d/dr [erf(βr)/r] = -erf/r² + (2β/√π) e^{-β²r²}/r; force = -qq·d/dr(..)·(-1)...
        let f_over_r =
            -COULOMB * qq * (erf_x / r - two_over_sqrt_pi * self.beta * (-x * x).exp()) / r2;
        (e, f_over_r)
    }

    /// Batched form of [`Self::exclusion_correction`]: evaluate up to eight
    /// correction pairs at once, the correction pipeline's analogue of the
    /// HTIS match batch. Lane `k` of `out` receives `(e, f_over_r)` when
    /// mask bit `k` is set (unset lanes are zeroed); each set lane is
    /// bitwise identical to a scalar [`Self::exclusion_correction`] call
    /// with that lane's inputs.
    #[inline]
    pub fn exclusion_correction_batch(
        &self,
        qq: &[f64; 8],
        r2: &[f64; 8],
        mask: u8,
        out: &mut [(f64, f64); 8],
    ) {
        for lane in 0..8 {
            if mask & (1u8 << lane) == 0 {
                out[lane] = (0.0, 0.0);
                continue;
            }
            out[lane] = self.exclusion_correction(qq[lane], r2[lane]);
        }
    }

    /// Combined energy and `force/r` for one range-limited pair, LJ included.
    /// `scale_elec`/`scale_lj` implement 1-4 policies (1.0 for normal pairs).
    #[inline]
    pub fn pair(
        &self,
        qq: f64,
        lj_a: f64,
        lj_b: f64,
        r2: f64,
        scale_elec: f64,
        scale_lj: f64,
    ) -> (f64, f64) {
        let (e_c, f_c) = self.coulomb(qq, r2);
        let inv_r2 = 1.0 / r2;
        let inv_r6 = inv_r2 * inv_r2 * inv_r2;
        let e_lj = lj_a * inv_r6 * inv_r6 - lj_b * inv_r6;
        let f_lj = (12.0 * lj_a * inv_r6 * inv_r6 - 6.0 * lj_b * inv_r6) * inv_r2;
        (
            scale_elec * e_c + scale_lj * e_lj,
            scale_elec * f_c + scale_lj * f_lj,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_erfc_close_to_accurate() {
        for i in 0..500 {
            let x = i as f64 * 0.01;
            assert!((erfc_fast(x) - erfc(x)).abs() < 2e-7, "x={x}");
        }
    }

    #[test]
    fn correction_batch_lanes_match_scalar_bitwise() {
        let k = DirectKernel::reference(0.31, 9.0);
        let mut qq = [0.0f64; 8];
        let mut r2 = [0.0f64; 8];
        for lane in 0..8 {
            qq[lane] = (lane as f64 - 3.5) * 0.12;
            r2[lane] = 1.0 + lane as f64 * 0.9;
        }
        for mask in [0xffu8, 0x00, 0xa5, 0x01, 0x80] {
            let mut out = [(0.0, 0.0); 8];
            k.exclusion_correction_batch(&qq, &r2, mask, &mut out);
            for lane in 0..8 {
                if mask & (1 << lane) == 0 {
                    assert_eq!(out[lane], (0.0, 0.0));
                    continue;
                }
                let (e, f) = k.exclusion_correction(qq[lane], r2[lane]);
                assert_eq!(out[lane].0.to_bits(), e.to_bits(), "lane {lane}");
                assert_eq!(out[lane].1.to_bits(), f.to_bits(), "lane {lane}");
            }
        }
    }

    #[test]
    fn coulomb_force_is_gradient() {
        let k = DirectKernel::reference(0.3, 12.0);
        for &r in &[2.0f64, 4.0, 8.0, 11.0] {
            let h = 1e-6;
            let (ep, _) = k.coulomb(1.0, (r + h) * (r + h));
            let (em, _) = k.coulomb(1.0, (r - h) * (r - h));
            let dudr = (ep - em) / (2.0 * h);
            let (_, f_over_r) = k.coulomb(1.0, r * r);
            assert!(
                (f_over_r * r + dudr).abs() < 1e-4 * (1.0 + dudr.abs()),
                "r={r}: {} vs {}",
                f_over_r * r,
                -dudr
            );
        }
    }

    #[test]
    fn exclusion_correction_is_gradient() {
        let k = DirectKernel::reference(0.3, 12.0);
        for &r in &[1.0f64, 2.0, 3.5] {
            let h = 1e-6;
            let (ep, _) = k.exclusion_correction(0.5, (r + h) * (r + h));
            let (em, _) = k.exclusion_correction(0.5, (r - h) * (r - h));
            let dudr = (ep - em) / (2.0 * h);
            let (_, f_over_r) = k.exclusion_correction(0.5, r * r);
            assert!(
                (f_over_r * r + dudr).abs() < 1e-4 * (1.0 + dudr.abs()),
                "r={r}"
            );
        }
    }

    #[test]
    fn erfc_plus_erf_parts_sum_to_bare_coulomb() {
        // The direct term plus the (negated) exclusion correction must equal
        // the full 1/r interaction: erfc + erf = 1.
        let k = DirectKernel::reference(0.35, 12.0);
        let r2: f64 = 9.0;
        let (e_direct, f_direct) = k.coulomb(0.8, r2);
        let (e_corr, f_corr) = k.exclusion_correction(0.8, r2);
        let e_bare = COULOMB * 0.8 / 3.0;
        let f_bare = COULOMB * 0.8 / (3.0 * 9.0);
        assert!((e_direct - e_corr - e_bare).abs() < 1e-9);
        assert!((f_direct - f_corr - f_bare).abs() < 1e-9);
    }

    #[test]
    fn pair_kernel_applies_scales() {
        let k = DirectKernel::new(0.3, 12.0);
        let (e_full, f_full) = k.pair(0.25, 1000.0, 30.0, 10.0, 1.0, 1.0);
        let (e_half, f_half) = k.pair(0.25, 1000.0, 30.0, 10.0, 0.5, 0.5);
        assert!((e_half * 2.0 - e_full).abs() < 1e-12);
        assert!((f_half * 2.0 - f_full).abs() < 1e-12);
    }
}
