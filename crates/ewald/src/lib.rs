//! Ewald electrostatics: the decomposition at the heart of the paper's §2.1.
//!
//! The Ewald decomposition splits the Coulomb interaction into a rapidly
//! decaying direct-space part (`erfc(βr)/r`, evaluated pairwise under a
//! cutoff together with van der Waals forces — the *range-limited
//! interactions*) and a smooth long-range part evaluated on a mesh via FFTs.
//!
//! * [`direct`] — per-pair direct-space kernels (erfc-Coulomb + LJ), the
//!   excluded-pair *correction forces* of §3.1, and 1-4 scaling.
//! * [`gse`] — Gaussian Split Ewald (Shan et al. 2005), the method Anton
//!   uses because its radially symmetric Gaussian charge spreading and force
//!   interpolation map onto the HTIS pairwise pipelines, unlike SPME's
//!   B-splines. Includes both an `f64` reference path and the deterministic
//!   fixed-point mesh pipeline the Anton engine runs.
//! * [`spme`] — Smooth Particle Mesh Ewald with order-4 B-splines, the
//!   commodity-hardware baseline (GROMACS/Desmond-style) used by `refmd`.
//! * [`exact`] — brute-force Ewald sums (direct k-space summation) used as
//!   ground truth on small systems and for the "conservative parameters"
//!   force-error references of Table 4.
//! * [`mesh`] — shared mesh/k-vector bookkeeping.

pub mod direct;
pub mod exact;
pub mod gse;
pub mod mesh;
pub mod spme;

pub use direct::{DirectKernel, PairClass};
pub use gse::{
    GseFixed, GseParams, GseReference, GseScratch, MeshAtoms, SupportScratch, TransformStage,
};
pub use mesh::Mesh;
pub use spme::Spme;
