//! Mesh and k-vector bookkeeping shared by the mesh-Ewald methods.

use anton_geometry::{PeriodicBox, Vec3};

/// A regular mesh over a periodic box, x-fastest storage
/// (`index(x,y,z) = x + nx (y + ny z)`).
#[derive(Clone, Debug)]
pub struct Mesh {
    pub dims: [usize; 3],
    pub pbox: PeriodicBox,
}

impl Mesh {
    pub fn new(dims: [usize; 3], pbox: PeriodicBox) -> Mesh {
        assert!(
            dims.iter().all(|&d| d.is_power_of_two()),
            "mesh dims must be powers of two"
        );
        Mesh { dims, pbox }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mesh spacing per axis (Å).
    #[inline]
    pub fn spacing(&self) -> Vec3 {
        let e = self.pbox.edge();
        Vec3::new(
            e.x / self.dims[0] as f64,
            e.y / self.dims[1] as f64,
            e.z / self.dims[2] as f64,
        )
    }

    /// Volume per mesh cell (Å³).
    #[inline]
    pub fn cell_volume(&self) -> f64 {
        let s = self.spacing();
        s.x * s.y * s.z
    }

    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.dims[0] && y < self.dims[1] && z < self.dims[2]);
        x + self.dims[0] * (y + self.dims[1] * z)
    }

    /// Cartesian position of a mesh point.
    #[inline]
    pub fn point(&self, x: usize, y: usize, z: usize) -> Vec3 {
        let s = self.spacing();
        Vec3::new(x as f64 * s.x, y as f64 * s.y, z as f64 * s.z)
    }

    /// Physical wave vector of FFT bin `(kx, ky, kz)` using the minimum-image
    /// frequency convention (components in `(-π/h, π/h]`).
    #[inline]
    pub fn wave_vector(&self, kx: usize, ky: usize, kz: usize) -> Vec3 {
        let e = self.pbox.edge();
        let fold = |k: usize, n: usize| -> f64 {
            let k = k as i64;
            let n = n as i64;
            (if k <= n / 2 { k } else { k - n }) as f64
        };
        Vec3::new(
            2.0 * std::f64::consts::PI * fold(kx, self.dims[0]) / e.x,
            2.0 * std::f64::consts::PI * fold(ky, self.dims[1]) / e.y,
            2.0 * std::f64::consts::PI * fold(kz, self.dims[2]) / e.z,
        )
    }

    /// The mesh-point index range an atom at `pos` touches within `reach` Å
    /// along one `axis`, returned as (start_cell, count); indices need
    /// wrapping by the caller.
    #[inline]
    pub fn support(&self, pos: f64, reach: f64, axis: usize) -> (i64, usize) {
        let h = match axis {
            0 => self.spacing().x,
            1 => self.spacing().y,
            _ => self.spacing().z,
        };
        let lo = ((pos - reach) / h).ceil() as i64;
        let hi = ((pos + reach) / h).floor() as i64;
        (lo, (hi - lo + 1).max(0) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_vector_folding() {
        let m = Mesh::new([8, 8, 8], PeriodicBox::cubic(16.0));
        let k0 = m.wave_vector(0, 0, 0);
        assert_eq!(k0, Vec3::ZERO);
        let k1 = m.wave_vector(1, 0, 0);
        assert!((k1.x - 2.0 * std::f64::consts::PI / 16.0).abs() < 1e-15);
        // Bin 7 of 8 folds to -1.
        let k7 = m.wave_vector(7, 0, 0);
        assert!((k7.x + 2.0 * std::f64::consts::PI / 16.0).abs() < 1e-15);
        // Nyquist bin stays positive.
        let k4 = m.wave_vector(4, 0, 0);
        assert!(k4.x > 0.0);
    }

    #[test]
    fn support_covers_reach() {
        let m = Mesh::new([32, 32, 32], PeriodicBox::cubic(32.0));
        // h = 1 Å; atom at 10.3 with reach 2 → cells 9..=12.
        let (lo, n) = m.support(10.3, 2.0, 0);
        assert_eq!(lo, 9);
        assert_eq!(n, 4);
    }

    #[test]
    fn cell_volume() {
        let m = Mesh::new([32, 32, 32], PeriodicBox::cubic(64.0));
        assert!((m.cell_volume() - 8.0).abs() < 1e-12);
        assert_eq!(m.len(), 32768);
    }
}
