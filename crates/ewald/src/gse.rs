//! Gaussian Split Ewald (GSE).
//!
//! Most high-performance codes use SPME, whose B-spline charge assignment is
//! incompatible with Anton's PPIPs: the pipelines compute interactions as a
//! *table-driven function of the distance* between two points. GSE (Shan,
//! Klepeis, Eastwood, Dror & Shaw 2005) replaces the B-splines with radially
//! symmetric Gaussians, which let Anton run charge spreading and force
//! interpolation on the HTIS "with minimal hardware modification" (§3.1).
//!
//! The decomposition: with Ewald splitting parameter β, the reciprocal-space
//! interaction is a Gaussian-screened Coulomb term of total variance
//! σ² = 1/(2β²). GSE realizes it as
//!
//! ```text
//!   spread (σ_s)  →  Fourier multiply (4π/k²)·exp(-σ_r²k²/2)  →  interpolate (σ_s)
//! ```
//!
//! with σ² = 2σ_s² + σ_r². Spreading and interpolation use the *same*
//! truncated Gaussian window, so the interpolated force is the exact gradient
//! of the mesh energy. The window is shifted to zero at its truncation radius
//! (per axis) so that the energy is continuous when an atom's mesh support
//! set changes — this keeps the NVE energy drift small.
//!
//! Two implementations share the math:
//! * [`GseReference`] — `f64`, used by tests and the reference engine.
//! * [`GseFixed`] — the deterministic path the Anton engine runs: fixed-point
//!   mesh accumulation (order-free wrapping adds), the *distributed*
//!   fixed-point pencil-exchange FFT of `anton-fft` (planned for the
//!   simulated node grid), and quantized Green's-function coefficients. The
//!   phase decomposes as per-rank spreading ([`GseFixed::spread_into`]) →
//!   rank-ordered mesh merge → FFT trunk ([`GseFixed::transform`]) →
//!   per-rank interpolation ([`GseFixed::interpolate_into`]); its output is
//!   bitwise independent of how atoms are distributed across nodes/threads.
//!   All hot-path buffers live in a caller-owned [`GseScratch`], so steady
//!   state evaluations are allocation-free.

use crate::mesh::Mesh;
use anton_fft::fixed::FxComplex;
use anton_fft::{CommStats, Complex, Fft3d, FxDistributedFft3d};
use anton_fixpoint::rounding::rne_f64;
use anton_forcefield::units::COULOMB;
use anton_geometry::Vec3;

/// GSE parameters.
#[derive(Clone, Copy, Debug)]
pub struct GseParams {
    /// Ewald splitting parameter (1/Å).
    pub beta: f64,
    /// Spreading/interpolation Gaussian width (Å).
    pub sigma_s: f64,
    /// Remaining Fourier-space variance σ_r² = σ² − 2σ_s² ≥ 0 (Å²).
    pub sigma_r2: f64,
    /// Truncation radius of the spreading window (Å).
    pub spread_cutoff: f64,
}

impl GseParams {
    /// Derive parameters from a direct-space cutoff and spreading cutoff:
    /// β makes erfc(β·rc) = 1e-5; σ_s takes (almost) all of the smearing the
    /// mesh can absorb, capped so the spreading window fits `spread_cutoff`.
    pub fn auto(cutoff: f64, spread_cutoff: f64) -> GseParams {
        // erfc(x) = 1e-5 at x ≈ 3.123.
        let beta = 3.123 / cutoff;
        let sigma2 = 1.0 / (2.0 * beta * beta);
        // σ_s at 98% of the budget keeps σ_r² ≥ 0 with a little slack, and
        // never wider than the truncation radius allows (4.2 σ).
        let sigma_s = (0.98 * (sigma2 / 2.0).sqrt()).min(spread_cutoff / 4.2);
        let sigma_r2 = (sigma2 - 2.0 * sigma_s * sigma_s).max(0.0);
        GseParams {
            beta,
            sigma_s,
            sigma_r2,
            spread_cutoff,
        }
    }

    /// The per-axis window: a truncated, shifted Gaussian
    /// `w(d) = exp(-d²/2σ_s²) − exp(-r_t²/2σ_s²)` for `|d| < r_t`, else 0.
    #[inline]
    pub fn window_1d(&self, d: f64) -> f64 {
        let s2 = self.sigma_s * self.sigma_s;
        let shift = (-self.spread_cutoff * self.spread_cutoff / (2.0 * s2)).exp();
        if d.abs() >= self.spread_cutoff {
            0.0
        } else {
            (-d * d / (2.0 * s2)).exp() - shift
        }
    }

    /// Derivative of [`Self::window_1d`].
    #[inline]
    pub fn window_1d_deriv(&self, d: f64) -> f64 {
        let s2 = self.sigma_s * self.sigma_s;
        if d.abs() >= self.spread_cutoff {
            0.0
        } else {
            -d / s2 * (-d * d / (2.0 * s2)).exp()
        }
    }

    /// Normalization constant of the 3D window (inverse of its integral),
    /// so that a spread charge integrates to the point charge.
    pub fn norm(&self) -> f64 {
        // ∫w dx = σ√(2π)·erf(rt/σ√2) − 2 rt · shift.
        let s = self.sigma_s;
        let rt = self.spread_cutoff;
        let shift = (-rt * rt / (2.0 * s * s)).exp();
        let integral_1d = s
            * (2.0 * std::f64::consts::PI).sqrt()
            * anton_forcefield::units::erf(rt / (s * std::f64::consts::SQRT_2))
            - 2.0 * rt * shift;
        1.0 / (integral_1d * integral_1d * integral_1d)
    }

    /// Fourier-space Green's function (Å² units; no Coulomb constant):
    /// `4π/k² · exp(-(σ_r² + corrections) k²/2)` with the two window
    /// convolutions compensated analytically as pure Gaussians.
    #[inline]
    pub fn green(&self, k2: f64) -> f64 {
        if k2 < 1e-12 {
            0.0 // tinfoil boundary, neutral system
        } else {
            4.0 * std::f64::consts::PI / k2 * (-self.sigma_r2 * k2 / 2.0).exp()
        }
    }
}

/// Reusable per-axis window/derivative buffers for the separable support
/// iteration. One lives in every rank's private mesh scratch so the hot
/// path never allocates; the reference path makes throwaway ones.
#[derive(Clone, Debug, Default)]
pub struct SupportScratch {
    wx: Vec<f64>,
    dwx: Vec<f64>,
    wy: Vec<f64>,
    dwy: Vec<f64>,
    wz: Vec<f64>,
    dwz: Vec<f64>,
}

/// Visit every mesh point within the (per-axis) support of the window
/// around `p`, passing the flattened index, the window value, and its
/// gradient with respect to the atom position. Shared by the reference and
/// fixed-point paths; `s` holds the separable per-axis tables, reused
/// across calls.
pub fn visit_support(
    mesh: &Mesh,
    params: &GseParams,
    p: Vec3,
    s: &mut SupportScratch,
    mut f: impl FnMut(usize, f64, Vec3),
) {
    let [nx, ny, nz] = mesh.dims;
    let rt = params.spread_cutoff;
    let (x0, cx) = mesh.support(p.x, rt, 0);
    let (y0, cy) = mesh.support(p.y, rt, 1);
    let (z0, cz) = mesh.support(p.z, rt, 2);
    let h = mesh.spacing();

    // Per-axis window values and derivatives (separable).
    s.wx.clear();
    s.dwx.clear();
    for a in 0..cx {
        let d = p.x - (x0 + a as i64) as f64 * h.x;
        s.wx.push(params.window_1d(d));
        s.dwx.push(params.window_1d_deriv(d));
    }
    s.wy.clear();
    s.dwy.clear();
    for b in 0..cy {
        let d = p.y - (y0 + b as i64) as f64 * h.y;
        s.wy.push(params.window_1d(d));
        s.dwy.push(params.window_1d_deriv(d));
    }
    s.wz.clear();
    s.dwz.clear();
    for c in 0..cz {
        let d = p.z - (z0 + c as i64) as f64 * h.z;
        s.wz.push(params.window_1d(d));
        s.dwz.push(params.window_1d_deriv(d));
    }

    for c in 0..cz {
        let mz = (z0 + c as i64).rem_euclid(nz as i64) as usize;
        for b in 0..cy {
            let my = (y0 + b as i64).rem_euclid(ny as i64) as usize;
            let base = nx * (my + ny * mz);
            for a in 0..cx {
                let mx = (x0 + a as i64).rem_euclid(nx as i64) as usize;
                let w = s.wx[a] * s.wy[b] * s.wz[c];
                let grad = Vec3::new(
                    s.dwx[a] * s.wy[b] * s.wz[c],
                    s.wx[a] * s.dwy[b] * s.wz[c],
                    s.wx[a] * s.wy[b] * s.dwz[c],
                );
                f(base + mx, w, grad);
            }
        }
    }
}

/// Double-precision GSE on a mesh.
pub struct GseReference {
    pub mesh: Mesh,
    pub params: GseParams,
    fft: Fft3d,
    green: Vec<f64>,
}

/// Result of one reciprocal-space evaluation.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecipEnergy {
    /// Mesh (reciprocal) energy including the self-term (kcal/mol).
    pub mesh_energy: f64,
    /// Analytic self-energy already subtracted from `energy`.
    pub self_energy: f64,
    /// mesh_energy − self_energy.
    pub energy: f64,
}

impl GseReference {
    pub fn new(mesh: Mesh, params: GseParams) -> GseReference {
        let [nx, ny, nz] = mesh.dims;
        let fft = Fft3d::new(nx, ny, nz);
        let green = build_green_table(&mesh, &params);
        GseReference {
            mesh,
            params,
            fft,
            green,
        }
    }

    /// Compute reciprocal-space energy and add forces into `forces`.
    pub fn compute(&self, positions: &[Vec3], charges: &[f64], forces: &mut [Vec3]) -> RecipEnergy {
        let n_mesh = self.mesh.len();
        let mut rho = vec![0.0f64; n_mesh];
        let norm = self.params.norm();

        // 1. Charge spreading.
        for (p, &q) in positions.iter().zip(charges) {
            if q == 0.0 {
                continue;
            }
            self.spread_one(*p, q * norm, &mut rho);
        }

        // 2. FFT → Green multiply → inverse FFT.
        let mut grid: Vec<Complex> = rho.iter().map(|&r| Complex::new(r, 0.0)).collect();
        self.fft.forward(&mut grid);
        for (g, &gr) in grid.iter_mut().zip(&self.green) {
            *g = g.scale(gr);
        }
        self.fft.inverse(&mut grid);
        let phi: Vec<f64> = grid.iter().map(|c| c.re).collect();

        // 3. Mesh energy ½ ∫φρ ≈ ½ Vc Σ φ_m ρ_m.
        let vc = self.mesh.cell_volume();
        let mesh_energy: f64 =
            0.5 * COULOMB * vc * phi.iter().zip(&rho).map(|(a, b)| a * b).sum::<f64>();

        // 4. Force interpolation with the same window.
        for (i, (p, &q)) in positions.iter().zip(charges).enumerate() {
            if q == 0.0 {
                continue;
            }
            let f = self.interpolate_force(*p, &phi);
            forces[i] += f * (q * norm * vc * COULOMB);
        }

        let self_energy = COULOMB * self.params.beta / std::f64::consts::PI.sqrt()
            * charges.iter().map(|q| q * q).sum::<f64>();
        RecipEnergy {
            mesh_energy,
            self_energy,
            energy: mesh_energy - self_energy,
        }
    }

    /// Interpolated potential at an arbitrary point (used by tests).
    pub fn potential_at(&self, phi: &[f64], p: Vec3) -> f64 {
        let mut acc = 0.0;
        self.for_each_support(p, |idx, w, _dw| acc += phi[idx] * w);
        acc * self.mesh.cell_volume()
    }

    fn spread_one(&self, p: Vec3, qn: f64, rho: &mut [f64]) {
        self.for_each_support(p, |idx, w, _dw| rho[idx] += qn * w);
    }

    fn interpolate_force(&self, p: Vec3, phi: &[f64]) -> Vec3 {
        let mut f = Vec3::ZERO;
        self.for_each_support(p, |idx, _w, dw| f -= phi[idx] * 1.0 * dw);
        f
    }

    fn for_each_support(&self, p: Vec3, f: impl FnMut(usize, f64, Vec3)) {
        visit_support(
            &self.mesh,
            &self.params,
            p,
            &mut SupportScratch::default(),
            f,
        );
    }
}

/// Green table in FFT-bin order. With density samples ρ_m (e/Å³), a plain
/// forward FFT, and a 1/N inverse, the potential samples come out as
/// `φ = IFFT[G(k)·FFT[ρ]]` with **no** volume factors: the continuum pair
/// `ρ̂ = Vc·FFT[ρ]`, `φ_m = (N/V)·IFFT[φ̂]` cancels because `N·Vc = V`.
fn build_green_table(mesh: &Mesh, params: &GseParams) -> Vec<f64> {
    let [nx, ny, nz] = mesh.dims;
    let mut green = vec![0.0; mesh.len()];
    for kz in 0..nz {
        for ky in 0..ny {
            for kx in 0..nx {
                let k = mesh.wave_vector(kx, ky, kz);
                green[mesh.index(kx, ky, kz)] = params.green(k.norm2());
            }
        }
    }
    green
}

// ---------------------------------------------------------------------------
// Fixed-point path
// ---------------------------------------------------------------------------

/// Fraction bits of the fixed-point charge mesh.
pub const MESH_FRAC: u32 = 40;
/// Fraction bits of the quantized Green coefficients.
pub const GREEN_FRAC: u32 = 24;

/// Sub-stage boundaries of the mesh trunk, reported by
/// [`GseFixed::transform_marked`] in this order. The discriminant doubles
/// as an index for observers collecting per-stage timestamps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransformStage {
    /// Charge mesh loaded into the complex grid; forward FFT about to run.
    Begin = 0,
    /// Forward transform done; Green multiply about to run.
    ForwardDone = 1,
    /// Green multiply done; inverse transform about to run.
    GreenDone = 2,
    /// Inverse transform done; potential mesh about to be extracted.
    InverseDone = 3,
}

/// One rank's view of its resident atoms for the mesh phase: the shared
/// position/charge arrays plus the indices of the atoms this rank spreads
/// and interpolates (its home-box population under the decomposition).
#[derive(Clone, Copy)]
pub struct MeshAtoms<'a> {
    pub positions: &'a [Vec3],
    pub charges: &'a [f64],
    /// Atom indices this rank owns.
    pub atoms: &'a [u32],
}

/// Reusable buffers of one reciprocal evaluation — the allocation-free hot
/// path. `rho_q` is the merged charge mesh the FFT trunk consumes; `phi_q`
/// is the potential mesh every rank reads back during interpolation.
#[derive(Clone, Debug, Default)]
pub struct GseScratch {
    /// Q `MESH_FRAC` spread charge (per-rank accumulators are merged into
    /// this in fixed rank order before the FFT).
    pub rho_q: Vec<i64>,
    grid: Vec<FxComplex>,
    /// Q `MESH_FRAC` interpolation potential (shared, read-only fan-out).
    pub phi_q: Vec<i64>,
    line: Vec<FxComplex>,
    stencil: SupportScratch,
}

impl GseScratch {
    /// Reset the charge mesh to `n_mesh` zeros, reusing capacity.
    pub fn begin(&mut self, n_mesh: usize) {
        self.rho_q.clear();
        self.rho_q.resize(n_mesh, 0);
    }
}

/// The deterministic fixed-point GSE pipeline used by the Anton engine.
///
/// Charge spreading accumulates quantized contributions into an `i64` mesh
/// with wrapping adds (order-free → bitwise parallel invariance); the FFT is
/// the distributed fixed-point pencil-exchange transform of `anton-fft`,
/// planned over the simulated node grid; the Green coefficients are
/// quantized once at plan time. Interpolated forces are quantized on output.
pub struct GseFixed {
    pub mesh: Mesh,
    pub params: GseParams,
    fft: FxDistributedFft3d,
    /// Quantized Green table (Q `GREEN_FRAC`), including the volume factor
    /// and the FFT scale compensation (an exact power of two).
    green_q: Vec<i64>,
    /// log2 of the total mesh size (forward FFT scale to undo).
    log2n: u32,
    /// 3D window normalization, a pure function of `params`, fixed at plan
    /// time so the per-atom hot loops never recompute the erf.
    norm: f64,
}

impl GseFixed {
    /// A single-node (undistributed) plan.
    pub fn new(mesh: Mesh, params: GseParams) -> GseFixed {
        GseFixed::with_nodes(mesh, params, [1, 1, 1])
    }

    /// Plan the mesh phase for a simulated `nodes` grid: each node owns a
    /// slab of the mesh and the FFT exchanges pencils over the grid
    /// (paper §3.2.2). Node dimensions are clamped per axis so every one
    /// divides the mesh (both are powers of two). The *results* are bitwise
    /// identical for every grid; only the modeled message pattern changes.
    pub fn with_nodes(mesh: Mesh, params: GseParams, nodes: [usize; 3]) -> GseFixed {
        let dims = mesh.dims;
        let nodes = [
            nodes[0].min(dims[0]),
            nodes[1].min(dims[1]),
            nodes[2].min(dims[2]),
        ];
        let green_f = build_green_table(&mesh, &params);
        let green_q = green_f
            .iter()
            .map(|&g| rne_f64(g * (1i64 << GREEN_FRAC) as f64) as i64)
            .collect();
        let log2n = (mesh.len() as u64).trailing_zeros();
        let norm = params.norm();
        GseFixed {
            fft: FxDistributedFft3d::new(dims, nodes),
            mesh,
            params,
            green_q,
            log2n,
            norm,
        }
    }

    /// The (clamped) node grid the FFT is planned over.
    pub fn node_dims(&self) -> [usize; 3] {
        self.fft.node_dims()
    }

    /// Static pencil-exchange statistics of one 3D transform.
    pub fn fft_stats(&self) -> &CommStats {
        self.fft.stats()
    }

    /// Spread one quantized charge into the mesh (order-free accumulation).
    #[inline]
    fn spread_one(&self, p: Vec3, q: f64, rho_q: &mut [i64], st: &mut SupportScratch) {
        let norm = self.norm;
        let scale = (1i64 << MESH_FRAC) as f64;
        visit_support(&self.mesh, &self.params, p, st, |idx, w, _| {
            let contrib = rne_f64(q * norm * w * scale) as i64;
            rho_q[idx] = rho_q[idx].wrapping_add(contrib);
        });
    }

    /// Interpolate one atom's energy and force from the potential mesh.
    /// Per-atom terms are computed in f64 from the fixed mesh
    /// (deterministic) and quantized before the order-free accumulation.
    #[inline]
    fn interpolate_one(
        &self,
        p: Vec3,
        q: f64,
        phi_q: &[i64],
        force_frac: u32,
        f_out: &mut [i64; 3],
        st: &mut SupportScratch,
    ) -> i64 {
        let inv_scale = 1.0 / (1i64 << MESH_FRAC) as f64;
        let vc = self.mesh.cell_volume();
        let mut e = 0.0f64;
        let mut f = Vec3::ZERO;
        visit_support(&self.mesh, &self.params, p, st, |idx, w, dw| {
            let phi = phi_q[idx] as f64 * inv_scale;
            e += phi * w;
            f -= phi * 1.0 * dw;
        });
        let qn = q * self.norm * vc * COULOMB;
        let e_i = 0.5 * e * qn - COULOMB * self.params.beta / std::f64::consts::PI.sqrt() * q * q;
        let fs = (1i64 << force_frac) as f64;
        f_out[0] = f_out[0].wrapping_add(rne_f64(f.x * qn * fs) as i64);
        f_out[1] = f_out[1].wrapping_add(rne_f64(f.y * qn * fs) as i64);
        f_out[2] = f_out[2].wrapping_add(rne_f64(f.z * qn * fs) as i64);
        rne_f64(e_i * (1u64 << 32) as f64) as i64
    }

    /// Spread a rank's resident atoms into its *private* charge mesh. The
    /// caller merges rank meshes in fixed rank order with wrapping adds —
    /// since every contribution is quantized before accumulation, any
    /// partition of atoms over ranks produces the identical merged mesh.
    pub fn spread_into(&self, view: MeshAtoms, rho_q: &mut [i64], st: &mut SupportScratch) {
        for &a in view.atoms {
            let i = a as usize;
            let q = view.charges[i];
            if q == 0.0 {
                continue;
            }
            self.spread_one(view.positions[i], q, rho_q, st);
        }
    }

    /// Interpolate a rank's resident atoms from the shared potential mesh
    /// into its private force accumulator; returns the rank's Q32
    /// reciprocal-energy contribution (wrapping-accumulated by the caller).
    pub fn interpolate_into(
        &self,
        view: MeshAtoms,
        phi_q: &[i64],
        force_frac: u32,
        forces_raw: &mut [[i64; 3]],
        st: &mut SupportScratch,
    ) -> i64 {
        let mut energy_q: i64 = 0;
        for &a in view.atoms {
            let i = a as usize;
            let q = view.charges[i];
            if q == 0.0 {
                continue;
            }
            energy_q = energy_q.wrapping_add(self.interpolate_one(
                view.positions[i],
                q,
                phi_q,
                force_frac,
                &mut forces_raw[i],
                st,
            ));
        }
        energy_q
    }

    /// The mesh trunk between spreading and interpolation: forward fixed
    /// FFT over `s.rho_q`, Green multiply (Q `GREEN_FRAC`, undoing the
    /// forward 1/N scale with an exact left shift folded into the rounding
    /// shift), inverse fixed FFT; leaves the potential mesh in `s.phi_q`.
    /// Allocation-free in steady state.
    pub fn transform(&self, s: &mut GseScratch) {
        self.transform_marked(s, &mut |_| {});
    }

    /// [`Self::transform`] with sub-stage boundaries reported through
    /// `mark`, so an observer (the tracing layer) can time the forward
    /// transform, the Green multiply, and the inverse transform separately
    /// without this crate knowing about clocks. `mark` receives each
    /// [`TransformStage`] exactly once, in order.
    pub fn transform_marked(&self, s: &mut GseScratch, mark: &mut dyn FnMut(TransformStage)) {
        s.grid.clear();
        s.grid.extend(s.rho_q.iter().map(|&r| FxComplex::new(r, 0)));
        mark(TransformStage::Begin);
        self.fft.forward(&mut s.grid, &mut s.line);
        mark(TransformStage::ForwardDone);
        let shift = GREEN_FRAC.saturating_sub(self.log2n);
        for (g, &gq) in s.grid.iter_mut().zip(&self.green_q) {
            g.re = anton_fixpoint::rne_shr_i128(g.re as i128 * gq as i128, shift);
            g.im = anton_fixpoint::rne_shr_i128(g.im as i128 * gq as i128, shift);
        }
        mark(TransformStage::GreenDone);
        self.fft.inverse(&mut s.grid, &mut s.line);
        mark(TransformStage::InverseDone);
        s.phi_q.clear();
        s.phi_q.extend(s.grid.iter().map(|c| c.re));
    }

    /// Reciprocal-space evaluation over `f64` positions that are understood
    /// to be already quantized (the Anton engine stores fixed-point positions
    /// and hands their exact decoded values here). Forces come back quantized
    /// to `force_frac` bits; the returned energy is quantized to 2⁻³² kcal/mol.
    /// All buffers live in `scratch`, reused across calls.
    ///
    /// Every arithmetic step is a pure function of the inputs with a fixed
    /// dataflow, so results are bitwise reproducible and independent of any
    /// parallel decomposition (charge accumulation is wrapping-add).
    pub fn compute_fixed(
        &self,
        positions: &[Vec3],
        charges: &[f64],
        force_frac: u32,
        forces_raw: &mut [[i64; 3]],
        scratch: &mut GseScratch,
    ) -> i64 {
        scratch.begin(self.mesh.len());
        for (p, &q) in positions.iter().zip(charges) {
            if q == 0.0 {
                continue;
            }
            self.spread_one(*p, q, &mut scratch.rho_q, &mut scratch.stencil);
        }
        self.transform(scratch);
        let mut energy_q: i64 = 0;
        for (i, (p, &q)) in positions.iter().zip(charges).enumerate() {
            if q == 0.0 {
                continue;
            }
            energy_q = energy_q.wrapping_add(self.interpolate_one(
                *p,
                q,
                &scratch.phi_q,
                force_frac,
                &mut forces_raw[i],
                &mut scratch.stencil,
            ));
        }
        energy_q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ewald_kspace;
    use anton_geometry::PeriodicBox;
    use rand::{Rng, SeedableRng};

    fn random_neutral_system(n: usize, edge: f64, seed: u64) -> (PeriodicBox, Vec<Vec3>, Vec<f64>) {
        let pbox = PeriodicBox::cubic(edge);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let pos: Vec<Vec3> = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * edge,
                    rng.gen::<f64>() * edge,
                    rng.gen::<f64>() * edge,
                )
            })
            .collect();
        let mut q: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        // jitter charges but stay neutral
        for i in 0..n / 2 {
            let dq = (rng.gen::<f64>() - 0.5) * 0.2;
            q[2 * i] += dq;
            q[2 * i + 1] -= dq;
        }
        (pbox, pos, q)
    }

    #[test]
    fn window_is_continuous_at_truncation() {
        let p = GseParams::auto(10.5, 7.1);
        let rt = p.spread_cutoff;
        assert!(p.window_1d(rt - 1e-9) < 1e-8);
        assert_eq!(p.window_1d(rt + 1e-9), 0.0);
        // And symmetric.
        assert_eq!(p.window_1d(1.3), p.window_1d(-1.3));
    }

    #[test]
    fn auto_params_satisfy_variance_budget() {
        let p = GseParams::auto(13.0, 8.8);
        let sigma2 = 1.0 / (2.0 * p.beta * p.beta);
        assert!(p.sigma_r2 >= 0.0);
        assert!((2.0 * p.sigma_s * p.sigma_s + p.sigma_r2 - sigma2).abs() < 1e-9);
        // And ~1e-5 screening at the cutoff.
        let tail = anton_forcefield::units::erfc(p.beta * 13.0);
        assert!((tail - 1e-5).abs() < 3e-6, "tail = {tail:e}");
    }

    #[test]
    fn reference_matches_exact_kspace() {
        // 64 charges in a 16 Å box; mesh 32³ (h = 0.5 Å) is fine enough that
        // GSE should match the exact reciprocal sum to ~1e-4 relative.
        let (pbox, pos, q) = random_neutral_system(64, 16.0, 5);
        let params = GseParams::auto(7.0, 4.8);
        let mesh = Mesh::new([32; 3], pbox);
        let gse = GseReference::new(mesh, params);
        let mut f_gse = vec![Vec3::ZERO; 64];
        let r = gse.compute(&pos, &q, &mut f_gse);

        let mut f_exact = vec![Vec3::ZERO; 64];
        let e_exact = ewald_kspace(&pbox, &pos, &q, params.beta, 14, &mut f_exact);
        let e_exact_minus_self = e_exact
            - COULOMB * params.beta / std::f64::consts::PI.sqrt()
                * q.iter().map(|x| x * x).sum::<f64>();

        let rel_e = (r.energy - e_exact_minus_self).abs() / e_exact_minus_self.abs();
        assert!(
            rel_e < 2e-3,
            "energy rel err {rel_e:e}: {} vs {}",
            r.energy,
            e_exact_minus_self
        );

        let mut num = 0.0;
        let mut den = 0.0;
        for (a, b) in f_gse.iter().zip(&f_exact) {
            num += (*a - *b).norm2();
            den += b.norm2();
        }
        let rel_f = (num / den).sqrt();
        assert!(rel_f < 5e-3, "force rel err {rel_f:e}");
    }

    #[test]
    fn force_is_gradient_of_energy() {
        let (pbox, mut pos, q) = random_neutral_system(16, 12.0, 7);
        let params = GseParams::auto(5.5, 3.8);
        let gse = GseReference::new(Mesh::new([16; 3], pbox), params);
        let mut f = vec![Vec3::ZERO; 16];
        gse.compute(&pos, &q, &mut f);
        let h = 1e-5;
        for i in [0usize, 7] {
            for ax in 0..3 {
                pos[i][ax] += h;
                let mut tmp = vec![Vec3::ZERO; 16];
                let ep = gse.compute(&pos, &q, &mut tmp).energy;
                pos[i][ax] -= 2.0 * h;
                let mut tmp2 = vec![Vec3::ZERO; 16];
                let em = gse.compute(&pos, &q, &mut tmp2).energy;
                pos[i][ax] += h;
                let num = -(ep - em) / (2.0 * h);
                assert!(
                    (f[i][ax] - num).abs() < 2e-4 * (1.0 + num.abs()),
                    "atom {i} axis {ax}: {} vs {num}",
                    f[i][ax]
                );
            }
        }
    }

    #[test]
    fn fixed_path_matches_reference_closely() {
        let (pbox, pos, q) = random_neutral_system(64, 16.0, 9);
        let params = GseParams::auto(7.0, 4.8);
        let mesh = Mesh::new([32; 3], pbox);
        let refr = GseReference::new(mesh.clone(), params);
        let mut f_ref = vec![Vec3::ZERO; 64];
        let r = refr.compute(&pos, &q, &mut f_ref);

        let fixed = GseFixed::new(mesh, params);
        let mut f_q = vec![[0i64; 3]; 64];
        let e_q = fixed.compute_fixed(&pos, &q, 24, &mut f_q, &mut GseScratch::default());
        let e_fixed = e_q as f64 / (1u64 << 32) as f64;

        assert!(
            (e_fixed - r.energy).abs() < 1e-3 * r.energy.abs().max(1.0),
            "{e_fixed} vs {}",
            r.energy
        );
        let mut num = 0.0;
        let mut den = 0.0;
        let fs = (1i64 << 24) as f64;
        for (a, b) in f_q.iter().zip(&f_ref) {
            let av = Vec3::new(a[0] as f64 / fs, a[1] as f64 / fs, a[2] as f64 / fs);
            num += (av - *b).norm2();
            den += b.norm2();
        }
        let rel = (num / den).sqrt();
        assert!(rel < 1e-4, "fixed-vs-ref force rel err {rel:e}");
    }

    #[test]
    fn fixed_path_is_order_invariant() {
        // Feeding atoms in a different order must produce bitwise identical
        // mesh forces — the associativity property the paper builds on.
        let (pbox, pos, q) = random_neutral_system(32, 12.0, 11);
        let params = GseParams::auto(5.5, 3.8);
        let fixed = GseFixed::new(Mesh::new([16; 3], pbox), params);

        let mut scratch = GseScratch::default();
        let mut f1 = vec![[0i64; 3]; 32];
        let e1 = fixed.compute_fixed(&pos, &q, 24, &mut f1, &mut scratch);

        // Reversed atom order (scratch reuse must not leak state between
        // evaluations).
        let pos_r: Vec<Vec3> = pos.iter().rev().copied().collect();
        let q_r: Vec<f64> = q.iter().rev().copied().collect();
        let mut f2 = vec![[0i64; 3]; 32];
        let e2 = fixed.compute_fixed(&pos_r, &q_r, 24, &mut f2, &mut scratch);
        let f2_unrev: Vec<[i64; 3]> = f2.into_iter().rev().collect();

        assert_eq!(e1, e2, "energy depends on accumulation order");
        assert_eq!(f1, f2_unrev, "forces depend on accumulation order");
    }

    #[test]
    fn distributed_mesh_phase_is_bitwise_invariant_across_node_grids() {
        // The same evaluation through FFT plans over different simulated
        // node grids must be bitwise identical: only the modeled pencil
        // message pattern changes, never the arithmetic.
        let (pbox, pos, q) = random_neutral_system(48, 18.0, 13);
        let params = GseParams::auto(9.0, 5.0);
        let mesh = Mesh::new([16; 3], pbox);

        let serial = GseFixed::new(mesh.clone(), params);
        let mut scratch = GseScratch::default();
        let mut f0 = vec![[0i64; 3]; 48];
        let e0 = serial.compute_fixed(&pos, &q, 24, &mut f0, &mut scratch);
        assert_eq!(serial.fft_stats().messages_total(), 0);

        for nodes in [[2, 2, 2], [4, 4, 4]] {
            let dist = GseFixed::with_nodes(mesh.clone(), params, nodes);
            assert_eq!(dist.node_dims(), nodes);
            assert!(dist.fft_stats().messages_total() > 0);
            assert!(dist.fft_stats().bytes_total() > 0);
            let mut f = vec![[0i64; 3]; 48];
            let e = dist.compute_fixed(&pos, &q, 24, &mut f, &mut scratch);
            assert_eq!(e0, e, "energy differs on node grid {nodes:?}");
            assert_eq!(f0, f, "forces differ on node grid {nodes:?}");
        }
    }
}
