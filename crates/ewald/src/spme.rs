//! Smooth Particle Mesh Ewald (Essmann et al. 1995).
//!
//! The method of choice on commodity hardware, and the baseline Anton's GSE
//! replaces: B-spline charge assignment is cheap on a CPU but is *not* a
//! radially symmetric function of distance, so it cannot run on Anton's
//! table-driven pairwise pipelines (paper §3.1). `refmd` uses this module;
//! the workspace's force-accuracy references use it with conservative
//! parameters (fine mesh, high order, tight β).

use crate::mesh::Mesh;
use anton_fft::{Complex, Fft3d};
use anton_forcefield::units::COULOMB;
use anton_geometry::Vec3;

/// Cardinal B-spline `M_n(u)`, supported on `(0, n)`.
pub fn bspline(n: usize, u: f64) -> f64 {
    if u <= 0.0 || u >= n as f64 {
        return 0.0;
    }
    if n == 2 {
        return 1.0 - (u - 1.0).abs();
    }
    let nf = n as f64;
    (u / (nf - 1.0)) * bspline(n - 1, u) + ((nf - u) / (nf - 1.0)) * bspline(n - 1, u - 1.0)
}

/// Derivative `M_n'(u) = M_{n-1}(u) − M_{n-1}(u−1)`.
pub fn bspline_deriv(n: usize, u: f64) -> f64 {
    bspline(n - 1, u) - bspline(n - 1, u - 1.0)
}

/// Wall time spent in each SPME phase (seconds, accumulated).
#[derive(Clone, Copy, Debug, Default)]
pub struct SpmeTimings {
    /// Charge assignment (mesh interpolation, outbound).
    pub spread_s: f64,
    /// Forward FFT + Fourier-space multiply + inverse FFT.
    pub fft_s: f64,
    /// Force interpolation (mesh interpolation, inbound).
    pub interp_s: f64,
}

/// An SPME plan.
pub struct Spme {
    pub mesh: Mesh,
    pub beta: f64,
    pub order: usize,
    fft: Fft3d,
    /// Precomputed `(4π/k²)·e^{−k²/4β²}·|b₁b₂b₃|²/V` per FFT bin (k=0 → 0).
    dk: Vec<f64>,
}

impl Spme {
    pub fn new(mesh: Mesh, beta: f64, order: usize) -> Spme {
        assert!(
            order >= 3 && order.is_multiple_of(2),
            "SPME order must be even and ≥ 4"
        );
        let [nx, ny, nz] = mesh.dims;
        let fft = Fft3d::new(nx, ny, nz);
        let bx = euler_factors(nx, order);
        let by = euler_factors(ny, order);
        let bz = euler_factors(nz, order);
        let v = mesh.pbox.volume();
        let mut dk = vec![0.0; mesh.len()];
        for kz in 0..nz {
            for ky in 0..ny {
                for kx in 0..nx {
                    let k = mesh.wave_vector(kx, ky, kz);
                    let k2 = k.norm2();
                    if k2 < 1e-12 {
                        continue;
                    }
                    dk[mesh.index(kx, ky, kz)] = 4.0 * std::f64::consts::PI / k2
                        * (-k2 / (4.0 * beta * beta)).exp()
                        * bx[kx]
                        * by[ky]
                        * bz[kz]
                        / v;
                }
            }
        }
        Spme {
            mesh,
            beta,
            order,
            fft,
            dk,
        }
    }

    /// Reciprocal energy (self-energy subtracted) with forces accumulated
    /// into `forces`.
    pub fn compute(&self, positions: &[Vec3], charges: &[f64], forces: &mut [Vec3]) -> f64 {
        self.compute_profiled(positions, charges, forces, &mut SpmeTimings::default())
    }

    /// As [`Self::compute`], but accumulates wall time per phase — the
    /// Table 2 x86 profile separates "FFT & inverse FFT" from "mesh
    /// interpolation" (charge assignment + force interpolation).
    pub fn compute_profiled(
        &self,
        positions: &[Vec3],
        charges: &[f64],
        forces: &mut [Vec3],
        timings: &mut SpmeTimings,
    ) -> f64 {
        let [nx, ny, nz] = self.mesh.dims;
        let n = self.order;
        let mut q_arr = vec![0.0f64; self.mesh.len()];

        // Charge assignment.
        // detlint::allow(D4, reason = "profiling timer for the Table 2 breakdown; feeds SpmeTimings only, never the trajectory")
        let t0 = std::time::Instant::now();
        let e = self.mesh.pbox.edge();
        let scaled = |p: Vec3| {
            let f = self.mesh.pbox.to_frac(p);
            Vec3::new(f.x * nx as f64, f.y * ny as f64, f.z * nz as f64)
        };
        for (p, &q) in positions.iter().zip(charges) {
            if q == 0.0 {
                continue;
            }
            let u = scaled(*p);
            spread_bspline(&mut q_arr, [nx, ny, nz], u, q, n);
        }
        timings.spread_s += t0.elapsed().as_secs_f64();

        // Convolution.
        // detlint::allow(D4, reason = "profiling timer for the Table 2 breakdown; feeds SpmeTimings only, never the trajectory")
        let t1 = std::time::Instant::now();
        let mut grid: Vec<Complex> = q_arr.iter().map(|&x| Complex::new(x, 0.0)).collect();
        self.fft.forward(&mut grid);
        let mut energy = 0.0;
        for (g, &d) in grid.iter_mut().zip(&self.dk) {
            energy += 0.5 * d * g.norm2();
            *g = g.scale(d);
        }
        self.fft.inverse(&mut grid);
        timings.fft_s += t1.elapsed().as_secs_f64();
        // Our inverse carries 1/N; the Parseval identity wants the plain sum,
        // so scale the convolution array by N.
        let n_total = self.mesh.len() as f64;
        let conv: Vec<f64> = grid.iter().map(|c| c.re * n_total).collect();
        energy *= COULOMB;

        // Forces.
        // detlint::allow(D4, reason = "profiling timer for the Table 2 breakdown; feeds SpmeTimings only, never the trajectory")
        let t2 = std::time::Instant::now();
        for (i, (p, &q)) in positions.iter().zip(charges).enumerate() {
            if q == 0.0 {
                continue;
            }
            let u = scaled(*p);
            let f = force_bspline(&conv, [nx, ny, nz], u, q, n);
            // d u / d r = N / L per axis.
            forces[i] += Vec3::new(
                -f.x * nx as f64 / e.x,
                -f.y * ny as f64 / e.y,
                -f.z * nz as f64 / e.z,
            ) * COULOMB;
        }
        timings.interp_s += t2.elapsed().as_secs_f64();

        let self_energy = COULOMB * self.beta / std::f64::consts::PI.sqrt()
            * charges.iter().map(|q| q * q).sum::<f64>();
        energy - self_energy
    }
}

/// `|b(k)|²` Euler factor per axis bin.
fn euler_factors(n_mesh: usize, order: usize) -> Vec<f64> {
    (0..n_mesh)
        .map(|k| {
            let mut re = 0.0;
            let mut im = 0.0;
            for j in 0..(order - 1) {
                let phase = 2.0 * std::f64::consts::PI * k as f64 * j as f64 / n_mesh as f64;
                let m = bspline(order, (j + 1) as f64);
                re += m * phase.cos();
                im += m * phase.sin();
            }
            1.0 / (re * re + im * im)
        })
        .collect()
}

fn spread_bspline(q_arr: &mut [f64], dims: [usize; 3], u: Vec3, q: f64, order: usize) {
    let base = [u.x.floor() as i64, u.y.floor() as i64, u.z.floor() as i64];
    let mut wx = [0.0f64; 8];
    let mut wy = [0.0f64; 8];
    let mut wz = [0.0f64; 8];
    for t in 0..order {
        // Mesh point m = base − t; weight M_n(u − m) with argument in (0, n).
        wx[t] = bspline(order, u.x - (base[0] - t as i64) as f64);
        wy[t] = bspline(order, u.y - (base[1] - t as i64) as f64);
        wz[t] = bspline(order, u.z - (base[2] - t as i64) as f64);
    }
    for (tz, &wz_t) in wz.iter().enumerate().take(order) {
        let mz = (base[2] - tz as i64).rem_euclid(dims[2] as i64) as usize;
        for (ty, &wy_t) in wy.iter().enumerate().take(order) {
            let my = (base[1] - ty as i64).rem_euclid(dims[1] as i64) as usize;
            let row = dims[0] * (my + dims[1] * mz);
            for (tx, &wx_t) in wx.iter().enumerate().take(order) {
                let mx = (base[0] - tx as i64).rem_euclid(dims[0] as i64) as usize;
                q_arr[row + mx] += q * wx_t * wy_t * wz_t;
            }
        }
    }
}

/// Gradient of the interpolated convolution with respect to the *scaled*
/// coordinate u (per axis); the caller converts to Cartesian.
fn force_bspline(conv: &[f64], dims: [usize; 3], u: Vec3, q: f64, order: usize) -> Vec3 {
    let base = [u.x.floor() as i64, u.y.floor() as i64, u.z.floor() as i64];
    let mut wx = [0.0f64; 8];
    let mut wy = [0.0f64; 8];
    let mut wz = [0.0f64; 8];
    let mut dx = [0.0f64; 8];
    let mut dy = [0.0f64; 8];
    let mut dz = [0.0f64; 8];
    for t in 0..order {
        let ax = u.x - (base[0] - t as i64) as f64;
        let ay = u.y - (base[1] - t as i64) as f64;
        let az = u.z - (base[2] - t as i64) as f64;
        wx[t] = bspline(order, ax);
        wy[t] = bspline(order, ay);
        wz[t] = bspline(order, az);
        dx[t] = bspline_deriv(order, ax);
        dy[t] = bspline_deriv(order, ay);
        dz[t] = bspline_deriv(order, az);
    }
    let mut g = Vec3::ZERO;
    for tz in 0..order {
        let mz = (base[2] - tz as i64).rem_euclid(dims[2] as i64) as usize;
        for ty in 0..order {
            let my = (base[1] - ty as i64).rem_euclid(dims[1] as i64) as usize;
            let row = dims[0] * (my + dims[1] * mz);
            for tx in 0..order {
                let mx = (base[0] - tx as i64).rem_euclid(dims[0] as i64) as usize;
                let c = conv[row + mx] * q;
                g.x += c * dx[tx] * wy[ty] * wz[tz];
                g.y += c * wx[tx] * dy[ty] * wz[tz];
                g.z += c * wx[tx] * wy[ty] * dz[tz];
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ewald_kspace;
    use anton_geometry::PeriodicBox;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bspline_partition_of_unity() {
        // Σ_j M_n(u + j) = 1 for any u.
        for &n in &[2usize, 3, 4, 6] {
            for i in 0..10 {
                let u = 0.1 * i as f64;
                let total: f64 = (0..n as i64 + 1).map(|j| bspline(n, u + j as f64)).sum();
                assert!((total - 1.0).abs() < 1e-12, "n={n} u={u}: {total}");
            }
        }
    }

    #[test]
    fn bspline_deriv_matches_fd() {
        for &n in &[3usize, 4, 6] {
            for i in 1..(10 * n) {
                let u = 0.1 * i as f64;
                let h = 1e-7;
                let fd = (bspline(n, u + h) - bspline(n, u - h)) / (2.0 * h);
                assert!((bspline_deriv(n, u) - fd).abs() < 1e-6, "n={n} u={u}");
            }
        }
    }

    #[test]
    fn spme_matches_exact_kspace() {
        let pbox = PeriodicBox::cubic(14.0);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(31);
        let n = 40;
        let pos: Vec<Vec3> = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * 14.0,
                    rng.gen::<f64>() * 14.0,
                    rng.gen::<f64>() * 14.0,
                )
            })
            .collect();
        let q: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 0.6 } else { -0.6 })
            .collect();
        let beta = 0.5;

        let spme = Spme::new(Mesh::new([32; 3], pbox), beta, 6);
        let mut f_spme = vec![Vec3::ZERO; n];
        let e_spme = spme.compute(&pos, &q, &mut f_spme);

        let mut f_exact = vec![Vec3::ZERO; n];
        let e_k = ewald_kspace(&pbox, &pos, &q, beta, 16, &mut f_exact);
        let self_e =
            COULOMB * beta / std::f64::consts::PI.sqrt() * q.iter().map(|x| x * x).sum::<f64>();
        let e_exact = e_k - self_e;

        assert!(
            (e_spme - e_exact).abs() < 1e-4 * e_exact.abs().max(1.0),
            "{e_spme} vs {e_exact}"
        );
        let mut num = 0.0;
        let mut den = 0.0;
        for (a, b) in f_spme.iter().zip(&f_exact) {
            num += (*a - *b).norm2();
            den += b.norm2();
        }
        assert!(
            (num / den).sqrt() < 1e-4,
            "force rel err {:e}",
            (num / den).sqrt()
        );
    }

    #[test]
    fn spme_force_is_gradient() {
        let pbox = PeriodicBox::cubic(10.0);
        let mut pos = vec![
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(6.0, 7.0, 2.0),
            Vec3::new(3.0, 8.0, 8.0),
            Vec3::new(8.0, 3.0, 6.0),
        ];
        let q = vec![0.7, -0.7, 0.3, -0.3];
        let spme = Spme::new(Mesh::new([16; 3], pbox), 0.6, 4);
        let mut f = vec![Vec3::ZERO; 4];
        spme.compute(&pos, &q, &mut f);
        let h = 1e-5;
        for i in 0..4 {
            for ax in 0..3 {
                pos[i][ax] += h;
                let mut t = vec![Vec3::ZERO; 4];
                let ep = spme.compute(&pos, &q, &mut t);
                pos[i][ax] -= 2.0 * h;
                let mut t2 = vec![Vec3::ZERO; 4];
                let em = spme.compute(&pos, &q, &mut t2);
                pos[i][ax] += h;
                let num = -(ep - em) / (2.0 * h);
                assert!(
                    (f[i][ax] - num).abs() < 1e-3 * (1.0 + num.abs()),
                    "atom {i} ax {ax}: {} vs {num}",
                    f[i][ax]
                );
            }
        }
    }
}
