//! Brute-force Ewald references.
//!
//! Ground truth for the mesh methods: the reciprocal-space sum evaluated
//! directly over k-vectors (O(K·N), fine for test-sized systems), and a
//! complete small-system Ewald evaluation validated against the NaCl
//! Madelung constant.

use anton_forcefield::units::{erfc, COULOMB};
use anton_geometry::{PeriodicBox, Vec3};

/// Direct evaluation of the Ewald reciprocal sum (including the self
/// interaction, i.e. the bare k-space sum):
/// `E = (1/2V) Σ_{k≠0} (4π/k²) e^{-k²/4β²} |S(k)|²` with
/// `S(k) = Σ q_i e^{ik·r_i}`. Adds forces into `forces`, returns the energy.
///
/// `kmax` is the per-axis integer frequency bound.
pub fn ewald_kspace(
    pbox: &PeriodicBox,
    positions: &[Vec3],
    charges: &[f64],
    beta: f64,
    kmax: i32,
    forces: &mut [Vec3],
) -> f64 {
    let e = pbox.edge();
    let v = pbox.volume();
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut energy = 0.0;

    for nx in -kmax..=kmax {
        for ny in -kmax..=kmax {
            for nz in -kmax..=kmax {
                if nx == 0 && ny == 0 && nz == 0 {
                    continue;
                }
                let k = Vec3::new(
                    two_pi * nx as f64 / e.x,
                    two_pi * ny as f64 / e.y,
                    two_pi * nz as f64 / e.z,
                );
                let k2 = k.norm2();
                let a = 4.0 * std::f64::consts::PI / k2 * (-k2 / (4.0 * beta * beta)).exp();
                if a < 1e-16 {
                    continue;
                }
                // Structure factor.
                let mut s_re = 0.0;
                let mut s_im = 0.0;
                for (p, &q) in positions.iter().zip(charges) {
                    let phase = k.dot(*p);
                    s_re += q * phase.cos();
                    s_im += q * phase.sin();
                }
                energy += 0.5 / v * a * (s_re * s_re + s_im * s_im) * COULOMB;
                // F_i = -(q_i/V) a [sin(k·r_i) S_re - cos(k·r_i) S_im] k.
                for (i, (p, &q)) in positions.iter().zip(charges).enumerate() {
                    let phase = k.dot(*p);
                    let coeff = q / v * a * (phase.sin() * s_re - phase.cos() * s_im) * COULOMB;
                    forces[i] += k * coeff;
                }
            }
        }
    }
    energy
}

/// Complete Ewald energy of a small neutral system: accurate direct space
/// (minimum image, cutoff < L/2) + exact reciprocal sum − self energy.
/// Returns `(energy, forces)`.
pub fn ewald_total(
    pbox: &PeriodicBox,
    positions: &[Vec3],
    charges: &[f64],
    beta: f64,
    cutoff: f64,
    kmax: i32,
) -> (f64, Vec<Vec3>) {
    let n = positions.len();
    let mut forces = vec![Vec3::ZERO; n];
    let mut energy = ewald_kspace(pbox, positions, charges, beta, kmax, &mut forces);
    // Self energy.
    energy -=
        COULOMB * beta / std::f64::consts::PI.sqrt() * charges.iter().map(|q| q * q).sum::<f64>();
    // Direct space.
    let c2 = cutoff * cutoff;
    let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
    for i in 0..n {
        for j in (i + 1)..n {
            let d = pbox.min_image(positions[i], positions[j]);
            let r2 = d.norm2();
            if r2 > c2 {
                continue;
            }
            let r = r2.sqrt();
            let x = beta * r;
            let qq = charges[i] * charges[j];
            energy += COULOMB * qq * erfc(x) / r;
            let f_over_r =
                COULOMB * qq * (erfc(x) / r + two_over_sqrt_pi * beta * (-x * x).exp()) / r2;
            forces[i] += d * f_over_r;
            forces[j] -= d * f_over_r;
        }
    }
    (energy, forces)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rock-salt NaCl Madelung constant: 1.747565.
    #[test]
    fn nacl_madelung_constant() {
        // 4×4×4 ions of alternating charge, nearest-neighbor distance 1 Å.
        let n_side = 4;
        let pbox = PeriodicBox::cubic(n_side as f64);
        let mut pos = Vec::new();
        let mut q = Vec::new();
        for z in 0..n_side {
            for y in 0..n_side {
                for x in 0..n_side {
                    pos.push(Vec3::new(x as f64, y as f64, z as f64));
                    q.push(if (x + y + z) % 2 == 0 { 1.0 } else { -1.0 });
                }
            }
        }
        let beta = 1.8;
        let (energy, forces) = ewald_total(&pbox, &pos, &q, beta, 1.95, 14);
        // E_total = N · (−M · k · q² / r₀) / 2 per ion... total lattice
        // energy for N ions: N/2 ion pairs ⇒ E = −(N/2)·M·k.
        let n_ions = pos.len() as f64;
        let madelung = -energy / (n_ions / 2.0 * COULOMB);
        assert!(
            (madelung - 1.747_565).abs() < 1e-4,
            "Madelung constant came out as {madelung}"
        );
        // Perfect lattice: zero force on every ion by symmetry.
        for f in &forces {
            assert!(f.norm() < 1e-8, "nonzero lattice force {f:?}");
        }
    }

    #[test]
    fn energy_is_beta_independent() {
        // The Ewald total must not depend on the splitting parameter.
        let pbox = PeriodicBox::cubic(10.0);
        let pos = vec![
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(3.2, 1.4, 1.1),
            Vec3::new(7.0, 8.0, 2.0),
            Vec3::new(4.0, 6.0, 8.5),
        ];
        let q = vec![1.0, -1.0, 0.5, -0.5];
        let (e1, f1) = ewald_total(&pbox, &pos, &q, 0.9, 4.9, 12);
        let (e2, f2) = ewald_total(&pbox, &pos, &q, 1.3, 4.9, 16);
        assert!((e1 - e2).abs() < 1e-5 * e1.abs(), "{e1} vs {e2}");
        for (a, b) in f1.iter().zip(&f2) {
            assert!((*a - *b).norm() < 1e-4, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn kspace_force_is_gradient() {
        let pbox = PeriodicBox::cubic(8.0);
        let mut pos = vec![
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(5.0, 1.0, 6.0),
            Vec3::new(2.5, 6.5, 1.5),
            Vec3::new(6.0, 5.0, 4.0),
        ];
        let q = vec![0.8, -0.8, 0.4, -0.4];
        let beta = 0.8;
        let mut f = vec![Vec3::ZERO; 4];
        ewald_kspace(&pbox, &pos, &q, beta, 10, &mut f);
        let h = 1e-6;
        for i in 0..4 {
            for ax in 0..3 {
                pos[i][ax] += h;
                let mut t = vec![Vec3::ZERO; 4];
                let ep = ewald_kspace(&pbox, &pos, &q, beta, 10, &mut t);
                pos[i][ax] -= 2.0 * h;
                let mut t2 = vec![Vec3::ZERO; 4];
                let em = ewald_kspace(&pbox, &pos, &q, beta, 10, &mut t2);
                pos[i][ax] += h;
                let num = -(ep - em) / (2.0 * h);
                assert!(
                    (f[i][ax] - num).abs() < 1e-4 * (1.0 + num.abs()),
                    "atom {i} ax {ax}: {} vs {num}",
                    f[i][ax]
                );
            }
        }
    }
}
