//! Per-task wall-time accounting (the Table 2 x86 columns).

use serde::{Deserialize, Serialize};

/// Accumulated wall time per MD task, in seconds. Field names follow the
/// rows of the paper's Table 2.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct TaskProfile {
    /// Electrostatic + van der Waals pairs under the cutoff.
    pub range_limited_s: f64,
    /// Forward + inverse FFT (including the Fourier-space multiply).
    pub fft_s: f64,
    /// Charge spreading + force interpolation.
    pub mesh_s: f64,
    /// Excluded-pair and 1-4 correction forces.
    pub correction_s: f64,
    /// Bond, angle and dihedral terms.
    pub bonded_s: f64,
    /// Integration, constraints and virtual-site bookkeeping.
    pub integration_s: f64,
    /// Neighbor-structure (cell grid) maintenance.
    pub neighbor_s: f64,
    /// Steps accumulated.
    pub steps: u64,
}

impl TaskProfile {
    pub fn total_s(&self) -> f64 {
        self.range_limited_s
            + self.fft_s
            + self.mesh_s
            + self.correction_s
            + self.bonded_s
            + self.integration_s
            + self.neighbor_s
    }

    /// Per-step milliseconds for each task, in Table 2 row order, plus the
    /// total (range-limited, FFT, mesh, correction, bonded, integration).
    pub fn per_step_ms(&self) -> [f64; 7] {
        let n = self.steps.max(1) as f64;
        [
            (self.range_limited_s + self.neighbor_s) / n * 1e3,
            self.fft_s / n * 1e3,
            self.mesh_s / n * 1e3,
            self.correction_s / n * 1e3,
            self.bonded_s / n * 1e3,
            self.integration_s / n * 1e3,
            self.total_s() / n * 1e3,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_step_normalizes() {
        let p = TaskProfile {
            range_limited_s: 2.0,
            steps: 4,
            ..Default::default()
        };
        assert!((p.per_step_ms()[0] - 500.0).abs() < 1e-9);
        assert!((p.per_step_ms()[6] - 500.0).abs() < 1e-9);
    }
}
