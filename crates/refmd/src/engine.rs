//! The reference engine's integrator: velocity Verlet with impulse (r-RESPA)
//! multiple time stepping, SHAKE/RATTLE, and Berendsen temperature control.

use crate::constraints::{rattle, shake};
use crate::forces::{Energies, ForceEvaluator};
use crate::profile::TaskProfile;
use anton_forcefield::units::ACCEL;
use anton_forcefield::water::{vsite_position, vsite_spread_force};
use anton_geometry::Vec3;
use anton_systems::velocities::{kinetic_energy, temperature};
use anton_systems::System;
use std::time::Instant;

/// Temperature-control options.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Thermostat {
    /// Microcanonical (NVE) — used for the energy-drift measurements.
    None,
    /// Berendsen weak coupling with time constant τ (fs), as in the BPTI
    /// run of §5.3.
    Berendsen { target_k: f64, tau_fs: f64 },
}

/// A running reference simulation.
pub struct RefSimulation {
    pub system: System,
    pub evaluator: ForceEvaluator,
    pub positions: Vec<Vec3>,
    pub velocities: Vec<Vec3>,
    pub thermostat: Thermostat,
    pub profile: TaskProfile,
    /// Most recent energy breakdown.
    pub energies: Energies,
    short_forces: Vec<Vec3>,
    long_forces: Vec<Vec3>,
    step: u64,
    shake_tol: f64,
}

impl RefSimulation {
    pub fn new(system: System, velocities: Vec<Vec3>, thermostat: Thermostat) -> RefSimulation {
        let n = system.n_atoms();
        assert_eq!(velocities.len(), n);
        let evaluator = ForceEvaluator::new(&system);
        let positions = system.positions.clone();
        let mut sim = RefSimulation {
            system,
            evaluator,
            positions,
            velocities,
            thermostat,
            profile: TaskProfile::default(),
            energies: Energies::default(),
            short_forces: vec![Vec3::ZERO; n],
            long_forces: vec![Vec3::ZERO; n],
            step: 0,
            shake_tol: 1e-10,
        };
        sim.refresh_forces();
        sim
    }

    /// Recompute both force classes at the current positions.
    pub fn refresh_forces(&mut self) {
        for v in &self.system.topology.virtual_sites {
            self.positions[v.site as usize] = vsite_position(v, &self.positions);
        }
        for f in self.short_forces.iter_mut() {
            *f = Vec3::ZERO;
        }
        let short = self.evaluator.short_range(
            &self.system,
            &self.positions,
            &mut self.short_forces,
            &mut self.profile,
        );
        for f in self.long_forces.iter_mut() {
            *f = Vec3::ZERO;
        }
        let long = self.evaluator.long_range(
            &self.system,
            &self.positions,
            &mut self.long_forces,
            &mut self.profile,
        );
        // Spread virtual-site forces within each class (linear operation).
        for v in &self.system.topology.virtual_sites {
            vsite_spread_force(v, &mut self.short_forces);
            vsite_spread_force(v, &mut self.long_forces);
        }
        self.energies = Energies {
            bonded: short.bonded,
            range_limited: short.range_limited,
            reciprocal: long.reciprocal,
            correction: long.correction,
        };
    }

    #[inline]
    fn kick(&mut self, which: Which, dt_fs: f64) {
        let top = &self.system.topology;
        let forces = match which {
            Which::Short => &self.short_forces,
            Which::Long => &self.long_forces,
        };
        for ((v, &m), &f) in self.velocities.iter_mut().zip(&top.mass).zip(forces.iter()) {
            if m > 0.0 {
                *v += f * (dt_fs * ACCEL / m);
            }
        }
    }

    /// Run one r-RESPA outer cycle = `longrange_every` inner steps.
    ///
    /// Impulse scheme: half long-range kick (k·dt/2), k velocity-Verlet
    /// steps on short-range forces (with SHAKE/RATTLE), long-range
    /// recompute, half long-range kick.
    pub fn run_cycle(&mut self) {
        let k = self.system.params.longrange_every.max(1);
        let dt = self.system.params.dt_fs;

        self.kick(Which::Long, k as f64 * dt / 2.0);
        for _ in 0..k {
            self.inner_step(dt);
        }
        // Recompute long-range forces at the new positions.
        for f in self.long_forces.iter_mut() {
            *f = Vec3::ZERO;
        }
        for v in &self.system.topology.virtual_sites {
            self.positions[v.site as usize] = vsite_position(v, &self.positions);
        }
        let long = self.evaluator.long_range(
            &self.system,
            &self.positions,
            &mut self.long_forces,
            &mut self.profile,
        );
        for v in &self.system.topology.virtual_sites {
            vsite_spread_force(v, &mut self.long_forces);
        }
        self.energies.reciprocal = long.reciprocal;
        self.energies.correction = long.correction;
        self.kick(Which::Long, k as f64 * dt / 2.0);

        if let Thermostat::Berendsen { target_k, tau_fs } = self.thermostat {
            let t = temperature(&self.system.topology, &self.velocities);
            if t > 1e-6 {
                let lambda = (1.0 + (k as f64 * dt / tau_fs) * (target_k / t - 1.0))
                    .max(0.0)
                    .sqrt();
                for v in self.velocities.iter_mut() {
                    *v = *v * lambda;
                }
            }
        }
    }

    /// One inner velocity-Verlet step on short-range forces.
    fn inner_step(&mut self, dt: f64) {
        let t0 = Instant::now();
        self.kick(Which::Short, dt / 2.0);
        let pos_ref = self.positions.clone();
        for i in 0..self.positions.len() {
            if self.system.topology.mass[i] > 0.0 {
                self.positions[i] += self.velocities[i] * dt;
            }
        }
        // Constraints.
        let has_constraints = !self.system.topology.constraint_groups.is_empty();
        if has_constraints {
            shake(
                &self.system.pbox,
                &self.system.topology.constraint_groups,
                &self.system.topology.mass,
                &pos_ref,
                &mut self.positions,
                self.shake_tol,
                200,
            );
            // Absorb the position corrections into the velocities:
            // v ← (x_constrained − x_ref)/dt, the standard SHAKE companion
            // update (equals v_unconstrained + Δx_constraint/dt).
            let masses = &self.system.topology.mass;
            for ((v, &m), (&p, &pr)) in self
                .velocities
                .iter_mut()
                .zip(masses)
                .zip(self.positions.iter().zip(&pos_ref))
            {
                if m > 0.0 {
                    *v = (p - pr) * (1.0 / dt);
                }
            }
        }
        self.profile.integration_s += t0.elapsed().as_secs_f64();

        // New short-range forces at updated positions.
        self.refresh_short();

        let t1 = Instant::now();
        self.kick(Which::Short, dt / 2.0);
        if has_constraints {
            rattle(
                &self.system.pbox,
                &self.system.topology.constraint_groups,
                &self.system.topology.mass,
                &self.positions,
                &mut self.velocities,
                1e-12,
                200,
            );
        }
        self.step += 1;
        self.profile.steps = self.step;
        self.profile.integration_s += t1.elapsed().as_secs_f64();
    }

    fn refresh_short(&mut self) {
        for v in &self.system.topology.virtual_sites {
            self.positions[v.site as usize] = vsite_position(v, &self.positions);
        }
        for f in self.short_forces.iter_mut() {
            *f = Vec3::ZERO;
        }
        let short = self.evaluator.short_range(
            &self.system,
            &self.positions,
            &mut self.short_forces,
            &mut self.profile,
        );
        for v in &self.system.topology.virtual_sites {
            vsite_spread_force(v, &mut self.short_forces);
        }
        self.energies.bonded = short.bonded;
        self.energies.range_limited = short.range_limited;
    }

    pub fn step_count(&self) -> u64 {
        self.step
    }

    pub fn kinetic(&self) -> f64 {
        kinetic_energy(&self.system.topology, &self.velocities)
    }

    pub fn temperature_k(&self) -> f64 {
        temperature(&self.system.topology, &self.velocities)
    }

    /// Total (potential + kinetic) energy at the current state.
    pub fn total_energy(&self) -> f64 {
        self.energies.potential() + self.kinetic()
    }
}

enum Which {
    Short,
    Long,
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_forcefield::water::TIP3P;
    use anton_geometry::PeriodicBox;
    use anton_systems::spec::RunParams;
    use anton_systems::velocities::init_velocities;
    use anton_systems::waterbox::pure_water_topology;

    fn water_sim(n: usize, thermostat: Thermostat) -> RefSimulation {
        let pbox = PeriodicBox::cubic(18.0);
        let (top, positions) = pure_water_topology(&pbox, &TIP3P, n, 21);
        let sys = System {
            name: "w".into(),
            pbox,
            topology: top,
            positions,
            params: RunParams::paper(8.0, 16),
        };
        let vel = init_velocities(&sys.topology, 300.0, 5);
        RefSimulation::new(sys, vel, thermostat)
    }

    #[test]
    fn constraints_hold_through_dynamics() {
        let mut sim = water_sim(120, Thermostat::None);
        for _ in 0..10 {
            sim.run_cycle();
        }
        for g in &sim.system.topology.constraint_groups {
            for &(i, j, d0) in &g.pairs {
                let d = sim
                    .system
                    .pbox
                    .min_image(sim.positions[i as usize], sim.positions[j as usize])
                    .norm();
                assert!((d - d0).abs() < 1e-6, "constraint ({i},{j}) drifted to {d}");
            }
        }
    }

    #[test]
    fn nve_energy_is_roughly_conserved() {
        let mut sim = water_sim(120, Thermostat::None);
        // Let the lattice relax a few cycles before measuring.
        for _ in 0..5 {
            sim.run_cycle();
        }
        let e0 = sim.total_energy();
        for _ in 0..40 {
            sim.run_cycle();
        }
        let e1 = sim.total_energy();
        let per_dof = (e1 - e0).abs() / sim.system.topology.degrees_of_freedom() as f64;
        // 80 steps × 2.5 fs: drift must be far below thermal energy
        // (kT/2 ≈ 0.3 kcal/mol per DoF).
        assert!(
            per_dof < 0.05,
            "energy moved {per_dof} kcal/mol/DoF over 200 fs"
        );
    }

    #[test]
    fn berendsen_pulls_temperature_to_target() {
        // Tight coupling: the unequilibrated lattice releases potential
        // energy for a while, which the thermostat must carry away.
        let mut sim = water_sim(
            120,
            Thermostat::Berendsen {
                target_k: 350.0,
                tau_fs: 15.0,
            },
        );
        for _ in 0..150 {
            sim.run_cycle();
        }
        let t = sim.temperature_k();
        assert!((t - 350.0).abs() < 50.0, "temperature {t} K");
    }

    #[test]
    fn com_momentum_stays_near_zero() {
        let mut sim = water_sim(80, Thermostat::None);
        for _ in 0..20 {
            sim.run_cycle();
        }
        let p = sim
            .velocities
            .iter()
            .enumerate()
            .fold(Vec3::ZERO, |a, (i, v)| a + *v * sim.system.topology.mass[i]);
        // Mesh forces break exact invariance; momentum growth stays tiny.
        assert!(p.norm() < 0.5, "net momentum {p:?}");
    }
}
