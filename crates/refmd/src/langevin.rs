//! Langevin (BAOAB) integrator over pluggable force providers.
//!
//! Used by the Figure 7 Gō-model folding runs: the Gō chain lives in open
//! boundaries with an implicit solvent, so the reference engine's
//! periodic/explicit machinery doesn't apply. BAOAB splitting gives
//! excellent configurational sampling at large time steps.

use anton_forcefield::units::{ACCEL, KB};
use anton_geometry::Vec3;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Anything that can compute forces into a buffer and return an energy.
pub trait ForceProvider {
    fn forces(&self, pos: &[Vec3], forces: &mut [Vec3]) -> f64;
}

impl ForceProvider for anton_systems::GoModel {
    fn forces(&self, pos: &[Vec3], forces: &mut [Vec3]) -> f64 {
        anton_systems::GoModel::forces(self, pos, forces)
    }
}

/// BAOAB Langevin integrator.
pub struct LangevinIntegrator<F: ForceProvider> {
    pub provider: F,
    pub positions: Vec<Vec3>,
    pub velocities: Vec<Vec3>,
    pub mass: Vec<f64>,
    /// Temperature (K).
    pub temp_k: f64,
    /// Friction (1/fs); 0.001–0.01 for coarse-grained models.
    pub gamma: f64,
    pub dt_fs: f64,
    forces: Vec<Vec3>,
    pub energy: f64,
    rng: SmallRng,
}

impl<F: ForceProvider> LangevinIntegrator<F> {
    pub fn new(
        provider: F,
        positions: Vec<Vec3>,
        mass: Vec<f64>,
        temp_k: f64,
        gamma: f64,
        dt_fs: f64,
        seed: u64,
    ) -> LangevinIntegrator<F> {
        let n = positions.len();
        assert_eq!(mass.len(), n);
        let mut me = LangevinIntegrator {
            provider,
            positions,
            velocities: vec![Vec3::ZERO; n],
            mass,
            temp_k,
            gamma,
            dt_fs,
            forces: vec![Vec3::ZERO; n],
            energy: 0.0,
            rng: SmallRng::seed_from_u64(seed),
        };
        me.energy = me.provider.forces(&me.positions, &mut me.forces);
        me
    }

    fn gauss(&mut self) -> f64 {
        let u1: f64 = self.rng.gen::<f64>().max(1e-300);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// One BAOAB step.
    pub fn step(&mut self) {
        let dt = self.dt_fs;
        let half = dt / 2.0;
        let c1 = (-self.gamma * dt).exp();
        // B: half kick.
        for i in 0..self.positions.len() {
            self.velocities[i] += self.forces[i] * (half * ACCEL / self.mass[i]);
        }
        // A: half drift.
        for i in 0..self.positions.len() {
            self.positions[i] += self.velocities[i] * half;
        }
        // O: Ornstein–Uhlenbeck.
        for i in 0..self.positions.len() {
            let sigma = (KB * self.temp_k / self.mass[i] * ACCEL * (1.0 - c1 * c1)).sqrt();
            let noise = Vec3::new(self.gauss(), self.gauss(), self.gauss()) * sigma;
            self.velocities[i] = self.velocities[i] * c1 + noise;
        }
        // A: half drift.
        for i in 0..self.positions.len() {
            self.positions[i] += self.velocities[i] * half;
        }
        // Force refresh + B: half kick.
        for f in self.forces.iter_mut() {
            *f = Vec3::ZERO;
        }
        self.energy = self.provider.forces(&self.positions, &mut self.forces);
        for i in 0..self.positions.len() {
            self.velocities[i] += self.forces[i] * (half * ACCEL / self.mass[i]);
        }
    }

    /// Instantaneous kinetic temperature (K).
    pub fn temperature_k(&self) -> f64 {
        let ke: f64 = 0.5 / ACCEL
            * self
                .velocities
                .iter()
                .zip(&self.mass)
                .map(|(v, &m)| m * v.norm2())
                .sum::<f64>();
        2.0 * ke / (3.0 * self.positions.len() as f64 * KB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single harmonic well, for thermalization checks.
    struct Harmonic {
        k: f64,
    }

    impl ForceProvider for Harmonic {
        fn forces(&self, pos: &[Vec3], forces: &mut [Vec3]) -> f64 {
            let mut e = 0.0;
            for (p, f) in pos.iter().zip(forces.iter_mut()) {
                e += self.k * p.norm2();
                *f += *p * (-2.0 * self.k);
            }
            e
        }
    }

    #[test]
    fn thermalizes_to_target_temperature() {
        let n = 200;
        let pos = vec![Vec3::ZERO; n];
        let mut li =
            LangevinIntegrator::new(Harmonic { k: 1.0 }, pos, vec![12.0; n], 300.0, 0.01, 2.0, 9);
        // Equilibrate, then average T.
        for _ in 0..2000 {
            li.step();
        }
        let mut t_sum = 0.0;
        let mut count = 0;
        for s in 0..4000 {
            li.step();
            if s % 10 == 0 {
                t_sum += li.temperature_k();
                count += 1;
            }
        }
        let t_avg = t_sum / count as f64;
        assert!((t_avg - 300.0).abs() < 20.0, "T = {t_avg}");
    }

    #[test]
    fn equipartition_of_position_variance() {
        // ⟨k x²⟩ = kB T / 2 per axis for U = k|x|².
        let n = 500;
        let k = 2.0;
        let mut li = LangevinIntegrator::new(
            Harmonic { k },
            vec![Vec3::ZERO; n],
            vec![12.0; n],
            300.0,
            0.02,
            1.5,
            11,
        );
        for _ in 0..3000 {
            li.step();
        }
        let mut x2 = 0.0;
        let mut count = 0;
        for s in 0..6000 {
            li.step();
            if s % 20 == 0 {
                x2 += li.positions.iter().map(|p| p.x * p.x).sum::<f64>() / n as f64;
                count += 1;
            }
        }
        let got = x2 / count as f64;
        let want = KB * 300.0 / (2.0 * k);
        assert!(
            (got - want).abs() < 0.15 * want,
            "⟨x²⟩ = {got}, equipartition {want}"
        );
    }

    #[test]
    fn go_model_folds_stays_native_at_low_temperature() {
        let model = anton_systems::GoModel::gpw();
        let native = model.native.clone();
        let n = model.n_beads();
        let mut li = LangevinIntegrator::new(
            model,
            native,
            vec![100.0; n],
            100.0, // well below folding temperature
            0.005,
            10.0,
            13,
        );
        for _ in 0..2000 {
            li.step();
        }
        let q = li.provider.fraction_native(&li.positions);
        assert!(q > 0.9, "protein unfolded at low T: Q = {q}");
    }
}
