//! Conservative-parameter reference forces.
//!
//! Table 4's "total force error" compares Anton's forces against forces
//! "computed in Desmond using double-precision floating-point arithmetic and
//! extremely conservative values for adjustable parameters (cutoffs, grid
//! size, etc.)". This module is that reference: high-accuracy erfc, a tight
//! splitting tolerance, a doubled mesh with order-6 B-splines, and a direct
//! cutoff extended as far as the box allows.

use crate::profile::TaskProfile;
use anton_ewald::direct::DirectKernel;
use anton_ewald::{Mesh, Spme};
use anton_forcefield::bonded;
use anton_forcefield::units::erfc;
use anton_forcefield::water::{vsite_position, vsite_spread_force};
use anton_geometry::{CellGrid, Vec3};
use anton_systems::System;

/// Compute reference forces (and the potential) for a system's current or
/// given positions. Slow; intended for one-shot force-error measurements.
pub fn reference_forces(sys: &System, positions: &[Vec3]) -> (Vec<Vec3>, f64) {
    let top = &sys.topology;
    let mut pos = positions.to_vec();
    for v in &top.virtual_sites {
        pos[v.site as usize] = vsite_position(v, &pos);
    }

    // Conservative parameters.
    let e = sys.pbox.edge();
    let min_edge = e.x.min(e.y).min(e.z);
    let cutoff = (sys.params.cutoff + 3.0).min(min_edge / 2.0 - 0.51);
    // β from a much tighter direct-space tolerance (1e-9).
    let beta = {
        let (mut lo, mut hi) = (1e-3f64, 10.0f64);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if erfc(mid * cutoff) > 1e-9 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };
    let mesh_dims = [
        sys.params.mesh[0] * 2,
        sys.params.mesh[1] * 2,
        sys.params.mesh[2] * 2,
    ];
    let kernel = DirectKernel::reference(beta, cutoff);
    let spme = Spme::new(Mesh::new(mesh_dims, sys.pbox), beta, 6);

    let mut forces = vec![Vec3::ZERO; top.n_atoms()];
    let mut energy = bonded::accumulate_bonded(&sys.pbox, &pos, top, &mut forces);

    // Range-limited, extended cutoff, accurate erfc.
    let policy = top
        .exclusions
        .policy
        .unwrap_or(anton_forcefield::ExclusionPolicy::amber_like());
    let grid = CellGrid::build(&sys.pbox, &pos, cutoff);
    let mut e_rl = 0.0;
    grid.for_each_pair_within(&pos, cutoff, |i, j, d, r2| {
        let (iu, ju) = (i as u32, j as u32);
        if top.exclusions.is_excluded(iu, ju) {
            return;
        }
        let (se, sl) = if top.exclusions.is_14(iu, ju) {
            (policy.elec_14, policy.lj_14)
        } else {
            (1.0, 1.0)
        };
        let qq = top.charge[i] * top.charge[j];
        let (a, b) = top.lj_table.coeffs(top.lj_type[i], top.lj_type[j]);
        let (en, f_over_r) = kernel.pair(qq, a, b, r2, se, sl);
        e_rl += en;
        let f = d * f_over_r;
        forces[i] += f;
        forces[j] -= f;
    });
    energy += e_rl;

    // Reciprocal + corrections.
    let mut prof = TaskProfile::default();
    let mut timings = anton_ewald::spme::SpmeTimings::default();
    energy += spme.compute_profiled(&pos, &top.charge, &mut forces, &mut timings);
    let _ = &mut prof;
    for &(i, j) in top.exclusions.excluded_pairs() {
        let d = sys.pbox.min_image(pos[i as usize], pos[j as usize]);
        let qq = top.charge[i as usize] * top.charge[j as usize];
        if qq == 0.0 {
            continue;
        }
        let (en, f_over_r) = kernel.exclusion_correction(qq, d.norm2());
        energy += en;
        let f = d * f_over_r;
        forces[i as usize] += f;
        forces[j as usize] -= f;
    }
    for &(i, j) in top.exclusions.pairs_14() {
        let d = sys.pbox.min_image(pos[i as usize], pos[j as usize]);
        let qq = top.charge[i as usize] * top.charge[j as usize];
        if qq == 0.0 {
            continue;
        }
        let (en, f_over_r) = kernel.exclusion_correction(qq * (1.0 - policy.elec_14), d.norm2());
        energy += en;
        let f = d * f_over_r;
        forces[i as usize] += f;
        forces[j as usize] -= f;
    }

    for v in &top.virtual_sites {
        vsite_spread_force(v, &mut forces);
    }
    (forces, energy)
}

/// Root-mean-square relative deviation between two force sets: the Table 4
/// metric, "expressed as a fraction of the rms force".
pub fn rms_force_error(test: &[Vec3], reference: &[Vec3]) -> f64 {
    assert_eq!(test.len(), reference.len());
    let mut num = 0.0;
    let mut den = 0.0;
    for (t, r) in test.iter().zip(reference) {
        num += (*t - *r).norm2();
        den += r.norm2();
    }
    (num / den).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::ForceEvaluator;
    use anton_forcefield::water::TIP3P;
    use anton_geometry::PeriodicBox;
    use anton_systems::spec::RunParams;
    use anton_systems::waterbox::pure_water_topology;

    #[test]
    fn production_forces_close_to_reference() {
        // The production evaluator (order-4 SPME, fast erfc, production
        // cutoff) should sit within ~1e-3 of the conservative reference —
        // the scale the paper calls acceptable, with Anton itself at ~1e-4.
        let pbox = PeriodicBox::cubic(18.0);
        let (top, positions) = pure_water_topology(&pbox, &TIP3P, 150, 31);
        let sys = System {
            name: "w".into(),
            pbox,
            topology: top,
            positions,
            params: RunParams::paper(7.5, 16),
        };
        let ev = ForceEvaluator::new(&sys);
        let mut pos = sys.positions.clone();
        let mut f_prod = vec![Vec3::ZERO; sys.n_atoms()];
        let mut prof = TaskProfile::default();
        ev.all_forces(&sys, &mut pos, &mut f_prod, &mut prof);
        let (f_ref, _) = reference_forces(&sys, &sys.positions);
        let err = rms_force_error(&f_prod, &f_ref);
        // Order-4 SPME at β·h ≈ 0.47 sits near 1e-2 relative accuracy —
        // the commodity-production regime; the paper's 1e-3 "generally
        // considered acceptable" bound is the ceiling we assert.
        assert!(
            err < 1.2e-2,
            "production-vs-reference rms force error {err:e}"
        );
        assert!(err > 1e-8, "suspiciously identical");
    }

    #[test]
    fn rms_error_metric_behaves() {
        let a = vec![Vec3::new(1.0, 0.0, 0.0); 10];
        let mut b = a.clone();
        assert_eq!(rms_force_error(&a, &b), 0.0);
        b[0] = Vec3::new(1.1, 0.0, 0.0);
        let e = rms_force_error(&b, &a);
        assert!((e - (0.01f64 / 10.0).sqrt()).abs() < 1e-12);
    }
}
