//! `anton-refmd`: the double-precision reference MD engine.
//!
//! Plays the role Desmond and GROMACS play in the paper: a correct,
//! conventional engine on commodity hardware, used as
//!
//! * the **x86 execution profile** of Table 2 (per-task wall times of a
//!   single-core step: range-limited, FFT, mesh interpolation, correction,
//!   bonded, integration),
//! * the **accuracy reference** for Table 4's force errors (conservative
//!   parameters, double precision),
//! * the **comparison trajectory** of Figure 6, and
//! * the Langevin sampler for the Figure 7 Gō-model folding runs.
//!
//! Architecture: cell-list pair loop + SPME reciprocal space + exclusion
//! corrections (`forces`), velocity-Verlet with impulse (r-RESPA) multiple
//! time stepping, SHAKE/RATTLE constraints and Berendsen temperature
//! control (`engine`), and a Langevin integrator over pluggable force
//! providers (`langevin`).

pub mod constraints;
pub mod engine;
pub mod forces;
pub mod langevin;
pub mod profile;
pub mod reference;

pub use engine::{RefSimulation, Thermostat};
pub use forces::{Energies, ForceEvaluator};
pub use langevin::LangevinIntegrator;
pub use profile::TaskProfile;
