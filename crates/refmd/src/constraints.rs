//! SHAKE/RATTLE distance constraints.
//!
//! The reference engine constrains bond lengths to hydrogens and rigid water
//! geometry exactly as the paper's simulations do ("bond lengths to hydrogen
//! atoms were constrained", Table 4), which is what permits 2.5 fs steps.

use anton_forcefield::topology::ConstraintGroup;
use anton_geometry::{PeriodicBox, Vec3};

/// Iterative SHAKE: adjust `pos` so every constrained distance matches its
/// target, using `pos_ref` (pre-drift positions) for the constraint
/// directions. Mass-weighted so momentum is conserved. Returns iterations
/// used.
pub fn shake(
    pbox: &PeriodicBox,
    groups: &[ConstraintGroup],
    mass: &[f64],
    pos_ref: &[Vec3],
    pos: &mut [Vec3],
    tol: f64,
    max_iters: usize,
) -> usize {
    let mut iters = 0;
    for _ in 0..max_iters {
        iters += 1;
        let mut converged = true;
        for g in groups {
            for &(i, j, d0) in &g.pairs {
                let (i, j) = (i as usize, j as usize);
                let d = pbox.min_image(pos[i], pos[j]);
                let r2 = d.norm2();
                let diff = r2 - d0 * d0;
                if diff.abs() > 2.0 * tol * d0 * d0 {
                    converged = false;
                    let d_ref = pbox.min_image(pos_ref[i], pos_ref[j]);
                    let (wi, wj) = (1.0 / mass[i], 1.0 / mass[j]);
                    let denom = 2.0 * (wi + wj) * d_ref.dot(d);
                    if denom.abs() < 1e-12 {
                        continue;
                    }
                    let gamma = diff / denom;
                    pos[i] -= d_ref * (gamma * wi);
                    pos[j] += d_ref * (gamma * wj);
                }
            }
        }
        if converged {
            break;
        }
    }
    iters
}

/// RATTLE velocity projection: remove velocity components along constrained
/// bonds so that d/dt|r_ij|² = 0.
pub fn rattle(
    pbox: &PeriodicBox,
    groups: &[ConstraintGroup],
    mass: &[f64],
    pos: &[Vec3],
    vel: &mut [Vec3],
    tol: f64,
    max_iters: usize,
) -> usize {
    let mut iters = 0;
    for _ in 0..max_iters {
        iters += 1;
        let mut converged = true;
        for g in groups {
            for &(i, j, d0) in &g.pairs {
                let (i, j) = (i as usize, j as usize);
                let d = pbox.min_image(pos[i], pos[j]);
                let dv = vel[i] - vel[j];
                let rv = d.dot(dv);
                if rv.abs() > tol * d0 {
                    converged = false;
                    let (wi, wj) = (1.0 / mass[i], 1.0 / mass[j]);
                    let k = rv / (d.norm2() * (wi + wj));
                    vel[i] -= d * (k * wi);
                    vel[j] += d * (k * wj);
                }
            }
        }
        if converged {
            break;
        }
    }
    iters
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_forcefield::water::TIP3P;

    fn water_group() -> (Vec<Vec3>, ConstraintGroup, Vec<f64>) {
        let m = TIP3P;
        let pos = m.place(
            Vec3::new(5.0, 5.0, 5.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 0.0),
        );
        (pos, m.constraint_group(0), vec![16.0, 1.0, 1.0])
    }

    #[test]
    fn shake_restores_rigid_geometry() {
        let pbox = PeriodicBox::cubic(20.0);
        let (ref_pos, group, mass) = water_group();
        // Perturb.
        let mut pos = ref_pos.clone();
        pos[1] += Vec3::new(0.08, -0.05, 0.02);
        pos[2] += Vec3::new(-0.03, 0.06, -0.04);
        let iters = shake(
            &pbox,
            std::slice::from_ref(&group),
            &mass,
            &ref_pos,
            &mut pos,
            1e-10,
            100,
        );
        assert!(iters < 100);
        for &(i, j, d0) in &group.pairs {
            let d = pbox.min_image(pos[i as usize], pos[j as usize]).norm();
            assert!((d - d0).abs() < 1e-8, "pair ({i},{j}): {d} vs {d0}");
        }
    }

    #[test]
    fn shake_conserves_momentum() {
        let pbox = PeriodicBox::cubic(20.0);
        let (ref_pos, group, mass) = water_group();
        let mut pos = ref_pos.clone();
        pos[1] += Vec3::new(0.08, -0.05, 0.02);
        let com_before: Vec3 = pos
            .iter()
            .zip(&mass)
            .fold(Vec3::ZERO, |a, (p, &m)| a + *p * m);
        shake(&pbox, &[group], &mass, &ref_pos, &mut pos, 1e-10, 100);
        let com_after: Vec3 = pos
            .iter()
            .zip(&mass)
            .fold(Vec3::ZERO, |a, (p, &m)| a + *p * m);
        assert!((com_before - com_after).norm() < 1e-10);
    }

    #[test]
    fn rattle_removes_bond_rate() {
        let pbox = PeriodicBox::cubic(20.0);
        let (pos, group, mass) = water_group();
        let mut vel = vec![
            Vec3::new(0.01, 0.0, 0.0),
            Vec3::new(-0.02, 0.01, 0.005),
            Vec3::new(0.015, -0.01, 0.0),
        ];
        rattle(
            &pbox,
            std::slice::from_ref(&group),
            &mass,
            &pos,
            &mut vel,
            1e-12,
            100,
        );
        for &(i, j, _) in &group.pairs {
            let d = pbox.min_image(pos[i as usize], pos[j as usize]);
            let dv = vel[i as usize] - vel[j as usize];
            assert!(d.dot(dv).abs() < 1e-10);
        }
    }
}
