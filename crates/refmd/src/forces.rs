//! Full force evaluation for the reference engine.

use crate::profile::TaskProfile;
use anton_ewald::direct::DirectKernel;
use anton_ewald::{Mesh, Spme};
use anton_forcefield::bonded;
use anton_forcefield::water::{vsite_position, vsite_spread_force};
use anton_geometry::{CellGrid, Vec3};
use anton_systems::System;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Potential-energy breakdown of one evaluation (kcal/mol).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Energies {
    pub bonded: f64,
    /// Direct-space electrostatics + LJ under the cutoff.
    pub range_limited: f64,
    /// Reciprocal-space (mesh) electrostatics, self-energy subtracted.
    pub reciprocal: f64,
    /// Excluded-pair and 1-4 corrections.
    pub correction: f64,
}

impl Energies {
    pub fn potential(&self) -> f64 {
        self.bonded + self.range_limited + self.reciprocal + self.correction
    }
}

/// A reusable force evaluator bound to one system.
pub struct ForceEvaluator {
    pub kernel: DirectKernel,
    pub spme: Spme,
    /// Pair-list skin added to the cell size (Å).
    pub skin: f64,
}

impl ForceEvaluator {
    /// Standard production evaluator: SPME order 4 on the system's mesh,
    /// fast erfc in the pair loop.
    pub fn new(sys: &System) -> ForceEvaluator {
        let beta = sys.params.ewald_beta();
        ForceEvaluator {
            kernel: DirectKernel::new(beta, sys.params.cutoff),
            spme: Spme::new(Mesh::new(sys.params.mesh, sys.pbox), beta, 4),
            skin: 0.0,
        }
    }

    /// Short-range part: bonded terms + range-limited pairs + corrections.
    /// Adds into `forces`; returns energies (reciprocal left zero).
    pub fn short_range(
        &self,
        sys: &System,
        pos: &[Vec3],
        forces: &mut [Vec3],
        profile: &mut TaskProfile,
    ) -> Energies {
        let top = &sys.topology;
        let mut en = Energies::default();

        // Bonded terms.
        let t0 = Instant::now();
        en.bonded = bonded::accumulate_bonded(&sys.pbox, pos, top, forces);
        profile.bonded_s += t0.elapsed().as_secs_f64();

        // Neighbor structure.
        let t1 = Instant::now();
        let grid = CellGrid::build(&sys.pbox, pos, sys.params.cutoff + self.skin);
        profile.neighbor_s += t1.elapsed().as_secs_f64();

        // Range-limited pairs.
        let t2 = Instant::now();
        let policy = top
            .exclusions
            .policy
            .unwrap_or(anton_forcefield::ExclusionPolicy::amber_like());
        let mut e_rl = 0.0;
        grid.for_each_pair_within(pos, sys.params.cutoff, |i, j, d, r2| {
            let (iu, ju) = (i as u32, j as u32);
            if top.exclusions.is_excluded(iu, ju) {
                return;
            }
            let (se, sl) = if top.exclusions.is_14(iu, ju) {
                (policy.elec_14, policy.lj_14)
            } else {
                (1.0, 1.0)
            };
            let qq = top.charge[i] * top.charge[j];
            let (a, b) = top.lj_table.coeffs(top.lj_type[i], top.lj_type[j]);
            let (e, f_over_r) = self.kernel.pair(qq, a, b, r2, se, sl);
            e_rl += e;
            let f = d * f_over_r;
            forces[i] += f;
            forces[j] -= f;
        });
        en.range_limited = e_rl;
        profile.range_limited_s += t2.elapsed().as_secs_f64();

        en
    }

    /// Long-range part: SPME reciprocal sum plus the exclusion corrections
    /// that cancel its excluded-pair content. Adds into `forces`.
    pub fn long_range(
        &self,
        sys: &System,
        pos: &[Vec3],
        forces: &mut [Vec3],
        profile: &mut TaskProfile,
    ) -> Energies {
        let top = &sys.topology;
        let mut en = Energies::default();

        let mut timings = anton_ewald::spme::SpmeTimings::default();
        en.reciprocal = self
            .spme
            .compute_profiled(pos, &top.charge, forces, &mut timings);
        profile.fft_s += timings.fft_s;
        profile.mesh_s += timings.spread_s + timings.interp_s;

        // Corrections: remove the reciprocal-space contribution of excluded
        // pairs entirely, and all but the scaled fraction for 1-4 pairs.
        let t0 = Instant::now();
        let policy = top
            .exclusions
            .policy
            .unwrap_or(anton_forcefield::ExclusionPolicy::amber_like());
        let mut e_corr = 0.0;
        for &(i, j) in top.exclusions.excluded_pairs() {
            let d = sys.pbox.min_image(pos[i as usize], pos[j as usize]);
            let qq = top.charge[i as usize] * top.charge[j as usize];
            if qq == 0.0 {
                continue;
            }
            let (e, f_over_r) = self.kernel.exclusion_correction(qq, d.norm2());
            e_corr += e;
            let f = d * f_over_r;
            forces[i as usize] += f;
            forces[j as usize] -= f;
        }
        for &(i, j) in top.exclusions.pairs_14() {
            let d = sys.pbox.min_image(pos[i as usize], pos[j as usize]);
            let qq = top.charge[i as usize] * top.charge[j as usize];
            if qq == 0.0 {
                continue;
            }
            let scale = 1.0 - policy.elec_14;
            let (e, f_over_r) = self.kernel.exclusion_correction(qq * scale, d.norm2());
            e_corr += e;
            let f = d * f_over_r;
            forces[i as usize] += f;
            forces[j as usize] -= f;
        }
        en.correction = e_corr;
        profile.correction_s += t0.elapsed().as_secs_f64();

        en
    }

    /// Everything at once (virtual sites projected and spread), for force
    /// comparisons and tests. Returns the combined energies.
    pub fn all_forces(
        &self,
        sys: &System,
        pos: &mut [Vec3],
        forces: &mut [Vec3],
        profile: &mut TaskProfile,
    ) -> Energies {
        for v in &sys.topology.virtual_sites {
            pos[v.site as usize] = vsite_position(v, pos);
        }
        for f in forces.iter_mut() {
            *f = Vec3::ZERO;
        }
        let short = self.short_range(sys, pos, forces, profile);
        let long = self.long_range(sys, pos, forces, profile);
        for v in &sys.topology.virtual_sites {
            vsite_spread_force(v, forces);
        }
        Energies {
            bonded: short.bonded,
            range_limited: short.range_limited,
            reciprocal: long.reciprocal,
            correction: long.correction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_forcefield::water::TIP3P;
    use anton_geometry::PeriodicBox;
    use anton_systems::spec::RunParams;
    use anton_systems::waterbox::pure_water_topology;

    fn small_water_system() -> System {
        let pbox = PeriodicBox::cubic(18.0);
        let (top, positions) = pure_water_topology(&pbox, &TIP3P, 150, 5);
        let sys = System {
            name: "water150".into(),
            pbox,
            topology: top,
            positions,
            params: RunParams::paper(8.0, 16),
        };
        sys.validate().unwrap();
        sys
    }

    #[test]
    fn forces_match_numerical_gradient_of_total_potential() {
        let sys = small_water_system();
        let ev = ForceEvaluator::new(&sys);
        let mut pos = sys.positions.clone();
        let mut forces = vec![Vec3::ZERO; sys.n_atoms()];
        let mut prof = TaskProfile::default();
        ev.all_forces(&sys, &mut pos, &mut forces, &mut prof);

        let h = 1e-5;
        // Check a handful of real atoms (hydrogens of different molecules).
        for &i in &[1usize, 100, 301] {
            for ax in 0..3 {
                let mut p2 = sys.positions.clone();
                p2[i][ax] += h;
                let mut f2 = vec![Vec3::ZERO; sys.n_atoms()];
                let mut pr = TaskProfile::default();
                let ep = ev.all_forces(&sys, &mut p2, &mut f2, &mut pr).potential();
                p2[i][ax] -= 2.0 * h;
                let em = ev.all_forces(&sys, &mut p2, &mut f2, &mut pr).potential();
                let num = -(ep - em) / (2.0 * h);
                assert!(
                    (forces[i][ax] - num).abs() < 2e-3 * (1.0 + num.abs()),
                    "atom {i} ax {ax}: {} vs {num}",
                    forces[i][ax]
                );
            }
        }
    }

    #[test]
    fn net_force_is_small() {
        // Newton's third law holds pairwise; only the mesh breaks exact
        // translation invariance, at the force-error level.
        let sys = small_water_system();
        let ev = ForceEvaluator::new(&sys);
        let mut pos = sys.positions.clone();
        let mut forces = vec![Vec3::ZERO; sys.n_atoms()];
        let mut prof = TaskProfile::default();
        ev.all_forces(&sys, &mut pos, &mut forces, &mut prof);
        let net = forces.iter().fold(Vec3::ZERO, |a, &b| a + b);
        let rms = (forces.iter().map(|f| f.norm2()).sum::<f64>() / forces.len() as f64).sqrt();
        // The mesh breaks exact translation invariance at the SPME
        // interpolation-error level (~1e-2 relative for order 4 here).
        assert!(
            net.norm() < 2e-2 * rms * (sys.n_atoms() as f64).sqrt(),
            "net {net:?} rms {rms}"
        );
    }

    #[test]
    fn energies_are_physical_for_liquid_water() {
        // TIP3P liquid water at ~0.0334/Å³: potential energy should be
        // strongly negative (experimentally ≈ −9.5 kcal/mol per molecule;
        // an unequilibrated lattice won't match that, but must be bound).
        let sys = small_water_system();
        let ev = ForceEvaluator::new(&sys);
        let mut pos = sys.positions.clone();
        let mut forces = vec![Vec3::ZERO; sys.n_atoms()];
        let mut prof = TaskProfile::default();
        let en = ev.all_forces(&sys, &mut pos, &mut forces, &mut prof);
        let per_mol = en.potential() / 150.0;
        assert!(
            per_mol < -2.0,
            "water not bound: {per_mol} kcal/mol/molecule"
        );
        assert!(per_mol > -20.0, "unphysically deep: {per_mol}");
    }

    #[test]
    fn profile_accumulates() {
        let sys = small_water_system();
        let ev = ForceEvaluator::new(&sys);
        let mut pos = sys.positions.clone();
        let mut forces = vec![Vec3::ZERO; sys.n_atoms()];
        let mut prof = TaskProfile::default();
        ev.all_forces(&sys, &mut pos, &mut forces, &mut prof);
        assert!(prof.range_limited_s > 0.0);
        assert!(prof.fft_s > 0.0);
        assert!(prof.mesh_s > 0.0);
    }
}
