//! Property tests for the edges of the fixed-point rounding primitives:
//! `Fx32` round-trips right at the ±1.0 periodic seam, the `-1 * -1` wrap,
//! and exact-tie inputs to the round-to-nearest/even shifts.
//!
//! These complement the in-crate unit tests, which cover interior values; the
//! determinism claims of the workspace (DESIGN.md, "Determinism policy") rest
//! on these boundary cases behaving identically on every host.

// Tests measure quantization error against f64 references by design.
#![allow(clippy::float_arithmetic, clippy::cast_possible_truncation)]

use anton_fixpoint::rounding::{rne_f64, rne_shr_i128, rne_shr_i64};
use anton_fixpoint::Fx32;
use proptest::prelude::*;

proptest! {
    /// Round-trip near the periodic seam: values within a few thousand ulp of
    /// ±1.0 must quantize onto the grid with at most one-ulp error, and the
    /// two seam points must land on the *same* representative (-1.0), because
    /// +1.0 and -1.0 are the same point of the periodic interval.
    #[test]
    fn fx32_roundtrip_near_seam(ulps in -5000i64..5000) {
        let x = 1.0 + ulps as f64 * Fx32::EPSILON;
        let q = Fx32::from_f64_wrapped(x);
        // Compare in wrapped space: distance to the nearest image.
        let d = (q.to_f64() - x).rem_euclid(2.0);
        let d = d.min(2.0 - d);
        prop_assert!(d <= Fx32::EPSILON, "x={x} q={:?} d={d}", q);
    }

    /// The same seam property around -1.0.
    #[test]
    fn fx32_roundtrip_near_negative_seam(ulps in -5000i64..5000) {
        let x = -1.0 + ulps as f64 * Fx32::EPSILON;
        let q = Fx32::from_f64_wrapped(x);
        let d = (q.to_f64() - x).rem_euclid(2.0);
        let d = d.min(2.0 - d);
        prop_assert!(d <= Fx32::EPSILON, "x={x} q={:?} d={d}", q);
    }

    /// `-1 * x` never panics and equals the wrapped negation of `x` rounded:
    /// multiplying by the raw value `i32::MIN` (representing -1.0) is the
    /// documented wrap case of [`Fx32::mul`].
    #[test]
    fn fx32_mul_by_minus_one_is_wrapping_neg(raw in any::<i32>()) {
        let minus_one = Fx32(i32::MIN);
        let x = Fx32(raw);
        let got = minus_one.mul(x);
        // -1.0 * (raw * 2^-31) = -raw * 2^-31 exactly; RNE of an exact value
        // is the value itself, truncated into i32 with wrapping.
        prop_assert_eq!(got.raw(), x.raw().wrapping_neg(), "x={:?}", x);
    }

    /// Exact ties round to even for `rne_shr_i64`: feed values that sit
    /// exactly halfway between two representable outputs.
    #[test]
    fn rne_shr_i64_ties_round_to_even(q in -(1i64 << 40)..(1i64 << 40), n in 1u32..20) {
        let half = 1i64 << (n - 1);
        let tie = (q << n) + half; // exactly q + 0.5 in shifted units
        let got = rne_shr_i64(tie, n);
        let want = if q & 1 == 0 { q } else { q + 1 };
        prop_assert_eq!(got, want, "q={q} n={n}");
        // One ulp either side of the tie must round toward the nearer value.
        prop_assert_eq!(rne_shr_i64(tie - 1, n), q);
        prop_assert_eq!(rne_shr_i64(tie + 1, n), q + 1);
    }

    /// The same tie rule for the 128-bit shift, including shift counts past 64.
    #[test]
    fn rne_shr_i128_ties_round_to_even(q in -(1i64 << 40)..(1i64 << 40), n in 1u32..80) {
        let half = 1i128 << (n - 1);
        let tie = ((q as i128) << n) + half;
        let got = rne_shr_i128(tie, n);
        let want = if q & 1 == 0 { q } else { q + 1 };
        prop_assert_eq!(got, want, "q={q} n={n}");
        prop_assert_eq!(rne_shr_i128(tie - 1, n), q);
        prop_assert_eq!(rne_shr_i128(tie + 1, n), q + 1);
    }

    /// Odd symmetry at ties: `rne(-x) == -rne(x)` even for exact halves,
    /// which is what makes the integrator exactly time-reversible.
    #[test]
    fn rne_shr_tie_odd_symmetry(q in 0i64..(1i64 << 40), n in 1u32..20) {
        let half = 1i64 << (n - 1);
        let tie = (q << n) + half;
        prop_assert_eq!(rne_shr_i64(-tie, n), -rne_shr_i64(tie, n));
    }

    /// `rne_f64` agrees with the integer tie rule on exact .5 inputs.
    #[test]
    fn rne_f64_ties_match_integer_rule(k in -(1i64 << 40)..(1i64 << 40)) {
        let x = k as f64 + 0.5;
        let want = if k & 1 == 0 { k as f64 } else { (k + 1) as f64 };
        prop_assert_eq!(rne_f64(x), want, "k={k}");
    }
}

#[test]
fn minus_one_times_minus_one_wraps_to_minus_one() {
    // +1.0 is not representable; -1 * -1 overflows the fraction range and
    // wraps back onto -1.0, the hardware-faithful periodic identity.
    let minus_one = Fx32(i32::MIN);
    let p = minus_one.mul(minus_one);
    assert_eq!(p.raw(), i32::MIN);
    assert_eq!(p.to_f64(), -1.0);
}

#[test]
fn seam_points_quantize_to_same_representative() {
    let a = Fx32::from_f64_wrapped(1.0);
    let b = Fx32::from_f64_wrapped(-1.0);
    assert_eq!(a, b);
    assert_eq!(a.raw(), i32::MIN);
}
