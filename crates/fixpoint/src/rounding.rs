//! Round-to-nearest/even shift primitives.
//!
//! All rounding on the Anton ASIC uses a round-to-nearest/even rule (paper
//! Figure 4 caption). The functions here implement that rule for arithmetic
//! right shifts, which is how every fixed-point multiply and rescale in this
//! workspace discards fraction bits.
//!
//! Round-to-nearest/even is *odd-symmetric*: `rne(-x) == -rne(x)`. The exact
//! time-reversibility demonstrated by the paper (negate all velocities, run
//! backwards, recover the initial state bit-for-bit) requires the integrator's
//! position and velocity increments to negate exactly, which this symmetry
//! provides.

/// Arithmetic right shift of `x` by `n` bits with round-to-nearest/even.
///
/// For `n == 0` this is the identity. `n` must be < 64.
#[inline]
pub fn rne_shr_i64(x: i64, n: u32) -> i64 {
    debug_assert!(n < 64);
    if n == 0 {
        return x;
    }
    let q = x >> n; // floor division by 2^n
    let rem = x - (q << n); // in [0, 2^n)
    let half = 1i64 << (n - 1);
    if rem > half || (rem == half && (q & 1) == 1) {
        q + 1
    } else {
        q
    }
}

/// Arithmetic right shift of a 128-bit intermediate with round-to-nearest/even,
/// truncated into `i64`.
///
/// The caller is responsible for choosing scales such that the rounded result
/// fits in 64 bits; in debug builds an overflow panics, in release builds it
/// wraps (mirroring the ASIC's wrap-tolerant accumulation).
// The audited narrowing: callers size their Q formats so the result fits,
// and the debug_assert below catches violations (see module docs).
#[allow(clippy::cast_possible_truncation)]
#[inline]
pub fn rne_shr_i128(x: i128, n: u32) -> i64 {
    debug_assert!(n < 128);
    if n == 0 {
        return x as i64;
    }
    let q = x >> n;
    let rem = x - (q << n);
    let half = 1i128 << (n - 1);
    let rounded = if rem > half || (rem == half && (q & 1) == 1) {
        q + 1
    } else {
        q
    };
    debug_assert!(
        rounded >= i64::MIN as i128 && rounded <= i64::MAX as i128,
        "rne_shr_i128 overflow: {rounded}"
    );
    rounded as i64
}

/// Round an `f64` to the nearest integer, ties to even (IEEE `roundTiesToEven`).
///
/// Used only at the boundary between floating-point setup code and the
/// fixed-point simulation state; never inside the deterministic core.
// This *is* the float quantization boundary, so the float-ban lints do not
// apply inside it; the `r as i64` parity probe is exact for any x where the
// tie adjustment matters (|x| < 2^52).
#[allow(clippy::float_arithmetic, clippy::cast_possible_truncation)]
#[inline]
pub fn rne_f64(x: f64) -> f64 {
    // f64::round() rounds half away from zero; adjust exact-half cases.
    let r = x.round();
    if (x - x.trunc()).abs() == 0.5 && (r as i64) % 2 != 0 {
        r - (r - x).signum()
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rne_shr_basic() {
        // 5/2 = 2.5 -> 2 (even); 7/2 = 3.5 -> 4 (even); 3/2 = 1.5 -> 2.
        assert_eq!(rne_shr_i64(5, 1), 2);
        assert_eq!(rne_shr_i64(7, 1), 4);
        assert_eq!(rne_shr_i64(3, 1), 2);
        assert_eq!(rne_shr_i64(4, 1), 2);
    }

    #[test]
    fn rne_shr_negative_symmetry() {
        for x in -1000i64..1000 {
            for n in 1..8u32 {
                assert_eq!(
                    rne_shr_i64(-x, n),
                    -rne_shr_i64(x, n),
                    "odd symmetry violated for x={x} n={n}"
                );
            }
        }
    }

    #[test]
    fn rne_shr_matches_f64_rounding() {
        for x in -4096i64..4096 {
            let got = rne_shr_i64(x, 4);
            #[allow(clippy::cast_possible_truncation)] // reference value fits i64
            let want = rne_f64(x as f64 / 16.0) as i64;
            assert_eq!(got, want, "x={x}");
        }
    }

    #[test]
    fn rne_shr_i128_agrees_with_i64() {
        for x in -5000i64..5000 {
            for n in 1..10u32 {
                assert_eq!(rne_shr_i128(x as i128, n), rne_shr_i64(x, n));
            }
        }
    }

    #[test]
    fn rne_f64_ties_to_even() {
        assert_eq!(rne_f64(0.5), 0.0);
        assert_eq!(rne_f64(1.5), 2.0);
        assert_eq!(rne_f64(2.5), 2.0);
        assert_eq!(rne_f64(-0.5), 0.0);
        assert_eq!(rne_f64(-1.5), -2.0);
        assert_eq!(rne_f64(-2.5), -2.0);
    }
}
