//! Round-to-nearest/even shift primitives.
//!
//! All rounding on the Anton ASIC uses a round-to-nearest/even rule (paper
//! Figure 4 caption). The functions here implement that rule for arithmetic
//! right shifts, which is how every fixed-point multiply and rescale in this
//! workspace discards fraction bits.
//!
//! Round-to-nearest/even is *odd-symmetric*: `rne(-x) == -rne(x)`. The exact
//! time-reversibility demonstrated by the paper (negate all velocities, run
//! backwards, recover the initial state bit-for-bit) requires the integrator's
//! position and velocity increments to negate exactly, which this symmetry
//! provides.

/// Arithmetic right shift of `x` by `n` bits with round-to-nearest/even.
///
/// For `n == 0` this is the identity. `n` must be < 64.
#[inline]
pub fn rne_shr_i64(x: i64, n: u32) -> i64 {
    debug_assert!(n < 64);
    if n == 0 {
        return x;
    }
    let q = x >> n; // floor division by 2^n
    let rem = x - (q << n); // in [0, 2^n)
    let half = 1i64 << (n - 1);
    // Branchless nearest/even bump: +1 when rem > half, or on an exact tie
    // when q is odd. This sits 6x per table lookup in the PPIP inner loop and
    // the tie/above-half predicates are data-dependent coin flips there, so a
    // conditional form mispredicts constantly; the arithmetic form is the
    // same value for every (x, n).
    let bump = i64::from(rem > half) | (i64::from(rem == half) & q & 1);
    q + bump
}

/// Arithmetic right shift of a 128-bit intermediate with round-to-nearest/even,
/// truncated into `i64`.
///
/// The caller is responsible for choosing scales such that the rounded result
/// fits in 64 bits; in debug builds an overflow panics, in release builds it
/// wraps (mirroring the ASIC's wrap-tolerant accumulation).
// The audited narrowing: callers size their Q formats so the result fits,
// and the debug_assert below catches violations (see module docs).
#[allow(clippy::cast_possible_truncation)]
#[inline]
pub fn rne_shr_i128(x: i128, n: u32) -> i64 {
    debug_assert!(n < 128);
    if n == 0 {
        return x as i64;
    }
    let q = x >> n;
    let rem = x - (q << n);
    let half = 1i128 << (n - 1);
    // Same branchless nearest/even bump as `rne_shr_i64` (see there).
    let bump = i128::from(rem > half) | (i128::from(rem == half) & q & 1);
    let rounded = q + bump;
    debug_assert!(
        rounded >= i64::MIN as i128 && rounded <= i64::MAX as i128,
        "rne_shr_i128 overflow: {rounded}"
    );
    rounded as i64
}

/// Round an `f64` to the nearest integer, ties to even (IEEE `roundTiesToEven`).
///
/// Used only at the boundary between floating-point setup code and the
/// fixed-point simulation state; never inside the deterministic core.
// This *is* the float quantization boundary, so the float-ban lints do not
// apply inside it; adding 2^52 to a non-negative x < 2^52 forces the
// fraction bits out of the mantissa, and IEEE's default round-to-nearest/
// even mode (the only mode Rust exposes) does the tie-breaking in hardware.
// Two additions replace the round()/trunc() libm calls this sat on before —
// it is the single hottest scalar in the PPIP evaluate path — and
// `rne_f64_reference` in the tests pins the substitution bit-for-bit.
// The negated comparison is load-bearing: NaN fails `<`, so the `!` routes
// NaN (and ±inf) to the identity arm, exactly as round()/trunc() behaved.
#[allow(clippy::float_arithmetic, clippy::neg_cmp_op_on_partial_ord)]
#[inline]
pub fn rne_f64(x: f64) -> f64 {
    const MAGIC: f64 = 4_503_599_627_370_496.0; // 2^52
    if !(x.abs() < MAGIC) {
        return x; // already integral (or NaN/±inf): rounding is the identity
    }
    // `is_sign_positive` (not `>= 0.0`) so -0.0 keeps its sign bit, exactly
    // as `f64::round` preserves it.
    if x.is_sign_positive() {
        (x + MAGIC) - MAGIC
    } else if x == -0.5 {
        // The one negative tie that crosses zero: the reference computed
        // it as `-1.0 + 1.0`, i.e. *positive* zero, unlike every other
        // value in (-0.5, -0.0] which keeps its sign bit.
        0.0
    } else {
        -((-x + MAGIC) - MAGIC)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The retired round()/trunc() implementation, kept as the oracle for
    /// the magic-number fast path.
    #[allow(clippy::float_arithmetic, clippy::cast_possible_truncation)]
    fn rne_f64_reference(x: f64) -> f64 {
        let r = x.round();
        if (x - x.trunc()).abs() == 0.5 && (r as i64) % 2 != 0 {
            r - (r - x).signum()
        } else {
            r
        }
    }

    /// The fast rne_f64 is bit-identical to the reference on a dense sweep
    /// of magnitudes (including exact ties, signed zeros, and values past
    /// 2^52 where rounding is the identity).
    #[test]
    fn rne_f64_matches_reference_bitwise() {
        let mut probes: Vec<f64> = vec![0.0, -0.0, 0.5, -0.5, 1.5, -1.5, 2.5, -2.5];
        for e in -8..60 {
            let base = (2.0f64).powi(e);
            for frac in [0.0, 0.25, 0.5, 0.75, 0.999_999, 1.0 / 3.0] {
                probes.push(base + frac);
                probes.push(-(base + frac));
                probes.push(base * (1.0 + frac));
                probes.push(-(base * (1.0 + frac)));
            }
        }
        // A deterministic LCG sweep of odd magnitudes.
        let mut s = 0x9e3779b97f4a7c15u64;
        for _ in 0..20_000 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (s >> 11) as f64 / (1u64 << 20) as f64 - 4.0e12;
            probes.push(x);
        }
        for &x in &probes {
            assert_eq!(
                rne_f64(x).to_bits(),
                rne_f64_reference(x).to_bits(),
                "rne_f64({x:e}) diverged from the reference"
            );
        }
    }

    #[test]
    fn rne_shr_basic() {
        // 5/2 = 2.5 -> 2 (even); 7/2 = 3.5 -> 4 (even); 3/2 = 1.5 -> 2.
        assert_eq!(rne_shr_i64(5, 1), 2);
        assert_eq!(rne_shr_i64(7, 1), 4);
        assert_eq!(rne_shr_i64(3, 1), 2);
        assert_eq!(rne_shr_i64(4, 1), 2);
    }

    #[test]
    fn rne_shr_negative_symmetry() {
        for x in -1000i64..1000 {
            for n in 1..8u32 {
                assert_eq!(
                    rne_shr_i64(-x, n),
                    -rne_shr_i64(x, n),
                    "odd symmetry violated for x={x} n={n}"
                );
            }
        }
    }

    #[test]
    fn rne_shr_matches_f64_rounding() {
        for x in -4096i64..4096 {
            let got = rne_shr_i64(x, 4);
            #[allow(clippy::cast_possible_truncation)] // reference value fits i64
            let want = rne_f64(x as f64 / 16.0) as i64;
            assert_eq!(got, want, "x={x}");
        }
    }

    #[test]
    fn rne_shr_i128_agrees_with_i64() {
        for x in -5000i64..5000 {
            for n in 1..10u32 {
                assert_eq!(rne_shr_i128(x as i128, n), rne_shr_i64(x, n));
            }
        }
    }

    #[test]
    fn rne_f64_ties_to_even() {
        assert_eq!(rne_f64(0.5), 0.0);
        assert_eq!(rne_f64(1.5), 2.0);
        assert_eq!(rne_f64(2.5), 2.0);
        assert_eq!(rne_f64(-0.5), 0.0);
        assert_eq!(rne_f64(-1.5), -2.0);
        assert_eq!(rne_f64(-2.5), -2.0);
    }
}
