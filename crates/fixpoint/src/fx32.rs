//! 32-bit signed fraction in `[-1, 1)` with wrapping (periodic) arithmetic.

use crate::rounding::rne_shr_i64;
use serde::{Deserialize, Serialize};

/// A 32-bit signed fixed-point fraction: `value = raw * 2^-31`, in `[-1, 1)`.
///
/// Addition and subtraction wrap in the natural two's-complement way, exactly
/// as on the Anton ASIC. Atom positions are stored per-axis as an `Fx32`
/// fraction of the periodic box edge, which makes the wrap *be* the periodic
/// boundary condition: subtracting two positions with [`Fx32::wrapping_sub`]
/// yields the minimum-image displacement whenever the true separation is less
/// than half a box edge.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Fx32(pub i32);

impl Fx32 {
    pub const ZERO: Fx32 = Fx32(0);
    /// Number of fraction bits.
    pub const FRAC: u32 = 31;
    /// Smallest representable increment (2^-31).
    // detlint::boundary(reason = "grid-spacing constant used only when quantizing at the f64 edge")
    pub const EPSILON: f64 = 1.0 / (1u64 << 31) as f64;

    /// Quantize an `f64` in (approximately) `[-1, 1)` to the fraction grid
    /// with round-to-nearest/even, wrapping values outside the range onto the
    /// periodic interval.
    // detlint::boundary(reason = "the f64 -> fraction quantization edge; rounds via rne_f64 before any accumulation")
    #[allow(clippy::float_arithmetic, clippy::cast_possible_truncation)]
    #[inline]
    pub fn from_f64_wrapped(x: f64) -> Fx32 {
        // Reduce to [-1, 1) first so the scaled value fits comfortably in i64.
        let wrapped = x - 2.0 * (x / 2.0 + 0.5).floor();
        let scaled = crate::rounding::rne_f64(wrapped * (1u64 << 31) as f64) as i64;
        Fx32(scaled as i32) // 2^31 maps to i32::MIN, i.e. -1: same point mod 2.
    }

    /// The real value represented, in `[-1, 1)`.
    // detlint::boundary(reason = "exact fraction -> f64 decode (31 bits fit a double); read-only, never accumulated back")
    #[allow(clippy::float_arithmetic)]
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 * Self::EPSILON
    }

    #[inline]
    pub fn raw(self) -> i32 {
        self.0
    }

    #[inline]
    pub fn wrapping_add(self, rhs: Fx32) -> Fx32 {
        Fx32(self.0.wrapping_add(rhs.0))
    }

    #[inline]
    pub fn wrapping_sub(self, rhs: Fx32) -> Fx32 {
        Fx32(self.0.wrapping_sub(rhs.0))
    }

    #[inline]
    pub fn wrapping_neg(self) -> Fx32 {
        Fx32(self.0.wrapping_neg())
    }

    /// Multiply two fractions with round-to-nearest/even; the result is again
    /// a fraction (cannot overflow except for `-1 * -1`, which wraps to `-1`
    /// just as the hardware would).
    // Deliberately not `impl Mul`: the wrapping, rounding semantics should
    // be spelled out at call sites. The i32 narrowing is exact (see allow).
    #[allow(clippy::should_implement_trait, clippy::cast_possible_truncation)]
    #[inline]
    pub fn mul(self, rhs: Fx32) -> Fx32 {
        let prod = self.0 as i64 * rhs.0 as i64;
        // detlint::allow(D3, reason = "rne_shr_i64(prod, 31) of a fraction product fits i32 by construction; -1 * -1 wrap is the documented periodic identity")
        Fx32(rne_shr_i64(prod, 31) as i32)
    }

    /// Scale this fraction by an arbitrary Q-format factor, producing a raw
    /// value with `out_frac` fraction bits. Used to convert a box fraction to
    /// a displacement in Å: `frac.scale(edge_q20_raw, 20, 20)`.
    #[inline]
    pub fn scale(self, factor_raw: i64, factor_frac: u32, out_frac: u32) -> i64 {
        let prod = self.0 as i128 * factor_raw as i128;
        crate::rounding::rne_shr_i128(prod, Self::FRAC + factor_frac - out_frac)
    }
}

impl core::fmt::Debug for Fx32 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fx32({:.9})", self.to_f64())
    }
}

#[cfg(test)]
// Tests measure quantization error against f64 references by design.
#[allow(clippy::float_arithmetic)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_and_wrap() {
        let a = Fx32::from_f64_wrapped(0.25);
        assert!((a.to_f64() - 0.25).abs() < Fx32::EPSILON);
        // 1.25 wraps onto -0.75.
        let b = Fx32::from_f64_wrapped(1.25);
        assert!((b.to_f64() + 0.75).abs() < 2.0 * Fx32::EPSILON);
        // -1.0 is representable exactly.
        let c = Fx32::from_f64_wrapped(-1.0);
        assert_eq!(c.raw(), i32::MIN);
    }

    #[test]
    fn minimum_image_via_wrap() {
        // Two positions near opposite faces of the box: the wrapped
        // difference is the short way around.
        let a = Fx32::from_f64_wrapped(0.95 * 2.0 - 1.0); // fraction 0.9 of [-1,1)
        let b = Fx32::from_f64_wrapped(0.05 * 2.0 - 1.0);
        let d = a.wrapping_sub(b).to_f64();
        // 0.9 - 0.1 in box fraction = -0.2 of the full [-1,1) span
        assert!((d - (-0.2)).abs() < 1e-8, "d = {d}");
    }

    #[test]
    fn mul_basic() {
        let a = Fx32::from_f64_wrapped(0.5);
        let b = Fx32::from_f64_wrapped(0.5);
        assert!((a.mul(b).to_f64() - 0.25).abs() < Fx32::EPSILON);
        let c = Fx32::from_f64_wrapped(-0.5);
        assert!((a.mul(c).to_f64() + 0.25).abs() < Fx32::EPSILON);
    }

    proptest! {
        #[test]
        fn addition_is_associative_and_commutative(a in any::<i32>(), b in any::<i32>(), c in any::<i32>()) {
            let (a, b, c) = (Fx32(a), Fx32(b), Fx32(c));
            prop_assert_eq!(a.wrapping_add(b).wrapping_add(c), a.wrapping_add(b.wrapping_add(c)));
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        }

        #[test]
        fn subtraction_is_add_of_neg(a in any::<i32>(), b in any::<i32>()) {
            let (a, b) = (Fx32(a), Fx32(b));
            prop_assert_eq!(a.wrapping_sub(b), a.wrapping_add(b.wrapping_neg()));
        }

        #[test]
        fn mul_is_odd_symmetric(a in any::<i32>(), b in -(1<<30)..(1i32<<30)) {
            // Negating one operand negates the RNE-rounded product.
            let a = Fx32(a);
            let b = Fx32(b);
            prop_assert_eq!(a.mul(b.wrapping_neg()).raw(), a.mul(b).raw().wrapping_neg());
        }

        #[test]
        fn from_f64_quantization_error_bounded(x in -1.0f64..1.0) {
            let q = Fx32::from_f64_wrapped(x);
            prop_assert!((q.to_f64() - x).abs() <= Fx32::EPSILON);
        }
    }
}
