//! Fixed-point arithmetic in the style of the Anton ASIC.
//!
//! Anton performs essentially all of its molecular-dynamics arithmetic in
//! signed fixed point (SC'09, Section 4). A `B`-bit signed fixed-point number
//! represents one of `2^B` evenly spaced reals in `[-1, 1)`. Compared with
//! floating point this buys two things the paper leans on heavily:
//!
//! 1. **Associativity.** Wrapping two's-complement addition is associative and
//!    commutative, so the order in which force contributions are summed cannot
//!    change the result. This is the root cause of Anton's *determinism* and
//!    *parallel invariance* (bitwise-identical trajectories on any node
//!    count), both of which this workspace demonstrates in its test suite.
//! 2. **Wrap-tolerance.** Sums are correct as long as the *final* value is
//!    representable, even if intermediate partial sums wrap (paper
//!    footnote 2). The classic example — in 4-bit arithmetic `3/8 + 7/8`
//!    wraps to `-3/4`, yet adding `-5/8` recovers the true sum `5/8` — is a
//!    unit test in this crate.
//!
//! The crate provides:
//!
//! * [`Fx32`] — a 32-bit fraction in `[-1, 1)`. Atom positions are stored
//!   per-axis as `Fx32` *fractions of the periodic box*, so two's-complement
//!   wraparound implements periodic boundary conditions and a wrapping
//!   subtraction is the minimum-image convention.
//! * [`Q`] — a 64-bit Q-format value with a const-generic number of fraction
//!   bits, used for displacements (Q20 Å), squared distances (Q20 Å²), forces
//!   (Q24 kcal/mol/Å), energies (Q32 kcal/mol) and velocities (Q40 Å/fs).
//! * [`Wide`] — a 128-bit accumulator standing in for Anton's 86-bit virial
//!   accumulators (paper Figure 4c).
//! * Rounding primitives implementing the ASIC's round-to-nearest/even rule
//!   (paper Figure 4 caption), which is odd-symmetric — a property the exact
//!   time-reversibility of the integrator depends on.

pub mod fxvec;
pub mod q;
pub mod rounding;

mod fx32;

pub use fx32::Fx32;
pub use fxvec::{FxVec3, QVec3};
pub use q::{Wide, Q, Q16, Q20, Q24, Q32, Q40};
pub use rounding::{rne_shr_i128, rne_shr_i64};

/// Fraction bits used for displacements and squared distances in Å / Å².
pub const LEN_FRAC: u32 = 20;
/// Fraction bits used for force components in kcal/mol/Å.
pub const FORCE_FRAC: u32 = 24;
/// Fraction bits used for energies in kcal/mol.
pub const ENERGY_FRAC: u32 = 32;
/// Fraction bits used for velocities in Å/fs.
pub const VEL_FRAC: u32 = 40;

#[cfg(test)]
mod tests {

    /// Paper footnote 2: in 4-bit arithmetic (values k/8 for k in -8..8),
    /// 3/8 + 7/8 wraps to -3/4, but adding -5/8 still yields 5/8 in any
    /// order of operations.
    #[test]
    fn four_bit_wrap_example() {
        // Model 4-bit two's complement with i8 confined to -8..8 (units of 1/8).
        fn add4(a: i8, b: i8) -> i8 {
            let s = (a + b) & 0xf;
            if s >= 8 {
                s - 16
            } else {
                s
            }
        }
        let (a, b, c) = (3i8, 7, -5); // 3/8, 7/8, -5/8
        let wrap_first = add4(add4(a, b), c);
        let other_order = add4(add4(a, c), b);
        let third_order = add4(add4(b, c), a);
        assert_eq!(add4(a, b), -6, "3/8 + 7/8 wraps to -3/4");
        assert_eq!(wrap_first, 5, "final sum is the true 5/8");
        assert_eq!(other_order, 5);
        assert_eq!(third_order, 5);
    }
}
