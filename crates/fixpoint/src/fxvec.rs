//! Three-component fixed-point vectors: periodic positions and Q-format
//! displacement / force / velocity triples.

use crate::{Fx32, Q};
use serde::{Deserialize, Serialize};

/// A position expressed as a per-axis fraction of the periodic box, one
/// [`Fx32`] per axis. Wrapping arithmetic implements periodic boundary
/// conditions exactly.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct FxVec3(pub [Fx32; 3]);

/// A Q-format vector (displacement in Å, force in kcal/mol/Å, velocity in
/// Å/fs, ... depending on `FRAC`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct QVec3<const FRAC: u32>(pub [Q<FRAC>; 3]);

impl FxVec3 {
    pub const ZERO: FxVec3 = FxVec3([Fx32(0); 3]);

    /// Build from box-fraction coordinates in `[0, 1)` (the conventional MD
    /// fractional coordinate), mapping onto the symmetric `[-1, 1)` fraction
    /// representation used internally.
    // detlint::boundary(reason = "per-axis f64 -> fraction quantization edge; delegates to Fx32::from_f64_wrapped")
    #[allow(clippy::float_arithmetic)]
    #[inline]
    pub fn from_unit_frac(f: [f64; 3]) -> FxVec3 {
        FxVec3([
            Fx32::from_f64_wrapped(2.0 * f[0] - 1.0),
            Fx32::from_f64_wrapped(2.0 * f[1] - 1.0),
            Fx32::from_f64_wrapped(2.0 * f[2] - 1.0),
        ])
    }

    /// Fractional coordinates in `[0, 1)`.
    // detlint::boundary(reason = "exact fraction -> f64 decode; read-only, never accumulated back")
    #[allow(clippy::float_arithmetic)]
    #[inline]
    pub fn to_unit_frac(self) -> [f64; 3] {
        let f = |a: Fx32| (a.to_f64() + 1.0) / 2.0;
        [f(self.0[0]), f(self.0[1]), f(self.0[2])]
    }

    /// Minimum-image displacement `self - rhs` as box fractions, valid while
    /// the true separation is under half a box edge on each axis.
    #[inline]
    pub fn wrapping_sub(self, rhs: FxVec3) -> FxVec3 {
        FxVec3([
            self.0[0].wrapping_sub(rhs.0[0]),
            self.0[1].wrapping_sub(rhs.0[1]),
            self.0[2].wrapping_sub(rhs.0[2]),
        ])
    }

    #[inline]
    pub fn wrapping_add(self, rhs: FxVec3) -> FxVec3 {
        FxVec3([
            self.0[0].wrapping_add(rhs.0[0]),
            self.0[1].wrapping_add(rhs.0[1]),
            self.0[2].wrapping_add(rhs.0[2]),
        ])
    }

    /// Convert a (small) fraction displacement to Å given the box half-edges
    /// in Q-format: `delta_Å = frac * half_edge` because the fraction spans
    /// `[-1, 1)` over the full edge.
    ///
    /// `half_edge_raw[k]` carries `edge[k]/2` in Å with `EDGE_FRAC` fraction
    /// bits; the result has `OUT` fraction bits.
    #[inline]
    pub fn frac_to_len<const EDGE_FRAC: u32, const OUT: u32>(
        self,
        half_edge: [Q<EDGE_FRAC>; 3],
    ) -> QVec3<OUT> {
        QVec3([
            Q::from_raw(self.0[0].scale(half_edge[0].raw(), EDGE_FRAC, OUT)),
            Q::from_raw(self.0[1].scale(half_edge[1].raw(), EDGE_FRAC, OUT)),
            Q::from_raw(self.0[2].scale(half_edge[2].raw(), EDGE_FRAC, OUT)),
        ])
    }
}

impl<const FRAC: u32> QVec3<FRAC> {
    pub const ZERO: QVec3<FRAC> = QVec3([Q(0); 3]);

    // detlint::boundary(reason = "per-axis f64 -> Q quantization edge; delegates to Q::from_f64")
    #[inline]
    pub fn from_f64(v: [f64; 3]) -> Self {
        QVec3([Q::from_f64(v[0]), Q::from_f64(v[1]), Q::from_f64(v[2])])
    }

    // detlint::boundary(reason = "per-axis Q -> f64 decode; read-only, never accumulated back")
    #[inline]
    pub fn to_f64(self) -> [f64; 3] {
        [self.0[0].to_f64(), self.0[1].to_f64(), self.0[2].to_f64()]
    }

    #[inline]
    pub fn wrapping_add(self, rhs: Self) -> Self {
        QVec3([
            self.0[0].wrapping_add(rhs.0[0]),
            self.0[1].wrapping_add(rhs.0[1]),
            self.0[2].wrapping_add(rhs.0[2]),
        ])
    }

    #[inline]
    pub fn wrapping_sub(self, rhs: Self) -> Self {
        QVec3([
            self.0[0].wrapping_sub(rhs.0[0]),
            self.0[1].wrapping_sub(rhs.0[1]),
            self.0[2].wrapping_sub(rhs.0[2]),
        ])
    }

    #[inline]
    pub fn wrapping_neg(self) -> Self {
        QVec3([
            self.0[0].wrapping_neg(),
            self.0[1].wrapping_neg(),
            self.0[2].wrapping_neg(),
        ])
    }

    /// Squared length rounded into `OUT` fraction bits. The three squares are
    /// computed exactly in 128 bits and summed before a single rounding, so
    /// the result is independent of component order.
    #[inline]
    pub fn norm2<const OUT: u32>(self) -> Q<OUT> {
        let s: i128 = self.0.iter().map(|c| c.0 as i128 * c.0 as i128).sum();
        Q::from_raw(crate::rounding::rne_shr_i128(s, 2 * FRAC - OUT))
    }

    /// Scale every component by a Q-format scalar, rounding each component.
    #[inline]
    pub fn scale<const S: u32, const OUT: u32>(self, s: Q<S>) -> QVec3<OUT> {
        QVec3([
            self.0[0].mul_into::<S, OUT>(s),
            self.0[1].mul_into::<S, OUT>(s),
            self.0[2].mul_into::<S, OUT>(s),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_frac_roundtrip() {
        let p = FxVec3::from_unit_frac([0.25, 0.5, 0.75]);
        let f = p.to_unit_frac();
        for (a, b) in f.iter().zip([0.25, 0.5, 0.75]) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn frac_to_len_scales_by_half_edge() {
        // Box edge 40 Å; fraction displacement 0.1 of [-1,1) = 0.1 * 20 Å = 2 Å.
        let half_edge = [Q::<20>::from_f64(20.0); 3];
        let a = FxVec3::from_unit_frac([0.55, 0.5, 0.5]);
        let b = FxVec3::from_unit_frac([0.50, 0.5, 0.5]);
        let d: QVec3<20> = a.wrapping_sub(b).frac_to_len(half_edge);
        assert!((d.to_f64()[0] - 2.0).abs() < 1e-4, "{:?}", d.to_f64());
        assert!(d.to_f64()[1].abs() < 1e-4);
    }

    #[test]
    fn minimum_image_across_boundary() {
        let half_edge = [Q::<20>::from_f64(25.0); 3]; // 50 Å box
        let a = FxVec3::from_unit_frac([0.98, 0.5, 0.5]);
        let b = FxVec3::from_unit_frac([0.02, 0.5, 0.5]);
        let d: QVec3<20> = a.wrapping_sub(b).frac_to_len(half_edge);
        // True separation via images: 0.98 - 1.02 = -0.04 of box = -2 Å.
        assert!((d.to_f64()[0] + 2.0).abs() < 1e-4, "{:?}", d.to_f64());
    }

    #[test]
    fn norm2_is_component_order_free_and_correct() {
        let v = QVec3::<20>::from_f64([3.0, 4.0, 12.0]);
        let n: Q<20> = v.norm2();
        assert_eq!(n.to_f64(), 169.0);
    }
}
