//! 64-bit Q-format fixed point with a const-generic fraction width.

use crate::rounding::{rne_f64, rne_shr_i128};
use serde::{Deserialize, Serialize};

/// A signed Q-format fixed-point value with `FRAC` fraction bits stored in an
/// `i64`: `value = raw * 2^-FRAC`.
///
/// Addition and subtraction wrap (associative, order-free); multiplication
/// rounds to nearest/even. Different physical quantities use different
/// `FRAC` widths, mirroring how each datapath on the Anton ASIC was sized
/// individually (paper Figure 4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Q<const FRAC: u32>(pub i64);

/// Virials / wide accumulators: Anton uses 86-bit accumulators for the tensor
/// products of force and position (Figure 4c); we model them as `i128` with a
/// fixed fraction width.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug, Serialize, Deserialize)]
pub struct Wide<const FRAC: u32>(pub i128);

pub type Q16 = Q<16>;
pub type Q20 = Q<20>;
pub type Q24 = Q<24>;
pub type Q32 = Q<32>;
pub type Q40 = Q<40>;

impl<const FRAC: u32> Q<FRAC> {
    pub const ZERO: Self = Q(0);
    pub const ONE: Self = Q(1i64 << FRAC);
    pub const FRAC_BITS: u32 = FRAC;
    /// Smallest representable increment.
    // detlint::boundary(reason = "grid-spacing constant used only when quantizing at the f64 edge")
    pub const EPSILON: f64 = 1.0 / (1u128 << FRAC) as f64;

    /// Quantize an `f64` with round-to-nearest/even. Debug-asserts that the
    /// value is representable.
    // detlint::boundary(reason = "the f64 -> Q quantization edge; rounds via rne_f64 before any accumulation")
    #[allow(clippy::float_arithmetic, clippy::cast_possible_truncation)]
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        let scaled = rne_f64(x * (1u128 << FRAC) as f64);
        debug_assert!(
            scaled >= i64::MIN as f64 && scaled <= i64::MAX as f64,
            "Q<{FRAC}>::from_f64 overflow: {x}"
        );
        Q(scaled as i64)
    }

    // detlint::boundary(reason = "Q -> f64 decode for diagnostics and kernel interiors; read-only, never accumulated back")
    #[allow(clippy::float_arithmetic)]
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 * Self::EPSILON
    }

    #[inline]
    pub fn raw(self) -> i64 {
        self.0
    }

    #[inline]
    pub fn from_raw(raw: i64) -> Self {
        Q(raw)
    }

    #[inline]
    pub fn wrapping_add(self, rhs: Self) -> Self {
        Q(self.0.wrapping_add(rhs.0))
    }

    #[inline]
    pub fn wrapping_sub(self, rhs: Self) -> Self {
        Q(self.0.wrapping_sub(rhs.0))
    }

    #[inline]
    pub fn wrapping_neg(self) -> Self {
        Q(self.0.wrapping_neg())
    }

    /// Full-precision product with another Q value, rounded into an output
    /// format with `OUT` fraction bits.
    #[inline]
    pub fn mul_into<const RHS: u32, const OUT: u32>(self, rhs: Q<RHS>) -> Q<OUT> {
        let prod = self.0 as i128 * rhs.0 as i128;
        Q(rne_shr_i128(prod, FRAC + RHS - OUT))
    }

    /// Product staying in the same format.
    // Deliberately not `impl Mul`: the rounding semantics should be spelled
    // out at call sites.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn mul(self, rhs: Self) -> Self {
        self.mul_into::<FRAC, FRAC>(rhs)
    }

    /// Square, rounded into `OUT` fraction bits. `x.sq::<F>()` is
    /// `x.mul_into::<F, F>(x)` but reads better in distance code.
    #[inline]
    pub fn sq<const OUT: u32>(self) -> Q<OUT> {
        self.mul_into::<FRAC, OUT>(self)
    }

    /// Rescale to a different fraction width with round-to-nearest/even
    /// (widening shifts are exact).
    #[inline]
    pub fn rescale<const OUT: u32>(self) -> Q<OUT> {
        if OUT >= FRAC {
            Q(self.0 << (OUT - FRAC))
        } else {
            Q(crate::rounding::rne_shr_i64(self.0, FRAC - OUT))
        }
    }

    /// Saturating conversion used at analysis boundaries (never in the
    /// deterministic force path).
    #[inline]
    pub fn abs(self) -> Self {
        Q(self.0.wrapping_abs())
    }
}

impl<const FRAC: u32> Wide<FRAC> {
    pub const ZERO: Self = Wide(0);

    #[inline]
    pub fn wrapping_add(self, rhs: Self) -> Self {
        Wide(self.0.wrapping_add(rhs.0))
    }

    /// Accumulate the product of two Q values without intermediate rounding —
    /// the paper's virial accumulators keep enough width that the tensor
    /// products are exact.
    #[inline]
    pub fn accumulate<const A: u32, const B: u32>(self, a: Q<A>, b: Q<B>) -> Self {
        debug_assert!(A + B >= FRAC);
        let prod = a.0 as i128 * b.0 as i128; // exact, up to 126 bits
                                              // Keep FRAC fraction bits: shift is exact in the accumulator sense if
                                              // we keep all bits; we truncate deterministically (floor) here since
                                              // every node performs the identical operation.
        Wide(self.0.wrapping_add(prod >> (A + B - FRAC)))
    }

    // detlint::boundary(reason = "wide-accumulator -> f64 decode for reporting; read-only, never accumulated back")
    #[allow(clippy::float_arithmetic)]
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (1u128 << FRAC) as f64
    }
}

impl<const FRAC: u32> core::fmt::Debug for Q<FRAC> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Q<{}>({:.9})", FRAC, self.to_f64())
    }
}

#[cfg(test)]
// Tests measure quantization error against f64 references by design.
#[allow(clippy::float_arithmetic)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip() {
        let x = Q20::from_f64(13.25);
        assert_eq!(x.to_f64(), 13.25);
        assert_eq!(Q20::ONE.to_f64(), 1.0);
    }

    #[test]
    fn mul_into_cross_format() {
        let len = Q20::from_f64(3.0);
        let r2: Q20 = len.mul_into::<20, 20>(len);
        assert_eq!(r2.to_f64(), 9.0);
        let f: Q24 = Q32::from_f64(0.5).mul_into::<32, 24>(Q32::from_f64(0.5));
        assert_eq!(f.to_f64(), 0.25);
    }

    #[test]
    fn rescale_widen_is_exact_and_narrow_rounds() {
        let x = Q20::from_f64(1.5);
        let w: Q32 = x.rescale();
        assert_eq!(w.to_f64(), 1.5);
        let n: Q16 = Q20::from_raw(0b11000).rescale(); // 24 * 2^-20 = 1.5 * 2^-16
        assert_eq!(n.raw(), 2); // 1.5 ulp rounds to even = 2
    }

    proptest! {
        #[test]
        fn add_associative(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
            let (a, b, c) = (Q20::from_raw(a), Q20::from_raw(b), Q20::from_raw(c));
            prop_assert_eq!(a.wrapping_add(b).wrapping_add(c), a.wrapping_add(b.wrapping_add(c)));
        }

        #[test]
        fn mul_odd_symmetric(a in -(1i64<<40)..(1i64<<40), b in -(1i64<<40)..(1i64<<40)) {
            let a = Q20::from_raw(a);
            let b = Q20::from_raw(b);
            let p1: Q20 = a.mul(b.wrapping_neg());
            let p2: Q20 = a.mul(b);
            prop_assert_eq!(p1.raw(), p2.raw().wrapping_neg());
        }

        #[test]
        fn quantization_error_bounded(x in -1.0e6f64..1.0e6) {
            let q = Q20::from_f64(x);
            prop_assert!((q.to_f64() - x).abs() <= Q20::EPSILON / 2.0 + 1e-12);
        }

        #[test]
        fn sum_correct_despite_wrap(vals in proptest::collection::vec(-(1i64<<61)..(1i64<<61), 2..20)) {
            // As long as the final sum is representable, any accumulation
            // order (including ones whose partial sums wrap) agrees with the
            // exact i128 sum.
            let exact: i128 = vals.iter().map(|&v| v as i128).sum();
            prop_assume!(exact >= i64::MIN as i128 && exact <= i64::MAX as i128);
            let forward = vals.iter().fold(Q20::ZERO, |s, &v| s.wrapping_add(Q20::from_raw(v)));
            let backward = vals.iter().rev().fold(Q20::ZERO, |s, &v| s.wrapping_add(Q20::from_raw(v)));
            prop_assert_eq!(forward, backward);
            prop_assert_eq!(forward.raw() as i128, exact);
        }
    }
}
