//! Rigid water models: TIP3P and TIP4P-Ew.
//!
//! The paper's Table 4 systems use rigid TIP3P water; the millisecond BPTI
//! simulation (§5.3) uses the four-site TIP4P-Ew model, whose fourth particle
//! ("M" site) carries the oxygen charge at a point displaced along the HOH
//! bisector and is treated computationally as an atom.

use crate::topology::{ConstraintGroup, VirtualSite};
use anton_geometry::Vec3;

/// Parameters of a rigid 3- or 4-site water model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WaterModel {
    /// O–H bond length (Å).
    pub r_oh: f64,
    /// H–O–H angle (radians).
    pub theta_hoh: f64,
    /// LJ σ on oxygen (Å).
    pub sigma_o: f64,
    /// LJ ε on oxygen (kcal/mol).
    pub eps_o: f64,
    /// Hydrogen charge (e).
    pub q_h: f64,
    /// Charge carried by oxygen (TIP3P) or the M site (TIP4P-Ew).
    pub q_neg: f64,
    /// O→M distance along the bisector (Å); zero for 3-site models.
    pub d_om: f64,
    /// Sites per molecule (3 or 4).
    pub sites: usize,
}

/// TIP3P (Jorgensen 1983), as used for the Table 4 protein systems.
pub const TIP3P: WaterModel = WaterModel {
    r_oh: 0.9572,
    theta_hoh: 1.824_218, // 104.52°
    sigma_o: 3.15061,
    eps_o: 0.1521,
    q_h: 0.417,
    q_neg: -0.834,
    d_om: 0.0,
    sites: 3,
};

/// TIP4P-Ew (Horn et al. 2004), as used for the BPTI millisecond run.
pub const TIP4P_EW: WaterModel = WaterModel {
    r_oh: 0.9572,
    theta_hoh: 1.824_218,
    sigma_o: 3.16435,
    eps_o: 0.16275,
    q_h: 0.52422,
    q_neg: -1.04844,
    d_om: 0.125,
    sites: 4,
};

pub const MASS_O: f64 = 15.9994;
pub const MASS_H: f64 = 1.008;

impl WaterModel {
    /// Distance from O to the midpoint of the two hydrogens in the rigid
    /// geometry.
    pub fn bisector_len(&self) -> f64 {
        self.r_oh * (self.theta_hoh / 2.0).cos()
    }

    /// The virtual-site fraction γ such that `r_M = r_O + γ (mid(H,H) − r_O)`.
    pub fn vsite_gamma(&self) -> f64 {
        if self.d_om == 0.0 {
            0.0
        } else {
            self.d_om / self.bisector_len()
        }
    }

    /// H–H distance implied by the rigid geometry.
    pub fn r_hh(&self) -> f64 {
        2.0 * self.r_oh * (self.theta_hoh / 2.0).sin()
    }

    /// Site positions for a molecule centered at `o_pos` with the bisector
    /// along `dir` (unit) and the HH axis along `perp` (unit, ⊥ dir):
    /// `[O, H1, H2]` or `[O, H1, H2, M]`.
    pub fn place(&self, o_pos: Vec3, dir: Vec3, perp: Vec3) -> Vec<Vec3> {
        let half = self.theta_hoh / 2.0;
        let along = self.r_oh * half.cos();
        let aside = self.r_oh * half.sin();
        let h1 = o_pos + dir * along + perp * aside;
        let h2 = o_pos + dir * along - perp * aside;
        let mut sites = vec![o_pos, h1, h2];
        if self.sites == 4 {
            sites.push(o_pos + dir * self.d_om);
        }
        sites
    }

    /// Rigid constraints for one molecule whose sites start at `base`:
    /// two O–H distances plus the H–H distance.
    pub fn constraint_group(&self, base: u32) -> ConstraintGroup {
        ConstraintGroup {
            pairs: vec![
                (base, base + 1, self.r_oh),
                (base, base + 2, self.r_oh),
                (base + 1, base + 2, self.r_hh()),
            ],
        }
    }

    /// Virtual-site descriptor for one TIP4P molecule at `base` (O, H1, H2, M).
    pub fn virtual_site(&self, base: u32) -> Option<VirtualSite> {
        (self.sites == 4).then(|| VirtualSite {
            site: base + 3,
            a: base,
            b: base + 1,
            c: base + 2,
            gamma: self.vsite_gamma(),
        })
    }
}

/// Recompute a virtual site position from its parents.
pub fn vsite_position(v: &VirtualSite, pos: &[Vec3]) -> Vec3 {
    let ra = pos[v.a as usize];
    let mid = (pos[v.b as usize] + pos[v.c as usize]) * 0.5;
    ra + (mid - ra) * v.gamma
}

/// Redistribute the force accumulated on a massless virtual site onto its
/// parents (the exact transpose of the position projection, so energy is
/// conserved).
pub fn vsite_spread_force(v: &VirtualSite, forces: &mut [Vec3]) {
    let f = forces[v.site as usize];
    forces[v.site as usize] = Vec3::ZERO;
    forces[v.a as usize] += f * (1.0 - v.gamma);
    forces[v.b as usize] += f * (v.gamma * 0.5);
    forces[v.c as usize] += f * (v.gamma * 0.5);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tip3p_is_neutral() {
        assert!((TIP3P.q_neg + 2.0 * TIP3P.q_h).abs() < 1e-12);
        assert!((TIP4P_EW.q_neg + 2.0 * TIP4P_EW.q_h).abs() < 1e-12);
    }

    #[test]
    fn tip4p_gamma_matches_reference() {
        // d_OM = 0.125 Å over a bisector of ~0.5861 Å → γ ≈ 0.2133.
        let g = TIP4P_EW.vsite_gamma();
        assert!((g - 0.2133).abs() < 1e-3, "gamma = {g}");
    }

    #[test]
    fn placed_geometry_satisfies_model() {
        let m = TIP3P;
        let s = m.place(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 0.0),
        );
        assert_eq!(s.len(), 3);
        assert!(((s[1] - s[0]).norm() - m.r_oh).abs() < 1e-12);
        assert!(((s[2] - s[0]).norm() - m.r_oh).abs() < 1e-12);
        assert!(((s[1] - s[2]).norm() - m.r_hh()).abs() < 1e-12);
    }

    #[test]
    fn vsite_position_on_bisector() {
        let m = TIP4P_EW;
        let s = m.place(
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
        );
        let v = m.virtual_site(0).unwrap();
        let computed = vsite_position(&v, &s);
        assert!((computed - s[3]).norm() < 1e-12);
        assert!((computed - Vec3::new(0.0, m.d_om, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn vsite_force_spread_preserves_total() {
        let m = TIP4P_EW;
        let v = m.virtual_site(0).unwrap();
        let mut forces = vec![
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(2.0, -1.0, 0.5),
        ];
        let total_before = forces.iter().fold(Vec3::ZERO, |a, &b| a + b);
        vsite_spread_force(&v, &mut forces);
        let total_after = forces.iter().fold(Vec3::ZERO, |a, &b| a + b);
        assert!((total_before - total_after).norm() < 1e-12);
        assert_eq!(forces[3], Vec3::ZERO);
    }
}
