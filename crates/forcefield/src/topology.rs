//! Flat system description consumed by both MD engines.

use crate::exclusions::{ExclusionPolicy, Exclusions};
use crate::lj::LjTable;
use serde::{Deserialize, Serialize};

/// A harmonic bond `U = k (r - r0)²` between atoms `i` and `j`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Bond {
    pub i: u32,
    pub j: u32,
    /// Equilibrium length (Å).
    pub r0: f64,
    /// Force constant (kcal/mol/Å²).
    pub k: f64,
}

/// A harmonic angle `U = k (θ - θ0)²` centered on atom `j`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Angle {
    pub i: u32,
    pub j: u32,
    pub k_atom: u32,
    /// Equilibrium angle (radians).
    pub theta0: f64,
    /// Force constant (kcal/mol/rad²).
    pub k: f64,
}

/// A periodic (proper or improper) dihedral `U = k (1 + cos(n φ - φ0))`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Dihedral {
    pub i: u32,
    pub j: u32,
    pub k_atom: u32,
    pub l: u32,
    /// Multiplicity.
    pub n: u32,
    /// Phase (radians).
    pub phi0: f64,
    /// Barrier height (kcal/mol).
    pub k: f64,
}

/// A group of distance constraints that must be satisfied together (rigid
/// water, bonds to hydrogen). Paper §3.2.4: Anton keeps all atoms of a
/// constraint group on the same node and expands the NT import region to
/// compensate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConstraintGroup {
    /// Constrained atom pairs with their target distances (Å).
    pub pairs: Vec<(u32, u32, f64)>,
}

impl ConstraintGroup {
    /// All atoms participating in the group (deduplicated, sorted).
    pub fn atoms(&self) -> Vec<u32> {
        let mut a: Vec<u32> = self.pairs.iter().flat_map(|&(i, j, _)| [i, j]).collect();
        a.sort_unstable();
        a.dedup();
        a
    }
}

/// A virtual interaction site whose position is a fixed linear combination
/// of three parent atoms (the TIP4P-Ew "M" site):
/// `r_v = r_a + γ · ((r_b + r_c)/2 − r_a)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VirtualSite {
    /// Index of the virtual particle.
    pub site: u32,
    pub a: u32,
    pub b: u32,
    pub c: u32,
    pub gamma: f64,
}

/// The complete chemical-system description: per-atom parameters plus term
/// lists. Positions/velocities live in the engines, not here.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Topology {
    /// Masses (amu). Virtual sites carry zero mass.
    pub mass: Vec<f64>,
    /// Partial charges (e).
    pub charge: Vec<f64>,
    /// Lennard-Jones type index per atom.
    pub lj_type: Vec<u16>,
    /// Per-type-pair LJ coefficients.
    pub lj_table: LjTable,
    pub bonds: Vec<Bond>,
    pub angles: Vec<Angle>,
    pub dihedrals: Vec<Dihedral>,
    pub constraint_groups: Vec<ConstraintGroup>,
    pub virtual_sites: Vec<VirtualSite>,
    /// Nonbonded exclusions and 1-4 scale pairs.
    pub exclusions: Exclusions,
    /// First atom index of each molecule, plus a final sentinel equal to the
    /// atom count; used for migration bookkeeping and diffusion analyses.
    pub molecule_starts: Vec<u32>,
}

impl Topology {
    pub fn n_atoms(&self) -> usize {
        self.mass.len()
    }

    /// Total number of scalar distance constraints.
    pub fn n_constraints(&self) -> usize {
        self.constraint_groups.iter().map(|g| g.pairs.len()).sum()
    }

    /// Degrees of freedom: 3N minus constraints minus overall momentum,
    /// not counting massless virtual sites. This is the "DoF" denominator in
    /// the paper's Table 4 energy-drift column (kcal/mol/DoF/µs).
    pub fn degrees_of_freedom(&self) -> usize {
        let massive = self.mass.iter().filter(|&&m| m > 0.0).count();
        3 * massive - self.n_constraints() - 3
    }

    /// Rebuild the exclusion lists from the current bond graph and the rigid
    /// constraint pairs (constrained pairs are excluded like bonds).
    pub fn rebuild_exclusions(&mut self, policy: ExclusionPolicy) {
        let mut edges: Vec<(u32, u32)> = self.bonds.iter().map(|b| (b.i, b.j)).collect();
        for g in &self.constraint_groups {
            edges.extend(g.pairs.iter().map(|&(i, j, _)| (i, j)));
        }
        // Virtual sites inherit their parent atom's exclusions; model this by
        // linking the site to its primary parent in the graph.
        edges.extend(self.virtual_sites.iter().map(|v| (v.site, v.a)));
        self.exclusions = Exclusions::from_bond_graph(self.n_atoms(), &edges, policy);
    }

    /// Basic structural validation; called by system builders after assembly.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n_atoms() as u32;
        if self.charge.len() != n as usize || self.lj_type.len() != n as usize {
            return Err("per-atom arrays disagree in length".into());
        }
        for b in &self.bonds {
            if b.i >= n || b.j >= n || b.i == b.j {
                return Err(format!("bad bond {b:?}"));
            }
        }
        for a in &self.angles {
            if a.i >= n || a.j >= n || a.k_atom >= n {
                return Err(format!("bad angle {a:?}"));
            }
        }
        for d in &self.dihedrals {
            if d.i >= n || d.j >= n || d.k_atom >= n || d.l >= n {
                return Err(format!("bad dihedral {d:?}"));
            }
        }
        for t in &self.lj_type {
            if *t as usize >= self.lj_table.n_types() {
                return Err("LJ type out of range".into());
            }
        }
        for v in &self.virtual_sites {
            if v.site >= n || v.a >= n || v.b >= n || v.c >= n {
                return Err(format!("bad virtual site {v:?}"));
            }
            if self.mass[v.site as usize] != 0.0 {
                return Err("virtual site must be massless".into());
            }
        }
        if self.molecule_starts.first() != Some(&0)
            || self.molecule_starts.last() != Some(&n)
            || !self.molecule_starts.windows(2).all(|w| w[0] < w[1])
        {
            return Err("molecule_starts must be increasing from 0 to n_atoms".into());
        }
        Ok(())
    }

    /// Net charge of the system (e).
    pub fn total_charge(&self) -> f64 {
        self.charge.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_topology() -> Topology {
        let mut t = Topology {
            mass: vec![12.0, 1.0, 1.0, 1.0],
            charge: vec![-0.3, 0.1, 0.1, 0.1],
            lj_type: vec![0, 1, 1, 1],
            lj_table: LjTable::from_types(&[(3.4, 0.1), (2.5, 0.03)]),
            bonds: vec![
                Bond {
                    i: 0,
                    j: 1,
                    r0: 1.09,
                    k: 340.0,
                },
                Bond {
                    i: 0,
                    j: 2,
                    r0: 1.09,
                    k: 340.0,
                },
                Bond {
                    i: 0,
                    j: 3,
                    r0: 1.09,
                    k: 340.0,
                },
            ],
            molecule_starts: vec![0, 4],
            ..Default::default()
        };
        t.rebuild_exclusions(ExclusionPolicy::amber_like());
        t
    }

    #[test]
    fn validates_and_counts() {
        let t = tiny_topology();
        assert!(t.validate().is_ok());
        assert_eq!(t.n_atoms(), 4);
        assert_eq!(t.degrees_of_freedom(), 9);
        assert!((t.total_charge() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn exclusions_cover_12_and_13() {
        let t = tiny_topology();
        // 1-2: (0,1), (0,2), (0,3); 1-3: (1,2), (1,3), (2,3).
        for &(i, j) in &[(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            assert!(
                t.exclusions.is_excluded(i, j),
                "({i},{j}) should be excluded"
            );
        }
    }

    #[test]
    fn validate_rejects_bad_bond() {
        let mut t = tiny_topology();
        t.bonds.push(Bond {
            i: 0,
            j: 9,
            r0: 1.0,
            k: 1.0,
        });
        assert!(t.validate().is_err());
    }

    #[test]
    fn constraint_group_atoms_dedup() {
        let g = ConstraintGroup {
            pairs: vec![(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.6)],
        };
        assert_eq!(g.atoms(), vec![0, 1, 2]);
    }
}
