//! Lennard-Jones interactions.

use serde::{Deserialize, Serialize};

/// Precombined LJ coefficients for every ordered type pair:
/// `U(r) = A/r¹² − B/r⁶` with `A = 4εσ¹²`, `B = 4εσ⁶`.
///
/// Both engines look interactions up by `(type_i, type_j)`; combination
/// (Lorentz–Berthelot: arithmetic σ, geometric ε) happens once at build time.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LjTable {
    n_types: usize,
    a: Vec<f64>,
    b: Vec<f64>,
}

impl LjTable {
    /// Build from per-type `(σ, ε)` with Lorentz–Berthelot combining rules.
    pub fn from_types(types: &[(f64, f64)]) -> LjTable {
        let n = types.len();
        let mut a = vec![0.0; n * n];
        let mut b = vec![0.0; n * n];
        for (i, &(si, ei)) in types.iter().enumerate() {
            for (j, &(sj, ej)) in types.iter().enumerate() {
                let sigma = 0.5 * (si + sj);
                let eps = (ei * ej).sqrt();
                let s6 = sigma.powi(6);
                a[i * n + j] = 4.0 * eps * s6 * s6;
                b[i * n + j] = 4.0 * eps * s6;
            }
        }
        LjTable { n_types: n, a, b }
    }

    #[inline]
    pub fn n_types(&self) -> usize {
        self.n_types
    }

    /// `(A, B)` for a type pair.
    #[inline]
    pub fn coeffs(&self, ti: u16, tj: u16) -> (f64, f64) {
        let idx = ti as usize * self.n_types + tj as usize;
        (self.a[idx], self.b[idx])
    }

    /// Potential energy at squared distance `r2`.
    #[inline]
    pub fn energy(&self, ti: u16, tj: u16, r2: f64) -> f64 {
        let (a, b) = self.coeffs(ti, tj);
        let inv_r6 = 1.0 / (r2 * r2 * r2);
        a * inv_r6 * inv_r6 - b * inv_r6
    }

    /// `-(1/r) dU/dr` at squared distance `r2`: multiply by the displacement
    /// vector to obtain the force on atom i for `d = r_i - r_j`.
    #[inline]
    pub fn force_over_r(&self, ti: u16, tj: u16, r2: f64) -> f64 {
        let (a, b) = self.coeffs(ti, tj);
        let inv_r2 = 1.0 / r2;
        let inv_r6 = inv_r2 * inv_r2 * inv_r2;
        (12.0 * a * inv_r6 * inv_r6 - 6.0 * b * inv_r6) * inv_r2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_at_r_min() {
        // U has its minimum at r = 2^(1/6) σ with depth -ε.
        let t = LjTable::from_types(&[(3.0, 0.2)]);
        let rmin: f64 = 2f64.powf(1.0 / 6.0) * 3.0;
        let u = t.energy(0, 0, rmin * rmin);
        assert!((u + 0.2).abs() < 1e-12, "u = {u}");
        // Force ~ 0 at the minimum.
        assert!(t.force_over_r(0, 0, rmin * rmin).abs() < 1e-12);
    }

    #[test]
    fn zero_crossing_at_sigma() {
        let t = LjTable::from_types(&[(3.0, 0.2)]);
        assert!(t.energy(0, 0, 9.0).abs() < 1e-10);
    }

    #[test]
    fn force_matches_numerical_gradient() {
        let t = LjTable::from_types(&[(3.2, 0.15)]);
        for &r in &[3.0f64, 3.5, 4.0, 6.0, 8.0] {
            let h = 1e-6;
            let up = t.energy(0, 0, (r + h) * (r + h));
            let um = t.energy(0, 0, (r - h) * (r - h));
            let dudr = (up - um) / (2.0 * h);
            let got = t.force_over_r(0, 0, r * r) * r; // -dU/dr
            assert!((got + dudr).abs() < 1e-5, "r={r}: {got} vs {}", -dudr);
        }
    }

    #[test]
    fn combining_rules() {
        let t = LjTable::from_types(&[(3.0, 0.1), (4.0, 0.4)]);
        // Cross σ = 3.5, ε = 0.2.
        let (a, b) = t.coeffs(0, 1);
        let s6 = 3.5f64.powi(6);
        assert!((a - 4.0 * 0.2 * s6 * s6).abs() < 1e-9);
        assert!((b - 4.0 * 0.2 * s6).abs() < 1e-9);
        // Symmetric.
        assert_eq!(t.coeffs(0, 1), t.coeffs(1, 0));
    }
}
