//! Bonded force terms: harmonic bonds, harmonic angles, periodic dihedrals.
//!
//! On Anton these run on the geometry cores of the flexible subsystem with
//! each term statically assigned to a GC (paper §3.2.3); in this workspace
//! the same functional forms serve both engines. All forces are validated
//! against numerical gradients in the tests below.

use crate::topology::{Angle, Bond, Dihedral, Topology};
use anton_geometry::{PeriodicBox, Vec3};

/// Energy and forces of one harmonic bond; returns `(U, F_i, F_j)`.
pub fn bond_term(pbox: &PeriodicBox, pos: &[Vec3], b: &Bond) -> (f64, Vec3, Vec3) {
    let d = pbox.min_image(pos[b.i as usize], pos[b.j as usize]);
    let r = d.norm();
    let dr = r - b.r0;
    let u = b.k * dr * dr;
    // F_i = -dU/dr_i = -2k (r - r0) d̂.
    let f = if r > 1e-12 {
        d * (-2.0 * b.k * dr / r)
    } else {
        Vec3::ZERO
    };
    (u, f, -f)
}

/// Energy and forces of one harmonic angle; returns `(U, F_i, F_j, F_k)`.
pub fn angle_term(pbox: &PeriodicBox, pos: &[Vec3], a: &Angle) -> (f64, Vec3, Vec3, Vec3) {
    let va = pbox.min_image(pos[a.i as usize], pos[a.j as usize]);
    let vb = pbox.min_image(pos[a.k_atom as usize], pos[a.j as usize]);
    let (la, lb) = (va.norm(), vb.norm());
    let (ua, ub) = (va / la, vb / lb);
    let c = ua.dot(ub).clamp(-1.0, 1.0);
    let theta = c.acos();
    let s = (1.0 - c * c).sqrt().max(1e-8);
    let dtheta = theta - a.theta0;
    let u = a.k * dtheta * dtheta;
    let dudtheta = 2.0 * a.k * dtheta;
    // dθ/dr_i = -(û_b - c û_a) / (l_a sinθ); F = -dU/dθ · dθ/dr.
    let f_i = (ub - ua * c) * (dudtheta / (la * s));
    let f_k = (ua - ub * c) * (dudtheta / (lb * s));
    let f_j = -f_i - f_k;
    (u, f_i, f_j, f_k)
}

/// Signed dihedral angle φ for atoms i-j-k-l and its energy/forces;
/// returns `(U, F_i, F_j, F_k, F_l)`.
pub fn dihedral_term(
    pbox: &PeriodicBox,
    pos: &[Vec3],
    d: &Dihedral,
) -> (f64, Vec3, Vec3, Vec3, Vec3) {
    let b1 = pbox.min_image(pos[d.j as usize], pos[d.i as usize]);
    let b2 = pbox.min_image(pos[d.k_atom as usize], pos[d.j as usize]);
    let b3 = pbox.min_image(pos[d.l as usize], pos[d.k_atom as usize]);
    let n1 = b1.cross(b2);
    let n2 = b2.cross(b3);
    let lb2 = b2.norm();
    let phi = (n1.cross(n2).dot(b2) / lb2).atan2(n1.dot(n2));
    let arg = d.n as f64 * phi - d.phi0;
    let u = d.k * (1.0 + arg.cos());
    let dudphi = -d.k * d.n as f64 * arg.sin();

    let n1sq = n1.norm2().max(1e-12);
    let n2sq = n2.norm2().max(1e-12);
    // dφ/dr_i = -(|b2|/|n1|²) n1 ; dφ/dr_l = +(|b2|/|n2|²) n2.
    let dphi_dri = n1 * (-lb2 / n1sq);
    let dphi_drl = n2 * (lb2 / n2sq);
    let su = b1.dot(b2) / (lb2 * lb2);
    let tv = b3.dot(b2) / (lb2 * lb2);
    let dphi_drj = dphi_dri * (-1.0 - su) + dphi_drl * tv;
    let dphi_drk = -dphi_dri - dphi_drj - dphi_drl;

    (
        u,
        dphi_dri * -dudphi,
        dphi_drj * -dudphi,
        dphi_drk * -dudphi,
        dphi_drl * -dudphi,
    )
}

/// The signed dihedral angle alone (radians), for analysis code.
pub fn dihedral_angle(pbox: &PeriodicBox, pos: &[Vec3], i: u32, j: u32, k: u32, l: u32) -> f64 {
    let b1 = pbox.min_image(pos[j as usize], pos[i as usize]);
    let b2 = pbox.min_image(pos[k as usize], pos[j as usize]);
    let b3 = pbox.min_image(pos[l as usize], pos[k as usize]);
    let n1 = b1.cross(b2);
    let n2 = b2.cross(b3);
    (n1.cross(n2).dot(b2) / b2.norm()).atan2(n1.dot(n2))
}

/// Accumulate all bonded terms of a topology into a force array; returns the
/// total bonded potential energy.
pub fn accumulate_bonded(
    pbox: &PeriodicBox,
    pos: &[Vec3],
    top: &Topology,
    forces: &mut [Vec3],
) -> f64 {
    let mut energy = 0.0;
    for b in &top.bonds {
        let (u, fi, fj) = bond_term(pbox, pos, b);
        energy += u;
        forces[b.i as usize] += fi;
        forces[b.j as usize] += fj;
    }
    for a in &top.angles {
        let (u, fi, fj, fk) = angle_term(pbox, pos, a);
        energy += u;
        forces[a.i as usize] += fi;
        forces[a.j as usize] += fj;
        forces[a.k_atom as usize] += fk;
    }
    for d in &top.dihedrals {
        let (u, fi, fj, fk, fl) = dihedral_term(pbox, pos, d);
        energy += u;
        forces[d.i as usize] += fi;
        forces[d.j as usize] += fj;
        forces[d.k_atom as usize] += fk;
        forces[d.l as usize] += fl;
    }
    energy
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: f64 = 1e-6;

    fn numerical_forces(
        pbox: &PeriodicBox,
        pos: &[Vec3],
        energy: impl Fn(&[Vec3]) -> f64,
    ) -> Vec<Vec3> {
        let _ = pbox;
        let mut out = vec![Vec3::ZERO; pos.len()];
        let mut p = pos.to_vec();
        for i in 0..pos.len() {
            for ax in 0..3 {
                p[i][ax] += H;
                let up = energy(&p);
                p[i][ax] -= 2.0 * H;
                let um = energy(&p);
                p[i][ax] += H;
                out[i][ax] = -(up - um) / (2.0 * H);
            }
        }
        out
    }

    fn assert_forces_close(got: &[Vec3], want: &[Vec3], tol: f64) {
        for (g, w) in got.iter().zip(want) {
            assert!((*g - *w).norm() < tol, "force mismatch: {g:?} vs {w:?}");
        }
    }

    #[test]
    fn bond_force_matches_gradient() {
        let pbox = PeriodicBox::cubic(50.0);
        let pos = vec![Vec3::new(10.0, 10.0, 10.0), Vec3::new(11.3, 10.4, 9.8)];
        let b = Bond {
            i: 0,
            j: 1,
            r0: 1.09,
            k: 340.0,
        };
        let (_, fi, fj) = bond_term(&pbox, &pos, &b);
        let num = numerical_forces(&pbox, &pos, |p| bond_term(&pbox, p, &b).0);
        assert_forces_close(&[fi, fj], &num, 1e-4);
    }

    #[test]
    fn angle_force_matches_gradient() {
        let pbox = PeriodicBox::cubic(50.0);
        let pos = vec![
            Vec3::new(10.0, 10.0, 10.0),
            Vec3::new(11.0, 10.2, 9.9),
            Vec3::new(11.8, 11.1, 10.5),
        ];
        let a = Angle {
            i: 0,
            j: 1,
            k_atom: 2,
            theta0: 1.9,
            k: 50.0,
        };
        let (_, fi, fj, fk) = angle_term(&pbox, &pos, &a);
        let num = numerical_forces(&pbox, &pos, |p| angle_term(&pbox, p, &a).0);
        assert_forces_close(&[fi, fj, fk], &num, 1e-4);
    }

    #[test]
    fn dihedral_force_matches_gradient() {
        let pbox = PeriodicBox::cubic(50.0);
        let pos = vec![
            Vec3::new(10.0, 10.0, 10.0),
            Vec3::new(11.2, 10.3, 10.1),
            Vec3::new(11.9, 11.4, 10.9),
            Vec3::new(13.1, 11.5, 11.8),
        ];
        for n in 1..=3u32 {
            let d = Dihedral {
                i: 0,
                j: 1,
                k_atom: 2,
                l: 3,
                n,
                phi0: 0.6,
                k: 2.5,
            };
            let (_, fi, fj, fk, fl) = dihedral_term(&pbox, &pos, &d);
            let num = numerical_forces(&pbox, &pos, |p| dihedral_term(&pbox, p, &d).0);
            assert_forces_close(&[fi, fj, fk, fl], &num, 1e-4);
        }
    }

    #[test]
    fn dihedral_forces_are_translation_and_torque_free() {
        let pbox = PeriodicBox::cubic(50.0);
        let pos = vec![
            Vec3::new(10.0, 10.0, 10.0),
            Vec3::new(11.2, 10.3, 10.1),
            Vec3::new(11.9, 11.4, 10.9),
            Vec3::new(13.1, 11.5, 11.8),
        ];
        let d = Dihedral {
            i: 0,
            j: 1,
            k_atom: 2,
            l: 3,
            n: 2,
            phi0: 0.3,
            k: 1.7,
        };
        let (_, fi, fj, fk, fl) = dihedral_term(&pbox, &pos, &d);
        let net = fi + fj + fk + fl;
        assert!(net.norm() < 1e-10, "net force {net:?}");
        let torque = pos[0].cross(fi) + pos[1].cross(fj) + pos[2].cross(fk) + pos[3].cross(fl);
        assert!(torque.norm() < 1e-9, "net torque {torque:?}");
    }

    #[test]
    fn trans_dihedral_angle_is_pi() {
        let pbox = PeriodicBox::cubic(50.0);
        // Planar zig-zag (trans): φ = ±π.
        let pos = vec![
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 1.0, 0.0),
            Vec3::new(3.0, 0.0, 0.0),
        ];
        let phi = dihedral_angle(&pbox, &pos, 0, 1, 2, 3);
        assert!(
            (phi.abs() - std::f64::consts::PI).abs() < 1e-12,
            "phi = {phi}"
        );
    }

    #[test]
    fn cis_dihedral_angle_is_zero() {
        let pbox = PeriodicBox::cubic(50.0);
        let pos = vec![
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(3.0, 1.0, 0.0),
        ];
        let phi = dihedral_angle(&pbox, &pos, 0, 1, 2, 3);
        assert!(phi.abs() < 1e-12, "phi = {phi}");
    }
}
