//! Nonbonded exclusions derived from the bond graph.
//!
//! In most force fields, electrostatic and van der Waals interactions between
//! atoms separated by one or two covalent bonds are eliminated, and those
//! separated by three bonds (1-4 pairs) are scaled down (paper §3.1). The
//! long-range Ewald sum nonetheless includes every pair, so the excluded
//! contribution must be subtracted as a *correction force* — on Anton this
//! runs on the correction pipeline in the flexible subsystem.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// How 1-4 interactions are scaled.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExclusionPolicy {
    /// Multiplier on 1-4 electrostatics (AMBER: 1/1.2).
    pub elec_14: f64,
    /// Multiplier on 1-4 Lennard-Jones (AMBER: 1/2).
    pub lj_14: f64,
}

impl ExclusionPolicy {
    /// AMBER-style scaling, used by the paper's AMBER99SB simulations.
    pub fn amber_like() -> ExclusionPolicy {
        ExclusionPolicy {
            elec_14: 1.0 / 1.2,
            lj_14: 0.5,
        }
    }

    /// OPLS-style scaling (both halved).
    pub fn opls_like() -> ExclusionPolicy {
        ExclusionPolicy {
            elec_14: 0.5,
            lj_14: 0.5,
        }
    }
}

/// Exclusion table: fully excluded pairs (1-2, 1-3) and scaled 1-4 pairs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Exclusions {
    /// Sorted `(min, max)` excluded pairs.
    excluded: Vec<(u32, u32)>,
    /// Sorted `(min, max)` 1-4 pairs.
    pairs_14: Vec<(u32, u32)>,
    pub policy: Option<ExclusionPolicy>,
}

impl Exclusions {
    /// Build from an undirected bond graph: neighbors at graph distance 1 or
    /// 2 are excluded; distance 3 becomes a scaled 1-4 pair (unless the pair
    /// is also reachable in ≤2 bonds through a ring).
    pub fn from_bond_graph(
        n_atoms: usize,
        edges: &[(u32, u32)],
        policy: ExclusionPolicy,
    ) -> Exclusions {
        let mut adj = vec![Vec::new(); n_atoms];
        for &(i, j) in edges {
            adj[i as usize].push(j);
            adj[j as usize].push(i);
        }
        for a in adj.iter_mut() {
            a.sort_unstable();
            a.dedup();
        }

        let mut excluded = BTreeSet::new();
        let mut pairs_14 = BTreeSet::new();
        for i in 0..n_atoms as u32 {
            // Distance-1 and distance-2 neighbors.
            let mut d12 = BTreeSet::new();
            for &j in &adj[i as usize] {
                d12.insert(j);
                for &k in &adj[j as usize] {
                    if k != i {
                        d12.insert(k);
                    }
                }
            }
            for &j in &d12 {
                if j > i {
                    excluded.insert((i, j));
                }
            }
            // Distance-3 neighbors not already within distance 2.
            for &j in &adj[i as usize] {
                for &k in &adj[j as usize] {
                    if k == i {
                        continue;
                    }
                    for &l in &adj[k as usize] {
                        if l != i && l != j && l > i && !d12.contains(&l) {
                            pairs_14.insert((i, l));
                        }
                    }
                }
            }
        }

        Exclusions {
            excluded: excluded.into_iter().collect(),
            pairs_14: pairs_14.into_iter().collect(),
            policy: Some(policy),
        }
    }

    #[inline]
    fn key(i: u32, j: u32) -> (u32, u32) {
        (i.min(j), i.max(j))
    }

    /// Is the (i, j) nonbonded interaction fully excluded?
    #[inline]
    pub fn is_excluded(&self, i: u32, j: u32) -> bool {
        self.excluded.binary_search(&Self::key(i, j)).is_ok()
    }

    /// Is (i, j) a scaled 1-4 pair?
    #[inline]
    pub fn is_14(&self, i: u32, j: u32) -> bool {
        self.pairs_14.binary_search(&Self::key(i, j)).is_ok()
    }

    pub fn excluded_pairs(&self) -> &[(u32, u32)] {
        &self.excluded
    }

    pub fn pairs_14(&self) -> &[(u32, u32)] {
        &self.pairs_14
    }

    /// Number of correction-pipeline work items: every excluded pair needs a
    /// k-space correction, every 1-4 pair needs a scaled re-evaluation.
    pub fn correction_workload(&self) -> usize {
        self.excluded.len() + self.pairs_14.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Butane-like chain 0-1-2-3-4.
    fn chain5() -> Exclusions {
        Exclusions::from_bond_graph(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4)],
            ExclusionPolicy::amber_like(),
        )
    }

    #[test]
    fn chain_exclusions() {
        let e = chain5();
        assert!(e.is_excluded(0, 1)); // 1-2
        assert!(e.is_excluded(0, 2)); // 1-3
        assert!(!e.is_excluded(0, 3)); // 1-4 is scaled, not excluded
        assert!(e.is_14(0, 3));
        assert!(e.is_14(1, 4));
        assert!(!e.is_14(0, 4)); // 1-5 is a full interaction
        assert!(!e.is_excluded(0, 4));
    }

    #[test]
    fn ring_pairs_prefer_shorter_path() {
        // Cyclobutane ring 0-1-2-3-0: the 0-2 pair is distance 2 both ways,
        // never a 1-4 pair.
        let e = Exclusions::from_bond_graph(
            4,
            &[(0, 1), (1, 2), (2, 3), (3, 0)],
            ExclusionPolicy::amber_like(),
        );
        assert!(e.is_excluded(0, 2));
        assert!(!e.is_14(0, 2));
    }

    #[test]
    fn symmetric_queries() {
        let e = chain5();
        assert_eq!(e.is_excluded(1, 0), e.is_excluded(0, 1));
        assert_eq!(e.is_14(3, 0), e.is_14(0, 3));
    }

    #[test]
    fn workload_counts() {
        let e = chain5();
        // Excluded: 4 bonds + 3 one-three pairs = 7; 1-4 pairs: (0,3),(1,4).
        assert_eq!(e.excluded_pairs().len(), 7);
        assert_eq!(e.pairs_14().len(), 2);
        assert_eq!(e.correction_workload(), 9);
    }
}
