//! Unit system and physical constants.
//!
//! The workspace uses the conventional MD academic units: lengths in Å,
//! energies in kcal/mol, masses in amu (g/mol), charges in units of the
//! elementary charge, and time in fs.

/// Coulomb constant in kcal·Å/(mol·e²).
pub const COULOMB: f64 = 332.063_71;

/// Boltzmann constant in kcal/(mol·K).
pub const KB: f64 = 0.001_987_204_1;

/// Conversion from (kcal/mol/Å) / amu to acceleration in Å/fs².
pub const ACCEL: f64 = 4.184e-4;

/// One day in femtoseconds; used when converting step rates to the paper's
/// µs/day performance metric.
pub const DAY_FS: f64 = 86_400.0e15;

/// Convert a wall-clock seconds-per-step and a time step in fs into the
/// paper's simulated-µs-per-day rate (1 µs = 1e9 fs).
pub fn us_per_day(seconds_per_step: f64, dt_fs: f64) -> f64 {
    let steps_per_day = 86_400.0 / seconds_per_step;
    steps_per_day * dt_fs * 1e-9
}

/// Complementary error function in double precision (~1e-15 relative),
/// via a Taylor series below 2 and a continued fraction above. Used by the
/// Ewald kernels and by splitting-parameter selection.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 2.0 {
        let x2 = x * x;
        let mut term = x;
        let mut sum = x;
        for n in 1..200 {
            term *= -x2 / n as f64;
            let add = term / (2 * n + 1) as f64;
            sum += add;
            if add.abs() < 1e-18 * sum.abs() {
                break;
            }
        }
        1.0 - 2.0 / std::f64::consts::PI.sqrt() * sum
    } else {
        let x2 = x * x;
        let mut cf = 0.0;
        for k in (1..60).rev() {
            cf = 0.5 * k as f64 / (x + cf);
        }
        (-x2).exp() / (std::f64::consts::PI.sqrt() * (x + cf))
    }
}

/// Error function, `erf(x) = 1 - erfc(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us_per_day_matches_paper_example() {
        // DHFR on Anton: 13.2 µs wall per 2.5 fs step -> 16.4 µs/day.
        let rate = us_per_day(13.17e-6, 2.5);
        assert!((rate - 16.4).abs() < 0.1, "rate = {rate}");
    }

    #[test]
    fn erfc_matches_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-14);
        assert!((erfc(1.0) - 0.157_299_207).abs() < 1e-8);
        assert!((erfc(2.0) - 0.004_677_735).abs() < 1e-9);
        assert!((erfc(3.0) - 2.209_05e-5).abs() < 1e-9);
        assert!((erfc(-1.0) - (2.0 - 0.157_299_207)).abs() < 1e-8);
        assert!((erf(0.5) - 0.520_499_878).abs() < 1e-8);
    }

    #[test]
    fn accel_constant_sanity() {
        // A 1 kcal/mol/Å force on a hydrogen (1.008 amu) accelerates it by
        // ~4.15e-4 Å/fs².
        let a = 1.0 / 1.008 * ACCEL;
        assert!((a - 4.15e-4).abs() < 1e-5);
    }
}
