//! Biomolecular force-field machinery.
//!
//! Commonly used force fields express the total force on an atom as the sum
//! of bonded terms, van der Waals interactions, and electrostatics (paper
//! §2.1). This crate provides the functional forms shared by both engines in
//! the workspace:
//!
//! * [`bonded`] — harmonic bonds and angles, periodic dihedrals, with forces
//!   validated against numerical gradients.
//! * [`lj`] — Lennard-Jones interactions with a precombined per-type-pair
//!   table (Lorentz–Berthelot rules).
//! * [`exclusions`] — 1-2/1-3 exclusions and scaled 1-4 pairs derived from
//!   the bond graph, mirroring the "correction forces" Anton computes on its
//!   correction pipeline (§3.1).
//! * [`water`] — the rigid TIP3P and TIP4P-Ew water models used in the
//!   paper's evaluations, including the TIP4P virtual-site projection and
//!   force redistribution.
//! * [`topology`] — the flat system description consumed by the engines.
//!
//! The synthetic parameter sets standing in for AMBER99SB / OPLS-AA (see
//! DESIGN.md's substitution table) live in `anton-systems`.

pub mod bonded;
pub mod exclusions;
pub mod lj;
pub mod topology;
pub mod units;
pub mod water;

pub use exclusions::{ExclusionPolicy, Exclusions};
pub use lj::LjTable;
pub use topology::{Angle, Bond, ConstraintGroup, Dihedral, Topology};
