//! Property tests for the engine-side checkpoint payload: random
//! [`FixedState`]s round-trip exactly through `to_bytes`/`from_bytes`, and
//! the typed-error contract holds for any corrupted length prefix.

use anton_core::{CkptError, FixedState};
use anton_fixpoint::{Fx32, FxVec3};
use proptest::prelude::*;

/// Build a state from raw fixed-point words (the format is raw words, so
/// any bit pattern is a valid state — positions wrap periodically).
fn state_from_raw(pos: &[i32], vel: &[i64]) -> FixedState {
    let n = pos.len() / 3;
    let positions = (0..n)
        .map(|i| FxVec3([Fx32(pos[3 * i]), Fx32(pos[3 * i + 1]), Fx32(pos[3 * i + 2])]))
        .collect();
    let velocities = (0..n)
        .map(|i| [vel[3 * i], vel[3 * i + 1], vel[3 * i + 2]])
        .collect();
    FixedState {
        positions,
        velocities,
    }
}

proptest! {
    /// Any raw state round-trips bit-exactly: serialization is lossless
    /// over the full i32/i64 raw domains, including extreme values.
    #[test]
    fn fixed_state_roundtrips_exactly(
        pos in proptest::collection::vec(i32::MIN..i32::MAX, 0..192),
        vel in proptest::collection::vec(i64::MIN..i64::MAX, 0..192),
    ) {
        let n3 = (pos.len() / 3).min(vel.len() / 3) * 3;
        let st = state_from_raw(&pos[..n3], &vel[..n3]);
        let bytes = st.to_bytes();
        prop_assert_eq!(bytes.len(), 8 + st.n_atoms() * 36);
        let restored = FixedState::from_bytes(bytes).unwrap();
        prop_assert_eq!(restored, st);
    }

    /// Serialization is a pure function of the state.
    #[test]
    fn fixed_state_serialization_is_deterministic(
        pos in proptest::collection::vec(i32::MIN..i32::MAX, 3..48),
        vel in proptest::collection::vec(i64::MIN..i64::MAX, 3..48),
    ) {
        let n3 = (pos.len() / 3).min(vel.len() / 3) * 3;
        let st = state_from_raw(&pos[..n3], &vel[..n3]);
        prop_assert_eq!(st.to_bytes(), st.to_bytes());
    }

    /// Corrupting the declared atom count (any wrong value) is always a
    /// typed length mismatch — the body no longer accounts for the bytes.
    #[test]
    fn wrong_declared_count_is_always_detected(
        pos in proptest::collection::vec(i32::MIN..i32::MAX, 3..48),
        vel in proptest::collection::vec(i64::MIN..i64::MAX, 3..48),
        declared in 0u64..u64::MAX,
    ) {
        let n3 = (pos.len() / 3).min(vel.len() / 3) * 3;
        let st = state_from_raw(&pos[..n3], &vel[..n3]);
        prop_assume!(declared != st.n_atoms() as u64);
        let mut bytes = st.to_bytes().to_vec();
        bytes[0..8].copy_from_slice(&declared.to_le_bytes());
        let err = FixedState::from_bytes(bytes::Bytes::from(bytes))
            .expect_err("wrong count must be detected");
        let is_length_mismatch =
            matches!(err, CkptError::LengthMismatch { what: "state body", .. });
        prop_assert!(is_length_mismatch, "unexpected error {}", err);
    }

    /// Truncating the state body at any length is detected.
    #[test]
    fn truncated_state_body_is_detected(
        pos in proptest::collection::vec(i32::MIN..i32::MAX, 3..48),
        vel in proptest::collection::vec(i64::MIN..i64::MAX, 3..48),
        cut in 0usize..usize::MAX,
    ) {
        let n3 = (pos.len() / 3).min(vel.len() / 3) * 3;
        let st = state_from_raw(&pos[..n3], &vel[..n3]);
        let full = st.to_bytes();
        let len = cut % full.len();
        let err = FixedState::from_bytes(bytes::Bytes::from(full.as_slice()[..len].to_vec()))
            .expect_err("truncation must be detected");
        let is_typed = matches!(
            err,
            CkptError::TooShort { .. } | CkptError::LengthMismatch { .. }
        );
        prop_assert!(is_typed, "cut to {}: unexpected error {}", len, err);
    }
}
