//! Match batches and cell tiling for the HTIS-shaped range-limited phase.
//!
//! On the ASIC each PPIP fronts eight match units (paper §2.2): candidate
//! pairs stream out of the position tiles, survive a low-precision distance
//! check and the exact cutoff test, and enter the evaluator as 8-wide
//! bundles. This module is the software shape of that stage: a
//! [`BatchQueue`] packs cutoff survivors into [`PairBatch`] lanes (with a
//! geometry sidecar for the force scatter), and [`CellTiling`] is the
//! static power-of-two cell decomposition the single-rank pipeline streams
//! tile pairs from. Everything is allocation-free in steady state and
//! bitwise deterministic: the queue records pairs in enumeration order,
//! and batch lane order is the canonical force-merge order (detlint D5).

use anton_fixpoint::{FxVec3, QVec3, Q20};
use anton_machine::{PairBatch, MATCH_WIDTH};

/// Counts of work streamed through one match pass (merged into
/// [`ExchangeCounters`](anton_machine::perf::ExchangeCounters) in fixed
/// rank order by the pipeline).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchCensus {
    /// Candidate pairs examined (tile-pair lanes entering the match stage).
    pub candidates: u64,
    /// Pairs that survived the exact cutoff + exclusion tests into lanes.
    pub pairs: u64,
    /// Batches handed to the evaluator (including the partial tail).
    pub batches: u64,
}

/// Geometry sidecar of one [`PairBatch`]: which atoms each lane couples
/// (for the force scatter) and each atom's flat slot in the position
/// tiles (for the per-step coordinate gather). The displacement is *not*
/// stored: the evaluator re-forms it from the refreshed tile positions
/// every step, so a cached batch stays valid as atoms drift. The PPIP
/// model never sees this — like the hardware, it only receives r² and
/// kernel parameters.
#[derive(Clone, Copy, Debug)]
pub struct BatchMeta {
    pub i: [u32; MATCH_WIDTH],
    pub j: [u32; MATCH_WIDTH],
    /// Flat tile-pool slot of atom `i[lane]` / `j[lane]`.
    pub si: [u32; MATCH_WIDTH],
    pub sj: [u32; MATCH_WIDTH],
}

impl BatchMeta {
    const EMPTY: BatchMeta = BatchMeta {
        i: [0; MATCH_WIDTH],
        j: [0; MATCH_WIDTH],
        si: [0; MATCH_WIDTH],
        sj: [0; MATCH_WIDTH],
    };
}

/// An append-only queue of match batches, refilled every force evaluation
/// (buffers retained across [`BatchQueue::begin`] calls). Pairs fill lanes
/// in enumeration order; the final batch may be partial, its mask covering
/// only the filled lanes.
#[derive(Debug, Default)]
pub struct BatchQueue {
    batches: Vec<PairBatch>,
    metas: Vec<BatchMeta>,
    /// Lanes filled in the last batch (0 when empty or exactly full).
    fill: usize,
    pub census: BatchCensus,
}

impl BatchQueue {
    /// Reset for a new match pass, keeping capacity.
    pub fn begin(&mut self) {
        self.batches.clear();
        self.metas.clear();
        self.fill = 0;
        self.census = BatchCensus::default();
    }

    /// Append one padded-cutoff survivor. One argument per match-queue
    /// field: the four evaluator lanes plus the scatter/gather sidecar
    /// (atom ids and their flat tile slots).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn push(
        &mut self,
        r2_q20: i64,
        qq: f64,
        lj_a: f64,
        lj_b: f64,
        i: u32,
        j: u32,
        si: u32,
        sj: u32,
    ) {
        if self.fill == 0 {
            self.batches.push(PairBatch::EMPTY);
            self.metas.push(BatchMeta::EMPTY);
            self.census.batches += 1;
        }
        let lane = self.fill;
        let batch = self.batches.last_mut().expect("batch pushed above");
        batch.r2_q20[lane] = r2_q20;
        batch.qq[lane] = qq;
        batch.lj_a[lane] = lj_a;
        batch.lj_b[lane] = lj_b;
        batch.mask |= 1u8 << lane;
        let meta = self.metas.last_mut().expect("meta pushed above");
        meta.i[lane] = i;
        meta.j[lane] = j;
        meta.si[lane] = si;
        meta.sj[lane] = sj;
        self.fill = (lane + 1) % MATCH_WIDTH;
        self.census.pairs += 1;
    }

    /// Batches currently queued (8-wide bundles including a partial tail).
    #[inline]
    pub fn batch_count(&self) -> usize {
        self.batches.len()
    }

    /// The queued batches with their sidecars, in fill order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (&PairBatch, &BatchMeta)> {
        self.batches.iter().zip(&self.metas)
    }
}

/// Guard (Å) subtracted from the pair-list slack before squaring the
/// rebuild threshold: it absorbs every rounding between the monitor and
/// the match ladder (Q20 half-ulps of the per-axis displacement decode
/// and of the two r² roundings, plus the fraction-grid decode error that
/// `pairlist_slack_covers_decode_error` pins below `PAIRLIST_SLACK/100`),
/// so the conservative Verlet argument survives quantization.
const MONITOR_GUARD: f64 = 0.01;

/// Exact fixed-point displacement monitor for the persistent match stage.
///
/// The cache keeps the raw reference positions of the last rebuild. The
/// batches were matched against those positions at the *padded* cutoff
/// `rc + PAIRLIST_SLACK`, so they stay a superset of every in-cutoff pair
/// while no atom has moved more than half the slack:
/// `r_now(i,j) ≤ r_ref(i,j) + disp(i) + disp(j) ≤ r_ref + 2·max_disp`,
/// hence any pair inside `rc` now was inside `rc + 2·max_disp` at the
/// rebuild. [`Self::needs_rebuild`] therefore demands a rebuild as soon
/// as `2·max_disp ≥ PAIRLIST_SLACK − MONITOR_GUARD` (squared, in Q20, so
/// the test is a pure integer function of the trajectory: the same
/// schedule on every decomposition, thread count, and tracing mode).
#[derive(Debug, Default)]
pub struct MatchCache {
    /// Raw positions at the last rebuild; empty = cold (forces a rebuild).
    ref_pos: Vec<FxVec3>,
    half_edge_q20: [Q20; 3],
    /// Q20 of `(PAIRLIST_SLACK − MONITOR_GUARD)²`, compared against
    /// `4·disp²` (i.e. `(2·disp)²`).
    thresh2_q20: i64,
}

impl MatchCache {
    pub fn new(half_edge_q20: [Q20; 3], slack: f64) -> MatchCache {
        assert!(
            slack > MONITOR_GUARD,
            "pair-list slack {slack} must exceed the monitor guard"
        );
        let thresh = slack - MONITOR_GUARD;
        MatchCache {
            ref_pos: Vec::new(),
            half_edge_q20,
            thresh2_q20: Q20::from_f64(thresh * thresh).raw(),
        }
    }

    /// True when the cached batch structure may no longer cover the
    /// in-cutoff pair set: cold cache, atom count change, or some atom
    /// displaced by half the (guarded) slack since the reference. The
    /// displacement ladder is operation-for-operation the match stage's
    /// `delta_q20` arithmetic, so the decision is exact and reproducible.
    pub fn needs_rebuild(&self, positions: &[FxVec3]) -> bool {
        if self.ref_pos.len() != positions.len() {
            return true;
        }
        for (now, reference) in positions.iter().zip(&self.ref_pos) {
            let v: QVec3<20> = now.wrapping_sub(*reference).frac_to_len(self.half_edge_q20);
            let disp2 = v.norm2::<20>().raw();
            if 4 * disp2 >= self.thresh2_q20 {
                return true;
            }
        }
        false
    }

    /// Record `positions` as the new reference epoch after a rebuild.
    pub fn note_rebuild(&mut self, positions: &[FxVec3]) {
        self.ref_pos.clear();
        self.ref_pos.extend_from_slice(positions);
    }

    /// Drop the cached epoch; the next evaluation rebuilds unconditionally.
    pub fn invalidate(&mut self) {
        self.ref_pos.clear();
    }

    /// Whether a reference epoch is loaded.
    pub fn is_warm(&self) -> bool {
        !self.ref_pos.is_empty()
    }

    /// The reference positions of the current epoch (checkpointed so a
    /// restored run continues the exact rebuild schedule).
    pub fn ref_positions(&self) -> &[FxVec3] {
        &self.ref_pos
    }
}

/// Static power-of-two cell decomposition for the single-rank pipeline.
///
/// Per axis the cell count is the largest power of two whose cell width
/// still covers `reach` (capped at 16 cells so the conservative pair list
/// below stays small), so a particle's cell index is a plain shift of its
/// raw fraction bits — no floating point between positions and tiles. The
/// unordered cell-pair list is fixed at construction: a pair of cells is
/// listed unless the minimum separation between them (circular cell
/// distance minus one, times the cell width) already exceeds `reach`, so
/// the listed tile pairs are a strict superset of every interacting pair.
#[derive(Clone, Debug)]
pub struct CellTiling {
    log2_dims: [u32; 3],
    /// Unordered cell pairs `(a, b)` with `a <= b` that can hold an
    /// interacting pair.
    pairs: Vec<(u32, u32)>,
}

impl CellTiling {
    pub fn build(edge: [f64; 3], reach: f64) -> CellTiling {
        assert!(reach > 0.0);
        let mut log2_dims = [0u32; 3];
        for k in 0..3 {
            let mut m = 0u32;
            while m < 4 && edge[k] / (1u64 << (m + 1)) as f64 >= reach {
                m += 1;
            }
            log2_dims[k] = m;
        }
        let dims = [
            1u32 << log2_dims[0],
            1u32 << log2_dims[1],
            1u32 << log2_dims[2],
        ];
        let width = [
            edge[0] / dims[0] as f64,
            edge[1] / dims[1] as f64,
            edge[2] / dims[2] as f64,
        ];
        // Minimum separation on one axis between cells `ca` and `cb`:
        // zero for same/adjacent cells (circular), else (circ − 1)·width.
        let gap = |ca: u32, cb: u32, k: usize| {
            let d = ca.abs_diff(cb);
            let circ = d.min(dims[k] - d);
            (circ.saturating_sub(1)) as f64 * width[k]
        };
        let n = dims[0] * dims[1] * dims[2];
        let coord = |c: u32| {
            let x = c % dims[0];
            let y = (c / dims[0]) % dims[1];
            let z = c / (dims[0] * dims[1]);
            [x, y, z]
        };
        let mut pairs = Vec::new();
        for a in 0..n {
            let ca = coord(a);
            for b in a..n {
                let cb = coord(b);
                let g2: f64 = (0..3).map(|k| gap(ca[k], cb[k], k).powi(2)).sum();
                if g2 <= reach * reach {
                    pairs.push((a, b));
                }
            }
        }
        CellTiling { log2_dims, pairs }
    }

    #[inline]
    pub fn cell_count(&self) -> usize {
        1usize << (self.log2_dims[0] + self.log2_dims[1] + self.log2_dims[2])
    }

    /// Cell of a particle from its raw signed fraction bits: bias to
    /// unsigned order (so cell 0 starts at fraction 0 = box corner) and
    /// keep the top bits. Integer-exact — binning can never disagree with
    /// the fraction arithmetic the match stage runs on.
    #[inline]
    pub fn cell_of(&self, raw: [i32; 3]) -> usize {
        let bin = |r: i32, m: u32| ((((r as u32) ^ 0x8000_0000) as u64) >> (32 - m)) as usize;
        let cx = bin(raw[0], self.log2_dims[0]);
        let cy = bin(raw[1], self.log2_dims[1]);
        let cz = bin(raw[2], self.log2_dims[2]);
        (((cz << self.log2_dims[1]) | cy) << self.log2_dims[0]) | cx
    }

    /// The static conservative cell-pair list.
    #[inline]
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_packs_lanes_and_masks_partial_tail() {
        let mut q = BatchQueue::default();
        q.begin();
        for p in 0..11u32 {
            q.push(p as i64 + 1, 0.5, 1.0, 2.0, p, p + 100, p + 1000, p + 2000);
        }
        assert_eq!(q.census.pairs, 11);
        assert_eq!(q.census.batches, 2);
        assert_eq!(q.batch_count(), 2);
        let got: Vec<_> = q.iter().collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0.mask, 0xff);
        assert_eq!(got[1].0.mask, 0b0000_0111);
        assert_eq!(got[1].1.i[2], 10);
        assert_eq!(got[1].1.j[2], 110);
        assert_eq!(got[1].1.si[2], 1010);
        assert_eq!(got[1].1.sj[2], 2010);
        assert_eq!(got[0].0.r2_q20[7], 8);
        // begin() resets, keeping nothing from the previous pass.
        q.begin();
        assert_eq!(q.iter().count(), 0);
        assert_eq!(q.batch_count(), 0);
        assert_eq!(q.census, BatchCensus::default());
    }

    #[test]
    fn monitor_is_cold_until_noted_and_tracks_atom_count() {
        let he = [Q20::from_f64(11.0); 3];
        let mut cache = MatchCache::new(he, 0.5);
        let pos = vec![FxVec3::from_unit_frac([0.25, 0.0, -0.5]); 4];
        assert!(!cache.is_warm());
        assert!(cache.needs_rebuild(&pos), "cold cache must rebuild");
        cache.note_rebuild(&pos);
        assert!(cache.is_warm());
        assert!(!cache.needs_rebuild(&pos), "unmoved atoms reuse");
        assert!(
            cache.needs_rebuild(&pos[..3]),
            "atom count change must rebuild"
        );
        cache.invalidate();
        assert!(cache.needs_rebuild(&pos), "invalidated cache must rebuild");
    }

    #[test]
    fn monitor_trips_exactly_at_half_guarded_slack() {
        // 22 Å box (half-edge 11 Å), slack 0.5 Å → threshold on one atom's
        // displacement is (0.5 − MONITOR_GUARD)/2 = 0.245 Å.
        let he = [Q20::from_f64(11.0); 3];
        let mut cache = MatchCache::new(he, 0.5);
        let base = vec![FxVec3::from_unit_frac([0.0; 3]); 8];
        cache.note_rebuild(&base);
        let moved_by = |ang: f64| {
            let mut pos = base.clone();
            // `from_unit_frac` takes a fraction of the *full* 22 Å edge.
            pos[5] = FxVec3::from_unit_frac([ang / 22.0, 0.0, 0.0]);
            pos
        };
        assert!(!cache.needs_rebuild(&moved_by(0.2449)));
        assert!(cache.needs_rebuild(&moved_by(0.2451)));
        // Displacement is measured since the *reference*, not the last step.
        cache.note_rebuild(&moved_by(0.2451));
        assert!(!cache.needs_rebuild(&moved_by(0.2451 + 0.2449)));
        assert!(cache.needs_rebuild(&moved_by(0.2451 + 0.2451)));
    }

    #[test]
    fn monitor_uses_minimum_image_displacement() {
        // An atom nudged across the periodic seam moves a hair, not a box.
        let he = [Q20::from_f64(11.0); 3];
        let mut cache = MatchCache::new(he, 0.5);
        let mut pos = vec![FxVec3::from_unit_frac([0.999_999_9, 0.0, 0.0]); 2];
        cache.note_rebuild(&pos);
        pos[1] = FxVec3::from_unit_frac([-0.999_999_9, 0.0, 0.0]);
        assert!(!cache.needs_rebuild(&pos));
    }

    #[test]
    fn tiling_dims_cover_reach_and_cap() {
        // 22 Å box, 7.7 Å reach: 2 cells per axis (11 Å ≥ 7.7, 5.5 < 7.7).
        let t = CellTiling::build([22.0; 3], 7.7);
        assert_eq!(t.cell_count(), 8);
        // Every cell pair can interact at this size: C(8,2) + 8 = 36.
        assert_eq!(t.pairs().len(), 36);
        // 36 Å box: 4 cells per axis; cells two apart (gap 9 Å) are pruned.
        let t = CellTiling::build([36.0; 3], 7.7);
        assert_eq!(t.cell_count(), 64);
        assert!(t.pairs().len() < 64 * 65 / 2, "no pruning happened");
        // Tiny box: one cell, one pair.
        let t = CellTiling::build([6.0; 3], 7.7);
        assert_eq!(t.cell_count(), 1);
        assert_eq!(t.pairs(), &[(0, 0)]);
        // Huge box: per-axis cap at 16 cells.
        let t = CellTiling::build([1000.0; 3], 7.7);
        assert_eq!(t.cell_count(), 16 * 16 * 16);
    }

    #[test]
    fn binning_is_exact_on_fraction_bits() {
        let t = CellTiling::build([22.0; 3], 7.7);
        // Fraction −1.0 (raw i32::MIN) is the box corner → cell 0; fraction
        // just below 0 is the middle → still the lower cell; fraction 0 is
        // the upper half.
        assert_eq!(t.cell_of([i32::MIN; 3]), 0);
        assert_eq!(t.cell_of([-1; 3]), 0);
        assert_eq!(t.cell_of([0; 3]), 7);
        assert_eq!(t.cell_of([0, -1, -1]), 1);
        assert_eq!(t.cell_of([-1, 0, -1]), 2);
        assert_eq!(t.cell_of([-1, -1, 0]), 4);
    }

    #[test]
    fn tiling_pair_list_is_conservative() {
        // Randomized check: any two fraction points within the reach (in a
        // 36 Å box) must land in a listed cell pair.
        let t = CellTiling::build([36.0; 3], 7.7);
        let listed: std::collections::HashSet<(u32, u32)> = t.pairs().iter().copied().collect();
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..20_000 {
            let p = [next() as i32, next() as i32, next() as i32];
            let q = [next() as i32, next() as i32, next() as i32];
            let mut r2 = 0.0;
            for k in 0..3 {
                let df = p[k].wrapping_sub(q[k]) as f64 / (1u64 << 31) as f64;
                r2 += (df * 18.0).powi(2); // fraction of [-1,1) × half-edge
            }
            if r2 <= 7.7 * 7.7 {
                let (a, b) = (t.cell_of(p) as u32, t.cell_of(q) as u32);
                assert!(
                    listed.contains(&(a.min(b), a.max(b))),
                    "in-reach pair in unlisted cells {a},{b}"
                );
            }
        }
    }
}
