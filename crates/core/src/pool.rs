//! A pinned-size deterministic thread pool for per-rank fan-out.
//!
//! Parallelism here never touches results: every work item (a rank's
//! private accumulator) is processed by exactly one worker, the partition
//! of items into workers is a pure function of the item count and the pool
//! size, and nothing is reduced across threads — the caller merges the
//! item buffers afterward in a fixed, rank-indexed order (the sanctioned
//! pattern of DESIGN.md §8). Thread scheduling can therefore only change
//! *when* a buffer is filled, never *what* it contains.

/// Worker-thread count from the `ANTON_THREADS` environment variable
/// (a run configuration input, like a command-line flag); defaults to 1.
pub fn threads_from_env() -> usize {
    match std::env::var("ANTON_THREADS") {
        Ok(s) => s.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => 1,
    }
}

/// A fixed-size pool of scoped worker threads.
#[derive(Clone, Copy, Debug)]
pub struct DetPool {
    threads: usize,
}

impl DetPool {
    pub fn new(threads: usize) -> DetPool {
        DetPool {
            threads: threads.max(1),
        }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f(index, item)` to every item, fanning contiguous chunks of
    /// the slice out to workers. With one thread (the default) no threads
    /// are spawned at all.
    pub fn run<T: Send>(&self, items: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
        self.run_overlapped(items, f, || {});
    }

    /// Like [`Self::run`], but additionally executes `main` on the calling
    /// thread while the workers process `items` — the engine overlaps the
    /// monolithic GSE mesh phase with per-rank correction work this way,
    /// mirroring the paper's concurrent HTIS and flexible-subsystem chains
    /// (§3.2). `main` and the workers must write disjoint buffers.
    pub fn run_overlapped<T: Send, R>(
        &self,
        items: &mut [T],
        f: impl Fn(usize, &mut T) + Sync,
        main: impl FnOnce() -> R,
    ) -> R {
        if self.threads == 1 || items.len() <= 1 {
            let r = main();
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return r;
        }
        let chunk = items.len().div_ceil(self.threads);
        let f = &f;
        std::thread::scope(|s| {
            for (c, slice) in items.chunks_mut(chunk).enumerate() {
                let base = c * chunk;
                s.spawn(move || {
                    for (k, item) in slice.iter_mut().enumerate() {
                        f(base + k, item);
                    }
                });
            }
            main()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The partition is contiguous and exhaustive: every index is visited
    /// exactly once with its own item, for any pool size.
    #[test]
    fn every_item_is_processed_once_with_its_index() {
        for threads in 1..=5 {
            let pool = DetPool::new(threads);
            let mut items: Vec<(usize, u32)> = (0..11).map(|i| (i, 0u32)).collect();
            pool.run(&mut items, |i, item| {
                assert_eq!(i, item.0);
                item.1 += 1;
            });
            assert!(items.iter().all(|&(_, n)| n == 1), "threads={threads}");
        }
    }

    /// Buffer contents are independent of the pool size — the property the
    /// engine's thread-count invariance rests on.
    #[test]
    fn results_are_identical_across_pool_sizes() {
        let fill = |threads: usize| {
            let mut buf = vec![0u64; 23];
            DetPool::new(threads).run(&mut buf, |i, b| {
                *b = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            });
            buf
        };
        let one = fill(1);
        for threads in 2..=4 {
            assert_eq!(fill(threads), one, "pool size {threads} diverged");
        }
    }

    #[test]
    fn overlapped_main_runs_and_returns() {
        for threads in [1usize, 3] {
            let mut buf = vec![0u8; 7];
            let r = DetPool::new(threads).run_overlapped(&mut buf, |_, b| *b = 1, || 42usize);
            assert_eq!(r, 42);
            assert!(buf.iter().all(|&b| b == 1));
        }
    }

    #[test]
    fn env_parse_is_defensive() {
        // Only exercises the parsing contract, not the process environment.
        assert_eq!("4".trim().parse::<usize>().unwrap_or(1).max(1), 4);
        assert_eq!("zero".trim().parse::<usize>().unwrap_or(1).max(1), 1);
        assert_eq!("0".trim().parse::<usize>().unwrap_or(1).max(1), 1);
    }
}
