//! Fixed-point simulation state.

use anton_fixpoint::{Fx32, FxVec3, Q20};
use anton_geometry::{PeriodicBox, Vec3};

/// Fraction bits of velocity raw values (Å/fs).
pub const VEL_FRAC: u32 = 40;
/// Fraction bits of force raw values (kcal/mol/Å).
pub const FORCE_FRAC: u32 = 24;
/// Fraction bits of energy raw values (kcal/mol).
pub const ENERGY_FRAC: u32 = 32;

/// The complete dynamic state: per-axis box-fraction positions ([`FxVec3`],
/// whose two's-complement wrap *is* the periodic boundary condition) and
/// Q40 velocities. All mutation happens through quantized, odd-symmetric
/// updates, so the state evolves identically regardless of decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixedState {
    pub positions: Vec<FxVec3>,
    /// Velocity raw values, Q40 Å/fs per axis.
    pub velocities: Vec<[i64; 3]>,
}

impl FixedState {
    /// Quantize f64 positions/velocities onto the fixed grids.
    // detlint::boundary(reason = "setup-time f64 -> fixed quantization edge; every component rounds via rne_f64 / from_unit_frac")
    pub fn from_f64(pbox: &PeriodicBox, positions: &[Vec3], velocities: &[Vec3]) -> FixedState {
        assert_eq!(positions.len(), velocities.len());
        let e = pbox.edge();
        let positions = positions
            .iter()
            .map(|p| {
                let w = pbox.wrap(*p);
                FxVec3::from_unit_frac([w.x / e.x, w.y / e.y, w.z / e.z])
            })
            .collect();
        let scale = (1i64 << VEL_FRAC) as f64;
        let velocities = velocities
            .iter()
            .map(|v| {
                [
                    anton_fixpoint::rounding::rne_f64(v.x * scale) as i64,
                    anton_fixpoint::rounding::rne_f64(v.y * scale) as i64,
                    anton_fixpoint::rounding::rne_f64(v.z * scale) as i64,
                ]
            })
            .collect();
        FixedState {
            positions,
            velocities,
        }
    }

    pub fn n_atoms(&self) -> usize {
        self.positions.len()
    }

    /// Exact Cartesian decode of one position (deterministic).
    #[inline]
    pub fn decode_position(&self, pbox: &PeriodicBox, i: usize) -> Vec3 {
        let e = pbox.edge();
        let f = self.positions[i].to_unit_frac();
        Vec3::new(f[0] * e.x, f[1] * e.y, f[2] * e.z)
    }

    /// All positions decoded to Cartesian f64 (for neighbor search and
    /// kernel interiors; every decode is exact and order-independent).
    pub fn decode_positions(&self, pbox: &PeriodicBox) -> Vec<Vec3> {
        let mut out = Vec::new();
        self.decode_positions_into(pbox, &mut out);
        out
    }

    /// Buffer-reusing form of [`Self::decode_positions`] for per-step
    /// callers: `out` is cleared and refilled.
    pub fn decode_positions_into(&self, pbox: &PeriodicBox, out: &mut Vec<Vec3>) {
        out.clear();
        out.extend((0..self.n_atoms()).map(|i| self.decode_position(pbox, i)));
    }

    /// All positions as unit box fractions in `[0,1)³`, into a reused
    /// buffer (home-box assignment runs on these every force evaluation).
    // detlint::boundary(reason = "exact Fx32 -> f64 unit-fraction decode for home-box assignment; read-only")
    pub fn unit_fracs_into(&self, out: &mut Vec<[f64; 3]>) {
        out.clear();
        out.extend(self.positions.iter().map(|p| p.to_unit_frac()));
    }

    /// Velocity of atom `i` in Å/fs.
    // detlint::boundary(reason = "exact Q40 -> f64 decode for kernel interiors and diagnostics; read-only")
    #[inline]
    pub fn velocity_f64(&self, i: usize) -> Vec3 {
        let s = 1.0 / (1i64 << VEL_FRAC) as f64;
        Vec3::new(
            self.velocities[i][0] as f64 * s,
            self.velocities[i][1] as f64 * s,
            self.velocities[i][2] as f64 * s,
        )
    }

    /// Negate every velocity exactly (the paper's reversibility experiment).
    pub fn negate_velocities(&mut self) {
        for v in self.velocities.iter_mut() {
            v[0] = v[0].wrapping_neg();
            v[1] = v[1].wrapping_neg();
            v[2] = v[2].wrapping_neg();
        }
    }

    /// Fixed-point minimum-image displacement `i − j` in Q20 Å, given the
    /// box half-edges pre-quantized to Q20.
    #[inline]
    pub fn delta_q20(&self, half_edge_q20: [Q20; 3], i: usize, j: usize) -> [i64; 3] {
        let d = self.positions[i].wrapping_sub(self.positions[j]);
        let v: anton_fixpoint::QVec3<20> = d.frac_to_len(half_edge_q20);
        [v.0[0].raw(), v.0[1].raw(), v.0[2].raw()]
    }

    /// Overwrite a position from a freshly computed fraction (virtual sites).
    // detlint::boundary(reason = "virtual-site f64 -> fraction quantization edge; rounds via from_unit_frac")
    #[inline]
    pub fn set_position_frac(&mut self, i: usize, frac: [f64; 3]) {
        self.positions[i] = FxVec3::from_unit_frac(frac);
    }

    /// Apply a quantized position increment (drift), wrapping periodically.
    #[inline]
    pub fn drift(&mut self, i: usize, d_frac_raw: [i64; 3]) {
        let p = &mut self.positions[i];
        p.0[0] = p.0[0].wrapping_add(Fx32(d_frac_raw[0] as i32));
        p.0[1] = p.0[1].wrapping_add(Fx32(d_frac_raw[1] as i32));
        p.0[2] = p.0[2].wrapping_add(Fx32(d_frac_raw[2] as i32));
    }
}

impl FixedState {
    /// Serialize the exact raw state (for bit-exact checkpoints: restoring
    /// and continuing reproduces the uninterrupted trajectory bitwise —
    /// a direct corollary of the engine's determinism).
    pub fn to_bytes(&self) -> bytes::Bytes {
        use bytes::BufMut;
        let n = self.n_atoms();
        let mut buf = bytes::BytesMut::with_capacity(8 + n * (12 + 24));
        buf.put_u64_le(n as u64);
        for p in &self.positions {
            for a in p.0 {
                buf.put_i32_le(a.raw());
            }
        }
        for v in &self.velocities {
            for c in v {
                buf.put_i64_le(*c);
            }
        }
        buf.freeze()
    }

    /// Restore from [`Self::to_bytes`] output, with typed failures from
    /// the shared checkpoint error vocabulary ([`anton_ckpt::CkptError`]):
    /// too-short input, or a body whose length disagrees with the declared
    /// atom count. (Magic, version, and checksums belong to the enclosing
    /// `anton-ckpt` container — this byte string is its raw payload, whose
    /// format predates the container and is checksummed by it.)
    pub fn from_bytes(mut data: bytes::Bytes) -> Result<FixedState, anton_ckpt::CkptError> {
        use anton_ckpt::CkptError;
        use bytes::Buf;
        if data.remaining() < 8 {
            return Err(CkptError::TooShort {
                needed: 8,
                got: data.remaining() as u64,
            });
        }
        let declared = data.get_u64_le();
        // Atom-count consistency: the declared count must exactly account
        // for the bytes present (checked in u64 so an absurd count cannot
        // overflow the expected size).
        match declared.checked_mul((12 + 24) as u64) {
            Some(expected) if data.remaining() as u64 == expected => {}
            expected => {
                return Err(CkptError::LengthMismatch {
                    what: "state body",
                    expected: expected.unwrap_or(u64::MAX),
                    got: data.remaining() as u64,
                })
            }
        }
        let n = declared as usize;
        let mut positions = Vec::with_capacity(n);
        for _ in 0..n {
            positions.push(FxVec3([
                Fx32(data.get_i32_le()),
                Fx32(data.get_i32_le()),
                Fx32(data.get_i32_le()),
            ]));
        }
        let mut velocities = Vec::with_capacity(n);
        for _ in 0..n {
            velocities.push([data.get_i64_le(), data.get_i64_le(), data.get_i64_le()]);
        }
        Ok(FixedState {
            positions,
            velocities,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_roundtrip_is_exact() {
        let pbox = PeriodicBox::cubic(12.0);
        let st = FixedState::from_f64(
            &pbox,
            &[Vec3::new(1.0, 2.0, 3.0), Vec3::new(11.9, 0.1, 6.0)],
            &[Vec3::new(0.01, -0.02, 0.003), Vec3::new(-0.001, 0.0, 0.07)],
        );
        let restored = FixedState::from_bytes(st.to_bytes()).unwrap();
        assert_eq!(restored, st);
    }

    #[test]
    fn from_bytes_rejects_malformed_with_typed_errors() {
        use anton_ckpt::CkptError;
        assert!(matches!(
            FixedState::from_bytes(bytes::Bytes::from_static(&[1, 2, 3])),
            Err(CkptError::TooShort { needed: 8, got: 3 })
        ));
        let st = FixedState::from_f64(
            &PeriodicBox::cubic(5.0),
            &[Vec3::new(1.0, 1.0, 1.0)],
            &[Vec3::ZERO],
        );
        let mut truncated = st.to_bytes().to_vec();
        truncated.pop();
        assert!(matches!(
            FixedState::from_bytes(bytes::Bytes::from(truncated)),
            Err(CkptError::LengthMismatch {
                what: "state body",
                expected: 36,
                got: 35,
            })
        ));
        // Declared atom count disagreeing with the body is a length
        // mismatch too (consistency validation, not a silent truncation).
        let mut wrong_count = st.to_bytes().to_vec();
        wrong_count[0] = 2;
        assert!(matches!(
            FixedState::from_bytes(bytes::Bytes::from(wrong_count)),
            Err(CkptError::LengthMismatch { expected: 72, .. })
        ));
        // An absurd count cannot overflow the expected-size arithmetic.
        let mut absurd = st.to_bytes().to_vec();
        absurd[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            FixedState::from_bytes(bytes::Bytes::from(absurd)),
            Err(CkptError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn roundtrip_positions() {
        let pbox = PeriodicBox::cubic(40.0);
        let pos = vec![Vec3::new(1.0, 20.0, 39.5), Vec3::new(0.0, 0.0, 0.0)];
        let vel = vec![Vec3::new(0.001, -0.002, 0.0); 2];
        let st = FixedState::from_f64(&pbox, &pos, &vel);
        for (i, p) in pos.iter().enumerate() {
            let d = (st.decode_position(&pbox, i) - *p).norm();
            assert!(d < 40.0 * Fx32::EPSILON * 2.0, "decode error {d}");
        }
        assert!((st.velocity_f64(0).x - 0.001).abs() < 1e-11);
    }

    #[test]
    fn negation_is_exact_involution() {
        let pbox = PeriodicBox::cubic(10.0);
        let st0 = FixedState::from_f64(
            &pbox,
            &[Vec3::new(1.0, 2.0, 3.0)],
            &[Vec3::new(0.013, -0.007, 0.001)],
        );
        let mut st = st0.clone();
        st.negate_velocities();
        st.negate_velocities();
        assert_eq!(st, st0);
    }

    #[test]
    fn delta_wraps_minimum_image() {
        let pbox = PeriodicBox::cubic(20.0);
        let st = FixedState::from_f64(
            &pbox,
            &[Vec3::new(19.5, 0.0, 0.0), Vec3::new(0.5, 0.0, 0.0)],
            &[Vec3::ZERO; 2],
        );
        let he = [Q20::from_f64(10.0); 3];
        let d = st.delta_q20(he, 0, 1);
        let dx = d[0] as f64 / (1i64 << 20) as f64;
        assert!((dx + 1.0).abs() < 1e-4, "dx = {dx}");
    }
}
