//! The Anton engine: fixed-point velocity Verlet with RESPA impulses,
//! deterministic constraints, optional Berendsen coupling, and deferred
//! migration bookkeeping.

use crate::forces::{Decomposition, ForcePipeline, RawForces};
use crate::pool::threads_from_env;
use crate::state::{FixedState, FORCE_FRAC, VEL_FRAC};
use anton_ckpt::{CheckpointStore, CkptError, Fingerprint, Snapshot};
use anton_fixpoint::rounding::rne_f64;
use anton_fixpoint::{Fx32, FxVec3};
use anton_forcefield::units::ACCEL;
use anton_geometry::Vec3;
use anton_machine::ExchangeCounters;
use anton_nt::migration::MigrationSchedule;
use anton_systems::velocities::init_velocities;
use anton_systems::System;
use anton_trace::{Phase, TraceSink, RANK_MAIN};
use std::path::{Path, PathBuf};

/// Temperature control.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ThermostatKind {
    /// NVE: required for the energy-drift and reversibility experiments.
    None,
    /// Berendsen weak coupling (the BPTI run of §5.3).
    Berendsen { target_k: f64, tau_fs: f64 },
}

/// A cycle-boundary hook: called with the simulation in its post-cycle
/// state (palindromic cycle closed, forces fresh for the current
/// positions). Observers are strictly read-only with respect to the
/// trajectory — the engine hands them `&AntonSimulation` — so installing
/// one can never change a bit of the state. The `anton-analysis` crate's
/// invariant verifier is the canonical implementor.
///
/// The `Any` supertrait lets callers recover a concrete observer back out
/// of the engine (e.g. to read accumulated verifier violations) through
/// [`AntonSimulation::observer`].
pub trait CycleObserver: std::any::Any {
    /// Called after each sampled cycle completes.
    fn on_cycle(&mut self, sim: &AntonSimulation);
    /// Upcast for concrete-type recovery.
    fn as_any(&self) -> &dyn std::any::Any;
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Installed observer + its sampling cadence.
struct ObserverSlot {
    /// Sample every `every` cycles (cycle numbers divisible by `every`).
    every: u64,
    obs: Box<dyn CycleObserver>,
}

/// Builder for [`AntonSimulation`].
pub struct SimulationBuilder {
    system: System,
    velocities: Option<Vec<Vec3>>,
    decomposition: Decomposition,
    threads: usize,
    thermostat: ThermostatKind,
    constraints_enabled: bool,
    tracing: bool,
    checkpoint_every: u64,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_keep: usize,
    observer: Option<ObserverSlot>,
}

impl SimulationBuilder {
    pub fn velocities(mut self, v: Vec<Vec3>) -> Self {
        self.velocities = Some(v);
        self
    }

    /// Maxwell–Boltzmann velocities at `temp_k`, seeded.
    pub fn velocities_from_temperature(mut self, temp_k: f64, seed: u64) -> Self {
        let v = init_velocities(&self.system.topology, temp_k, seed);
        self.velocities = Some(v);
        self
    }

    pub fn decomposition(mut self, d: Decomposition) -> Self {
        self.decomposition = d;
        self
    }

    /// Worker-thread count for the per-rank fan-out (default: the
    /// `ANTON_THREADS` environment variable, else 1). Never affects
    /// results — trajectories are bitwise invariant across thread counts.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    pub fn thermostat(mut self, t: ThermostatKind) -> Self {
        self.thermostat = t;
        self
    }

    /// Disable constraints (for reversibility experiments on systems whose
    /// topology carries constraint groups).
    pub fn without_constraints(mut self) -> Self {
        self.constraints_enabled = false;
        self
    }

    /// Enable structured tracing: the pipeline records phase spans and
    /// communication counters into a [`TraceSink`] readable through
    /// [`AntonSimulation::trace`]. Never affects results — trajectories are
    /// bitwise identical with tracing on and off.
    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Write a checkpoint every `cycles` outer RESPA cycles (checkpoints
    /// only ever happen at cycle boundaries, where the palindromic cycle
    /// closes and the state alone determines the continuation). Requires
    /// [`Self::checkpoint_dir`]; 0 disables the automatic cadence
    /// (explicit [`AntonSimulation::write_checkpoint`] still works when a
    /// directory is configured).
    pub fn checkpoint_every(mut self, cycles: u64) -> Self {
        self.checkpoint_every = cycles;
        self
    }

    /// Directory for the checkpoint store (created if needed). See
    /// `anton-ckpt` for the on-disk format and rotation policy.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// How many rotated checkpoints to keep (default 3, minimum 1).
    pub fn checkpoint_keep(mut self, keep: usize) -> Self {
        self.checkpoint_keep = keep;
        self
    }

    /// Install a [`CycleObserver`] sampled every `every` cycles (minimum 1).
    /// The observer runs at cycle boundaries only, after any automatic
    /// checkpoint, and sees the simulation immutably — observation never
    /// affects the trajectory. One observer per simulation; installing a
    /// second replaces the first.
    ///
    /// `anton-analysis` layers `verify_every(n)` on top of this hook.
    pub fn observe_every(mut self, every: u64, observer: Box<dyn CycleObserver>) -> Self {
        self.observer = Some(ObserverSlot {
            every: every.max(1),
            obs: observer,
        });
        self
    }

    /// Build, then restore the newest valid checkpoint from `path` (a
    /// store directory, or a single `.ant` file). The snapshot's config
    /// fingerprint is verified against this builder's configuration
    /// **before** anything is restored: resuming under a different node
    /// grid, thread count, system, or run parameters is refused with
    /// [`CkptError::FingerprintMismatch`], because the bitwise-resume
    /// contract could silently not hold. On success the simulation
    /// continues the interrupted trajectory bit-for-bit.
    pub fn resume_from(self, path: impl AsRef<Path>) -> Result<AntonSimulation, CkptError> {
        let path = path.as_ref();
        let snap = if path.is_dir() {
            CheckpointStore::open(path, self.checkpoint_keep.max(1))
                .latest_valid()?
                .1
        } else {
            anton_ckpt::load_file(path)?
        };
        let expected = config_fingerprint(&self.system, self.decomposition, self.threads);
        if snap.fingerprint != expected {
            return Err(CkptError::FingerprintMismatch {
                stored: snap.fingerprint,
                expected,
            });
        }
        let mut sim = self.build();
        sim.restore(&snap)?;
        Ok(sim)
    }

    pub fn build(self) -> AntonSimulation {
        let velocities = self
            .velocities
            .unwrap_or_else(|| vec![Vec3::ZERO; self.system.n_atoms()]);
        let ckpt = match (&self.checkpoint_dir, self.checkpoint_every) {
            (Some(dir), every) => {
                let store = CheckpointStore::create(dir, self.checkpoint_keep)
                    .unwrap_or_else(|e| panic!("checkpoint dir {}: {e}", dir.display()));
                Some(CkptSink {
                    store,
                    every,
                    files_written: 0,
                    bytes_written: 0,
                })
            }
            (None, 0) => None,
            (None, every) => panic!("checkpoint_every({every}) requires checkpoint_dir"),
        };
        let mut sim = AntonSimulation::new(
            self.system,
            velocities,
            self.decomposition,
            self.threads,
            self.thermostat,
            self.constraints_enabled,
            self.tracing,
            ckpt,
        );
        sim.observer = self.observer;
        sim
    }
}

/// Engine-side checkpoint state: the store plus the automatic cadence and
/// write statistics (surfaced to the scaling bench / perf gate).
struct CkptSink {
    store: CheckpointStore,
    /// Cycles between automatic checkpoints (0 = explicit writes only).
    every: u64,
    files_written: u64,
    bytes_written: u64,
}

/// The config fingerprint of DESIGN.md §12: every configuration input the
/// bitwise-resume contract depends on, digested with labels. A snapshot
/// restores only into a simulation with an equal fingerprint.
fn config_fingerprint(system: &System, decomposition: Decomposition, threads: usize) -> u64 {
    let e = system.pbox.edge();
    let p = &system.params;
    let nodes = match decomposition {
        Decomposition::SingleRank => 0u64,
        Decomposition::Nodes(n) => n as u64,
    };
    Fingerprint::new()
        .field("n_atoms", system.n_atoms() as u64)
        .field("edge_x", e.x.to_bits())
        .field("edge_y", e.y.to_bits())
        .field("edge_z", e.z.to_bits())
        .field("cutoff", p.cutoff.to_bits())
        .field("spread_cutoff", p.spread_cutoff.to_bits())
        .field("mesh_x", p.mesh[0] as u64)
        .field("mesh_y", p.mesh[1] as u64)
        .field("mesh_z", p.mesh[2] as u64)
        .field("dt_fs", p.dt_fs.to_bits())
        .field("longrange_every", p.longrange_every as u64)
        .field("migration_every", p.migration_every as u64)
        .field("nodes", nodes)
        .field("threads", threads.max(1) as u64)
        .finish()
}

/// A running Anton simulation.
pub struct AntonSimulation {
    pub system: System,
    pub state: FixedState,
    pub pipeline: ForcePipeline,
    pub thermostat: ThermostatKind,
    pub constraints_enabled: bool,
    short: RawForces,
    long: RawForces,
    /// Per-atom half-kick constants: dt/2 · ACCEL/m · 2^(VEL−FORCE).
    kick_half: Vec<f64>,
    /// Long-impulse constants: k·dt/2 scaled likewise.
    kick_long_half: Vec<f64>,
    /// Per-axis drift constants: dt · 2^(31−VEL) / (edge/2).
    drift_c: [f64; 3],
    migration: MigrationSchedule,
    step: u64,
    ckpt: Option<CkptSink>,
    /// Config fingerprint (pure function of system/decomposition/threads),
    /// stamped into every written checkpoint and verified on restore.
    fingerprint: u64,
    /// Cycle-boundary observer (read-only; never affects the trajectory).
    observer: Option<ObserverSlot>,
}

impl AntonSimulation {
    pub fn builder(system: System) -> SimulationBuilder {
        SimulationBuilder {
            system,
            velocities: None,
            decomposition: Decomposition::SingleRank,
            threads: threads_from_env(),
            thermostat: ThermostatKind::None,
            constraints_enabled: true,
            tracing: false,
            checkpoint_every: 0,
            checkpoint_dir: None,
            checkpoint_keep: 3,
            observer: None,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn new(
        system: System,
        velocities: Vec<Vec3>,
        decomposition: Decomposition,
        threads: usize,
        thermostat: ThermostatKind,
        constraints_enabled: bool,
        tracing: bool,
        ckpt: Option<CkptSink>,
    ) -> AntonSimulation {
        let fingerprint = config_fingerprint(&system, decomposition, threads);
        let state = FixedState::from_f64(&system.pbox, &system.positions, &velocities);
        let mut pipeline = ForcePipeline::new(&system, decomposition, threads);
        if tracing {
            pipeline.set_trace(TraceSink::on());
        }
        let n = system.n_atoms();
        let dt = system.params.dt_fs;
        let k = system.params.longrange_every.max(1) as f64;
        let fscale = (2.0f64).powi(VEL_FRAC as i32 - FORCE_FRAC as i32);
        let kick_half: Vec<f64> = system
            .topology
            .mass
            .iter()
            .map(|&m| {
                if m > 0.0 {
                    dt / 2.0 * ACCEL / m * fscale
                } else {
                    0.0
                }
            })
            .collect();
        let kick_long_half = kick_half.iter().map(|c| c * k).collect();
        let e = system.pbox.edge();
        let pscale = (2.0f64).powi(31 - VEL_FRAC as i32);
        let drift_c = [
            dt * pscale / (e.x / 2.0),
            dt * pscale / (e.y / 2.0),
            dt * pscale / (e.z / 2.0),
        ];
        let migration = MigrationSchedule::new(system.params.migration_every.max(1));
        let mut sim = AntonSimulation {
            system,
            state,
            pipeline,
            thermostat,
            constraints_enabled,
            short: RawForces::zeroed(n),
            long: RawForces::zeroed(n),
            kick_half,
            kick_long_half,
            drift_c,
            migration,
            step: 0,
            ckpt,
            fingerprint,
            observer: None,
        };
        sim.update_virtual_sites();
        sim.refresh_short();
        sim.refresh_long();
        sim
    }

    fn update_virtual_sites(&mut self) {
        if self.system.topology.virtual_sites.is_empty() {
            return;
        }
        // The engine's positions are wrapped into the primary cell, so a
        // molecule straddling the boundary must be reconstructed with
        // minimum-image displacements before the linear-combination site is
        // placed — plain averaging would put the site across the box.
        let pos = self.state.decode_positions(&self.system.pbox);
        let pbox = self.system.pbox;
        let e = pbox.edge();
        for v in &self.system.topology.virtual_sites {
            let ra = pos[v.a as usize];
            let dab = pbox.min_image(pos[v.b as usize], ra);
            let dac = pbox.min_image(pos[v.c as usize], ra);
            let p = ra + (dab + dac) * (0.5 * v.gamma);
            let w = pbox.wrap(p);
            self.state
                .set_position_frac(v.site as usize, [w.x / e.x, w.y / e.y, w.z / e.z]);
        }
    }

    /// Spread accumulated virtual-site raw forces onto parents (quantized,
    /// deterministic). Public so an external checker (the `anton-analysis`
    /// verifier) can reproduce the engine's exact post-pipeline force words
    /// from an independent recomputation.
    pub fn spread_vsite_forces(out: &mut RawForces, sys: &System) {
        for v in &sys.topology.virtual_sites {
            let fm = out.f[v.site as usize];
            out.f[v.site as usize] = [0; 3];
            for (k, &fmk) in fm.iter().enumerate() {
                let a = rne_f64(fmk as f64 * (1.0 - v.gamma)) as i64;
                let h = rne_f64(fmk as f64 * (v.gamma * 0.5)) as i64;
                out.f[v.a as usize][k] = out.f[v.a as usize][k].wrapping_add(a);
                out.f[v.b as usize][k] = out.f[v.b as usize][k].wrapping_add(h);
                out.f[v.c as usize][k] = out.f[v.c as usize][k].wrapping_add(h);
            }
        }
    }

    fn refresh_short(&mut self) {
        self.short.clear();
        self.pipeline
            .short_range(&self.system, &self.state, &mut self.short);
        Self::spread_vsite_forces(&mut self.short, &self.system);
    }

    fn refresh_long(&mut self) {
        self.long.clear();
        self.pipeline
            .long_range(&self.system, &self.state, &mut self.long);
        Self::spread_vsite_forces(&mut self.long, &self.system);
    }

    #[inline]
    fn kick(state: &mut FixedState, forces: &RawForces, consts: &[f64]) {
        for (i, c) in consts.iter().enumerate() {
            if *c == 0.0 {
                continue;
            }
            let v = &mut state.velocities[i];
            for (vk, &fk) in v.iter_mut().zip(&forces.f[i]) {
                *vk = vk.wrapping_add(rne_f64(fk as f64 * c) as i64);
            }
        }
    }

    fn drift_all(&mut self) {
        for i in 0..self.state.n_atoms() {
            if self.system.topology.mass[i] <= 0.0 {
                continue;
            }
            let v = self.state.velocities[i];
            let d = [
                rne_f64(v[0] as f64 * self.drift_c[0]) as i64,
                rne_f64(v[1] as f64 * self.drift_c[1]) as i64,
                rne_f64(v[2] as f64 * self.drift_c[2]) as i64,
            ];
            self.state.drift(i, d);
        }
    }

    /// Fixed-point SHAKE/RATTLE: iterate in f64 over decoded state, then
    /// quantize back. Deterministic (not reversible — matching the paper,
    /// whose reversibility experiments run without constraints).
    fn apply_constraints(&mut self, pos_ref: &[Vec3]) {
        let groups = &self.system.topology.constraint_groups;
        if groups.is_empty() || !self.constraints_enabled {
            return;
        }
        let mut pos = self.state.decode_positions(&self.system.pbox);
        anton_refmd_shake(&self.system, pos_ref, &mut pos);
        // Write back: positions and constrained velocities.
        let e = self.system.pbox.edge();
        let dt = self.system.params.dt_fs;
        let vs = (1i64 << VEL_FRAC) as f64;
        for g in groups {
            for &a in &g.atoms() {
                let i = a as usize;
                let w = self.system.pbox.wrap(pos[i]);
                self.state
                    .set_position_frac(i, [w.x / e.x, w.y / e.y, w.z / e.z]);
                let v = self.system.pbox.min_image(pos[i], pos_ref[i]) * (1.0 / dt);
                self.state.velocities[i] = [
                    rne_f64(v.x * vs) as i64,
                    rne_f64(v.y * vs) as i64,
                    rne_f64(v.z * vs) as i64,
                ];
            }
        }
    }

    /// One r-RESPA outer cycle (`longrange_every` inner steps). The cycle is
    /// palindromic: half long impulse · (VV steps) · half long impulse, so a
    /// velocity negation at a cycle boundary reverses the trajectory exactly
    /// when constraints and the thermostat are off.
    pub fn run_cycle(&mut self) {
        self.pipeline.trace_mut().set_step(self.step);
        let t0 = self.pipeline.trace().now_ns();
        Self::kick(&mut self.state, &self.long, &self.kick_long_half);
        self.pipeline
            .trace_mut()
            .end_span(Phase::Integrate, RANK_MAIN, t0);
        let k = self.system.params.longrange_every.max(1);
        for _ in 0..k {
            self.inner_step();
        }
        self.pipeline.trace_mut().set_step(self.step);
        self.refresh_long();
        let t0 = self.pipeline.trace().now_ns();
        Self::kick(&mut self.state, &self.long, &self.kick_long_half);
        self.pipeline
            .trace_mut()
            .end_span(Phase::Integrate, RANK_MAIN, t0);

        if let ThermostatKind::Berendsen { target_k, tau_fs } = self.thermostat {
            let t = self.temperature_k();
            if t > 1e-9 {
                let dt = self.system.params.dt_fs * k as f64;
                let lambda = (1.0 + (dt / tau_fs) * (target_k / t - 1.0)).max(0.0).sqrt();
                for v in self.state.velocities.iter_mut() {
                    for c in v.iter_mut() {
                        *c = rne_f64(*c as f64 * lambda) as i64;
                    }
                }
            }
        }

        // Deferred migration: purely bookkeeping in this engine (the NT
        // enumeration re-derives homes each evaluation with the co-location
        // margin), but tracked to drive the performance model.
        let _ = self.migration.due(self.step);

        // Automatic checkpoint cadence: only ever at a cycle boundary,
        // where the palindromic cycle has closed and the raw state alone
        // determines the continuation bitwise.
        let cycle = self.step / k as u64;
        let due = self
            .ckpt
            .as_ref()
            .is_some_and(|c| c.every > 0 && cycle.is_multiple_of(c.every));
        if due {
            if let Err(e) = self.write_checkpoint() {
                // An automatic write failing must not kill the trajectory:
                // the simulation is still correct, only less recoverable.
                // Explicit write_checkpoint() calls surface the error.
                eprintln!(
                    "anton-ckpt: automatic checkpoint at step {} failed: {e}",
                    self.step
                );
            }
        }

        // Cycle observer: detached from `self` while it borrows the
        // simulation immutably, so observation can never write state.
        if let Some(mut slot) = self.observer.take() {
            if cycle.is_multiple_of(slot.every) {
                slot.obs.on_cycle(&*self);
            }
            self.observer = Some(slot);
        }
    }

    pub fn run_cycles(&mut self, n: usize) {
        for _ in 0..n {
            self.run_cycle();
        }
    }

    fn inner_step(&mut self) {
        self.pipeline.trace_mut().set_step(self.step);
        let t_step = self.pipeline.trace().now_ns();
        Self::kick(&mut self.state, &self.short, &self.kick_half);
        let pos_ref = self.state.decode_positions(&self.system.pbox);
        self.drift_all();
        self.apply_constraints(&pos_ref);
        self.update_virtual_sites();
        self.pipeline
            .trace_mut()
            .end_span(Phase::Integrate, RANK_MAIN, t_step);
        self.refresh_short();
        let t1 = self.pipeline.trace().now_ns();
        Self::kick(&mut self.state, &self.short, &self.kick_half);
        self.pipeline
            .trace_mut()
            .end_span(Phase::Integrate, RANK_MAIN, t1);
        self.pipeline
            .trace_mut()
            .end_span(Phase::Step, RANK_MAIN, t_step);
        self.step += 1;
    }

    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Completed outer RESPA cycles (`step / longrange_every`).
    pub fn cycle_count(&self) -> u64 {
        self.step / self.system.params.longrange_every.max(1) as u64
    }

    /// The short-range force class exactly as the integrator will kick with
    /// it: range-limited + bonded raw words, virtual-site spread applied.
    pub fn short_forces(&self) -> &RawForces {
        &self.short
    }

    /// The long-range force class (reciprocal + correction, virtual-site
    /// spread applied).
    pub fn long_forces(&self) -> &RawForces {
        &self.long
    }

    /// Mutable short-range force words. Exists for fault-injection tests
    /// (proving the verifier's force-consistency identity can fire); code
    /// that mutates these outside a test is corrupting the trajectory.
    pub fn short_forces_mut(&mut self) -> &mut RawForces {
        &mut self.short
    }

    /// Mutable long-range force words (fault injection; see
    /// [`Self::short_forces_mut`]).
    pub fn long_forces_mut(&mut self) -> &mut RawForces {
        &mut self.long
    }

    /// The installed cycle observer, if any (see
    /// [`SimulationBuilder::observe_every`]). Downcast through
    /// [`CycleObserver::as_any`] to recover the concrete type.
    pub fn observer(&self) -> Option<&dyn CycleObserver> {
        self.observer.as_ref().map(|s| &*s.obs)
    }

    pub fn observer_mut(&mut self) -> Option<&mut dyn CycleObserver> {
        self.observer.as_mut().map(|s| &mut *s.obs)
    }

    /// The config fingerprint stamped into every checkpoint this
    /// simulation writes (see `anton-ckpt` and DESIGN.md §12).
    pub fn config_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Capture the complete simulation state as an `anton-ckpt` snapshot:
    /// raw fixed-point positions/velocities, step counter, config
    /// fingerprint, exchange counters, and trace drop counts. Pure
    /// observation — the simulation is untouched.
    pub fn snapshot(&self) -> Snapshot {
        let (dropped_spans, dropped_counters) = match self.trace().buf() {
            Some(b) => (b.dropped_spans(), b.dropped_counters()),
            None => (0, 0),
        };
        // Match-cache reference epoch: the positions the displacement
        // monitor measures against. Restore rebuilds the cache at exactly
        // this epoch so the rebuild schedule continues bitwise.
        let mut match_ref = Vec::with_capacity(self.pipeline.match_ref_positions().len() * 12);
        for p in self.pipeline.match_ref_positions() {
            for k in 0..3 {
                match_ref.extend_from_slice(&p.0[k].raw().to_le_bytes());
            }
        }
        Snapshot {
            step: self.step,
            fingerprint: self.fingerprint,
            n_atoms: self.state.n_atoms() as u64,
            state: self.state.to_bytes().to_vec(),
            counters: self.pipeline.counters.to_words().to_vec(),
            trace_dropped: [dropped_spans, dropped_counters],
            match_ref,
        }
    }

    /// Restore a snapshot into this simulation: verify the fingerprint and
    /// atom counts, replace state and step counter, recompute forces, and
    /// carry the exchange counters and trace drop counts forward so the
    /// metered totals continue exactly as the interrupted run's would
    /// have. After a successful restore the continued trajectory is
    /// bitwise identical to the uninterrupted one.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), CkptError> {
        if snap.fingerprint != self.fingerprint {
            return Err(CkptError::FingerprintMismatch {
                stored: snap.fingerprint,
                expected: self.fingerprint,
            });
        }
        let state = FixedState::from_bytes(bytes::Bytes::from(snap.state.clone()))?;
        if state.n_atoms() as u64 != snap.n_atoms {
            return Err(CkptError::AtomCountMismatch {
                expected: snap.n_atoms,
                got: state.n_atoms() as u64,
            });
        }
        if state.n_atoms() != self.system.n_atoms() {
            return Err(CkptError::AtomCountMismatch {
                expected: self.system.n_atoms() as u64,
                got: state.n_atoms() as u64,
            });
        }
        self.state = state;
        self.step = snap.step;
        // Rebuild the persistent match cache at the snapshot's reference
        // epoch *before* the force refresh: the refresh then takes the same
        // rebuild-or-reuse decision the uninterrupted run took, so the
        // displacement monitor's schedule (and the forces it gates)
        // continues bitwise across the resume.
        if snap.match_ref.is_empty() {
            self.pipeline.invalidate_match_cache();
        } else {
            let n = self.state.n_atoms();
            if snap.match_ref.len() != n * 12 {
                return Err(CkptError::LengthMismatch {
                    what: "match-cache epoch section",
                    expected: (n * 12) as u64,
                    got: snap.match_ref.len() as u64,
                });
            }
            let ref_pos: Vec<FxVec3> = snap
                .match_ref
                .chunks_exact(12)
                .map(|c| {
                    FxVec3(core::array::from_fn(|k| {
                        Fx32(i32::from_le_bytes(c[k * 4..k * 4 + 4].try_into().unwrap()))
                    }))
                })
                .collect();
            self.pipeline.rebuild_match_cache_at(&self.system, &ref_pos);
        }
        self.refresh_all_forces();
        // Counters restore *after* the force refresh: the refresh meters
        // traffic the uninterrupted run would not have double-counted.
        self.pipeline.counters =
            ExchangeCounters::from_words(&snap.counters).ok_or(CkptError::LengthMismatch {
                what: "exchange-counter words",
                expected: ExchangeCounters::WORDS as u64,
                got: snap.counters.len() as u64,
            })?;
        self.pipeline
            .trace_mut()
            .set_dropped(snap.trace_dropped[0], snap.trace_dropped[1]);
        Ok(())
    }

    /// Write a checkpoint now (atomic temp-file+rename into the configured
    /// store, with rotation). Returns the encoded size in bytes. Requires
    /// a [`SimulationBuilder::checkpoint_dir`]; the automatic cadence of
    /// [`SimulationBuilder::checkpoint_every`] calls this at cycle
    /// boundaries. The write is recorded as a [`Phase::Checkpoint`] trace
    /// span plus a `ckpt_write` counter carrying the byte count.
    pub fn write_checkpoint(&mut self) -> Result<u64, CkptError> {
        let t0 = self.pipeline.trace().now_ns();
        let snap = self.snapshot();
        let bytes = {
            let sink = self.ckpt.as_mut().ok_or(CkptError::NotConfigured)?;
            let receipt = sink.store.write(&snap)?;
            sink.files_written += 1;
            sink.bytes_written += receipt.bytes;
            receipt.bytes
        };
        self.pipeline
            .trace_mut()
            .end_span(Phase::Checkpoint, RANK_MAIN, t0);
        self.pipeline
            .trace_mut()
            .counter("ckpt_write", Phase::Checkpoint, 1, bytes, 0.0);
        Ok(bytes)
    }

    /// `(files_written, bytes_written)` by this simulation's checkpoint
    /// store, or `None` when checkpointing is not configured.
    pub fn checkpoint_stats(&self) -> Option<(u64, u64)> {
        self.ckpt
            .as_ref()
            .map(|c| (c.files_written, c.bytes_written))
    }

    /// The configured checkpoint directory, if any.
    pub fn checkpoint_dir(&self) -> Option<&Path> {
        self.ckpt.as_ref().map(|c| c.store.dir())
    }

    /// The decomposition this simulation was built with (a construction-time
    /// property of its force pipeline).
    pub fn decomposition(&self) -> Decomposition {
        self.pipeline.decomposition()
    }

    /// The trace sink ([`TraceSink::Off`] unless built with
    /// [`SimulationBuilder::tracing`]).
    pub fn trace(&self) -> &TraceSink {
        self.pipeline.trace()
    }

    pub fn trace_mut(&mut self) -> &mut TraceSink {
        self.pipeline.trace_mut()
    }

    /// Recompute both force classes from the current state — required after
    /// replacing `state` externally (e.g. restoring a checkpoint).
    pub fn refresh_all_forces(&mut self) {
        self.update_virtual_sites();
        self.refresh_short();
        self.refresh_long();
    }

    /// Negate all velocities (the reversibility experiment of §4). Only
    /// meaningful at cycle boundaries.
    pub fn negate_velocities(&mut self) {
        self.state.negate_velocities();
    }

    pub fn kinetic_energy(&self) -> f64 {
        let v: Vec<Vec3> = (0..self.state.n_atoms())
            .map(|i| self.state.velocity_f64(i))
            .collect();
        anton_systems::velocities::kinetic_energy(&self.system.topology, &v)
    }

    pub fn temperature_k(&self) -> f64 {
        let v: Vec<Vec3> = (0..self.state.n_atoms())
            .map(|i| self.state.velocity_f64(i))
            .collect();
        anton_systems::velocities::temperature(&self.system.topology, &v)
    }

    pub fn potential_energy(&self) -> f64 {
        self.short.potential() + self.long.potential()
    }

    pub fn total_energy(&self) -> f64 {
        self.potential_energy() + self.kinetic_energy()
    }

    /// Raw forces (short + long), for force-error measurements.
    pub fn total_force_f64(&self, i: usize) -> Vec3 {
        self.short.force_f64(i) + self.long.force_f64(i)
    }

    /// Instantaneous pairwise-virial pressure estimate (bar):
    /// `P V = N_dof kB T / 3 · ... ` — specifically
    /// `P = (2·KE + W) / (3V)` with `W = Σ r⃗·F⃗` from the range-limited and
    /// correction pairs (mesh virial omitted; the paper's evaluations are
    /// constant-volume). The virial is kept in the wide fixed-point
    /// accumulators of paper Figure 4c, so this quantity is deterministic
    /// and parallel invariant like the forces.
    pub fn pressure_bar(&self) -> f64 {
        const KCAL_PER_MOL_A3_TO_BAR: f64 = 69_476.95;
        let w = self.short.virial_f64() + self.long.virial_f64();
        let v = self.system.pbox.volume();
        (2.0 * self.kinetic_energy() + w) / (3.0 * v) * KCAL_PER_MOL_A3_TO_BAR
    }

    /// The decoded positions (Å).
    pub fn positions_f64(&self) -> Vec<Vec3> {
        self.state.decode_positions(&self.system.pbox)
    }
}

/// SHAKE over decoded positions (shared logic; lives here to avoid a
/// dependency cycle with `anton-refmd`).
fn anton_refmd_shake(sys: &System, pos_ref: &[Vec3], pos: &mut [Vec3]) {
    let groups = &sys.topology.constraint_groups;
    let mass = &sys.topology.mass;
    for _ in 0..200 {
        let mut converged = true;
        for g in groups {
            for &(i, j, d0) in &g.pairs {
                let (i, j) = (i as usize, j as usize);
                let d = sys.pbox.min_image(pos[i], pos[j]);
                let r2 = d.norm2();
                let diff = r2 - d0 * d0;
                if diff.abs() > 2e-10 * d0 * d0 {
                    converged = false;
                    let d_ref = sys.pbox.min_image(pos_ref[i], pos_ref[j]);
                    let (wi, wj) = (1.0 / mass[i], 1.0 / mass[j]);
                    let denom = 2.0 * (wi + wj) * d_ref.dot(d);
                    if denom.abs() < 1e-12 {
                        continue;
                    }
                    let gamma = diff / denom;
                    pos[i] -= d_ref * (gamma * wi);
                    pos[j] += d_ref * (gamma * wj);
                }
            }
        }
        if converged {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_forcefield::water::TIP3P;
    use anton_geometry::PeriodicBox;
    use anton_systems::spec::RunParams;
    use anton_systems::waterbox::pure_water_topology;

    fn water_system(n: usize, seed: u64) -> System {
        let pbox = PeriodicBox::cubic(18.0);
        let (top, positions) = pure_water_topology(&pbox, &TIP3P, n, seed);
        System {
            name: "w".into(),
            pbox,
            topology: top,
            positions,
            params: RunParams::paper(7.5, 16),
        }
    }

    /// An unconstrained LJ + charge fluid for reversibility experiments
    /// (paper §4: exact reversibility "when run without constraints,
    /// temperature control or pressure control").
    fn argon_salt_system(seed: u64) -> System {
        use anton_forcefield::{LjTable, Topology};
        use rand::{Rng, SeedableRng};
        let pbox = PeriodicBox::cubic(16.0);
        let n = 108;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        // Jittered lattice to avoid overlaps.
        let per_axis = 5;
        let mut positions = Vec::new();
        'outer: for z in 0..per_axis {
            for y in 0..per_axis {
                for x in 0..per_axis {
                    if positions.len() >= n {
                        break 'outer;
                    }
                    positions.push(Vec3::new(
                        (x as f64 + 0.5) * 3.2 + (rng.gen::<f64>() - 0.5) * 0.4,
                        (y as f64 + 0.5) * 3.2 + (rng.gen::<f64>() - 0.5) * 0.4,
                        (z as f64 + 0.5) * 3.2 + (rng.gen::<f64>() - 0.5) * 0.4,
                    ));
                }
            }
        }
        let top = Topology {
            mass: vec![39.9; n],
            charge: (0..n)
                .map(|i| if i % 2 == 0 { 0.2 } else { -0.2 })
                .collect(),
            lj_type: vec![0; n],
            lj_table: LjTable::from_types(&[(3.4, 0.24)]),
            molecule_starts: (0..=n as u32).collect(),
            ..Default::default()
        };
        System {
            name: "argon-salt".into(),
            pbox,
            topology: top,
            positions,
            params: RunParams::paper(7.0, 16),
        }
    }

    /// Paper §4 "Determinism": bitwise identical repeated runs.
    #[test]
    fn trajectories_are_bitwise_deterministic() {
        let mk = || {
            let sys = water_system(80, 3);
            AntonSimulation::builder(sys)
                .velocities_from_temperature(300.0, 7)
                .build()
        };
        let mut a = mk();
        let mut b = mk();
        a.run_cycles(5);
        b.run_cycles(5);
        assert_eq!(a.state, b.state);
    }

    /// Paper §4 "Parallel invariance": identical trajectories on any node
    /// count (the paper verified 128-node vs 512-node bitwise identity over
    /// 2.7 billion steps; we verify several decompositions over a shorter
    /// window).
    #[test]
    fn trajectories_are_bitwise_invariant_across_node_counts() {
        let run = |decomposition| {
            let sys = water_system(80, 5);
            let mut sim = AntonSimulation::builder(sys)
                .velocities_from_temperature(300.0, 9)
                .decomposition(decomposition)
                .build();
            sim.run_cycles(4);
            sim.state
        };
        let reference = run(Decomposition::SingleRank);
        for nodes in [2usize, 8, 64] {
            assert_eq!(
                run(Decomposition::Nodes(nodes)),
                reference,
                "trajectory diverged on {nodes} nodes"
            );
        }
    }

    /// The same invariance across *worker thread* counts: the per-rank
    /// fan-out writes private accumulators merged in fixed rank order, so
    /// the pool size can only change scheduling, never a bit of the state.
    #[test]
    fn trajectories_are_bitwise_invariant_across_thread_counts() {
        let run = |threads| {
            let sys = water_system(80, 5);
            let mut sim = AntonSimulation::builder(sys)
                .velocities_from_temperature(300.0, 9)
                .decomposition(Decomposition::Nodes(8))
                .threads(threads)
                .build();
            sim.run_cycles(4);
            sim.state
        };
        let reference = run(1);
        for threads in [2usize, 4] {
            assert_eq!(
                run(threads),
                reference,
                "trajectory diverged on {threads} worker threads"
            );
        }
    }

    /// Paper §4 "Exact reversibility": negate velocities, run the same
    /// number of cycles, recover the initial state bit-for-bit (the paper
    /// did 400 million steps each way on BPTI-scale hardware).
    #[test]
    fn trajectory_is_exactly_reversible() {
        let sys = argon_salt_system(11);
        let mut sim = AntonSimulation::builder(sys)
            .velocities_from_temperature(120.0, 13)
            .build();
        let x0 = sim.state.clone();
        let cycles = 25;
        sim.run_cycles(cycles);
        assert_ne!(sim.state, x0, "system did not move");
        sim.negate_velocities();
        sim.run_cycles(cycles);
        sim.negate_velocities();
        assert_eq!(
            sim.state, x0,
            "reversed trajectory failed to recover the initial state"
        );
    }

    #[test]
    fn nve_energy_is_stable() {
        let sys = argon_salt_system(17);
        let mut sim = AntonSimulation::builder(sys)
            .velocities_from_temperature(120.0, 19)
            .build();
        let e0 = sim.total_energy();
        sim.run_cycles(100);
        let e1 = sim.total_energy();
        let per_dof = (e1 - e0).abs() / sim.system.topology.degrees_of_freedom() as f64;
        assert!(
            per_dof < 0.02,
            "energy moved {per_dof} kcal/mol/DoF over 500 fs"
        );
    }

    #[test]
    fn constraints_hold_in_fixed_point() {
        let sys = water_system(60, 21);
        let mut sim = AntonSimulation::builder(sys)
            .velocities_from_temperature(300.0, 23)
            .build();
        sim.run_cycles(10);
        let pos = sim.positions_f64();
        for g in &sim.system.topology.constraint_groups {
            for &(i, j, d0) in &g.pairs {
                let d = sim
                    .system
                    .pbox
                    .min_image(pos[i as usize], pos[j as usize])
                    .norm();
                // Constraint satisfied to the position-grid resolution.
                assert!((d - d0).abs() < 5e-4, "constraint ({i},{j}) at {d} vs {d0}");
            }
        }
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "anton-engine-ckpt-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Kill-and-resume is bitwise equal to the uninterrupted run, and the
    /// restored bookkeeping (step counter, exchange counters) continues
    /// exactly where the interrupted run left off.
    #[test]
    fn interrupted_and_resumed_run_is_bitwise_identical() {
        let dir = ckpt_dir("resume");
        let build = || {
            AntonSimulation::builder(water_system(80, 3))
                .velocities_from_temperature(300.0, 7)
                .decomposition(Decomposition::Nodes(8))
                .threads(2)
        };
        let mut golden = build().build();
        golden.run_cycles(5);

        {
            let mut sim = build().checkpoint_every(1).checkpoint_dir(&dir).build();
            sim.run_cycles(3);
            assert_eq!(
                sim.checkpoint_stats(),
                Some((3, sim.checkpoint_stats().unwrap().1))
            );
            // The "crash": sim dropped here without any shutdown path.
        }
        let mut resumed = build().resume_from(&dir).expect("resume");
        assert_eq!(
            resumed.step_count(),
            3 * resumed.system.params.longrange_every.max(1) as u64
        );
        // The checkpoint must land *inside* a cache-reuse window for this
        // test to exercise the serialized ref epoch: the restored match
        // reference has to be the older rebuild-time positions, not the
        // positions at the checkpointed step. If the schedule ever shifts
        // so the checkpoint coincides with a rebuild step, this assert
        // flags the test as vacuous rather than silently passing.
        assert!(
            resumed
                .pipeline
                .match_ref_positions()
                .iter()
                .zip(&resumed.state.positions)
                .any(|(r, p)| r != p),
            "checkpoint landed on a rebuild step; move it to cross a reuse window"
        );
        resumed.run_cycles(2);
        assert_eq!(resumed.state, golden.state, "resumed trajectory diverged");
        assert_eq!(
            resumed.pipeline.counters.to_words(),
            golden.pipeline.counters.to_words(),
            "restored exchange counters diverged from the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Resume refuses a mismatched node/thread/config fingerprint with a
    /// typed error, before touching any state.
    #[test]
    fn resume_refuses_mismatched_configuration() {
        let dir = ckpt_dir("refuse");
        {
            let mut sim = AntonSimulation::builder(water_system(80, 3))
                .velocities_from_temperature(300.0, 7)
                .decomposition(Decomposition::Nodes(8))
                .threads(2)
                .checkpoint_every(1)
                .checkpoint_dir(&dir)
                .build();
            sim.run_cycles(1);
        }
        // Different node decomposition.
        let err = AntonSimulation::builder(water_system(80, 3))
            .velocities_from_temperature(300.0, 7)
            .decomposition(Decomposition::Nodes(64))
            .threads(2)
            .resume_from(&dir)
            .err()
            .expect("resume under a different decomposition must fail");
        assert!(matches!(
            err,
            anton_ckpt::CkptError::FingerprintMismatch { .. }
        ));
        // Different thread count.
        let err = AntonSimulation::builder(water_system(80, 3))
            .velocities_from_temperature(300.0, 7)
            .decomposition(Decomposition::Nodes(8))
            .threads(4)
            .resume_from(&dir)
            .err()
            .expect("resume under a different thread count must fail");
        assert!(matches!(
            err,
            anton_ckpt::CkptError::FingerprintMismatch { .. }
        ));
        // Different system (atom count).
        let err = AntonSimulation::builder(water_system(60, 3))
            .velocities_from_temperature(300.0, 7)
            .decomposition(Decomposition::Nodes(8))
            .threads(2)
            .resume_from(&dir)
            .err()
            .expect("resume into a different system must fail");
        assert!(matches!(
            err,
            anton_ckpt::CkptError::FingerprintMismatch { .. }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The rotated store keeps only the last K checkpoints, and resume
    /// picks the newest.
    #[test]
    fn automatic_cadence_rotates_and_resumes_from_newest() {
        let dir = ckpt_dir("rotate");
        let k;
        {
            let mut sim = AntonSimulation::builder(water_system(60, 5))
                .velocities_from_temperature(300.0, 9)
                .checkpoint_every(1)
                .checkpoint_dir(&dir)
                .checkpoint_keep(2)
                .build();
            k = sim.system.params.longrange_every.max(1) as u64;
            sim.run_cycles(4);
            assert_eq!(sim.checkpoint_stats().map(|(files, _)| files), Some(4));
        }
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".ant"))
            .collect();
        assert_eq!(names.len(), 2, "rotation kept {names:?}");
        let resumed = AntonSimulation::builder(water_system(60, 5))
            .velocities_from_temperature(300.0, 9)
            .resume_from(&dir)
            .expect("resume");
        assert_eq!(resumed.step_count(), 4 * k);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_checkpoint_without_a_store_is_a_typed_error() {
        let mut sim = AntonSimulation::builder(water_system(60, 5))
            .velocities_from_temperature(300.0, 9)
            .build();
        let err = sim.write_checkpoint().expect_err("no store configured");
        assert!(matches!(err, anton_ckpt::CkptError::NotConfigured));
    }

    #[test]
    fn berendsen_controls_temperature() {
        let sys = water_system(60, 25);
        let mut sim = AntonSimulation::builder(sys)
            .velocities_from_temperature(250.0, 27)
            .thermostat(ThermostatKind::Berendsen {
                target_k: 300.0,
                tau_fs: 25.0,
            })
            .build();
        for _ in 0..120 {
            sim.run_cycle();
        }
        let t = sim.temperature_k();
        assert!((t - 300.0).abs() < 60.0, "temperature {t}");
    }
}
