//! Extract performance-model workload statistics from a built system.

use anton_machine::SystemStats;
use anton_systems::System;

/// Count the workload statistics the performance model needs: correction
/// pairs, bonded terms, constraint pairs, and the solute atom count (atoms
/// belonging to molecules that carry bonded terms — water molecules are
/// rigid and term-free).
pub fn system_stats(sys: &System) -> SystemStats {
    let top = &sys.topology;
    let e = sys.pbox.edge();

    // Mark molecules containing at least one bonded term as solute.
    let mol_of = |atom: u32| -> usize {
        match top.molecule_starts.binary_search(&atom) {
            Ok(k) => k,
            Err(k) => k - 1,
        }
    };
    let n_mols = top.molecule_starts.len() - 1;
    let mut is_solute = vec![false; n_mols];
    for b in &top.bonds {
        is_solute[mol_of(b.i)] = true;
    }
    let protein_atoms: usize = (0..n_mols)
        .filter(|&m| is_solute[m])
        .map(|m| (top.molecule_starts[m + 1] - top.molecule_starts[m]) as usize)
        .sum();

    SystemStats {
        n_atoms: sys.n_atoms(),
        box_edge: [e.x, e.y, e.z],
        cutoff: sys.params.cutoff,
        spread_cutoff: sys.params.spread_cutoff,
        mesh: sys.params.mesh,
        dt_fs: sys.params.dt_fs,
        longrange_every: sys.params.longrange_every,
        n_correction_pairs: top.exclusions.correction_workload(),
        n_bonded_terms: top.bonds.len() + top.angles.len() + top.dihedrals.len(),
        protein_atoms,
        n_constraint_pairs: top.n_constraints(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_systems::{table4_system, TABLE4};

    #[test]
    fn gpw_stats_are_coherent() {
        let sys = table4_system(&TABLE4[0], 1);
        let s = system_stats(&sys);
        assert_eq!(s.n_atoms, 9865);
        assert!((s.density() - 0.0963).abs() < 0.003);
        // Solute atoms: 118 residues × 8 + tail.
        assert!(
            s.protein_atoms >= 944 && s.protein_atoms < 1000,
            "{}",
            s.protein_atoms
        );
        // Water: 3 constraint pairs per molecule, protein: 3 per residue.
        assert!(s.n_constraint_pairs > 8000);
        assert!(s.n_bonded_terms > 1000);
        assert!(
            s.n_correction_pairs > s.n_atoms,
            "corrections {}",
            s.n_correction_pairs
        );
    }

    #[test]
    fn water_only_has_no_solute() {
        let sys = anton_systems::table4_water_only(&TABLE4[0], 2);
        let s = system_stats(&sys);
        assert_eq!(s.protein_atoms, 0);
        assert_eq!(s.n_bonded_terms, 0);
    }
}
