//! `anton-core`: the Anton molecular-dynamics engine.
//!
//! This is the paper's primary contribution rendered in software: an MD
//! engine whose entire force and integration pipeline runs in (or is
//! quantized to) Anton's fixed-point number formats, with forces produced by
//! the PPIP function-table models of `anton-machine`, long-range
//! electrostatics through the deterministic fixed-point Gaussian Split Ewald
//! pipeline of `anton-ewald`, and work distributed (optionally) over a
//! simulated node grid using the NT method of `anton-nt`.
//!
//! The headline numerical properties of paper §4 hold by construction and
//! are enforced by this crate's tests:
//!
//! * **Determinism** — repeated runs are bitwise identical.
//! * **Parallel invariance** — enumerating the force work per simulated
//!   node (any power-of-two count) changes only the order of wrapping
//!   integer additions, which is immaterial; trajectories are bitwise
//!   identical on 1, 2, 8, 64, … nodes. The rank fan-out ([`ranks`],
//!   [`pool`]) extends the same guarantee to host worker threads: each rank
//!   fills a private accumulator and the buffers merge in fixed rank order,
//!   so 1, 2, or 4 threads (`ANTON_THREADS` or
//!   [`SimulationBuilder::threads`]) produce identical bits.
//! * **Exact reversibility** — without constraints or temperature control,
//!   negating all velocities and re-running recovers the initial state
//!   bit-for-bit (fixed-point velocity Verlet with round-to-nearest/even,
//!   which is odd-symmetric).
//!
//! Quick start:
//!
//! ```no_run
//! use anton_core::{AntonSimulation, Decomposition};
//! use anton_systems::{table4_system, TABLE4};
//!
//! let system = table4_system(&TABLE4[0], 1);           // gpW, 9,865 atoms
//! let mut sim = AntonSimulation::builder(system)
//!     .velocities_from_temperature(300.0, 42)
//!     .decomposition(Decomposition::SingleRank)
//!     .build();
//! sim.run_cycles(10);
//! println!("E_total = {} kcal/mol", sim.total_energy());
//! ```

pub mod batch;
pub mod engine;
pub mod forces;
pub mod pool;
pub mod ranks;
pub mod state;
pub mod stats;

pub use anton_ckpt::{CheckpointStore, CkptError, Snapshot};
pub use anton_trace::{Phase as TracePhase, TraceSink};
pub use batch::{BatchCensus, BatchMeta, BatchQueue, CellTiling};
pub use engine::{AntonSimulation, CycleObserver, SimulationBuilder, ThermostatKind};
pub use forces::{Decomposition, ForcePipeline, RawForces};
pub use pool::{threads_from_env, DetPool};
pub use ranks::{Rank, RankSet};
pub use state::FixedState;
pub use stats::system_stats;
