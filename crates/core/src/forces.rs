//! The deterministic fixed-point force pipeline.
//!
//! Every contribution — range-limited pair (through the PPIP table models),
//! bonded term, correction pair, and mesh force — is a pure function of
//! fixed-point positions, quantized to Q24 raw force components *before*
//! accumulation. Accumulation is two's-complement wrapping addition, which
//! is associative and commutative, so the decomposition (single rank or any
//! simulated node grid) can only permute additions and never changes a bit
//! of the result. This is the software realization of paper §4.

use crate::state::{FixedState, ENERGY_FRAC, FORCE_FRAC};
use anton_ewald::direct::DirectKernel;
use anton_ewald::gse::{GseFixed, GseParams};
use anton_ewald::Mesh;
use anton_fixpoint::rounding::rne_f64;
use anton_fixpoint::Q20;
use anton_forcefield::bonded;
use anton_forcefield::ExclusionPolicy;
use anton_geometry::{CellGrid, IVec3, Vec3};
use anton_machine::Ppip;
use anton_nt::assign::{NodeGrid, NtAssignment};
use anton_nt::migration::assign_homes;
use anton_systems::System;

/// How force work is enumerated (never affects results, bitwise).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decomposition {
    /// One rank enumerates all pairs via a cell grid.
    SingleRank,
    /// A simulated Anton machine with this many nodes (power of two):
    /// work is enumerated per node with the NT method, constraint groups
    /// co-located on their leader's home node.
    Nodes(usize),
}

/// Raw fixed-point force/energy accumulators.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawForces {
    /// Q24 force raw values per atom.
    pub f: Vec<[i64; 3]>,
    /// Q32 energy raws.
    pub e_range_limited: i64,
    pub e_bonded: i64,
    pub e_correction: i64,
    pub e_reciprocal: i64,
    /// Pairwise virial Σ r⃗·F⃗ over range-limited + correction pairs, kept in
    /// a wide accumulator like the ASIC's 86-bit units (paper Figure 4c):
    /// wide enough that pressure-controlled accounting stays deterministic
    /// and parallel invariant. Q32, kcal/mol.
    pub virial: anton_fixpoint::Wide<32>,
}

impl RawForces {
    pub fn zeroed(n: usize) -> RawForces {
        RawForces {
            f: vec![[0i64; 3]; n],
            e_range_limited: 0,
            e_bonded: 0,
            e_correction: 0,
            e_reciprocal: 0,
            virial: anton_fixpoint::Wide::ZERO,
        }
    }

    pub fn clear(&mut self) {
        for f in self.f.iter_mut() {
            *f = [0; 3];
        }
        self.e_range_limited = 0;
        self.e_bonded = 0;
        self.e_correction = 0;
        self.e_reciprocal = 0;
        self.virial = anton_fixpoint::Wide::ZERO;
    }

    /// The accumulated pairwise virial (kcal/mol).
    pub fn virial_f64(&self) -> f64 {
        self.virial.to_f64()
    }

    /// Potential energy (kcal/mol).
    pub fn potential(&self) -> f64 {
        let s = 1.0 / (1u64 << ENERGY_FRAC) as f64;
        (self
            .e_range_limited
            .wrapping_add(self.e_bonded)
            .wrapping_add(self.e_correction)) as f64
            * s
            + self.e_reciprocal as f64 * s
    }

    pub fn force_f64(&self, i: usize) -> Vec3 {
        let s = 1.0 / (1i64 << FORCE_FRAC) as f64;
        Vec3::new(
            self.f[i][0] as f64 * s,
            self.f[i][1] as f64 * s,
            self.f[i][2] as f64 * s,
        )
    }
}

/// The pipeline bound to one system.
pub struct ForcePipeline {
    pub ppip: Ppip,
    pub gse: GseFixed,
    pub beta: f64,
    corr_kernel: DirectKernel,
    pub rc2_q20: i64,
    pub half_edge_q20: [Q20; 3],
    policy: ExclusionPolicy,
    /// Import-region margin (Å) covering constraint-group co-location and
    /// deferred migration (§3.2.4).
    pub import_margin: f64,
}

impl ForcePipeline {
    pub fn new(sys: &System) -> ForcePipeline {
        let beta = sys.params.ewald_beta();
        let e = sys.pbox.edge();
        let gse_params = GseParams::auto(sys.params.cutoff, sys.params.spread_cutoff);
        ForcePipeline {
            ppip: Ppip::build(beta, sys.params.cutoff),
            gse: GseFixed::new(Mesh::new(sys.params.mesh, sys.pbox), gse_params),
            beta,
            corr_kernel: DirectKernel::reference(beta, sys.params.cutoff),
            rc2_q20: Q20::from_f64(sys.params.cutoff * sys.params.cutoff).raw(),
            half_edge_q20: [
                Q20::from_f64(e.x / 2.0),
                Q20::from_f64(e.y / 2.0),
                Q20::from_f64(e.z / 2.0),
            ],
            policy: sys
                .topology
                .exclusions
                .policy
                .unwrap_or(ExclusionPolicy::amber_like()),
            import_margin: 8.0,
        }
    }

    /// One range-limited pair: fixed-point r², exact integer cutoff test,
    /// PPIP tables, quantized force. Returns the Q24 force on atom `i`
    /// (negate for `j`) and the Q32 pair energy. Orientation-free: calling
    /// with (j, i) yields the exact negation.
    #[inline]
    fn pair_contribution(
        &self,
        sys: &System,
        state: &FixedState,
        i: usize,
        j: usize,
    ) -> Option<([i64; 3], i64)> {
        let top = &sys.topology;
        let (iu, ju) = (i as u32, j as u32);
        if top.exclusions.is_excluded(iu, ju) {
            return None;
        }
        let d = state.delta_q20(self.half_edge_q20, i, j);
        // Exact r² in Q20 with a single rounding (component order free).
        let sum: i128 =
            d[0] as i128 * d[0] as i128 + d[1] as i128 * d[1] as i128 + d[2] as i128 * d[2] as i128;
        let r2 = anton_fixpoint::rne_shr_i128(sum, 20);
        if r2 > self.rc2_q20 || r2 == 0 {
            return None;
        }
        let (se, sl) = if top.exclusions.is_14(iu, ju) {
            (self.policy.elec_14, self.policy.lj_14)
        } else {
            (1.0, 1.0)
        };
        let qq = top.charge[i] * top.charge[j] * se;
        let (a, b) = top.lj_table.coeffs(top.lj_type[i], top.lj_type[j]);
        let (f_over_r, e) = self.ppip.pair(r2, qq, a * sl, b * sl);
        let ds = 1.0 / (1i64 << 20) as f64;
        let fs = (1i64 << FORCE_FRAC) as f64;
        let fi = [
            rne_f64(d[0] as f64 * ds * f_over_r * fs) as i64,
            rne_f64(d[1] as f64 * ds * f_over_r * fs) as i64,
            rne_f64(d[2] as f64 * ds * f_over_r * fs) as i64,
        ];
        let eq = rne_f64(e * (1u64 << ENERGY_FRAC) as f64) as i64;
        Some((fi, eq))
    }

    /// Range-limited forces under the chosen decomposition.
    pub fn range_limited(
        &self,
        sys: &System,
        state: &FixedState,
        decomposition: Decomposition,
        out: &mut RawForces,
    ) {
        match decomposition {
            Decomposition::SingleRank => self.range_limited_cellgrid(sys, state, out),
            Decomposition::Nodes(n) => self.range_limited_nt(sys, state, n, out),
        }
    }

    fn apply_pair(
        &self,
        sys: &System,
        state: &FixedState,
        i: usize,
        j: usize,
        out: &mut RawForces,
    ) {
        if let Some((fi, eq)) = self.pair_contribution(sys, state, i, j) {
            let d = state.delta_q20(self.half_edge_q20, i, j);
            for k in 0..3 {
                out.f[i][k] = out.f[i][k].wrapping_add(fi[k]);
                out.f[j][k] = out.f[j][k].wrapping_sub(fi[k]);
                // r·F into the wide virial accumulator (exact products,
                // order-free accumulation).
                out.virial = out.virial.accumulate(
                    anton_fixpoint::Q::<20>::from_raw(d[k]),
                    anton_fixpoint::Q::<24>::from_raw(fi[k]),
                );
            }
            out.e_range_limited = out.e_range_limited.wrapping_add(eq);
        }
    }

    fn range_limited_cellgrid(&self, sys: &System, state: &FixedState, out: &mut RawForces) {
        let pos = state.decode_positions(&sys.pbox);
        // Slack over the cutoff: the decode and the fixed r² agree to
        // ~1e-4 Å, so candidates are a strict superset of the exact set.
        let grid = CellGrid::build(&sys.pbox, &pos, sys.params.cutoff + 0.2);
        grid.for_each_pair_within(&pos, sys.params.cutoff + 0.2, |i, j, _d, _r2| {
            self.apply_pair(sys, state, i, j, out);
        });
    }

    /// NT-method enumeration over a simulated node grid: atoms live on the
    /// home node of their constraint-group leader; each node enumerates its
    /// tower × plate candidates and keeps the pairs the NT assignment maps
    /// to it. The exact fixed-point cutoff filter makes the interaction set
    /// identical to the single-rank path; wrapping accumulation makes the
    /// *forces* identical bitwise.
    fn range_limited_nt(
        &self,
        sys: &System,
        state: &FixedState,
        nodes: usize,
        out: &mut RawForces,
    ) {
        let dims = anton_machine::config::near_cubic_torus(nodes);
        let grid = NodeGrid::new(dims[0] as i32, dims[1] as i32, dims[2] as i32);
        let e = sys.pbox.edge();
        let box_edges = [
            e.x / dims[0] as f64,
            e.y / dims[1] as f64,
            e.z / dims[2] as f64,
        ];
        let nt = NtAssignment::for_cutoff(grid, sys.params.cutoff + self.import_margin, box_edges);

        // Home assignment with constraint groups co-located (§3.2.4).
        let fracs: Vec<[f64; 3]> = state.positions.iter().map(|p| p.to_unit_frac()).collect();
        let groups: Vec<Vec<u32>> = sys
            .topology
            .constraint_groups
            .iter()
            .map(|g| g.atoms())
            .collect();
        let homes = assign_homes(&grid, &fracs, &groups);

        let mut atoms_in: Vec<Vec<u32>> = vec![Vec::new(); grid.node_count()];
        for (i, b) in homes.iter().enumerate() {
            atoms_in[grid.index(*b)].push(i as u32);
        }

        for node_idx in 0..grid.node_count() {
            let node = grid.coord(node_idx);
            let tower = nt.tower_boxes(node);
            let plate = nt.plate_boxes(node);
            for tb in &tower {
                for pb in &plate {
                    let same_box = tb == pb;
                    for &i in &atoms_in[grid.index(*tb)] {
                        for &j in &atoms_in[grid.index(*pb)] {
                            if i == j || (same_box && i > j) {
                                continue;
                            }
                            if nt.node_for_pair(homes[i as usize], homes[j as usize]) != node {
                                continue;
                            }
                            self.apply_pair(sys, state, i as usize, j as usize, out);
                        }
                    }
                }
            }
        }
        let _: IVec3 = grid.dims; // (document the grid orientation is torus-shaped)
    }

    /// Bonded terms: evaluated on the flexible subsystem in the paper; here
    /// each term's forces are computed from decoded positions and quantized
    /// per atom before accumulation (term order immaterial).
    pub fn bonded(&self, sys: &System, state: &FixedState, out: &mut RawForces) {
        let pos = state.decode_positions(&sys.pbox);
        let top = &sys.topology;
        let fs = (1i64 << FORCE_FRAC) as f64;
        let es = (1u64 << ENERGY_FRAC) as f64;
        let add = |out: &mut RawForces, idx: u32, f: Vec3| {
            let a = &mut out.f[idx as usize];
            a[0] = a[0].wrapping_add(rne_f64(f.x * fs) as i64);
            a[1] = a[1].wrapping_add(rne_f64(f.y * fs) as i64);
            a[2] = a[2].wrapping_add(rne_f64(f.z * fs) as i64);
        };
        for b in &top.bonds {
            let (u, fi, fj) = bonded::bond_term(&sys.pbox, &pos, b);
            add(out, b.i, fi);
            add(out, b.j, fj);
            out.e_bonded = out.e_bonded.wrapping_add(rne_f64(u * es) as i64);
        }
        for a in &top.angles {
            let (u, fi, fj, fk) = bonded::angle_term(&sys.pbox, &pos, a);
            add(out, a.i, fi);
            add(out, a.j, fj);
            add(out, a.k_atom, fk);
            out.e_bonded = out.e_bonded.wrapping_add(rne_f64(u * es) as i64);
        }
        for d in &top.dihedrals {
            let (u, fi, fj, fk, fl) = bonded::dihedral_term(&sys.pbox, &pos, d);
            add(out, d.i, fi);
            add(out, d.j, fj);
            add(out, d.k_atom, fk);
            add(out, d.l, fl);
            out.e_bonded = out.e_bonded.wrapping_add(rne_f64(u * es) as i64);
        }
    }

    /// Correction forces (excluded and 1-4 pairs): the correction pipeline
    /// of the flexible subsystem (§3.1).
    pub fn corrections(&self, sys: &System, state: &FixedState, out: &mut RawForces) {
        let top = &sys.topology;
        let ds = 1.0 / (1i64 << 20) as f64;
        let fs = (1i64 << FORCE_FRAC) as f64;
        let es = (1u64 << ENERGY_FRAC) as f64;
        let run = |out: &mut RawForces, pairs: &[(u32, u32)], scale: f64| {
            for &(i, j) in pairs {
                let qq = top.charge[i as usize] * top.charge[j as usize] * scale;
                if qq == 0.0 {
                    continue;
                }
                let d = state.delta_q20(self.half_edge_q20, i as usize, j as usize);
                let r2 = (d[0] as f64 * ds).powi(2)
                    + (d[1] as f64 * ds).powi(2)
                    + (d[2] as f64 * ds).powi(2);
                let (e, f_over_r) = self.corr_kernel.exclusion_correction(qq, r2);
                let a = &mut out.f[i as usize];
                let fi = [
                    rne_f64(d[0] as f64 * ds * f_over_r * fs) as i64,
                    rne_f64(d[1] as f64 * ds * f_over_r * fs) as i64,
                    rne_f64(d[2] as f64 * ds * f_over_r * fs) as i64,
                ];
                a[0] = a[0].wrapping_add(fi[0]);
                a[1] = a[1].wrapping_add(fi[1]);
                a[2] = a[2].wrapping_add(fi[2]);
                let b = &mut out.f[j as usize];
                b[0] = b[0].wrapping_sub(fi[0]);
                b[1] = b[1].wrapping_sub(fi[1]);
                b[2] = b[2].wrapping_sub(fi[2]);
                out.e_correction = out.e_correction.wrapping_add(rne_f64(e * es) as i64);
            }
        };
        run(out, top.exclusions.excluded_pairs(), 1.0);
        run(out, top.exclusions.pairs_14(), 1.0 - self.policy.elec_14);
    }

    /// Long-range (mesh) forces via the fixed-point GSE pipeline.
    pub fn reciprocal(&self, sys: &System, state: &FixedState, out: &mut RawForces) {
        let pos = state.decode_positions(&sys.pbox);
        let e = self
            .gse
            .compute_fixed(&pos, &sys.topology.charge, FORCE_FRAC, &mut out.f);
        out.e_reciprocal = out.e_reciprocal.wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_forcefield::water::TIP3P;
    use anton_geometry::PeriodicBox;
    use anton_systems::spec::RunParams;
    use anton_systems::waterbox::pure_water_topology;

    fn water_system(n: usize, seed: u64) -> System {
        let pbox = PeriodicBox::cubic(18.0);
        let (top, positions) = pure_water_topology(&pbox, &TIP3P, n, seed);
        System {
            name: "w".into(),
            pbox,
            topology: top,
            positions,
            params: RunParams::paper(7.5, 16),
        }
    }

    fn state_of(sys: &System) -> FixedState {
        FixedState::from_f64(&sys.pbox, &sys.positions, &vec![Vec3::ZERO; sys.n_atoms()])
    }

    /// The paper's parallel-invariance claim, at force granularity: the NT
    /// decomposition on several node counts produces bitwise identical raw
    /// forces to the single-rank cell-grid enumeration.
    #[test]
    fn forces_are_bitwise_invariant_across_decompositions() {
        let sys = water_system(140, 3);
        let state = state_of(&sys);
        let pipe = ForcePipeline::new(&sys);

        let mut reference = RawForces::zeroed(sys.n_atoms());
        pipe.range_limited(&sys, &state, Decomposition::SingleRank, &mut reference);

        for nodes in [1usize, 2, 8, 64] {
            let mut out = RawForces::zeroed(sys.n_atoms());
            pipe.range_limited(&sys, &state, Decomposition::Nodes(nodes), &mut out);
            assert_eq!(out, reference, "decomposition over {nodes} nodes diverged");
        }
    }

    #[test]
    fn forces_are_deterministic() {
        let sys = water_system(100, 5);
        let state = state_of(&sys);
        let pipe = ForcePipeline::new(&sys);
        let mut a = RawForces::zeroed(sys.n_atoms());
        let mut b = RawForces::zeroed(sys.n_atoms());
        for out in [&mut a, &mut b] {
            pipe.range_limited(&sys, &state, Decomposition::SingleRank, out);
            pipe.bonded(&sys, &state, out);
            pipe.corrections(&sys, &state, out);
            pipe.reciprocal(&sys, &state, out);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn range_limited_momentum_is_exactly_conserved() {
        // Pairwise quantized forces obey Newton's third law exactly, so the
        // raw force sum is exactly zero.
        let sys = water_system(120, 7);
        let state = state_of(&sys);
        let pipe = ForcePipeline::new(&sys);
        let mut out = RawForces::zeroed(sys.n_atoms());
        pipe.range_limited(&sys, &state, Decomposition::SingleRank, &mut out);
        pipe.corrections(&sys, &state, &mut out);
        let mut net = [0i64; 3];
        for f in &out.f {
            for k in 0..3 {
                net[k] = net[k].wrapping_add(f[k]);
            }
        }
        assert_eq!(net, [0, 0, 0]);
    }

    /// Table 4's "numerical force error": the fixed-point/table forces
    /// against the same parameters evaluated in f64, as a fraction of the
    /// rms force — should land near the paper's ~1e-5.
    #[test]
    fn numerical_force_error_in_paper_decade() {
        let sys = water_system(150, 9);
        let state = state_of(&sys);
        let pipe = ForcePipeline::new(&sys);
        let mut out = RawForces::zeroed(sys.n_atoms());
        pipe.range_limited(&sys, &state, Decomposition::SingleRank, &mut out);

        // f64 evaluation of the same interaction set with the same (exact)
        // kernels and same positions.
        let pos = state.decode_positions(&sys.pbox);
        let mut f64_forces = vec![Vec3::ZERO; sys.n_atoms()];
        let grid = CellGrid::build(&sys.pbox, &pos, sys.params.cutoff + 0.2);
        grid.for_each_pair_within(&pos, sys.params.cutoff + 0.2, |i, j, _d, _r2| {
            let top = &sys.topology;
            if top.exclusions.is_excluded(i as u32, j as u32) {
                return;
            }
            let d = state.delta_q20(pipe.half_edge_q20, i, j);
            let sum: i128 = d[0] as i128 * d[0] as i128
                + d[1] as i128 * d[1] as i128
                + d[2] as i128 * d[2] as i128;
            let r2q = anton_fixpoint::rne_shr_i128(sum, 20);
            if r2q > pipe.rc2_q20 || r2q == 0 {
                return;
            }
            let ds = 1.0 / (1i64 << 20) as f64;
            let r2 = (d[0] as f64 * ds).powi(2)
                + (d[1] as f64 * ds).powi(2)
                + (d[2] as f64 * ds).powi(2);
            let qq = top.charge[i] * top.charge[j];
            let (a, b) = top.lj_table.coeffs(top.lj_type[i], top.lj_type[j]);
            let (f_over_r, _e) = pipe.ppip.pair_exact(r2, qq, a, b);
            let dv = Vec3::new(d[0] as f64 * ds, d[1] as f64 * ds, d[2] as f64 * ds);
            f64_forces[i] += dv * f_over_r;
            f64_forces[j] -= dv * f_over_r;
        });

        let mut num = 0.0;
        let mut den = 0.0;
        for (i, ff) in f64_forces.iter().enumerate() {
            num += (out.force_f64(i) - *ff).norm2();
            den += ff.norm2();
        }
        let rel = (num / den).sqrt();
        assert!(rel < 1e-4, "numerical force error {rel:e}");
        assert!(rel > 1e-9, "suspiciously exact {rel:e}");
    }
}

#[cfg(test)]
mod virial_tests {
    use super::*;
    use anton_forcefield::{LjTable, Topology};
    use anton_geometry::PeriodicBox;
    use anton_systems::spec::RunParams;

    /// Two LJ atoms: the virial must equal r·F of the single pair.
    #[test]
    fn virial_of_single_pair_matches_r_dot_f() {
        let pbox = PeriodicBox::cubic(20.0);
        let top = Topology {
            mass: vec![39.9; 2],
            charge: vec![0.3, -0.3],
            lj_type: vec![0; 2],
            lj_table: LjTable::from_types(&[(3.4, 0.24)]),
            molecule_starts: vec![0, 1, 2],
            ..Default::default()
        };
        let positions = vec![Vec3::new(5.0, 5.0, 5.0), Vec3::new(8.6, 5.0, 5.0)];
        let sys = System {
            name: "pair".into(),
            pbox,
            topology: top,
            positions: positions.clone(),
            params: RunParams::paper(7.0, 16),
        };
        let state = FixedState::from_f64(&pbox, &positions, &[Vec3::ZERO; 2]);
        let pipe = ForcePipeline::new(&sys);
        let mut out = RawForces::zeroed(2);
        pipe.range_limited(&sys, &state, Decomposition::SingleRank, &mut out);
        let f0 = out.force_f64(0);
        // r (from 0 to ... sign convention: d = r_i − r_j with force on i
        // along d) → W = d·F_i counted once.
        let d = pbox.min_image(positions[0], positions[1]);
        let want = d.dot(f0);
        let got = out.virial_f64();
        assert!(
            (got - want).abs() < 1e-4 * want.abs().max(1.0),
            "{got} vs {want}"
        );
    }

    /// The virial inherits parallel invariance from its wide accumulator.
    #[test]
    fn virial_is_decomposition_invariant() {
        use anton_forcefield::water::TIP3P;
        use anton_systems::waterbox::pure_water_topology;
        let pbox = PeriodicBox::cubic(18.0);
        let (top, positions) = pure_water_topology(&pbox, &TIP3P, 100, 13);
        let sys = System {
            name: "w".into(),
            pbox,
            topology: top,
            positions,
            params: RunParams::paper(7.5, 16),
        };
        let state = FixedState::from_f64(&pbox, &sys.positions, &vec![Vec3::ZERO; sys.n_atoms()]);
        let pipe = ForcePipeline::new(&sys);
        let mut a = RawForces::zeroed(sys.n_atoms());
        pipe.range_limited(&sys, &state, Decomposition::SingleRank, &mut a);
        let mut b = RawForces::zeroed(sys.n_atoms());
        pipe.range_limited(&sys, &state, Decomposition::Nodes(8), &mut b);
        assert_eq!(a.virial, b.virial);
        assert_ne!(a.virial, anton_fixpoint::Wide::ZERO);
    }
}
