//! The deterministic fixed-point force pipeline.
//!
//! Every contribution — range-limited pair (through the PPIP table models),
//! bonded term, correction pair, and mesh force — is a pure function of
//! fixed-point positions, quantized to Q24 raw force components *before*
//! accumulation. Accumulation is two's-complement wrapping addition, which
//! is associative and commutative, so the decomposition (single rank or any
//! simulated node grid) can only permute additions and never changes a bit
//! of the result. This is the software realization of paper §4.
//!
//! Under a [`Decomposition::Nodes`] decomposition the pipeline executes as
//! a set of [`Rank`](crate::ranks::Rank)s: each rank computes its NT pairs,
//! statically assigned bonded terms, correction pairs, *and its share of
//! the GSE mesh phase* (charge spreading and force interpolation over its
//! home box's atoms, around a distributed-FFT trunk) into *private*
//! accumulators (driven by a pinned-size [`DetPool`]), and the rank buffers
//! are merged serially in fixed rank order. No atomics, no cross-thread
//! reductions — thread scheduling can only change when a rank buffer is
//! filled, never its contents, so trajectories are bitwise invariant across
//! node count *and* worker-thread count.

use crate::batch::{BatchQueue, CellTiling, MatchCache};
use crate::pool::DetPool;
use crate::ranks::RankSet;
use crate::state::{FixedState, ENERGY_FRAC, FORCE_FRAC};
use anton_ewald::direct::DirectKernel;
use anton_ewald::gse::{GseFixed, GseParams, GseScratch, MeshAtoms, SupportScratch};
use anton_ewald::Mesh;
use anton_fixpoint::rounding::rne_f64;
use anton_fixpoint::{FxVec3, Q20};
use anton_forcefield::bonded;
use anton_forcefield::ExclusionPolicy;
use anton_geometry::{Buckets, PosTiles, TileView, Vec3};
use anton_machine::perf::ExchangeCounters;
use anton_machine::{modeled_burst_us, MachineConfig, MeshExchange, Ppip, MATCH_WIDTH};
use anton_systems::System;
use anton_trace::{Lane, Phase, TraceSink, RANK_MAIN};

/// How force work is enumerated (never affects results, bitwise).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decomposition {
    /// One rank enumerates all pairs via a cell grid.
    SingleRank,
    /// A simulated Anton machine with this many nodes (power of two):
    /// work is enumerated per node with the NT method, constraint groups
    /// co-located on their leader's home node.
    Nodes(usize),
}

/// Raw fixed-point force/energy accumulators.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawForces {
    /// Q24 force raw values per atom.
    pub f: Vec<[i64; 3]>,
    /// Q32 energy raws.
    pub e_range_limited: i64,
    pub e_bonded: i64,
    pub e_correction: i64,
    pub e_reciprocal: i64,
    /// Pairwise virial Σ r⃗·F⃗ over range-limited + correction pairs, kept in
    /// a wide accumulator like the ASIC's 86-bit units (paper Figure 4c):
    /// wide enough that pressure-controlled accounting stays deterministic
    /// and parallel invariant. Q32, kcal/mol.
    pub virial: anton_fixpoint::Wide<32>,
}

impl RawForces {
    pub fn zeroed(n: usize) -> RawForces {
        RawForces {
            f: vec![[0i64; 3]; n],
            e_range_limited: 0,
            e_bonded: 0,
            e_correction: 0,
            e_reciprocal: 0,
            virial: anton_fixpoint::Wide::ZERO,
        }
    }

    pub fn clear(&mut self) {
        for f in self.f.iter_mut() {
            *f = [0; 3];
        }
        self.e_range_limited = 0;
        self.e_bonded = 0;
        self.e_correction = 0;
        self.e_reciprocal = 0;
        self.virial = anton_fixpoint::Wide::ZERO;
    }

    /// Fold another accumulator into this one with wrapping adds — the
    /// deterministic rank merge. Since every summand was quantized before
    /// accumulation and wrapping addition is associative and commutative,
    /// merging rank buffers in *any* fixed order reproduces the serial
    /// result bitwise; the pipeline always merges in rank-index order.
    pub fn merge_from(&mut self, other: &RawForces) {
        debug_assert_eq!(self.f.len(), other.f.len());
        for (a, b) in self.f.iter_mut().zip(&other.f) {
            a[0] = a[0].wrapping_add(b[0]);
            a[1] = a[1].wrapping_add(b[1]);
            a[2] = a[2].wrapping_add(b[2]);
        }
        self.e_range_limited = self.e_range_limited.wrapping_add(other.e_range_limited);
        self.e_bonded = self.e_bonded.wrapping_add(other.e_bonded);
        self.e_correction = self.e_correction.wrapping_add(other.e_correction);
        self.e_reciprocal = self.e_reciprocal.wrapping_add(other.e_reciprocal);
        self.virial = self.virial.wrapping_add(other.virial);
    }

    /// The accumulated pairwise virial (kcal/mol).
    pub fn virial_f64(&self) -> f64 {
        self.virial.to_f64()
    }

    /// Potential energy (kcal/mol).
    pub fn potential(&self) -> f64 {
        let s = 1.0 / (1u64 << ENERGY_FRAC) as f64;
        (self
            .e_range_limited
            .wrapping_add(self.e_bonded)
            .wrapping_add(self.e_correction)) as f64
            * s
            + self.e_reciprocal as f64 * s
    }

    pub fn force_f64(&self, i: usize) -> Vec3 {
        let s = 1.0 / (1i64 << FORCE_FRAC) as f64;
        Vec3::new(
            self.f[i][0] as f64 * s,
            self.f[i][1] as f64 * s,
            self.f[i][2] as f64 * s,
        )
    }
}

/// Slack (Å) added to the cutoff wherever *candidate* pairs are
/// enumerated from decoded or binned positions rather than the exact
/// fixed-point arithmetic: the f64 decode and the Q20 r² agree to ~1e-4 Å
/// (pinned by `pairlist_slack_covers_decode_error`), so a candidate set
/// built with this margin is a strict superset of the exact in-cutoff set
/// — the per-pair integer test always makes the final decision. Shared by
/// the cell-grid build, its pair sweep, and the tile pipeline's cell-pair
/// reach so the decode slack can never drift between sites.
///
/// Since PR 8 this is also the Verlet buffer of the persistent match
/// cache: batches are matched once at `cutoff + PAIRLIST_SLACK` and
/// replayed until some atom has moved half the slack
/// ([`MatchCache::needs_rebuild`]), so the value trades padded-set size
/// (grows with the cube of `(rc + slack)/rc`) against rebuild frequency
/// (reuse interval grows linearly with the slack). It never affects
/// forces — the exact `r² ≤ rc²` mask is applied every evaluation — so
/// retuning it leaves every golden checksum unchanged.
pub const PAIRLIST_SLACK: f64 = 1.0;

/// The pipeline bound to one system and one decomposition.
pub struct ForcePipeline {
    pub ppip: Ppip,
    pub gse: GseFixed,
    pub beta: f64,
    corr_kernel: DirectKernel,
    pub rc2_q20: i64,
    pub half_edge_q20: [Q20; 3],
    policy: ExclusionPolicy,
    /// Import-region margin (Å) covering constraint-group co-location and
    /// deferred migration (§3.2.4); baked into the rank set's NT reach at
    /// construction.
    pub import_margin: f64,
    decomposition: Decomposition,
    pool: DetPool,
    ranks: Option<RankSet>,
    /// Modeled torus traffic of every `Nodes(n)` force evaluation.
    pub counters: ExchangeCounters,
    /// Static long-range communication plan (mesh halos + FFT pencils);
    /// `None` under [`Decomposition::SingleRank`].
    mesh_exchange: Option<MeshExchange>,
    /// Structured event recorder ([`TraceSink::Off`] unless installed via
    /// [`Self::set_trace`]). Tracing never influences results: timestamps
    /// are observability payload only, and the golden-trajectory tier
    /// asserts bitwise identity with tracing on and off.
    trace: TraceSink,
    /// Machine model pricing the metered traffic of trace counters
    /// (`Nodes(n)` only).
    machine: Option<MachineConfig>,
    /// Q20 of the *padded* match cutoff `(rc + PAIRLIST_SLACK)²`: the
    /// radius batches are matched at, so the cached pair set stays a
    /// superset of the in-cutoff set while the displacement monitor holds.
    rc_pad2_q20: i64,
    /// Upper bound on the match stage's integer lower-bound r² (Q40):
    /// `(rc_pad2_q20 << 20)` plus a margin covering the floor-vs-RNE gap
    /// of the per-axis bound and the single RNE rounding of the exact r².
    r2_lb_max: i64,
    /// Displacement monitor + reference epoch of the persistent match
    /// stage, shared by both decompositions (the rebuild schedule is a
    /// pure function of the trajectory, never of the decomposition).
    cache: MatchCache,
    /// Static packed correction stream (precomputed nonzero charge
    /// products), serial form for the single-rank path.
    corr_all: Vec<(u32, u32, f64)>,
    /// Per-rank static packed correction streams (`Nodes(n)` path).
    corr_rank: Vec<Vec<(u32, u32, f64)>>,
    /// Single-rank tile pipeline state (`None` under `Nodes(n)`).
    single: Option<SingleTiles>,
    /// Per-box SoA position/charge tiles shared by the rank fan-out
    /// (`Nodes(n)` path), rebuilt on the trunk once per fan-out.
    node_tiles: PosTiles,
    /// Per-rank private accumulators (+ trace lanes), reused across steps.
    scratch: Vec<RankScratch>,
    /// Per-rank long-range accumulators (forces + private charge mesh),
    /// reused across steps.
    lr_scratch: Vec<LrRank>,
    /// Reusable mesh-phase buffers — the allocation-free reciprocal path.
    gse_scratch: GseScratch,
    /// Decoded Cartesian positions, reused across steps.
    pos_buf: Vec<Vec3>,
}

/// One rank's short-range scratch: a private force accumulator plus the
/// trace lane its worker records phase spans into (exactly one worker owns
/// each scratch per fan-out, so lane recording needs no synchronization).
struct RankScratch {
    forces: RawForces,
    lane: Lane,
    /// The rank's match-batch queue. Persistent: refilled only on cache
    /// rebuild steps, replayed (against refreshed tile positions) on
    /// reuse steps.
    queue: BatchQueue,
    /// Pairs that passed the exact per-step cutoff mask in the last
    /// evaluation, merged into the census in rank order on the trunk.
    live_pairs: u64,
}

/// Single-rank tile pipeline state: the static cell tiling plus the
/// buckets, SoA tiles and match queue — rebuilt on cache-rebuild steps,
/// position-refreshed and replayed on reuse steps.
/// Held in an `Option` so the evaluation can detach it from `self` while
/// borrowing the pipeline shared.
struct SingleTiles {
    tiling: CellTiling,
    buckets: Buckets,
    tiles: PosTiles,
    queue: BatchQueue,
}

/// One rank's private long-range state: a force accumulator, its share of
/// the spread charge mesh, a window-stencil scratch, and its trace lane.
struct LrRank {
    forces: RawForces,
    rho: Vec<i64>,
    stencil: SupportScratch,
    lane: Lane,
}

impl LrRank {
    fn empty() -> LrRank {
        LrRank {
            forces: RawForces::zeroed(0),
            rho: Vec::new(),
            stencil: SupportScratch::default(),
            lane: Lane::new(),
        }
    }
}

const IMPORT_MARGIN: f64 = 8.0;

impl ForcePipeline {
    /// Build the pipeline. The decomposition and worker-thread count are
    /// construction-time properties: `Nodes(n)` builds the full rank
    /// architecture (grid, NT assignment, exchange plan, static bonded and
    /// correction work lists) once, here.
    pub fn new(sys: &System, decomposition: Decomposition, threads: usize) -> ForcePipeline {
        let beta = sys.params.ewald_beta();
        let e = sys.pbox.edge();
        let gse_params = GseParams::auto(sys.params.cutoff, sys.params.spread_cutoff);
        let ranks = match decomposition {
            Decomposition::SingleRank => None,
            Decomposition::Nodes(n) => {
                Some(RankSet::build(sys, n, sys.params.cutoff + IMPORT_MARGIN))
            }
        };
        // The FFT is planned over the simulated node grid (clamped per axis
        // so every node dimension divides the mesh), so the reciprocal
        // phase's pencil-message pattern matches the decomposition.
        let fft_nodes = ranks.as_ref().map_or([1, 1, 1], |rs| {
            [
                rs.grid.dims.x as usize,
                rs.grid.dims.y as usize,
                rs.grid.dims.z as usize,
            ]
        });
        let gse = GseFixed::with_nodes(Mesh::new(sys.params.mesh, sys.pbox), gse_params, fft_nodes);
        let mesh_exchange = ranks.as_ref().map(|_| {
            let h = gse.mesh.spacing();
            let halo = [
                (gse.params.spread_cutoff / h.x).ceil() as usize,
                (gse.params.spread_cutoff / h.y).ceil() as usize,
                (gse.params.spread_cutoff / h.z).ceil() as usize,
            ];
            let st = gse.fft_stats();
            MeshExchange::new(
                gse.mesh.dims,
                gse.node_dims(),
                halo,
                st.messages_total(),
                st.bytes_total(),
            )
        });
        let rc2_q20 = Q20::from_f64(sys.params.cutoff * sys.params.cutoff).raw();
        let rc_pad = sys.params.cutoff + PAIRLIST_SLACK;
        let rc_pad2_q20 = Q20::from_f64(rc_pad * rc_pad).raw();
        let half_edge_q20 = [
            Q20::from_f64(e.x / 2.0),
            Q20::from_f64(e.y / 2.0),
            Q20::from_f64(e.z / 2.0),
        ];
        // Static packed correction streams: the excluded / 1-4 pair lists
        // never change, so the charge products and zero-product filtering
        // are hoisted out of the per-step stream once, here. The products
        // are the same f64 multiplications the per-step path performed, so
        // the evaluated corrections are bitwise unchanged.
        let policy = sys
            .topology
            .exclusions
            .policy
            .unwrap_or(ExclusionPolicy::amber_like());
        let pack = |pairs: &mut dyn Iterator<Item = (u32, u32, f64)>| -> Vec<(u32, u32, f64)> {
            let charge = &sys.topology.charge;
            pairs
                .filter_map(|(i, j, scale)| {
                    let qq = charge[i as usize] * charge[j as usize] * scale;
                    (qq != 0.0).then_some((i, j, qq))
                })
                .collect()
        };
        let s14 = 1.0 - policy.elec_14;
        let excl = sys.topology.exclusions.excluded_pairs();
        let p14 = sys.topology.exclusions.pairs_14();
        let (corr_all, corr_rank) = match &ranks {
            None => (
                pack(
                    &mut excl
                        .iter()
                        .map(|&(i, j)| (i, j, 1.0))
                        .chain(p14.iter().map(|&(i, j)| (i, j, s14))),
                ),
                Vec::new(),
            ),
            Some(rs) => (
                Vec::new(),
                rs.ranks
                    .iter()
                    .map(|rank| {
                        pack(
                            &mut rank
                                .excl
                                .iter()
                                .map(|&k| {
                                    let (i, j) = excl[k as usize];
                                    (i, j, 1.0)
                                })
                                .chain(rank.pair14.iter().map(|&k| {
                                    let (i, j) = p14[k as usize];
                                    (i, j, s14)
                                })),
                        )
                    })
                    .collect(),
            ),
        };
        let single = match decomposition {
            Decomposition::SingleRank => Some(SingleTiles {
                tiling: CellTiling::build([e.x, e.y, e.z], sys.params.cutoff + PAIRLIST_SLACK),
                buckets: Buckets::default(),
                tiles: PosTiles::default(),
                queue: BatchQueue::default(),
            }),
            Decomposition::Nodes(_) => None,
        };
        ForcePipeline {
            ppip: Ppip::build(beta, sys.params.cutoff),
            gse,
            beta,
            corr_kernel: DirectKernel::reference(beta, sys.params.cutoff),
            rc2_q20,
            half_edge_q20,
            policy,
            import_margin: IMPORT_MARGIN,
            decomposition,
            pool: DetPool::new(threads),
            ranks,
            counters: ExchangeCounters::default(),
            mesh_exchange,
            trace: TraceSink::Off,
            machine: match decomposition {
                Decomposition::SingleRank => None,
                Decomposition::Nodes(n) => Some(MachineConfig::with_nodes(n)),
            },
            rc_pad2_q20,
            r2_lb_max: (rc_pad2_q20 << 20) + (1 << 27),
            cache: MatchCache::new(half_edge_q20, PAIRLIST_SLACK),
            corr_all,
            corr_rank,
            single,
            node_tiles: PosTiles::default(),
            scratch: Vec::new(),
            lr_scratch: Vec::new(),
            gse_scratch: GseScratch::default(),
            pos_buf: Vec::new(),
        }
    }

    pub fn decomposition(&self) -> Decomposition {
        self.decomposition
    }

    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The rank architecture (`None` under [`Decomposition::SingleRank`]).
    pub fn rank_set(&self) -> Option<&RankSet> {
        self.ranks.as_ref()
    }

    /// Total charge on the reciprocal scratch mesh after the most recent
    /// long-range evaluation: the exact sum of the merged `rho_q` words
    /// (Q `MESH_FRAC`). Under `Nodes(n)` this is the rank-merged mesh; under
    /// `SingleRank` the serially spread one. Charge conservation through
    /// the spread is closed-form: an independent serial re-spread of the
    /// same positions must reproduce this total bit-for-bit (the
    /// `anton-analysis` mesh-charge identity).
    pub fn mesh_charge_total(&self) -> i128 {
        let mut total: i128 = 0;
        for &q in &self.gse_scratch.rho_q {
            total += q as i128;
        }
        total
    }

    /// Exact per-`lr_step` increments of the long-range exchange counters:
    /// `[mesh_halo_messages, mesh_halo_bytes, fft_messages, fft_bytes]`
    /// added per long-range step (`None` under `SingleRank`, where no mesh
    /// exchange is metered). See [`anton_machine::MeshExchange::per_lr_step`].
    pub fn mesh_lr_step_rates(&self) -> Option<[u64; 4]> {
        self.mesh_exchange.as_ref().map(MeshExchange::per_lr_step)
    }

    /// The trace sink recording this pipeline's phase spans and counters.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    pub fn trace_mut(&mut self) -> &mut TraceSink {
        &mut self.trace
    }

    /// Install a trace sink (pass [`TraceSink::on`] to start recording).
    pub fn set_trace(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// Attribute the exchange traffic metered since the `before` snapshot
    /// to its emitting phases: one counter sample per traffic class, priced
    /// by the machine config's hop math (import/reduce traffic to the
    /// re-home bookkeeping, halo traffic to the mesh merge, pencil traffic
    /// split over the two FFT transforms).
    fn meter_since(&mut self, before: ExchangeCounters) {
        if !self.trace.is_on() {
            return;
        }
        let d = self.counters.delta_since(&before);
        let n_ranks = self.ranks.as_ref().map_or(1, RankSet::rank_count).max(1);
        let cfg = self.machine;
        let emit = |trace: &mut TraceSink, name, phase, msgs: u64, bytes: u64, hop_bytes: u64| {
            if msgs == 0 && bytes == 0 {
                return;
            }
            let modeled = cfg.map_or(0.0, |c| {
                modeled_burst_us(&c, n_ranks, msgs, bytes, hop_bytes)
            });
            trace.counter(name, phase, msgs, bytes, modeled);
        };
        emit(
            &mut self.trace,
            "import",
            Phase::ReHome,
            d.import_messages,
            d.import_bytes,
            d.import_hop_bytes,
        );
        emit(
            &mut self.trace,
            "reduce",
            Phase::ReHome,
            d.reduce_messages,
            d.reduce_bytes,
            d.reduce_hop_bytes,
        );
        // Halo and pencil messages are nearest-neighbor: hop volume = volume.
        emit(
            &mut self.trace,
            "mesh_halo",
            Phase::MeshMerge,
            d.mesh_halo_messages,
            d.mesh_halo_bytes,
            d.mesh_halo_bytes,
        );
        let (fwd_msgs, fwd_bytes) = (d.fft_messages / 2, d.fft_bytes / 2);
        emit(
            &mut self.trace,
            "fft_pencils",
            Phase::FftForward,
            fwd_msgs,
            fwd_bytes,
            fwd_bytes,
        );
        emit(
            &mut self.trace,
            "fft_pencils",
            Phase::FftInverse,
            d.fft_messages - fwd_msgs,
            d.fft_bytes - fwd_bytes,
            d.fft_bytes - fwd_bytes,
        );
    }

    /// One range-limited pair: fixed-point r², exact integer cutoff test,
    /// PPIP tables, quantized force. Returns the Q24 force on atom `i`
    /// (negate for `j`) and the Q32 pair energy. Orientation-free: calling
    /// with (j, i) yields the exact negation.
    ///
    /// Retained as the scalar *reference oracle* for the batched match/
    /// evaluate pipeline; production paths stream tile pairs through
    /// [`Self::match_tile_pair`] + [`Self::evaluate_batches`], whose
    /// per-pair arithmetic is identical operation for operation.
    #[cfg(test)]
    #[inline]
    fn pair_contribution(
        &self,
        sys: &System,
        state: &FixedState,
        i: usize,
        j: usize,
    ) -> Option<([i64; 3], i64)> {
        let top = &sys.topology;
        let (iu, ju) = (i as u32, j as u32);
        if top.exclusions.is_excluded(iu, ju) {
            return None;
        }
        let d = state.delta_q20(self.half_edge_q20, i, j);
        // Exact r² in Q20 with a single rounding (component order free).
        let sum: i128 =
            d[0] as i128 * d[0] as i128 + d[1] as i128 * d[1] as i128 + d[2] as i128 * d[2] as i128;
        let r2 = anton_fixpoint::rne_shr_i128(sum, 20);
        if r2 > self.rc2_q20 || r2 == 0 {
            return None;
        }
        let (se, sl) = if top.exclusions.is_14(iu, ju) {
            (self.policy.elec_14, self.policy.lj_14)
        } else {
            (1.0, 1.0)
        };
        let qq = top.charge[i] * top.charge[j] * se;
        let (a, b) = top.lj_table.coeffs(top.lj_type[i], top.lj_type[j]);
        let (f_over_r, e) = self.ppip.pair(r2, qq, a * sl, b * sl);
        let ds = 1.0 / (1i64 << 20) as f64;
        let fs = (1i64 << FORCE_FRAC) as f64;
        let fi = [
            rne_f64(d[0] as f64 * ds * f_over_r * fs) as i64,
            rne_f64(d[1] as f64 * ds * f_over_r * fs) as i64,
            rne_f64(d[2] as f64 * ds * f_over_r * fs) as i64,
        ];
        let eq = rne_f64(e * (1u64 << ENERGY_FRAC) as f64) as i64;
        Some((fi, eq))
    }

    #[cfg(test)]
    fn apply_pair(
        &self,
        sys: &System,
        state: &FixedState,
        i: usize,
        j: usize,
        out: &mut RawForces,
    ) {
        if let Some((fi, eq)) = self.pair_contribution(sys, state, i, j) {
            let d = state.delta_q20(self.half_edge_q20, i, j);
            for k in 0..3 {
                out.f[i][k] = out.f[i][k].wrapping_add(fi[k]);
                out.f[j][k] = out.f[j][k].wrapping_sub(fi[k]);
                // r·F into the wide virial accumulator (exact products,
                // order-free accumulation).
                out.virial = out.virial.accumulate(
                    anton_fixpoint::Q::<20>::from_raw(d[k]),
                    anton_fixpoint::Q::<24>::from_raw(fi[k]),
                );
            }
            out.e_range_limited = out.e_range_limited.wrapping_add(eq);
        }
    }

    /// Stream one tile pair through a match unit: integer low-precision
    /// prefilter on the raw fraction deltas, exact Q20 r² against the
    /// *padded* cutoff `(rc + PAIRLIST_SLACK)²`, exclusion/1-4
    /// classification, and lane fill into `q`. `same` marks a tile paired
    /// with itself, where slots enumerate `si < sj`. `sa0`/`sb0` are the
    /// tiles' first flat slots in the owning [`PosTiles`] pool; the queue
    /// records each lane's slot pair so reuse steps can re-derive the
    /// displacement from refreshed tile positions.
    ///
    /// Matching at the padded radius makes the queued set a superset of
    /// the in-cutoff set for every step the displacement monitor accepts;
    /// the exact `r² ≤ rc²` decision is re-taken per evaluation (with
    /// arithmetic identical operation for operation to the scalar
    /// oracle's `FixedState::delta_q20` + RNE r² ladder), so *which*
    /// pairs contribute never depends on when the batch was matched.
    // The argument list is the tile-pair tuple the cell walk produces;
    // bundling it into a struct would only rename the call sites.
    #[allow(clippy::too_many_arguments)]
    fn match_tile_pair(
        &self,
        sys: &System,
        a: TileView<'_>,
        b: TileView<'_>,
        same: bool,
        sa0: u32,
        sb0: u32,
        q: &mut BatchQueue,
    ) {
        let top = &sys.topology;
        let he = [
            self.half_edge_q20[0].raw(),
            self.half_edge_q20[1].raw(),
            self.half_edge_q20[2].raw(),
        ];
        for si in 0..a.len() {
            let (xi, yi, zi) = (a.x[si], a.y[si], a.z[si]);
            let ai = a.atom[si];
            let qi = a.q[si];
            let sj0 = if same { si + 1 } else { 0 };
            q.census.candidates += (b.len() - sj0) as u64;
            for sj in sj0..b.len() {
                // Low-precision distance check (the ASIC match unit's
                // reduced-precision compare): per-axis floor lower bounds
                // on Δ² in Q40. floor ≤ RNE per axis, so survivors are a
                // strict superset of the exact in-cutoff set.
                let dx = xi.wrapping_sub(b.x[sj]) as i64;
                let dy = yi.wrapping_sub(b.y[sj]) as i64;
                let dz = zi.wrapping_sub(b.z[sj]) as i64;
                let lx = (dx.abs() * he[0]) >> 31;
                let ly = (dy.abs() * he[1]) >> 31;
                let lz = (dz.abs() * he[2]) >> 31;
                if lx * lx + ly * ly + lz * lz > self.r2_lb_max {
                    continue;
                }
                // Exact displacement and r², identical arithmetic to the
                // scalar `delta_q20` path; the test is against the padded
                // radius, and coincident pairs (r² = 0) are *kept* — the
                // evaluator's per-step mask makes the final call either
                // way, so the match stage only has to be conservative.
                let d = [
                    anton_fixpoint::rne_shr_i128(dx as i128 * he[0] as i128, 31),
                    anton_fixpoint::rne_shr_i128(dy as i128 * he[1] as i128, 31),
                    anton_fixpoint::rne_shr_i128(dz as i128 * he[2] as i128, 31),
                ];
                let sum: i128 = d[0] as i128 * d[0] as i128
                    + d[1] as i128 * d[1] as i128
                    + d[2] as i128 * d[2] as i128;
                let r2 = anton_fixpoint::rne_shr_i128(sum, 20);
                if r2 > self.rc_pad2_q20 {
                    continue;
                }
                let aj = b.atom[sj];
                if top.exclusions.is_excluded(ai, aj) {
                    continue;
                }
                let (se, sl) = if top.exclusions.is_14(ai, aj) {
                    (self.policy.elec_14, self.policy.lj_14)
                } else {
                    (1.0, 1.0)
                };
                let qq = qi * b.q[sj] * se;
                let (lja, ljb) = top
                    .lj_table
                    .coeffs(top.lj_type[ai as usize], top.lj_type[aj as usize]);
                q.push(
                    r2,
                    qq,
                    lja * sl,
                    ljb * sl,
                    ai,
                    aj,
                    sa0 + si as u32,
                    sb0 + sj as u32,
                );
            }
        }
    }

    /// Replay the queued batches against the *current* tile positions:
    /// per occupied lane, re-derive the exact Q20 displacement and r² from
    /// the refreshed tiles (the same `rne_shr_i128` ladder the match stage
    /// and scalar oracle use), re-take the exact `r² ≤ rc²` cutoff mask,
    /// then dispatch the surviving lanes through the PPIP evaluator and
    /// scatter the quantized forces, virial and energy.
    ///
    /// The cached batch contributes only the pair's *static* identity
    /// (atom ids, tile slots, charge product, LJ coefficients) — every
    /// position-dependent quantity is recomputed here, so the force bits
    /// are a pure function of the current positions: evaluating a freshly
    /// matched queue and a cache-replayed queue over the same positions
    /// produces identical accumulators, lane for lane. Returns the number
    /// of live (in-cutoff) pairs, which is likewise rebuild-schedule
    /// independent.
    fn evaluate_batches(&self, q: &BatchQueue, tiles: &PosTiles, out: &mut RawForces) -> u64 {
        let he = [
            self.half_edge_q20[0].raw(),
            self.half_edge_q20[1].raw(),
            self.half_edge_q20[2].raw(),
        ];
        let ds = 1.0 / (1i64 << 20) as f64;
        let fs = (1i64 << FORCE_FRAC) as f64;
        let es = (1u64 << ENERGY_FRAC) as f64;
        let mut vals = [(0.0f64, 0.0f64); MATCH_WIDTH];
        let mut live_pairs = 0u64;
        for (batch, meta) in q.iter() {
            let mut live = *batch;
            let mut dd = [[0i64; 3]; MATCH_WIDTH];
            let mut mask = 0u8;
            for (lane, d_out) in dd.iter_mut().enumerate() {
                if batch.mask & (1u8 << lane) == 0 {
                    continue;
                }
                let pa = tiles.raw_at(meta.si[lane]);
                let pb = tiles.raw_at(meta.sj[lane]);
                let dx = pa[0].wrapping_sub(pb[0]) as i64;
                let dy = pa[1].wrapping_sub(pb[1]) as i64;
                let dz = pa[2].wrapping_sub(pb[2]) as i64;
                let d = [
                    anton_fixpoint::rne_shr_i128(dx as i128 * he[0] as i128, 31),
                    anton_fixpoint::rne_shr_i128(dy as i128 * he[1] as i128, 31),
                    anton_fixpoint::rne_shr_i128(dz as i128 * he[2] as i128, 31),
                ];
                let sum: i128 = d[0] as i128 * d[0] as i128
                    + d[1] as i128 * d[1] as i128
                    + d[2] as i128 * d[2] as i128;
                let r2 = anton_fixpoint::rne_shr_i128(sum, 20);
                if r2 > self.rc2_q20 || r2 == 0 {
                    continue;
                }
                live.r2_q20[lane] = r2;
                *d_out = d;
                mask |= 1u8 << lane;
            }
            live.mask = mask;
            if mask == 0 {
                continue;
            }
            live_pairs += u64::from(mask.count_ones());
            self.ppip.pair_batch(&live, &mut vals);
            for (lane, &(f_over_r, e)) in vals.iter().enumerate() {
                if mask & (1u8 << lane) == 0 {
                    continue;
                }
                let d = dd[lane];
                let fi = [
                    rne_f64(d[0] as f64 * ds * f_over_r * fs) as i64,
                    rne_f64(d[1] as f64 * ds * f_over_r * fs) as i64,
                    rne_f64(d[2] as f64 * ds * f_over_r * fs) as i64,
                ];
                let (i, j) = (meta.i[lane] as usize, meta.j[lane] as usize);
                for k in 0..3 {
                    out.f[i][k] = out.f[i][k].wrapping_add(fi[k]);
                    out.f[j][k] = out.f[j][k].wrapping_sub(fi[k]);
                    out.virial = out.virial.accumulate(
                        anton_fixpoint::Q::<20>::from_raw(d[k]),
                        anton_fixpoint::Q::<24>::from_raw(fi[k]),
                    );
                }
                out.e_range_limited = out.e_range_limited.wrapping_add(rne_f64(e * es) as i64);
            }
        }
        live_pairs
    }

    /// Rebuild the single-rank cache structure at the given positions:
    /// re-bin atoms into the static cell tiling, refill the SoA tiles, and
    /// stream the conservative cell-pair list through the padded-cutoff
    /// match stage into the persistent queue. Pure structure work — no
    /// spans, counters or monitor bookkeeping — shared by the production
    /// rebuild arm and checkpoint restore (which rebuilds at the cached
    /// *reference* epoch rather than the restored step's positions).
    fn rebuild_single_cache(&self, sys: &System, positions: &[FxVec3], st: &mut SingleTiles) {
        let n_cells = st.tiling.cell_count();
        {
            let SingleTiles {
                tiling, buckets, ..
            } = st;
            buckets.rebuild(n_cells, positions.len(), |i| {
                let p = &positions[i].0;
                tiling.cell_of([p[0].raw(), p[1].raw(), p[2].raw()])
            });
        }
        {
            let charge = &sys.topology.charge;
            let buckets = &st.buckets;
            st.tiles
                .rebuild((0..n_cells).map(|c| buckets.members(c)), |a| {
                    let p = &positions[a as usize].0;
                    ([p[0].raw(), p[1].raw(), p[2].raw()], charge[a as usize])
                });
        }
        st.queue.begin();
        for &(ca, cb) in st.tiling.pairs() {
            self.match_tile_pair(
                sys,
                st.tiles.tile(ca as usize),
                st.tiles.tile(cb as usize),
                ca == cb,
                st.tiles.tile_start(ca as usize) as u32,
                st.tiles.tile_start(cb as usize) as u32,
                &mut st.queue,
            );
        }
    }

    /// Single-rank range-limited phase on the persistent tile pipeline.
    ///
    /// When the displacement monitor trips ([`MatchCache::needs_rebuild`]):
    /// re-bin atoms into the static cell tiling from their raw fraction
    /// bits, rebuild the SoA tiles, and stream the conservative cell-pair
    /// list through the padded-cutoff match stage (the CacheRebuild span,
    /// with the Match sub-span inside it). Otherwise: refresh the tile
    /// positions in place and keep the cached batch structure (the
    /// CacheReuse span). Either way the queued batches are then replayed
    /// against the current positions by [`Self::evaluate_batches`], whose
    /// exact per-step cutoff mask makes the forces independent of which
    /// arm ran. Allocation-free in steady state.
    fn range_limited_tiles(&mut self, sys: &System, state: &FixedState, out: &mut RawForces) {
        let mut st = self.single.take().expect("single-rank tile state");
        if self.cache.needs_rebuild(&state.positions) {
            let t_cache = self.trace.now_ns();
            let t0 = self.trace.now_ns();
            self.rebuild_single_cache(sys, &state.positions, &mut st);
            self.trace.end_span(Phase::Match, RANK_MAIN, t0);
            self.cache.note_rebuild(&state.positions);
            self.counters.match_candidates += st.queue.census.candidates;
            self.counters.rebuild_steps += 1;
            self.trace.end_span(Phase::CacheRebuild, RANK_MAIN, t_cache);
        } else {
            let t_cache = self.trace.now_ns();
            let positions = &state.positions;
            st.tiles.refresh_positions(|a| {
                let p = &positions[a as usize].0;
                [p[0].raw(), p[1].raw(), p[2].raw()]
            });
            self.counters.reuse_steps += 1;
            self.trace.end_span(Phase::CacheReuse, RANK_MAIN, t_cache);
        }
        let t0 = self.trace.now_ns();
        let live = self.evaluate_batches(&st.queue, &st.tiles, out);
        self.trace.end_span(Phase::Evaluate, RANK_MAIN, t0);
        // Live pairs (and batch count) are metered per *evaluation*, so the
        // census totals are a pure function of the trajectory — identical
        // across decompositions, thread counts and rebuild schedules.
        self.counters.match_pairs += live;
        self.counters.match_batches += st.queue.batch_count() as u64;
        self.single = Some(st);
    }

    /// Range-limited forces under the pipeline's decomposition.
    pub fn range_limited(&mut self, sys: &System, state: &FixedState, out: &mut RawForces) {
        match self.decomposition {
            Decomposition::SingleRank => {
                let t0 = self.trace.now_ns();
                self.range_limited_tiles(sys, state, out);
                self.trace.end_span(Phase::RangeLimited, RANK_MAIN, t0);
            }
            Decomposition::Nodes(_) => self.rank_fanout(sys, state, out, false),
        }
    }

    /// The short-range force class of a RESPA inner step: range-limited
    /// pairs plus bonded terms. Under `Nodes(n)` both are computed per rank
    /// in one fan-out.
    pub fn short_range(&mut self, sys: &System, state: &FixedState, out: &mut RawForces) {
        match self.decomposition {
            Decomposition::SingleRank => {
                let t0 = self.trace.now_ns();
                self.range_limited_tiles(sys, state, out);
                self.trace.end_span(Phase::RangeLimited, RANK_MAIN, t0);
                let t0 = self.trace.now_ns();
                self.bonded(sys, state, out);
                self.trace.end_span(Phase::Bonded, RANK_MAIN, t0);
            }
            Decomposition::Nodes(_) => self.rank_fanout(sys, state, out, true),
        }
    }

    /// The long-range force class of a RESPA outer step: reciprocal (GSE)
    /// plus correction pairs. Under `Nodes(n)` the whole reciprocal phase
    /// is sharded over the rank set (§3.2.2): each rank spreads its home
    /// box's atoms into a *private* charge mesh; the meshes merge in fixed
    /// rank order with wrapping adds; the distributed fixed-point FFT trunk
    /// (forward → Green multiply → inverse) runs on the calling thread
    /// *overlapped* with the per-rank correction pairs — the software
    /// analogue of the concurrent HTIS and flexible chains of §3.2 — and
    /// each rank then interpolates its atoms' forces from the shared
    /// potential mesh. Every phase either partitions work (disjoint FFT
    /// pencils, disjoint atoms) or accumulates quantized summands with
    /// wrapping adds, so the result is bitwise invariant to node count and
    /// thread count. The mesh-halo and FFT pencil traffic is metered into
    /// [`ExchangeCounters`] per long-range step.
    pub fn long_range(&mut self, sys: &System, state: &FixedState, out: &mut RawForces) {
        if self.ranks.is_none() {
            let t0 = self.trace.now_ns();
            self.reciprocal(sys, state, out);
            self.trace.end_span(Phase::Reciprocal, RANK_MAIN, t0);
            let t0 = self.trace.now_ns();
            self.corrections(state, out);
            self.trace.end_span(Phase::Correction, RANK_MAIN, t0);
            return;
        }
        let n = sys.n_atoms();
        state.decode_positions_into(&sys.pbox, &mut self.pos_buf);
        // Long-range steps normally follow a short-range evaluation that
        // already re-homed atoms for these positions; only meter a fresh
        // exchange step when called standalone.
        let before = self.counters;
        let t0 = self.trace.now_ns();
        let freshly_prepared = {
            let rs = self.ranks.as_mut().expect("rank set checked above");
            if rs.is_prepared(n) {
                false
            } else {
                rs.prepare(state, &mut self.counters);
                true
            }
        };
        if freshly_prepared {
            self.trace.end_span(Phase::ReHome, RANK_MAIN, t0);
            self.meter_since(before);
        }
        let n_mesh = self.gse.mesh.len();
        let n_ranks = self.ranks.as_ref().map_or(0, RankSet::rank_count);
        // Umbrella span over the whole distributed reciprocal evaluation;
        // the Spread/MeshMerge/Fft*/Interpolate sub-phases nest inside it.
        let t_recip = self.trace.now_ns();
        let mut lr = std::mem::take(&mut self.lr_scratch);
        lr.resize_with(n_ranks, LrRank::empty);
        for s in &mut lr {
            if s.forces.f.len() == n {
                s.forces.clear();
            } else {
                s.forces = RawForces::zeroed(n);
            }
            s.rho.clear();
            s.rho.resize(n_mesh, 0);
        }
        let mut gs = std::mem::take(&mut self.gse_scratch);
        gs.begin(n_mesh);
        // Trunk-phase timestamps, collected inside the shared-borrow block
        // and turned into spans once `self` is mutable again.
        let mut merge_span = (0u64, 0u64);
        let mut fft_marks = [0u64; 4];
        // Trunk wall time of each pool fan-out (spread; overlapped
        // FFT+corrections; interpolate) — the dispatch/join overhead is
        // this span minus the rank spans it encloses.
        let mut dispatch_marks = [(0u64, 0u64); 3];
        {
            let this = &*self;
            let rs = this.ranks.as_ref().expect("rank set checked above");
            let charges = &sys.topology.charge;
            let view = |r: usize| MeshAtoms {
                positions: &this.pos_buf,
                charges,
                atoms: rs.atoms_in_box(r),
            };
            // 1. Per-rank charge spreading into private meshes.
            dispatch_marks[0].0 = this.trace.now_ns();
            this.pool.run(&mut lr, |r, s| {
                let t = this.trace.now_ns();
                this.gse.spread_into(view(r), &mut s.rho, &mut s.stencil);
                if this.trace.is_on() {
                    s.lane.push(Phase::Spread, t, this.trace.now_ns());
                }
            });
            dispatch_marks[0].1 = this.trace.now_ns();
            // 2. Serial rank-ordered wrapping merge of the charge meshes
            //    (the modeled charge-halo exchange).
            merge_span.0 = this.trace.now_ns();
            for s in &lr {
                for (a, &b) in gs.rho_q.iter_mut().zip(&s.rho) {
                    *a = a.wrapping_add(b);
                }
            }
            merge_span.1 = this.trace.now_ns();
            // 3. FFT trunk on the calling thread, overlapped with the
            //    per-rank correction pairs on the pool.
            let marks = &mut fft_marks;
            dispatch_marks[1].0 = this.trace.now_ns();
            this.pool.run_overlapped(
                &mut lr,
                |r, s| {
                    let t = this.trace.now_ns();
                    this.rank_corrections(state, r, &mut s.forces);
                    if this.trace.is_on() {
                        s.lane.push(Phase::Correction, t, this.trace.now_ns());
                    }
                },
                || {
                    this.gse.transform_marked(&mut gs, &mut |stage| {
                        marks[stage as usize] = this.trace.now_ns();
                    })
                },
            );
            dispatch_marks[1].1 = this.trace.now_ns();
            // 4. Per-rank force interpolation from the shared potential.
            dispatch_marks[2].0 = this.trace.now_ns();
            this.pool.run(&mut lr, |r, s| {
                let t = this.trace.now_ns();
                let phi = &gs.phi_q;
                let e = this.gse.interpolate_into(
                    view(r),
                    phi,
                    FORCE_FRAC,
                    &mut s.forces.f,
                    &mut s.stencil,
                );
                s.forces.e_reciprocal = s.forces.e_reciprocal.wrapping_add(e);
                if this.trace.is_on() {
                    s.lane.push(Phase::Interpolate, t, this.trace.now_ns());
                }
            });
            dispatch_marks[2].1 = this.trace.now_ns();
        }
        self.gse_scratch = gs;
        self.lr_scratch = lr;
        if self.trace.is_on() {
            for (s, e) in dispatch_marks {
                self.trace.push_span(Phase::Dispatch, RANK_MAIN, s, e);
            }
            self.trace
                .push_span(Phase::MeshMerge, RANK_MAIN, merge_span.0, merge_span.1);
            self.trace
                .push_span(Phase::FftForward, RANK_MAIN, fft_marks[0], fft_marks[1]);
            self.trace
                .push_span(Phase::FftGreen, RANK_MAIN, fft_marks[1], fft_marks[2]);
            self.trace
                .push_span(Phase::FftInverse, RANK_MAIN, fft_marks[2], fft_marks[3]);
        }
        self.trace
            .merge_lanes(self.lr_scratch.iter_mut().map(|s| &mut s.lane));
        for s in &self.lr_scratch {
            out.merge_from(&s.forces);
        }
        self.trace.end_span(Phase::Reciprocal, RANK_MAIN, t_recip);
        let before = self.counters;
        if let Some(me) = &self.mesh_exchange {
            me.record_lr_step(&mut self.counters);
        }
        self.meter_since(before);
    }

    /// Scalar reference enumeration over a decoded-position cell grid.
    /// Retained as the test oracle the batched tile pipeline is compared
    /// against (pair set and bitwise forces).
    #[cfg(test)]
    fn range_limited_cellgrid(&self, sys: &System, state: &FixedState, out: &mut RawForces) {
        use anton_geometry::CellGrid;
        let pos = state.decode_positions(&sys.pbox);
        let grid = CellGrid::build(&sys.pbox, &pos, sys.params.cutoff + PAIRLIST_SLACK);
        grid.for_each_pair_within(&pos, sys.params.cutoff + PAIRLIST_SLACK, |i, j, _d, _r2| {
            self.apply_pair(sys, state, i, j, out);
        });
    }

    /// Detach the per-rank scratch accumulators, sized and zeroed.
    /// (Taken out of `self` so the fan-out can borrow `self` shared while
    /// the pool mutates the buffers.)
    fn take_scratch(&mut self, n_atoms: usize) -> Vec<RankScratch> {
        let n_ranks = self.ranks.as_ref().map_or(0, RankSet::rank_count);
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.resize_with(n_ranks, || RankScratch {
            forces: RawForces::zeroed(n_atoms),
            lane: Lane::new(),
            queue: BatchQueue::default(),
            live_pairs: 0,
        });
        for s in &mut scratch {
            if s.forces.f.len() == n_atoms {
                s.forces.clear();
            } else {
                s.forces = RawForces::zeroed(n_atoms);
            }
        }
        scratch
    }

    /// Execute the short-range work per rank: re-home atoms, meter the
    /// exchange plan, fan the ranks out over the pool into private
    /// accumulators, and merge them in fixed rank order (the trace lanes
    /// merge in the same order, so recorded structure is deterministic).
    fn rank_fanout(
        &mut self,
        sys: &System,
        state: &FixedState,
        out: &mut RawForces,
        with_bonded: bool,
    ) {
        // The monitor reads only the trajectory (positions vs the cached
        // reference), so this decision — and with it the whole rebuild
        // schedule — is identical on every decomposition and thread count.
        let rebuild = self.cache.needs_rebuild(&state.positions);
        let before = self.counters;
        let t0 = self.trace.now_ns();
        {
            let rs = self
                .ranks
                .as_mut()
                .expect("rank fan-out without a rank set");
            if rebuild {
                rs.prepare(state, &mut self.counters);
            } else {
                // Deferred migration (§3.2.4): between pair-list rebuilds
                // atoms keep their home boxes — the frozen assignment is
                // covered by the NT import margin — and only the static
                // exchange plan's per-step traffic is metered.
                rs.meter_step(&mut self.counters);
            }
        }
        self.trace.end_span(Phase::ReHome, RANK_MAIN, t0);
        self.meter_since(before);
        if with_bonded {
            state.decode_positions_into(&sys.pbox, &mut self.pos_buf);
        }
        // Rebuild the shared per-box SoA tiles once, on the trunk (cache
        // rebuild), or refresh their positions in place under the frozen
        // membership (cache reuse); every rank streams its tower × plate
        // tile pairs out of this pool.
        let t_cache = self.trace.now_ns();
        {
            let ForcePipeline {
                node_tiles, ranks, ..
            } = self;
            let rs = ranks.as_ref().expect("rank set checked above");
            let positions = &state.positions;
            let charge = &sys.topology.charge;
            if rebuild {
                node_tiles.rebuild((0..rs.grid.node_count()).map(|b| rs.atoms_in_box(b)), |a| {
                    let p = &positions[a as usize].0;
                    ([p[0].raw(), p[1].raw(), p[2].raw()], charge[a as usize])
                });
            } else {
                node_tiles.refresh_positions(|a| {
                    let p = &positions[a as usize].0;
                    [p[0].raw(), p[1].raw(), p[2].raw()]
                });
            }
        }
        if rebuild {
            self.cache.note_rebuild(&state.positions);
            self.counters.rebuild_steps += 1;
        } else {
            self.counters.reuse_steps += 1;
        }
        self.trace.end_span(
            if rebuild {
                Phase::CacheRebuild
            } else {
                Phase::CacheReuse
            },
            RANK_MAIN,
            t_cache,
        );
        let mut scratch = self.take_scratch(sys.n_atoms());
        // Dispatch span: trunk-side wall time of the whole fan-out,
        // covering pool dispatch/join overhead around the rank work.
        let t_dispatch = self.trace.now_ns();
        {
            let this = &*self;
            let rs = this.ranks.as_ref().expect("rank set checked above");
            this.pool.run(&mut scratch, |r, buf| {
                let t = this.trace.now_ns();
                this.rank_pairs_batched(sys, rs, r, buf, rebuild);
                if this.trace.is_on() {
                    buf.lane.push(Phase::RangeLimited, t, this.trace.now_ns());
                }
                if with_bonded {
                    let t = this.trace.now_ns();
                    this.rank_bonded(sys, rs, r, &mut buf.forces);
                    if this.trace.is_on() {
                        buf.lane.push(Phase::Bonded, t, this.trace.now_ns());
                    }
                }
            });
        }
        self.trace.end_span(Phase::Dispatch, RANK_MAIN, t_dispatch);
        self.scratch = scratch;
        self.trace
            .merge_lanes(self.scratch.iter_mut().map(|s| &mut s.lane));
        for s in &self.scratch {
            out.merge_from(&s.forces);
            if rebuild {
                self.counters.match_candidates += s.queue.census.candidates;
            }
            self.counters.match_pairs += s.live_pairs;
            self.counters.match_batches += s.queue.batch_count() as u64;
        }
    }

    /// Batched NT-method pair phase for one rank: on cache-rebuild steps,
    /// stream the rank's tower × plate tile pairs through the padded match
    /// stage into the rank's persistent queue; on reuse steps, keep the
    /// queue and replay it against the refreshed shared tiles. The
    /// exactly-once ownership test is hoisted from per atom pair to per
    /// *box* pair — every atom in a box shares that box's (canonical) home
    /// coordinate, so `node_for_pair(coord(a), coord(b))` decides for all
    /// its pairs at once. The evaluator's exact per-step cutoff mask makes
    /// the interaction set identical to the single-rank path (and to a
    /// fresh rebuild); wrapping accumulation makes the *forces* identical
    /// bitwise.
    fn rank_pairs_batched(
        &self,
        sys: &System,
        rs: &RankSet,
        r: usize,
        buf: &mut RankScratch,
        rebuild: bool,
    ) {
        if rebuild {
            let t0 = self.trace.now_ns();
            self.fill_rank_queue(sys, rs, r, &mut buf.queue);
            if self.trace.is_on() {
                buf.lane.push(Phase::Match, t0, self.trace.now_ns());
            }
        }
        let t0 = self.trace.now_ns();
        buf.live_pairs = self.evaluate_batches(&buf.queue, &self.node_tiles, &mut buf.forces);
        if self.trace.is_on() {
            buf.lane.push(Phase::Evaluate, t0, self.trace.now_ns());
        }
    }

    /// Reference-epoch positions of the persistent match cache — the
    /// positions its tiles and batches were last rebuilt at (empty while
    /// the cache is cold). Checkpointing serializes these so restore can
    /// resurrect the cache at the same epoch.
    pub fn match_ref_positions(&self) -> &[FxVec3] {
        self.cache.ref_positions()
    }

    /// Drop the persistent match cache: the next force evaluation rebuilds
    /// tiles and batches from scratch. Forces are unaffected by
    /// construction — the evaluator re-derives the interaction set from
    /// current positions every step — so this is safe at any point; the
    /// property tier uses it to pit a rebuild-every-step pipeline against
    /// a caching one, bit for bit.
    pub fn invalidate_match_cache(&mut self) {
        self.cache.invalidate();
    }

    /// Rebuild the persistent match cache — tiles, tile-pair batches, and
    /// the displacement reference — at the given *reference-epoch*
    /// positions, exactly as the interrupted run built it. Checkpoint
    /// restore calls this before re-evaluating forces: rebuilding at the
    /// cached epoch (rather than at the restored step's positions)
    /// reproduces the original displacement reference, so the monitor's
    /// future rebuild schedule — and with it every counter — continues
    /// bitwise as if the run had never stopped. Under `Nodes(n)` the rank
    /// set is re-homed at the epoch positions too, restoring the frozen
    /// deferred-migration assignment the cached queues were filled under.
    pub fn rebuild_match_cache_at(&mut self, sys: &System, positions: &[FxVec3]) {
        assert_eq!(
            positions.len(),
            sys.n_atoms(),
            "match-cache epoch has wrong atom count"
        );
        match self.decomposition {
            Decomposition::SingleRank => {
                let mut st = self.single.take().expect("single-rank tile state");
                self.rebuild_single_cache(sys, positions, &mut st);
                self.single = Some(st);
            }
            Decomposition::Nodes(_) => {
                let ref_state = FixedState {
                    positions: positions.to_vec(),
                    velocities: Vec::new(),
                };
                // Restore-time metering is discarded: the caller overwrites
                // the counters from the snapshot afterwards.
                let mut sink = ExchangeCounters::default();
                {
                    let rs = self.ranks.as_mut().expect("rank set under Nodes");
                    rs.prepare(&ref_state, &mut sink);
                }
                {
                    let ForcePipeline {
                        node_tiles, ranks, ..
                    } = self;
                    let rs = ranks.as_ref().expect("rank set under Nodes");
                    let charge = &sys.topology.charge;
                    node_tiles.rebuild(
                        (0..rs.grid.node_count()).map(|b| rs.atoms_in_box(b)),
                        |a| {
                            let p = &ref_state.positions[a as usize].0;
                            ([p[0].raw(), p[1].raw(), p[2].raw()], charge[a as usize])
                        },
                    );
                }
                let mut scratch = self.take_scratch(sys.n_atoms());
                {
                    let this = &*self;
                    let rs = this.ranks.as_ref().expect("rank set under Nodes");
                    for (r, buf) in scratch.iter_mut().enumerate() {
                        this.fill_rank_queue(sys, rs, r, &mut buf.queue);
                    }
                }
                self.scratch = scratch;
            }
        }
        self.cache.note_rebuild(positions);
    }

    /// Refill one rank's persistent match queue from the shared node tiles
    /// (the rebuild arm of [`Self::rank_pairs_batched`], span-free so
    /// checkpoint restore can replay the fill deterministically on the
    /// trunk).
    fn fill_rank_queue(&self, sys: &System, rs: &RankSet, r: usize, queue: &mut BatchQueue) {
        let rank = &rs.ranks[r];
        queue.begin();
        for tb in &rank.tower {
            let ca = rs.grid.index(*tb);
            let ta = self.node_tiles.tile(ca);
            if ta.is_empty() {
                continue;
            }
            let sa0 = self.node_tiles.tile_start(ca) as u32;
            let ha = rs.grid.coord(ca);
            for pb in &rank.plate {
                let cb = rs.grid.index(*pb);
                if rs.nt.node_for_pair(ha, rs.grid.coord(cb)) != rank.node {
                    continue;
                }
                self.match_tile_pair(
                    sys,
                    ta,
                    self.node_tiles.tile(cb),
                    ca == cb,
                    sa0,
                    self.node_tiles.tile_start(cb) as u32,
                    queue,
                );
            }
        }
    }

    /// Scalar NT-method pair enumeration for one rank: tower × plate
    /// candidates over the current home-box index, filtered by the
    /// exactly-once assignment per atom pair. Retained as the reference
    /// oracle for [`Self::rank_pairs_batched`].
    #[cfg(test)]
    fn rank_pairs(
        &self,
        sys: &System,
        state: &FixedState,
        rs: &RankSet,
        r: usize,
        out: &mut RawForces,
    ) {
        let rank = &rs.ranks[r];
        for tb in &rank.tower {
            for pb in &rank.plate {
                let same_box = tb == pb;
                for &i in rs.atoms_in_box(rs.grid.index(*tb)) {
                    for &j in rs.atoms_in_box(rs.grid.index(*pb)) {
                        if i == j || (same_box && i > j) {
                            continue;
                        }
                        if rs
                            .nt
                            .node_for_pair(rs.home(i as usize), rs.home(j as usize))
                            != rank.node
                        {
                            continue;
                        }
                        self.apply_pair(sys, state, i as usize, j as usize, out);
                    }
                }
            }
        }
    }

    /// This rank's statically assigned bonded terms (work lists fixed at
    /// construction, §3.2.3), from the shared decoded-position buffer.
    fn rank_bonded(&self, sys: &System, rs: &RankSet, r: usize, out: &mut RawForces) {
        let rank = &rs.ranks[r];
        let pos = &self.pos_buf;
        for &t in &rank.bonds {
            self.bond_term_into(sys, pos, t as usize, out);
        }
        for &t in &rank.angles {
            self.angle_term_into(sys, pos, t as usize, out);
        }
        for &t in &rank.dihedrals {
            self.dihedral_term_into(sys, pos, t as usize, out);
        }
    }

    /// This rank's statically assigned correction pairs, streamed through
    /// the batched correction kernel from the rank's packed static stream.
    fn rank_corrections(&self, state: &FixedState, r: usize, out: &mut RawForces) {
        self.correction_stream_into(state, &self.corr_rank[r], out);
    }

    /// Quantize an f64 force onto the Q24 grid and accumulate.
    #[inline]
    fn add_force(out: &mut RawForces, idx: u32, f: Vec3) {
        let fs = (1i64 << FORCE_FRAC) as f64;
        let a = &mut out.f[idx as usize];
        a[0] = a[0].wrapping_add(rne_f64(f.x * fs) as i64);
        a[1] = a[1].wrapping_add(rne_f64(f.y * fs) as i64);
        a[2] = a[2].wrapping_add(rne_f64(f.z * fs) as i64);
    }

    #[inline]
    fn bond_term_into(&self, sys: &System, pos: &[Vec3], t: usize, out: &mut RawForces) {
        let b = &sys.topology.bonds[t];
        let (u, fi, fj) = bonded::bond_term(&sys.pbox, pos, b);
        Self::add_force(out, b.i, fi);
        Self::add_force(out, b.j, fj);
        out.e_bonded = out
            .e_bonded
            .wrapping_add(rne_f64(u * (1u64 << ENERGY_FRAC) as f64) as i64);
    }

    #[inline]
    fn angle_term_into(&self, sys: &System, pos: &[Vec3], t: usize, out: &mut RawForces) {
        let a = &sys.topology.angles[t];
        let (u, fi, fj, fk) = bonded::angle_term(&sys.pbox, pos, a);
        Self::add_force(out, a.i, fi);
        Self::add_force(out, a.j, fj);
        Self::add_force(out, a.k_atom, fk);
        out.e_bonded = out
            .e_bonded
            .wrapping_add(rne_f64(u * (1u64 << ENERGY_FRAC) as f64) as i64);
    }

    #[inline]
    fn dihedral_term_into(&self, sys: &System, pos: &[Vec3], t: usize, out: &mut RawForces) {
        let d = &sys.topology.dihedrals[t];
        let (u, fi, fj, fk, fl) = bonded::dihedral_term(&sys.pbox, pos, d);
        Self::add_force(out, d.i, fi);
        Self::add_force(out, d.j, fj);
        Self::add_force(out, d.k_atom, fk);
        Self::add_force(out, d.l, fl);
        out.e_bonded = out
            .e_bonded
            .wrapping_add(rne_f64(u * (1u64 << ENERGY_FRAC) as f64) as i64);
    }

    /// Stream correction pairs (atom ids + precomputed charge product)
    /// through the batched correction kernel in 8-wide bundles — the
    /// flexible subsystem's analogue of the HTIS match batch. The packed
    /// streams were filtered of zero charge products at construction,
    /// exactly like the scalar reference's early return; per-lane
    /// arithmetic is bitwise identical to [`Self::correction_pair_into`].
    fn correction_stream_into(
        &self,
        state: &FixedState,
        pairs: &[(u32, u32, f64)],
        out: &mut RawForces,
    ) {
        let ds = 1.0 / (1i64 << 20) as f64;
        let mut qqs = [0.0f64; MATCH_WIDTH];
        let mut r2s = [0.0f64; MATCH_WIDTH];
        let mut ij = [(0u32, 0u32); MATCH_WIDTH];
        let mut dd = [[0i64; 3]; MATCH_WIDTH];
        let mut fill = 0usize;
        for &(i, j, qq) in pairs {
            let d = state.delta_q20(self.half_edge_q20, i as usize, j as usize);
            qqs[fill] = qq;
            r2s[fill] = (d[0] as f64 * ds).powi(2)
                + (d[1] as f64 * ds).powi(2)
                + (d[2] as f64 * ds).powi(2);
            ij[fill] = (i, j);
            dd[fill] = d;
            fill += 1;
            if fill == MATCH_WIDTH {
                self.corr_batch_into(&qqs, &r2s, &ij, &dd, fill, out);
                fill = 0;
            }
        }
        if fill > 0 {
            self.corr_batch_into(&qqs, &r2s, &ij, &dd, fill, out);
        }
    }

    /// Evaluate one (possibly partial) correction batch and scatter the
    /// quantized forces and energy (no virial — matching the scalar
    /// reference, which books correction pairs outside the pair virial).
    fn corr_batch_into(
        &self,
        qqs: &[f64; MATCH_WIDTH],
        r2s: &[f64; MATCH_WIDTH],
        ij: &[(u32, u32); MATCH_WIDTH],
        dd: &[[i64; 3]; MATCH_WIDTH],
        lanes: usize,
        out: &mut RawForces,
    ) {
        let mask = if lanes == MATCH_WIDTH {
            0xff
        } else {
            (1u8 << lanes) - 1
        };
        let mut vals = [(0.0f64, 0.0f64); MATCH_WIDTH];
        self.corr_kernel
            .exclusion_correction_batch(qqs, r2s, mask, &mut vals);
        let ds = 1.0 / (1i64 << 20) as f64;
        let fs = (1i64 << FORCE_FRAC) as f64;
        let es = (1u64 << ENERGY_FRAC) as f64;
        for lane in 0..lanes {
            let (e, f_over_r) = vals[lane];
            let d = dd[lane];
            let fi = [
                rne_f64(d[0] as f64 * ds * f_over_r * fs) as i64,
                rne_f64(d[1] as f64 * ds * f_over_r * fs) as i64,
                rne_f64(d[2] as f64 * ds * f_over_r * fs) as i64,
            ];
            let (i, j) = ij[lane];
            let a = &mut out.f[i as usize];
            a[0] = a[0].wrapping_add(fi[0]);
            a[1] = a[1].wrapping_add(fi[1]);
            a[2] = a[2].wrapping_add(fi[2]);
            let b = &mut out.f[j as usize];
            b[0] = b[0].wrapping_sub(fi[0]);
            b[1] = b[1].wrapping_sub(fi[1]);
            b[2] = b[2].wrapping_sub(fi[2]);
            out.e_correction = out.e_correction.wrapping_add(rne_f64(e * es) as i64);
        }
    }

    /// One correction pair (excluded or 1-4): the correction pipeline of
    /// the flexible subsystem (§3.1). Retained as the scalar reference
    /// oracle for the batched correction stream.
    #[cfg(test)]
    #[inline]
    fn correction_pair_into(
        &self,
        sys: &System,
        state: &FixedState,
        i: u32,
        j: u32,
        scale: f64,
        out: &mut RawForces,
    ) {
        let top = &sys.topology;
        let qq = top.charge[i as usize] * top.charge[j as usize] * scale;
        if qq == 0.0 {
            return;
        }
        let ds = 1.0 / (1i64 << 20) as f64;
        let fs = (1i64 << FORCE_FRAC) as f64;
        let d = state.delta_q20(self.half_edge_q20, i as usize, j as usize);
        let r2 =
            (d[0] as f64 * ds).powi(2) + (d[1] as f64 * ds).powi(2) + (d[2] as f64 * ds).powi(2);
        let (e, f_over_r) = self.corr_kernel.exclusion_correction(qq, r2);
        let fi = [
            rne_f64(d[0] as f64 * ds * f_over_r * fs) as i64,
            rne_f64(d[1] as f64 * ds * f_over_r * fs) as i64,
            rne_f64(d[2] as f64 * ds * f_over_r * fs) as i64,
        ];
        let a = &mut out.f[i as usize];
        a[0] = a[0].wrapping_add(fi[0]);
        a[1] = a[1].wrapping_add(fi[1]);
        a[2] = a[2].wrapping_add(fi[2]);
        let b = &mut out.f[j as usize];
        b[0] = b[0].wrapping_sub(fi[0]);
        b[1] = b[1].wrapping_sub(fi[1]);
        b[2] = b[2].wrapping_sub(fi[2]);
        out.e_correction = out
            .e_correction
            .wrapping_add(rne_f64(e * (1u64 << ENERGY_FRAC) as f64) as i64);
    }

    /// Bonded terms, serially over the whole topology: evaluated on the
    /// flexible subsystem in the paper; here each term's forces are
    /// computed from decoded positions and quantized per atom before
    /// accumulation (term order immaterial).
    pub fn bonded(&self, sys: &System, state: &FixedState, out: &mut RawForces) {
        let pos = state.decode_positions(&sys.pbox);
        for t in 0..sys.topology.bonds.len() {
            self.bond_term_into(sys, &pos, t, out);
        }
        for t in 0..sys.topology.angles.len() {
            self.angle_term_into(sys, &pos, t, out);
        }
        for t in 0..sys.topology.dihedrals.len() {
            self.dihedral_term_into(sys, &pos, t, out);
        }
    }

    /// Correction forces (excluded and 1-4 pairs), streamed through the
    /// batched correction kernel on the calling thread.
    pub fn corrections(&self, state: &FixedState, out: &mut RawForces) {
        self.correction_stream_into(state, &self.corr_all, out);
    }

    /// Long-range (mesh) forces via the fixed-point GSE pipeline, evaluated
    /// monolithically (all atoms on the calling thread). Allocation-free in
    /// steady state: positions decode into and mesh buffers live in the
    /// pipeline's reusable scratch.
    pub fn reciprocal(&mut self, sys: &System, state: &FixedState, out: &mut RawForces) {
        state.decode_positions_into(&sys.pbox, &mut self.pos_buf);
        let ForcePipeline {
            gse,
            gse_scratch,
            pos_buf,
            ..
        } = self;
        let e = gse.compute_fixed(
            pos_buf,
            &sys.topology.charge,
            FORCE_FRAC,
            &mut out.f,
            gse_scratch,
        );
        out.e_reciprocal = out.e_reciprocal.wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_forcefield::water::TIP3P;
    use anton_geometry::{CellGrid, PeriodicBox};
    use anton_systems::spec::RunParams;
    use anton_systems::waterbox::pure_water_topology;

    fn water_system(n: usize, seed: u64) -> System {
        let pbox = PeriodicBox::cubic(18.0);
        let (top, positions) = pure_water_topology(&pbox, &TIP3P, n, seed);
        System {
            name: "w".into(),
            pbox,
            topology: top,
            positions,
            params: RunParams::paper(7.5, 16),
        }
    }

    fn state_of(sys: &System) -> FixedState {
        FixedState::from_f64(&sys.pbox, &sys.positions, &vec![Vec3::ZERO; sys.n_atoms()])
    }

    /// The paper's parallel-invariance claim, at force granularity: the NT
    /// decomposition on several node counts produces bitwise identical raw
    /// forces to the single-rank cell-grid enumeration.
    #[test]
    fn forces_are_bitwise_invariant_across_decompositions() {
        let sys = water_system(140, 3);
        let state = state_of(&sys);

        let mut reference = RawForces::zeroed(sys.n_atoms());
        ForcePipeline::new(&sys, Decomposition::SingleRank, 1).range_limited(
            &sys,
            &state,
            &mut reference,
        );

        // The batched tile pipeline reproduces the scalar cell-grid
        // oracle bitwise.
        let mut oracle = RawForces::zeroed(sys.n_atoms());
        ForcePipeline::new(&sys, Decomposition::SingleRank, 1).range_limited_cellgrid(
            &sys,
            &state,
            &mut oracle,
        );
        assert_eq!(reference, oracle, "batched pipeline diverged from oracle");

        for nodes in [1usize, 2, 8, 64] {
            let mut pipe = ForcePipeline::new(&sys, Decomposition::Nodes(nodes), 1);
            let mut out = RawForces::zeroed(sys.n_atoms());
            pipe.range_limited(&sys, &state, &mut out);
            assert_eq!(out, reference, "decomposition over {nodes} nodes diverged");
        }
    }

    /// Thread-count invariance at force granularity: the full short- and
    /// long-range classes of a `Nodes(8)` pipeline are bitwise identical on
    /// 1, 2, and 4 worker threads.
    #[test]
    fn forces_are_bitwise_invariant_across_thread_counts() {
        let sys = water_system(140, 5);
        let state = state_of(&sys);
        let eval = |threads: usize| {
            let mut pipe = ForcePipeline::new(&sys, Decomposition::Nodes(8), threads);
            let mut short = RawForces::zeroed(sys.n_atoms());
            pipe.short_range(&sys, &state, &mut short);
            let mut long = RawForces::zeroed(sys.n_atoms());
            pipe.long_range(&sys, &state, &mut long);
            (short, long)
        };
        let reference = eval(1);
        for threads in [2usize, 4] {
            assert_eq!(eval(threads), reference, "{threads} threads diverged");
        }
    }

    /// The fused per-rank short-range/long-range paths agree bitwise with
    /// the serial reference composition of the same force classes.
    #[test]
    fn rank_execution_matches_serial_composition() {
        let sys = water_system(120, 11);
        let state = state_of(&sys);

        let mut serial = RawForces::zeroed(sys.n_atoms());
        let mut reference = ForcePipeline::new(&sys, Decomposition::SingleRank, 1);
        reference.short_range(&sys, &state, &mut serial);
        reference.corrections(&state, &mut serial);
        reference.reciprocal(&sys, &state, &mut serial);

        let mut pipe = ForcePipeline::new(&sys, Decomposition::Nodes(8), 2);
        let mut ranked = RawForces::zeroed(sys.n_atoms());
        pipe.short_range(&sys, &state, &mut ranked);
        pipe.long_range(&sys, &state, &mut ranked);
        assert_eq!(ranked, serial);
        // The fan-out metered its exchange traffic.
        assert_eq!(pipe.counters.steps, 1);
        assert!(pipe.counters.import_bytes > 0);
    }

    /// Multi-node long-range steps meter the FFT pencil and mesh-halo
    /// traffic; a single simulated node exchanges nothing.
    #[test]
    fn distributed_mesh_meters_fft_traffic() {
        let sys = water_system(120, 13);
        let state = state_of(&sys);

        let mut pipe = ForcePipeline::new(&sys, Decomposition::Nodes(8), 1);
        let mut out = RawForces::zeroed(sys.n_atoms());
        pipe.long_range(&sys, &state, &mut out);
        assert_eq!(pipe.counters.lr_steps, 1);
        assert!(pipe.counters.fft_messages > 0);
        assert!(pipe.counters.fft_bytes > 0);
        assert!(pipe.counters.mesh_halo_messages > 0);
        assert!(pipe.counters.mesh_halo_bytes > 0);

        let mut single = ForcePipeline::new(&sys, Decomposition::Nodes(1), 1);
        let mut out1 = RawForces::zeroed(sys.n_atoms());
        single.long_range(&sys, &state, &mut out1);
        assert_eq!(single.counters.lr_steps, 1);
        assert_eq!(single.counters.fft_messages, 0);
        assert_eq!(single.counters.mesh_halo_bytes, 0);
        // And the distributed evaluation is bitwise identical to it.
        assert_eq!(out, out1);
    }

    #[test]
    fn forces_are_deterministic() {
        let sys = water_system(100, 5);
        let state = state_of(&sys);
        let mut pipe = ForcePipeline::new(&sys, Decomposition::SingleRank, 1);
        let mut a = RawForces::zeroed(sys.n_atoms());
        let mut b = RawForces::zeroed(sys.n_atoms());
        for out in [&mut a, &mut b] {
            pipe.range_limited(&sys, &state, out);
            pipe.bonded(&sys, &state, out);
            pipe.corrections(&state, out);
            pipe.reciprocal(&sys, &state, out);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn range_limited_momentum_is_exactly_conserved() {
        // Pairwise quantized forces obey Newton's third law exactly, so the
        // raw force sum is exactly zero.
        let sys = water_system(120, 7);
        let state = state_of(&sys);
        let mut pipe = ForcePipeline::new(&sys, Decomposition::SingleRank, 1);
        let mut out = RawForces::zeroed(sys.n_atoms());
        pipe.range_limited(&sys, &state, &mut out);
        pipe.corrections(&state, &mut out);
        let mut net = [0i64; 3];
        for f in &out.f {
            for k in 0..3 {
                net[k] = net[k].wrapping_add(f[k]);
            }
        }
        assert_eq!(net, [0, 0, 0]);
    }

    /// Table 4's "numerical force error": the fixed-point/table forces
    /// against the same parameters evaluated in f64, as a fraction of the
    /// rms force — should land near the paper's ~1e-5.
    #[test]
    fn numerical_force_error_in_paper_decade() {
        let sys = water_system(150, 9);
        let state = state_of(&sys);
        let mut pipe = ForcePipeline::new(&sys, Decomposition::SingleRank, 1);
        let mut out = RawForces::zeroed(sys.n_atoms());
        pipe.range_limited(&sys, &state, &mut out);

        // f64 evaluation of the same interaction set with the same (exact)
        // kernels and same positions.
        let pos = state.decode_positions(&sys.pbox);
        let mut f64_forces = vec![Vec3::ZERO; sys.n_atoms()];
        let grid = CellGrid::build(&sys.pbox, &pos, sys.params.cutoff + PAIRLIST_SLACK);
        grid.for_each_pair_within(&pos, sys.params.cutoff + PAIRLIST_SLACK, |i, j, _d, _r2| {
            let top = &sys.topology;
            if top.exclusions.is_excluded(i as u32, j as u32) {
                return;
            }
            let d = state.delta_q20(pipe.half_edge_q20, i, j);
            let sum: i128 = d[0] as i128 * d[0] as i128
                + d[1] as i128 * d[1] as i128
                + d[2] as i128 * d[2] as i128;
            let r2q = anton_fixpoint::rne_shr_i128(sum, 20);
            if r2q > pipe.rc2_q20 || r2q == 0 {
                return;
            }
            let ds = 1.0 / (1i64 << 20) as f64;
            let r2 = (d[0] as f64 * ds).powi(2)
                + (d[1] as f64 * ds).powi(2)
                + (d[2] as f64 * ds).powi(2);
            let qq = top.charge[i] * top.charge[j];
            let (a, b) = top.lj_table.coeffs(top.lj_type[i], top.lj_type[j]);
            let (f_over_r, _e) = pipe.ppip.pair_exact(r2, qq, a, b);
            let dv = Vec3::new(d[0] as f64 * ds, d[1] as f64 * ds, d[2] as f64 * ds);
            f64_forces[i] += dv * f_over_r;
            f64_forces[j] -= dv * f_over_r;
        });

        let mut num = 0.0;
        let mut den = 0.0;
        for (i, ff) in f64_forces.iter().enumerate() {
            num += (out.force_f64(i) - *ff).norm2();
            den += ff.norm2();
        }
        let rel = (num / den).sqrt();
        assert!(rel < 1e-4, "numerical force error {rel:e}");
        assert!(rel > 1e-9, "suspiciously exact {rel:e}");
    }

    /// The pair-list slack exists to absorb decode/quantization
    /// disagreement between the f64 candidate distance (grid build and
    /// sweep) and the exact Q20 r² (the final per-pair decision). Measure
    /// the worst disagreement over a dense water box and pin it two
    /// orders of magnitude under [`PAIRLIST_SLACK`], so both enumeration
    /// sites keep a strict candidate superset.
    #[test]
    fn pairlist_slack_covers_decode_error() {
        let sys = water_system(150, 21);
        let state = state_of(&sys);
        let pipe = ForcePipeline::new(&sys, Decomposition::SingleRank, 1);
        let pos = state.decode_positions(&sys.pbox);
        let ds = 1.0 / (1i64 << 20) as f64;
        let mut worst: f64 = 0.0;
        for i in 0..sys.n_atoms() {
            for j in (i + 1)..sys.n_atoms() {
                let d = state.delta_q20(pipe.half_edge_q20, i, j);
                let r_fix = ((d[0] as f64 * ds).powi(2)
                    + (d[1] as f64 * ds).powi(2)
                    + (d[2] as f64 * ds).powi(2))
                .sqrt();
                let r_dec = sys.pbox.min_image(pos[i], pos[j]).norm2().sqrt();
                worst = worst.max((r_fix - r_dec).abs());
            }
        }
        assert!(worst > 0.0, "decode and fixed distances never disagree?");
        assert!(
            worst < PAIRLIST_SLACK / 100.0,
            "decode disagreement {worst} too close to the slack {PAIRLIST_SLACK}"
        );
    }

    /// The batched correction stream (8-wide bundles through
    /// `exclusion_correction_batch`) is bitwise identical to the scalar
    /// per-pair reference.
    #[test]
    fn batched_corrections_match_scalar_oracle() {
        let sys = water_system(140, 17);
        let state = state_of(&sys);
        let pipe = ForcePipeline::new(&sys, Decomposition::SingleRank, 1);

        let mut batched = RawForces::zeroed(sys.n_atoms());
        pipe.corrections(&state, &mut batched);

        let mut scalar = RawForces::zeroed(sys.n_atoms());
        let top = &sys.topology;
        for &(i, j) in top.exclusions.excluded_pairs() {
            pipe.correction_pair_into(&sys, &state, i, j, 1.0, &mut scalar);
        }
        for &(i, j) in top.exclusions.pairs_14() {
            pipe.correction_pair_into(&sys, &state, i, j, 1.0 - pipe.policy.elec_14, &mut scalar);
        }
        assert_eq!(batched, scalar);
        assert_ne!(batched.e_correction, 0);
    }

    /// The match census counters book the streamed work consistently:
    /// pairs ≤ candidates, the batch count covers the pairs at 8 lanes a
    /// batch, and the surviving pair count is invariant across
    /// decompositions (it is the exact interaction set's size).
    #[test]
    fn match_census_is_decomposition_invariant() {
        let sys = water_system(140, 19);
        let state = state_of(&sys);
        let census = |decomp: Decomposition| {
            let mut pipe = ForcePipeline::new(&sys, decomp, 1);
            let mut out = RawForces::zeroed(sys.n_atoms());
            pipe.range_limited(&sys, &state, &mut out);
            (
                pipe.counters.match_candidates,
                pipe.counters.match_pairs,
                pipe.counters.match_batches,
            )
        };
        let (cand, pairs, batches) = census(Decomposition::SingleRank);
        assert!(pairs > 0 && pairs <= cand);
        assert!(batches >= pairs.div_ceil(8));
        for nodes in [1usize, 8] {
            let (c, p, b) = census(Decomposition::Nodes(nodes));
            assert_eq!(p, pairs, "{nodes} nodes found a different pair set");
            assert!(p <= c);
            assert!(b >= p.div_ceil(8));
        }
    }
}

#[cfg(test)]
mod batched_oracle_props {
    //! Property tests of the tentpole invariant: on random boxed atom
    //! sets, the batched HTIS-shaped pipeline reproduces the retained
    //! scalar oracle's pair *set* and raw forces *bitwise*, across the
    //! single-rank path and `Nodes {1, 8, 64}`.
    use super::*;
    use anton_fixpoint::Fx32;
    use anton_forcefield::water::TIP3P;
    use anton_geometry::{CellGrid, PeriodicBox};
    use anton_systems::spec::RunParams;
    use anton_systems::waterbox::pure_water_topology;
    use proptest::prelude::*;

    fn water_system(n: usize, seed: u64) -> System {
        let pbox = PeriodicBox::cubic(18.0);
        let (top, positions) = pure_water_topology(&pbox, &TIP3P, n, seed);
        System {
            name: "w".into(),
            pbox,
            topology: top,
            positions,
            params: RunParams::paper(7.5, 16),
        }
    }

    fn state_of(sys: &System) -> FixedState {
        FixedState::from_f64(&sys.pbox, &sys.positions, &vec![Vec3::ZERO; sys.n_atoms()])
    }

    /// Exact interaction set per the scalar oracle (cell-grid sweep +
    /// `pair_contribution`'s exclusion and cutoff tests), normalized.
    fn oracle_pairs(pipe: &ForcePipeline, sys: &System, state: &FixedState) -> Vec<(u32, u32)> {
        let pos = state.decode_positions(&sys.pbox);
        let grid = CellGrid::build(&sys.pbox, &pos, sys.params.cutoff + PAIRLIST_SLACK);
        let mut pairs = Vec::new();
        grid.for_each_pair_within(&pos, sys.params.cutoff + PAIRLIST_SLACK, |i, j, _d, _r2| {
            if pipe.pair_contribution(sys, state, i, j).is_some() {
                pairs.push((i.min(j) as u32, i.max(j) as u32));
            }
        });
        pairs.sort_unstable();
        pairs
    }

    /// The *live* pair set the batched evaluator dispatched on the last
    /// `range_limited` call: queued (padded-radius) lanes filtered by the
    /// same exact `r² ≤ rc²` ladder the evaluator masks with, against the
    /// tiles' current (refreshed) positions.
    fn batched_pairs(pipe: &ForcePipeline) -> Vec<(u32, u32)> {
        let he = [
            pipe.half_edge_q20[0].raw(),
            pipe.half_edge_q20[1].raw(),
            pipe.half_edge_q20[2].raw(),
        ];
        let live = |q: &BatchQueue, tiles: &PosTiles| -> Vec<(u32, u32)> {
            let mut v = Vec::new();
            for (batch, meta) in q.iter() {
                for lane in 0..MATCH_WIDTH {
                    if batch.mask & (1u8 << lane) == 0 {
                        continue;
                    }
                    let pa = tiles.raw_at(meta.si[lane]);
                    let pb = tiles.raw_at(meta.sj[lane]);
                    let dx = pa[0].wrapping_sub(pb[0]) as i64;
                    let dy = pa[1].wrapping_sub(pb[1]) as i64;
                    let dz = pa[2].wrapping_sub(pb[2]) as i64;
                    let d = [
                        anton_fixpoint::rne_shr_i128(dx as i128 * he[0] as i128, 31),
                        anton_fixpoint::rne_shr_i128(dy as i128 * he[1] as i128, 31),
                        anton_fixpoint::rne_shr_i128(dz as i128 * he[2] as i128, 31),
                    ];
                    let sum: i128 = d[0] as i128 * d[0] as i128
                        + d[1] as i128 * d[1] as i128
                        + d[2] as i128 * d[2] as i128;
                    let r2 = anton_fixpoint::rne_shr_i128(sum, 20);
                    if r2 > pipe.rc2_q20 || r2 == 0 {
                        continue;
                    }
                    let (i, j) = (meta.i[lane], meta.j[lane]);
                    v.push((i.min(j), i.max(j)));
                }
            }
            v
        };
        let mut pairs: Vec<(u32, u32)> = match &pipe.single {
            Some(st) => live(&st.queue, &st.tiles),
            None => pipe
                .scratch
                .iter()
                .flat_map(|s| live(&s.queue, &pipe.node_tiles))
                .collect(),
        };
        pairs.sort_unstable();
        pairs
    }

    /// Scalar NT oracle: serial per-rank scalar enumeration after a
    /// fresh re-home.
    fn scalar_nodes_forces(
        pipe: &mut ForcePipeline,
        sys: &System,
        state: &FixedState,
    ) -> RawForces {
        let mut out = RawForces::zeroed(sys.n_atoms());
        {
            let rs = pipe.ranks.as_mut().expect("nodes oracle needs ranks");
            rs.prepare(state, &mut pipe.counters);
        }
        let rs = pipe.ranks.as_ref().expect("nodes oracle needs ranks");
        for r in 0..rs.rank_count() {
            pipe.rank_pairs(sys, state, rs, r, &mut out);
        }
        out
    }

    /// Drives the vendored [`TestRunner`] directly instead of the
    /// `proptest!` macro: each case builds PPIP tables several times, so
    /// the crate-wide 256-case default would dominate the suite.
    #[test]
    fn batched_path_matches_scalar_oracle() {
        let mut runner = TestRunner::new(concat!(module_path!(), "::batched_path"));
        for case in 0..6u32 {
            let n = Strategy::sample(&(20usize..60), runner.rng());
            let seed = Strategy::sample(&(0u64..(1u64 << 32)), runner.rng());
            let edge_decis = Strategy::sample(&(160u32..260), runner.rng());
            let pbox = PeriodicBox::cubic(edge_decis as f64 / 10.0);
            let (top, positions) = pure_water_topology(&pbox, &TIP3P, n, seed);
            let sys = System {
                name: "prop".into(),
                pbox,
                topology: top,
                positions,
                params: RunParams::paper(7.5, 16),
            };
            let state = state_of(&sys);
            let ctx = format!("case {case}: n={n} seed={seed} edge={edge_decis}");

            // Single rank: batched vs cell-grid scalar oracle.
            let mut sr = ForcePipeline::new(&sys, Decomposition::SingleRank, 1);
            let mut batched = RawForces::zeroed(sys.n_atoms());
            sr.range_limited(&sys, &state, &mut batched);
            let mut oracle = RawForces::zeroed(sys.n_atoms());
            sr.range_limited_cellgrid(&sys, &state, &mut oracle);
            assert_eq!(batched, oracle, "single-rank forces diverged ({ctx})");
            let oracle_set = oracle_pairs(&sr, &sys, &state);
            assert_eq!(
                batched_pairs(&sr),
                oracle_set,
                "single-rank pair set ({ctx})"
            );

            // Nodes {1, 8, 64}: batched vs the scalar NT oracle and vs
            // the single-rank result.
            for nodes in [1usize, 8, 64] {
                let mut np = ForcePipeline::new(&sys, Decomposition::Nodes(nodes), 1);
                let mut got = RawForces::zeroed(sys.n_atoms());
                np.range_limited(&sys, &state, &mut got);
                assert_eq!(got, oracle, "{nodes}-node forces diverged ({ctx})");
                assert_eq!(
                    batched_pairs(&np),
                    oracle_set,
                    "{nodes}-node pair set ({ctx})"
                );
                let scalar = scalar_nodes_forces(&mut np, &sys, &state);
                assert_eq!(got, scalar, "{nodes}-node scalar oracle ({ctx})");
            }
        }
    }

    /// The tentpole property of the persistent match cache: a pipeline
    /// reusing its cached tile/batch structure across a drifting
    /// trajectory produces bitwise-identical raw forces and identical
    /// *live* pair sets to a pipeline forced to rebuild from scratch
    /// every step — on every decomposition, straddling several
    /// displacement-triggered rebuild events — and the rebuild schedule
    /// itself is identical across decompositions (it is a pure function
    /// of the trajectory).
    #[test]
    fn cached_pipeline_matches_fresh_rebuild_every_step() {
        let sys = water_system(100, 29);
        let n = sys.n_atoms();
        let mut state = state_of(&sys);

        // The fresh oracle is invalidated before every evaluation, so it
        // re-matches at the current positions each step.
        let mut fresh = ForcePipeline::new(&sys, Decomposition::SingleRank, 1);
        let decomps = [
            Decomposition::SingleRank,
            Decomposition::Nodes(1),
            Decomposition::Nodes(8),
            Decomposition::Nodes(64),
        ];
        let mut cached: Vec<ForcePipeline> = decomps
            .iter()
            .map(|&d| ForcePipeline::new(&sys, d, 1))
            .collect();

        // Constant per-atom drift (splitmix-style hash): each axis moves
        // ~0.03–0.05 Å per step, so the monitor (threshold ~0.495 Å of
        // accumulated displacement) trips every ~6–8 steps.
        let drift = |atom: usize, axis: usize| -> Fx32 {
            let mut h = (atom as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((axis as u64).wrapping_mul(0xd1b5_4a32_d192_ed03));
            h ^= h >> 31;
            h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h ^= h >> 27;
            let mag = 7_000_000 + (h % 5_000_000) as i32;
            Fx32(if h >> 63 == 1 { -mag } else { mag })
        };

        let mut schedules: Vec<Vec<bool>> = vec![Vec::new(); cached.len()];
        for step in 0..20u32 {
            if step > 0 {
                for (a, p) in state.positions.iter_mut().enumerate() {
                    for k in 0..3 {
                        p.0[k] = p.0[k].wrapping_add(drift(a, k));
                    }
                }
            }
            fresh.invalidate_match_cache();
            let mut want = RawForces::zeroed(n);
            fresh.range_limited(&sys, &state, &mut want);
            let want_pairs = batched_pairs(&fresh);
            for (c, pipe) in cached.iter_mut().enumerate() {
                let before = pipe.counters.rebuild_steps;
                let mut got = RawForces::zeroed(n);
                pipe.range_limited(&sys, &state, &mut got);
                assert_eq!(got, want, "step {step}, {:?}: cached forces", decomps[c]);
                assert_eq!(
                    batched_pairs(pipe),
                    want_pairs,
                    "step {step}, {:?}: live pair set",
                    decomps[c]
                );
                schedules[c].push(pipe.counters.rebuild_steps > before);
            }
        }
        for (c, s) in schedules.iter().enumerate().skip(1) {
            assert_eq!(
                s, &schedules[0],
                "{:?}: rebuild schedule diverged from SingleRank",
                decomps[c]
            );
        }
        let rebuilds = schedules[0].iter().filter(|&&r| r).count();
        let reuses = schedules[0].len() - rebuilds;
        assert!(
            rebuilds >= 3,
            "want the initial build plus ≥2 displacement-triggered rebuilds, got {rebuilds}"
        );
        assert!(
            reuses >= 2,
            "want cache-reuse steps between rebuilds, got {reuses}"
        );
    }
}

#[cfg(test)]
mod virial_tests {
    use super::*;
    use anton_forcefield::{LjTable, Topology};
    use anton_geometry::PeriodicBox;
    use anton_systems::spec::RunParams;

    /// Two LJ atoms: the virial must equal r·F of the single pair.
    #[test]
    fn virial_of_single_pair_matches_r_dot_f() {
        let pbox = PeriodicBox::cubic(20.0);
        let top = Topology {
            mass: vec![39.9; 2],
            charge: vec![0.3, -0.3],
            lj_type: vec![0; 2],
            lj_table: LjTable::from_types(&[(3.4, 0.24)]),
            molecule_starts: vec![0, 1, 2],
            ..Default::default()
        };
        let positions = vec![Vec3::new(5.0, 5.0, 5.0), Vec3::new(8.6, 5.0, 5.0)];
        let sys = System {
            name: "pair".into(),
            pbox,
            topology: top,
            positions: positions.clone(),
            params: RunParams::paper(7.0, 16),
        };
        let state = FixedState::from_f64(&pbox, &positions, &[Vec3::ZERO; 2]);
        let mut pipe = ForcePipeline::new(&sys, Decomposition::SingleRank, 1);
        let mut out = RawForces::zeroed(2);
        pipe.range_limited(&sys, &state, &mut out);
        let f0 = out.force_f64(0);
        // r (from 0 to ... sign convention: d = r_i − r_j with force on i
        // along d) → W = d·F_i counted once.
        let d = pbox.min_image(positions[0], positions[1]);
        let want = d.dot(f0);
        let got = out.virial_f64();
        assert!(
            (got - want).abs() < 1e-4 * want.abs().max(1.0),
            "{got} vs {want}"
        );
    }

    /// The virial inherits parallel invariance from its wide accumulator.
    #[test]
    fn virial_is_decomposition_invariant() {
        use anton_forcefield::water::TIP3P;
        use anton_systems::waterbox::pure_water_topology;
        let pbox = PeriodicBox::cubic(18.0);
        let (top, positions) = pure_water_topology(&pbox, &TIP3P, 100, 13);
        let sys = System {
            name: "w".into(),
            pbox,
            topology: top,
            positions,
            params: RunParams::paper(7.5, 16),
        };
        let state = FixedState::from_f64(&pbox, &sys.positions, &vec![Vec3::ZERO; sys.n_atoms()]);
        let mut a = RawForces::zeroed(sys.n_atoms());
        ForcePipeline::new(&sys, Decomposition::SingleRank, 1).range_limited(&sys, &state, &mut a);
        let mut b = RawForces::zeroed(sys.n_atoms());
        ForcePipeline::new(&sys, Decomposition::Nodes(8), 2).range_limited(&sys, &state, &mut b);
        assert_eq!(a.virial, b.virial);
        assert_ne!(a.virial, anton_fixpoint::Wide::ZERO);
    }
}
