//! The simulated node as a first-class rank.
//!
//! A [`Rank`] is one node of the simulated machine: it owns the static
//! description of its force work — the tower/plate box lists of the NT
//! assignment (§3.2.1), its statically assigned bonded terms (§3.2.3), and
//! its share of the correction pairs — and, at execution time, a private
//! accumulator the pipeline merges in fixed rank order. A [`RankSet`]
//! bundles the ranks with the node grid, the NT assignment, the static
//! torus [`ExchangePlan`] they communicate over, and the per-step buffers
//! (unit fractions, homes, home-box index) that re-homing reuses without
//! allocating.
//!
//! Everything static is fixed at construction from the *initial*
//! configuration; atoms drifting across box boundaries later changes which
//! rank enumerates which pair but never the quantized contributions being
//! accumulated, so any static split is bitwise equivalent (paper §4).

use crate::state::FixedState;
use anton_geometry::{Buckets, IVec3};
use anton_machine::config::near_cubic_torus;
use anton_machine::exchange::ExchangePlan;
use anton_machine::perf::ExchangeCounters;
use anton_nt::assign::{NodeGrid, NtAssignment};
use anton_nt::bonds::{assign_terms, terms_per_node};
use anton_nt::migration::{assign_homes, assign_homes_into};
use anton_systems::System;

/// Relative geometry-core cost of one term of each bonded kind, used to
/// balance the static assignment (a dihedral is ~4 bond-equivalents).
const BOND_COST: f64 = 1.0;
const ANGLE_COST: f64 = 2.0;
const DIHEDRAL_COST: f64 = 4.0;

/// One simulated node's static work description.
#[derive(Clone, Debug)]
pub struct Rank {
    pub index: usize,
    pub node: IVec3,
    /// Tower boxes (home column ± zr), deduplicated under wrapping.
    pub tower: Vec<IVec3>,
    /// Plate boxes (home + half-neighborhood in the home layer).
    pub plate: Vec<IVec3>,
    /// Indices into `topology.bonds` this rank evaluates.
    pub bonds: Vec<u32>,
    /// Indices into `topology.angles`.
    pub angles: Vec<u32>,
    /// Indices into `topology.dihedrals`.
    pub dihedrals: Vec<u32>,
    /// Indices into `exclusions.excluded_pairs()`.
    pub excl: Vec<u32>,
    /// Indices into `exclusions.pairs_14()`.
    pub pair14: Vec<u32>,
}

/// The full simulated machine: ranks, their decomposition geometry, their
/// exchange schedule, and the reusable per-step re-homing buffers.
pub struct RankSet {
    pub grid: NodeGrid,
    pub nt: NtAssignment,
    pub plan: ExchangePlan,
    pub ranks: Vec<Rank>,
    groups: Vec<Vec<u32>>,
    fracs: Vec<[f64; 3]>,
    homes: Vec<IVec3>,
    buckets: Buckets,
    atoms_per_box: Vec<u32>,
}

impl RankSet {
    /// Build the rank architecture for `nodes` simulated nodes. `reach` is
    /// the cutoff plus the import margin covering deferred migration and
    /// constraint-group co-location (§3.2.4).
    pub fn build(sys: &System, nodes: usize, reach: f64) -> RankSet {
        let dims = near_cubic_torus(nodes);
        let grid = NodeGrid::new(dims[0] as i32, dims[1] as i32, dims[2] as i32);
        let e = sys.pbox.edge();
        let box_edges = [
            e.x / dims[0] as f64,
            e.y / dims[1] as f64,
            e.z / dims[2] as f64,
        ];
        let nt = NtAssignment::for_cutoff(grid, reach, box_edges);
        let plan = ExchangePlan::build(&nt);
        let groups: Vec<Vec<u32>> = sys
            .topology
            .constraint_groups
            .iter()
            .map(|g| g.atoms())
            .collect();

        // Static work lists from the initial configuration: each bonded
        // term / correction pair is pinned to the initial home node of its
        // first atom, then the bonded terms are load-balanced across that
        // node's geometry cores (LPT, §3.2.3).
        let init_fracs: Vec<[f64; 3]> = sys
            .positions
            .iter()
            .map(|&p| {
                let w = sys.pbox.wrap(p);
                [w.x / e.x, w.y / e.y, w.z / e.z]
            })
            .collect();
        let homes0 = assign_homes(&grid, &init_fracs, &groups);
        let node_of = |atom: u32| grid.index(homes0[atom as usize]) as u32;

        let top = &sys.topology;
        let (nb, na) = (top.bonds.len(), top.angles.len());
        let mut term_node = Vec::with_capacity(nb + na + top.dihedrals.len());
        let mut term_cost = Vec::with_capacity(term_node.capacity());
        for b in &top.bonds {
            term_node.push(node_of(b.i));
            term_cost.push(BOND_COST);
        }
        for a in &top.angles {
            term_node.push(node_of(a.i));
            term_cost.push(ANGLE_COST);
        }
        for d in &top.dihedrals {
            term_node.push(node_of(d.i));
            term_cost.push(DIHEDRAL_COST);
        }
        let gc = assign_terms(grid.node_count(), 8, &term_node, &term_cost);
        let per_node = terms_per_node(grid.node_count(), &gc);

        let mut ranks: Vec<Rank> = (0..grid.node_count())
            .map(|r| {
                let node = grid.coord(r);
                let mut rank = Rank {
                    index: r,
                    node,
                    tower: nt.tower_boxes(node),
                    plate: nt.plate_boxes(node),
                    bonds: Vec::new(),
                    angles: Vec::new(),
                    dihedrals: Vec::new(),
                    excl: Vec::new(),
                    pair14: Vec::new(),
                };
                for &t in &per_node[r] {
                    let t = t as usize;
                    if t < nb {
                        rank.bonds.push(t as u32);
                    } else if t < nb + na {
                        rank.angles.push((t - nb) as u32);
                    } else {
                        rank.dihedrals.push((t - nb - na) as u32);
                    }
                }
                rank
            })
            .collect();
        for (k, &(i, _j)) in top.exclusions.excluded_pairs().iter().enumerate() {
            ranks[node_of(i) as usize].excl.push(k as u32);
        }
        for (k, &(i, _j)) in top.exclusions.pairs_14().iter().enumerate() {
            ranks[node_of(i) as usize].pair14.push(k as u32);
        }

        RankSet {
            grid,
            nt,
            plan,
            ranks,
            groups,
            fracs: Vec::new(),
            homes: Vec::new(),
            buckets: Buckets::default(),
            atoms_per_box: Vec::new(),
        }
    }

    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// Re-home every atom for the current state (constraint groups on
    /// their leader, §3.2.4), rebuild the home-box index, and meter one
    /// step of the exchange plan into `c`. Allocation-free in steady state.
    pub fn prepare(&mut self, state: &FixedState, c: &mut ExchangeCounters) {
        state.unit_fracs_into(&mut self.fracs);
        assign_homes_into(&self.grid, &self.fracs, &self.groups, &mut self.homes);
        let RankSet {
            grid,
            homes,
            buckets,
            ..
        } = self;
        buckets.rebuild(grid.node_count(), homes.len(), |i| grid.index(homes[i]));
        self.atoms_per_box.clear();
        self.atoms_per_box
            .extend((0..self.grid.node_count()).map(|b| self.buckets.count(b) as u32));
        self.plan.record_step(&self.atoms_per_box, c);
    }

    /// Meter one exchange step over the *frozen* home assignment: between
    /// pair-list rebuilds atoms keep the boxes [`Self::prepare`] last gave
    /// them (deferred migration, paper §3.2.4), so the per-step position
    /// import / force reduction traffic is priced against the unchanged
    /// occupancy without re-homing anything.
    pub fn meter_step(&self, c: &mut ExchangeCounters) {
        self.plan.record_step(&self.atoms_per_box, c);
    }

    /// Whether [`Self::prepare`] has run for a state of `n_atoms` atoms —
    /// i.e. the home-box index is populated and `atoms_in_box` partitions
    /// the atom set.
    #[inline]
    pub fn is_prepared(&self, n_atoms: usize) -> bool {
        self.homes.len() == n_atoms
    }

    /// Current home box of an atom (valid after [`Self::prepare`]).
    #[inline]
    pub fn home(&self, atom: usize) -> IVec3 {
        self.homes[atom]
    }

    /// Atoms currently homed in one box (valid after [`Self::prepare`]).
    #[inline]
    pub fn atoms_in_box(&self, box_index: usize) -> &[u32] {
        self.buckets.members(box_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_forcefield::water::TIP3P;
    use anton_geometry::{PeriodicBox, Vec3};
    use anton_systems::spec::RunParams;
    use anton_systems::waterbox::pure_water_topology;

    fn water_system(n: usize, seed: u64) -> System {
        let pbox = PeriodicBox::cubic(18.0);
        let (top, positions) = pure_water_topology(&pbox, &TIP3P, n, seed);
        System {
            name: "w".into(),
            pbox,
            topology: top,
            positions,
            params: RunParams::paper(7.5, 16),
        }
    }

    /// Every bonded term and correction pair is owned by exactly one rank.
    #[test]
    fn static_work_lists_partition_the_topology() {
        let sys = water_system(120, 3);
        let rs = RankSet::build(&sys, 8, sys.params.cutoff + 8.0);
        assert_eq!(rs.rank_count(), 8);
        let total_bonds: usize = rs.ranks.iter().map(|r| r.bonds.len()).sum();
        let total_excl: usize = rs.ranks.iter().map(|r| r.excl.len()).sum();
        assert_eq!(total_bonds, sys.topology.bonds.len());
        assert_eq!(total_excl, sys.topology.exclusions.excluded_pairs().len());
        let mut seen = vec![false; sys.topology.bonds.len()];
        for r in &rs.ranks {
            for &t in &r.bonds {
                assert!(!seen[t as usize], "bond {t} owned twice");
                seen[t as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    /// After prepare, the home-box index covers every atom exactly once and
    /// constraint groups are co-located.
    #[test]
    fn prepare_rebuilds_a_consistent_home_index() {
        let sys = water_system(100, 5);
        let state =
            FixedState::from_f64(&sys.pbox, &sys.positions, &vec![Vec3::ZERO; sys.n_atoms()]);
        let mut rs = RankSet::build(&sys, 8, sys.params.cutoff + 8.0);
        let mut c = ExchangeCounters::default();
        rs.prepare(&state, &mut c);
        let covered: usize = (0..rs.grid.node_count())
            .map(|b| rs.atoms_in_box(b).len())
            .sum();
        assert_eq!(covered, sys.n_atoms());
        for g in &sys.topology.constraint_groups {
            let atoms = g.atoms();
            for &a in &atoms {
                assert_eq!(rs.home(a as usize), rs.home(atoms[0] as usize));
            }
        }
        assert_eq!(c.steps, 1);
        assert!(c.import_bytes > 0, "8 ranks must exchange positions");
    }
}
