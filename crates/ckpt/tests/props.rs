//! Property tests for the checkpoint format: serialize/deserialize
//! round-trips of random headers and snapshots, and a single-bit-flip
//! corpus asserting every flip anywhere in an encoded checkpoint is
//! detected by the magic/version checks or one of the two checksums.

use anton_ckpt::{CkptError, Header, Snapshot, HEADER_LEN, VERSION};
use proptest::prelude::*;

fn snapshot(step: u64, n_atoms: u64, state: Vec<u8>, counters: Vec<u64>, dropped: u64) -> Snapshot {
    // Derived from the state bytes so the section varies per case without
    // consuming another strategy slot.
    let match_ref: Vec<u8> = state.iter().rev().copied().collect();
    Snapshot {
        step,
        // Derived, not sampled: the vendored proptest caps the argument
        // count before this gets its own strategy, and any u64 works.
        fingerprint: step.wrapping_mul(0x9e3779b97f4a7c15) ^ n_atoms,
        n_atoms,
        state,
        counters,
        trace_dropped: [dropped, dropped.wrapping_mul(3)],
        match_ref,
    }
}

proptest! {
    /// Header encode/decode is the identity on the decoded fields.
    #[test]
    fn header_roundtrip(
        step in 0u64..u64::MAX,
        n_atoms in 0u64..u64::MAX,
        fingerprint in 0u64..u64::MAX,
        payload_len in 0u64..u64::MAX,
        payload_fnv in 0u64..u64::MAX,
        flags in 0u32..u32::MAX,
    ) {
        let h = Header {
            version: VERSION,
            flags,
            step,
            n_atoms,
            fingerprint,
            payload_len,
            payload_fnv,
        };
        let decoded = Header::decode(&h.encode());
        prop_assert_eq!(decoded.unwrap(), h);
    }

    /// Snapshot encode/decode is the identity for arbitrary payload
    /// shapes, including empty state and empty counters.
    #[test]
    fn snapshot_roundtrip(
        step in 0u64..1_000_000u64,
        n_atoms in 0u64..100_000u64,
        state in proptest::collection::vec(0u8..=255, 0..512),
        counters in proptest::collection::vec(0u64..u64::MAX, 0..20),
        dropped in 0u64..1000u64,
    ) {
        let s = snapshot(step, n_atoms, state, counters, dropped);
        let decoded = Snapshot::decode(&s.encode());
        prop_assert_eq!(decoded.unwrap(), s.clone());
        // Determinism of the encoding itself.
        prop_assert_eq!(s.encode(), s.encode());
    }

    /// Single-bit-flip corpus: flipping any one bit anywhere in an
    /// encoded checkpoint makes it unloadable, with a typed error — the
    /// guarantee `ckpt_drill` later exercises against real files.
    #[test]
    fn every_single_bit_flip_is_detected(
        step in 0u64..1_000_000u64,
        state in proptest::collection::vec(0u8..=255, 1..256),
        counters in proptest::collection::vec(0u64..u64::MAX, 0..16),
        flip_pos in 0usize..usize::MAX,
        flip_bit in 0u32..8u32,
    ) {
        let s = snapshot(step, state.len() as u64, state, counters, 0);
        let encoded = s.encode();
        let pos = flip_pos % encoded.len();
        let mut flipped = encoded.clone();
        flipped[pos] ^= 1u8 << flip_bit;
        let err = Snapshot::decode(&flipped).expect_err("bit flip must be detected");
        // A flip in the version field is incompatibility, not corruption;
        // everything else must classify as corruption.
        prop_assert!(
            err.is_corruption() || matches!(err, CkptError::BadVersion { .. }),
            "byte {} bit {}: unexpected error {}", pos, flip_bit, err
        );
    }

    /// Truncating an encoded checkpoint at any length is detected.
    #[test]
    fn every_truncation_is_detected(
        state in proptest::collection::vec(0u8..=255, 1..256),
        cut in 0usize..usize::MAX,
    ) {
        let s = snapshot(16, state.len() as u64, state, vec![0; 13], 0);
        let encoded = s.encode();
        let len = cut % encoded.len();
        let err = Snapshot::decode(&encoded[..len]).expect_err("truncation must be detected");
        prop_assert!(
            matches!(err, CkptError::TooShort { .. } | CkptError::Truncated { .. }),
            "cut to {}: unexpected error {}", len, err
        );
    }
}

/// Exhaustive (not sampled) single-bit-flip sweep over one representative
/// checkpoint: every bit of the header and a dense payload.
#[test]
fn exhaustive_bit_flips_on_representative_snapshot() {
    let s = snapshot(128, 4, (0u8..144).collect(), (0..13u64).collect(), 2);
    let encoded = s.encode();
    let mut detected = 0usize;
    for i in 0..encoded.len() {
        for bit in 0..8 {
            let mut f = encoded.clone();
            f[i] ^= 1 << bit;
            match Snapshot::decode(&f) {
                Err(_) => detected += 1,
                Ok(_) => panic!("undetected bit flip at byte {i} bit {bit}"),
            }
        }
    }
    assert_eq!(detected, encoded.len() * 8);
    assert!(encoded.len() > HEADER_LEN);
}
