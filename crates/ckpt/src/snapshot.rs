//! The snapshot payload: what a checkpoint actually carries.
//!
//! Payload layout after the [`Header`](crate::header::Header) (all
//! little-endian, lengths explicit so the decoder never infers):
//!
//! ```text
//! u64                 state_len
//! state_len bytes     engine state (FixedState::to_bytes — opaque here)
//! u64                 n_counter_words
//! n × u64             exchange counters (ExchangeCounters::to_words order)
//! u64                 trace dropped spans
//! u64                 trace dropped counters
//! ```
//!
//! The state bytes are deliberately opaque to this crate: `anton-core`
//! owns their interpretation (and validates the embedded atom count
//! against the header's `n_atoms` on restore), keeping the dependency
//! arrow pointing from the engine down to the format, never back.

use crate::error::CkptError;
use crate::fnv::fnv1a;
use crate::header::{Header, HEADER_LEN, VERSION};

/// A complete, self-describing simulation snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Inner-step counter at capture (always a cycle boundary when written
    /// by the engine's automatic cadence).
    pub step: u64,
    /// Config fingerprint of the run that wrote the snapshot.
    pub fingerprint: u64,
    /// Atom count (redundant with the state bytes; cross-checked).
    pub n_atoms: u64,
    /// Raw engine state bytes (`FixedState::to_bytes` format).
    pub state: Vec<u8>,
    /// Exchange-counter words (`ExchangeCounters::to_words` order).
    pub counters: Vec<u64>,
    /// Trace bookkeeping carried across a resume: `[dropped_spans,
    /// dropped_counters]`.
    pub trace_dropped: [u64; 2],
    /// Reference-epoch positions of the persistent match cache (raw
    /// `n_atoms × 3 × i32` little-endian fraction bits; empty when the
    /// cache was cold). Restore rebuilds the cache at this epoch so the
    /// displacement monitor's rebuild schedule — a pure function of the
    /// trajectory and this reference — continues bitwise across a resume.
    pub match_ref: Vec<u8>,
}

/// Little-endian u64 reader that tracks its own cursor.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u64(&mut self) -> Result<u64, CkptError> {
        let end = self.pos + 8;
        if end > self.bytes.len() {
            return Err(CkptError::TooShort {
                needed: end as u64,
                got: self.bytes.len() as u64,
            });
        }
        let v = u64::from_le_bytes(self.bytes[self.pos..end].try_into().unwrap());
        self.pos = end;
        Ok(v)
    }

    fn take(&mut self, len: u64, what: &'static str) -> Result<&'a [u8], CkptError> {
        let len_usize = usize::try_from(len).map_err(|_| CkptError::LengthMismatch {
            what,
            expected: len,
            got: self.bytes.len() as u64,
        })?;
        let end = self
            .pos
            .checked_add(len_usize)
            .ok_or(CkptError::LengthMismatch {
                what,
                expected: len,
                got: self.bytes.len() as u64,
            })?;
        if end > self.bytes.len() {
            return Err(CkptError::LengthMismatch {
                what,
                expected: len,
                got: (self.bytes.len() - self.pos) as u64,
            });
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }
}

impl Snapshot {
    /// Encode the payload section (everything after the header).
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            8 + self.state.len() + 8 + self.counters.len() * 8 + 16 + 8 + self.match_ref.len(),
        );
        out.extend_from_slice(&(self.state.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.state);
        out.extend_from_slice(&(self.counters.len() as u64).to_le_bytes());
        for w in &self.counters {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&self.trace_dropped[0].to_le_bytes());
        out.extend_from_slice(&self.trace_dropped[1].to_le_bytes());
        out.extend_from_slice(&(self.match_ref.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.match_ref);
        out
    }

    /// Encode the complete file image: header followed by payload. The
    /// encoding is a pure function of the snapshot — byte-identical runs
    /// write byte-identical checkpoints.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let header = Header {
            version: VERSION,
            flags: 0,
            step: self.step,
            n_atoms: self.n_atoms,
            fingerprint: self.fingerprint,
            payload_len: payload.len() as u64,
            payload_fnv: fnv1a(&payload),
        };
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&header.encode());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode and fully verify a file image produced by [`Self::encode`].
    ///
    /// Verification order: header (magic, version, header checksum), then
    /// payload length against the bytes present (shorter → `Truncated`,
    /// longer → `LengthMismatch`), then the payload checksum, then the
    /// payload structure. No length field is trusted before the checksum
    /// guarding it has been verified.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, CkptError> {
        let header = Header::decode(bytes)?;
        let body = &bytes[HEADER_LEN..];
        if (body.len() as u64) < header.payload_len {
            return Err(CkptError::Truncated {
                expected: header.payload_len,
                got: body.len() as u64,
            });
        }
        if body.len() as u64 > header.payload_len {
            return Err(CkptError::LengthMismatch {
                what: "trailing bytes after payload",
                expected: header.payload_len,
                got: body.len() as u64,
            });
        }
        let computed = fnv1a(body);
        if computed != header.payload_fnv {
            return Err(CkptError::ChecksumMismatch {
                what: "payload",
                stored: header.payload_fnv,
                computed,
            });
        }
        let mut r = Reader {
            bytes: body,
            pos: 0,
        };
        let state_len = r.u64()?;
        let state = r.take(state_len, "state section")?.to_vec();
        let n_words = r.u64()?;
        let words = r.take(n_words.saturating_mul(8), "counter section")?;
        let counters: Vec<u64> = words
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let dropped_spans = r.u64()?;
        let dropped_counters = r.u64()?;
        let match_ref_len = r.u64()?;
        let match_ref = r.take(match_ref_len, "match-cache epoch section")?.to_vec();
        if r.pos != body.len() {
            return Err(CkptError::LengthMismatch {
                what: "payload structure",
                expected: r.pos as u64,
                got: body.len() as u64,
            });
        }
        Ok(Snapshot {
            step: header.step,
            fingerprint: header.fingerprint,
            n_atoms: header.n_atoms,
            state,
            counters,
            trace_dropped: [dropped_spans, dropped_counters],
            match_ref,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            step: 64,
            fingerprint: 0x1122334455667788,
            n_atoms: 3,
            state: (0u8..116).collect(),
            counters: vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13],
            trace_dropped: [0, 7],
            match_ref: (0u8..36).collect(),
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let s = sample();
        assert_eq!(Snapshot::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn encode_is_deterministic() {
        assert_eq!(sample().encode(), sample().encode());
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let full = sample().encode();
        for len in 0..full.len() {
            let e = Snapshot::decode(&full[..len]).expect_err("truncation must fail");
            assert!(
                matches!(e, CkptError::TooShort { .. } | CkptError::Truncated { .. }),
                "len {len}: unexpected {e}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut b = sample().encode();
        b.push(0);
        assert_eq!(Snapshot::decode(&b).unwrap_err().kind(), "length_mismatch");
    }

    #[test]
    fn every_payload_bit_flip_is_detected() {
        let b = sample().encode();
        for i in HEADER_LEN..b.len() {
            for bit in 0..8 {
                let mut f = b.clone();
                f[i] ^= 1 << bit;
                let e = Snapshot::decode(&f).expect_err("flip must be detected");
                assert_eq!(e.kind(), "checksum_mismatch", "byte {i} bit {bit}");
            }
        }
    }
}
