//! The fixed 64-byte file header. Layout (all integers little-endian; see
//! DESIGN.md §12):
//!
//! ```text
//! offset  size  field
//!      0     8  magic            b"ANTCKPT1"
//!      8     4  version          u32 (currently 2)
//!     12     4  flags            u32 (reserved, 0)
//!     16     8  step             u64 inner-step counter at capture
//!     24     8  n_atoms          u64
//!     32     8  fingerprint      u64 config fingerprint (see fingerprint.rs)
//!     40     8  payload_len      u64 bytes following the header
//!     48     8  payload_fnv      u64 FNV-1a of the payload bytes
//!     56     8  header_fnv       u64 FNV-1a of header bytes 0..56
//! ```
//!
//! Every bit of the header is covered: a flip in the magic or version
//! fields fails those explicit checks, a flip anywhere else (including in
//! `header_fnv` itself) fails the header checksum. `header_fnv` is
//! verified **before** `payload_len` is trusted, so a corrupted length
//! can never direct the payload scan.

use crate::error::CkptError;
use crate::fnv::fnv1a;

/// File magic: "ANTon ChecKPoinT", format generation 1.
pub const MAGIC: [u8; 8] = *b"ANTCKPT1";
/// Current format version. Version 2 widened the exchange-counter block
/// from 13 to 16 words (match-stage batch census). Version 3 widened it
/// again to 18 words (rebuild/reuse census) and appended the match-cache
/// reference-epoch section to the payload.
pub const VERSION: u32 = 3;
/// Total encoded header size in bytes.
pub const HEADER_LEN: usize = 64;
/// Byte range covered by `header_fnv`.
const HASHED_LEN: usize = 56;

/// Decoded header fields (magic and checksums are handled by
/// [`Header::encode`] / [`Header::decode`], not stored).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    pub version: u32,
    pub flags: u32,
    pub step: u64,
    pub n_atoms: u64,
    pub fingerprint: u64,
    pub payload_len: u64,
    pub payload_fnv: u64,
}

impl Header {
    /// Encode to the canonical 64-byte layout, computing `header_fnv`.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut b = [0u8; HEADER_LEN];
        b[0..8].copy_from_slice(&MAGIC);
        b[8..12].copy_from_slice(&self.version.to_le_bytes());
        b[12..16].copy_from_slice(&self.flags.to_le_bytes());
        b[16..24].copy_from_slice(&self.step.to_le_bytes());
        b[24..32].copy_from_slice(&self.n_atoms.to_le_bytes());
        b[32..40].copy_from_slice(&self.fingerprint.to_le_bytes());
        b[40..48].copy_from_slice(&self.payload_len.to_le_bytes());
        b[48..56].copy_from_slice(&self.payload_fnv.to_le_bytes());
        let h = fnv1a(&b[..HASHED_LEN]);
        b[56..64].copy_from_slice(&h.to_le_bytes());
        b
    }

    /// Decode and fully verify a header from the start of `bytes`
    /// (magic, version, then the header checksum — in that order).
    pub fn decode(bytes: &[u8]) -> Result<Header, CkptError> {
        if bytes.len() < HEADER_LEN {
            return Err(CkptError::TooShort {
                needed: HEADER_LEN as u64,
                got: bytes.len() as u64,
            });
        }
        if bytes[0..8] != MAGIC {
            return Err(CkptError::BadMagic);
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let version = u32_at(8);
        if version != VERSION {
            return Err(CkptError::BadVersion {
                got: version,
                expected: VERSION,
            });
        }
        let stored = u64_at(56);
        let computed = fnv1a(&bytes[..HASHED_LEN]);
        if stored != computed {
            return Err(CkptError::ChecksumMismatch {
                what: "header",
                stored,
                computed,
            });
        }
        Ok(Header {
            version,
            flags: u32_at(12),
            step: u64_at(16),
            n_atoms: u64_at(24),
            fingerprint: u64_at(32),
            payload_len: u64_at(40),
            payload_fnv: u64_at(48),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Header {
        Header {
            version: VERSION,
            flags: 0,
            step: 12345,
            n_atoms: 1020,
            fingerprint: 0xdeadbeefcafef00d,
            payload_len: 36728,
            payload_fnv: 0x0123456789abcdef,
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let h = sample();
        assert_eq!(Header::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn short_input_is_too_short() {
        let e = Header::decode(&[0u8; 10]).unwrap_err();
        assert_eq!(e.kind(), "too_short");
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let mut b = sample().encode();
        b[0] ^= 0xff;
        assert_eq!(Header::decode(&b).unwrap_err().kind(), "bad_magic");

        let mut h = sample();
        h.version = VERSION + 1;
        assert_eq!(
            Header::decode(&h.encode()).unwrap_err().kind(),
            "bad_version"
        );
    }

    #[test]
    fn every_header_bit_flip_is_detected() {
        let b = sample().encode();
        for i in 0..HEADER_LEN {
            for bit in 0..8 {
                let mut f = b;
                f[i] ^= 1 << bit;
                let e = Header::decode(&f).expect_err("flip must be detected");
                assert!(
                    e.is_corruption() || matches!(e, CkptError::BadVersion { .. }),
                    "byte {i} bit {bit}: unexpected {e}"
                );
            }
        }
    }
}
