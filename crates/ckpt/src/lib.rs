//! `anton-ckpt`: deterministic checkpoint/restart for the Anton engine.
//!
//! The paper's headline is *millisecond-scale* simulation — wall-clock
//! months of machine time — which is only operable with crash-safe
//! checkpointing. Anton's determinism guarantee makes the strongest
//! possible contract available: a resumed run must be **bitwise
//! identical** to an uninterrupted one, so a checkpoint is nothing more
//! (and nothing less) than the exact raw fixed-point state plus enough
//! configuration fingerprinting to refuse a resume that could not honor
//! the contract.
//!
//! The crate provides:
//!
//! * a versioned binary file format ([`header`]) in which **every bit of
//!   the file is covered** by the magic/version check or one of two
//!   FNV-1a checksums (header and payload), so any single bit flip or
//!   truncation is detected at load time;
//! * the snapshot payload ([`snapshot`]): step counter, config
//!   fingerprint, the engine's raw state bytes (opaque here — the engine
//!   owns their interpretation), exchange counters, and trace
//!   drop counts;
//! * an on-disk store ([`store`]) with atomic temp-file+rename writes,
//!   deterministic step-derived file names, a human-readable manifest,
//!   last-K rotation, and newest-valid fallback recovery;
//! * typed corruption/incompatibility errors ([`error`]) shared with
//!   `anton-core::FixedState::from_bytes`.
//!
//! This crate is deliberately dependency-free (std only) so it can sit at
//! the bottom of the workspace stack: `anton-core` depends on it, not the
//! other way around. See DESIGN.md §12 for the format specification.

pub mod error;
pub mod fingerprint;
pub mod fnv;
pub mod header;
pub mod snapshot;
pub mod store;

pub use error::CkptError;
pub use fingerprint::Fingerprint;
pub use fnv::{fnv1a, Fnv64};
pub use header::{Header, HEADER_LEN, MAGIC, VERSION};
pub use snapshot::Snapshot;
pub use store::{atomic_write_bytes, load_file, CheckpointStore, WriteReceipt, MANIFEST_NAME};
