//! Typed corruption and incompatibility errors, shared across the
//! checkpoint stack: `anton-core::FixedState::from_bytes` returns the same
//! enum as the file loader, so a caller sees one error vocabulary whether
//! the damage is in the container or in the state payload.

use std::fmt;

/// Why a checkpoint (or a state byte string) could not be loaded.
///
/// The variants split into *corruption* (the bytes are damaged:
/// [`TooShort`](CkptError::TooShort), [`BadMagic`](CkptError::BadMagic),
/// [`Truncated`](CkptError::Truncated),
/// [`ChecksumMismatch`](CkptError::ChecksumMismatch),
/// [`LengthMismatch`](CkptError::LengthMismatch),
/// [`AtomCountMismatch`](CkptError::AtomCountMismatch)) and
/// *incompatibility* (the bytes are fine but must not be restored here:
/// [`BadVersion`](CkptError::BadVersion),
/// [`FingerprintMismatch`](CkptError::FingerprintMismatch)).
#[derive(Debug)]
pub enum CkptError {
    /// Fewer bytes than the fixed-size prefix being decoded requires.
    TooShort { needed: u64, got: u64 },
    /// The 8-byte magic is not `ANTCKPT1`: not a checkpoint file at all.
    BadMagic,
    /// A checkpoint from a different (future or retired) format version.
    BadVersion { got: u32, expected: u32 },
    /// A declared length disagrees with the bytes actually present.
    LengthMismatch {
        what: &'static str,
        expected: u64,
        got: u64,
    },
    /// Atom counts disagree between the header, the state payload, or the
    /// system being restored into.
    AtomCountMismatch { expected: u64, got: u64 },
    /// A stored FNV-1a checksum does not match the recomputed one.
    ChecksumMismatch {
        what: &'static str,
        stored: u64,
        computed: u64,
    },
    /// The file ends before its declared payload does (torn write that
    /// bypassed the atomic rename, or external truncation).
    Truncated { expected: u64, got: u64 },
    /// The snapshot was written under a different simulation configuration
    /// (node grid, thread count, system, or run parameters); restoring it
    /// could not reproduce the uninterrupted trajectory bitwise.
    FingerprintMismatch { stored: u64, expected: u64 },
    /// No file in the store's directory loaded cleanly.
    NoValidCheckpoint { dir: String },
    /// Checkpointing was not configured on this simulation.
    NotConfigured,
    /// Underlying filesystem error.
    Io(std::io::Error),
}

impl CkptError {
    /// Short stable tag naming the variant (drill reports, tests).
    pub fn kind(&self) -> &'static str {
        match self {
            CkptError::TooShort { .. } => "too_short",
            CkptError::BadMagic => "bad_magic",
            CkptError::BadVersion { .. } => "bad_version",
            CkptError::LengthMismatch { .. } => "length_mismatch",
            CkptError::AtomCountMismatch { .. } => "atom_count_mismatch",
            CkptError::ChecksumMismatch { .. } => "checksum_mismatch",
            CkptError::Truncated { .. } => "truncated",
            CkptError::FingerprintMismatch { .. } => "fingerprint_mismatch",
            CkptError::NoValidCheckpoint { .. } => "no_valid_checkpoint",
            CkptError::NotConfigured => "not_configured",
            CkptError::Io(_) => "io",
        }
    }

    /// True for variants that mean the *bytes* are damaged (as opposed to
    /// valid-but-incompatible, unconfigured, or a filesystem failure).
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            CkptError::TooShort { .. }
                | CkptError::BadMagic
                | CkptError::LengthMismatch { .. }
                | CkptError::AtomCountMismatch { .. }
                | CkptError::ChecksumMismatch { .. }
                | CkptError::Truncated { .. }
        )
    }
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::TooShort { needed, got } => {
                write!(f, "input too short: need {needed} bytes, got {got}")
            }
            CkptError::BadMagic => write!(f, "bad magic: not an anton-ckpt file"),
            CkptError::BadVersion { got, expected } => {
                write!(f, "unsupported format version {got} (expected {expected})")
            }
            CkptError::LengthMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: declared length {expected}, found {got}"),
            CkptError::AtomCountMismatch { expected, got } => {
                write!(f, "atom count mismatch: expected {expected}, got {got}")
            }
            CkptError::ChecksumMismatch {
                what,
                stored,
                computed,
            } => write!(
                f,
                "{what} checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            CkptError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated payload: declared {expected} bytes, found {got}"
                )
            }
            CkptError::FingerprintMismatch { stored, expected } => write!(
                f,
                "config fingerprint mismatch: checkpoint {stored:016x}, \
                 simulation {expected:016x} (different node grid, thread \
                 count, system, or run parameters)"
            ),
            CkptError::NoValidCheckpoint { dir } => {
                write!(f, "no valid checkpoint found in {dir}")
            }
            CkptError::NotConfigured => {
                write!(f, "checkpointing not configured (no checkpoint_dir)")
            }
            CkptError::Io(e) => write!(f, "checkpoint i/o: {e}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> CkptError {
        CkptError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_corruption_is_classified() {
        let c = CkptError::ChecksumMismatch {
            what: "payload",
            stored: 1,
            computed: 2,
        };
        assert_eq!(c.kind(), "checksum_mismatch");
        assert!(c.is_corruption());
        let f = CkptError::FingerprintMismatch {
            stored: 1,
            expected: 2,
        };
        assert_eq!(f.kind(), "fingerprint_mismatch");
        assert!(!f.is_corruption());
        assert!(!CkptError::NotConfigured.is_corruption());
    }

    #[test]
    fn display_is_informative() {
        let e = CkptError::Truncated {
            expected: 100,
            got: 60,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("60"), "{s}");
    }
}
