//! The on-disk checkpoint store: atomic writes, deterministic names,
//! manifest, last-K rotation, and newest-valid fallback recovery.
//!
//! **Atomicity.** A checkpoint is encoded in memory, written to
//! `ckpt-<step>.ant.tmp`, fsynced, and only then renamed to its final
//! `ckpt-<step>.ant` name. `rename(2)` is atomic on every POSIX
//! filesystem, so a crash at any instant leaves either the complete new
//! file or no new file — never a partially-written `.ant`. Leftover
//! `.tmp` files are invisible to recovery (the scan matches the final
//! suffix only).
//!
//! **Names.** Files are named by the zero-padded step counter, so the
//! lexicographic order is the step order and the name is a pure function
//! of simulation progress — never of wall-clock time, which would make
//! recovery order host-dependent (that shape is the `detlint` D4 fail
//! fixture `fail_ckpt_wallclock_name.rs`).
//!
//! **Rotation.** After each successful write the oldest files beyond
//! `keep` are pruned and the `MANIFEST` is atomically rewritten.
//!
//! **Recovery.** [`CheckpointStore::latest_valid`] scans files newest to
//! oldest and returns the first one that loads cleanly (full checksum
//! verification), so a corrupted newest checkpoint falls back to the
//! previous valid one. The manifest is advisory — human bookkeeping, never
//! load-bearing for recovery.

use crate::error::CkptError;
use crate::snapshot::Snapshot;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// File name of the advisory manifest.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Suffix of a finalized checkpoint file.
const SUFFIX: &str = ".ant";
/// Prefix of every checkpoint file name.
const PREFIX: &str = "ckpt-";

/// A directory of rotated checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

/// What one successful [`CheckpointStore::write`] did.
#[derive(Clone, Debug)]
pub struct WriteReceipt {
    /// Final path of the new checkpoint.
    pub path: PathBuf,
    /// Encoded file size in bytes.
    pub bytes: u64,
    /// Checkpoints rotated out by this write.
    pub pruned: Vec<PathBuf>,
}

/// Load and fully verify one checkpoint file.
pub fn load_file(path: &Path) -> Result<Snapshot, CkptError> {
    let bytes = fs::read(path)?;
    Snapshot::decode(&bytes)
}

/// Write `bytes` to `path` atomically: the data lands in `<path>.tmp`, is
/// fsynced, and only then renamed over the final name. `rename(2)` is
/// atomic on every POSIX filesystem, so a crash at any instant leaves
/// either the complete new file or the previous one — never a torn write.
/// This is the one sanctioned tmp+fsync+rename implementation in the
/// workspace: the checkpoint store's snapshot and manifest writes go
/// through it, and so does `anton-fleet`'s queue-state persistence.
pub fn atomic_write_bytes(path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Wall-clock milliseconds for the manifest's `written_unix_ms` column:
/// observability metadata for operators, recorded once per manifest write.
/// Recovery never reads it and no value derived from it flows anywhere
/// near simulation state.
// detlint::boundary(reason = "audited absorber: the timestamp lands only in the manifest's written_unix_ms operator column; recovery selection and checkpoint naming key off the step counter, so the value cannot reach simulation state")
fn wall_clock_ms() -> u64 {
    // detlint::allow(D4, reason = "manifest written-at timestamp: file-I/O boundary bookkeeping only; recovery order and checkpoint names derive from the step counter, never from this value")
    let now = std::time::SystemTime::now();
    now.duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl CheckpointStore {
    /// Open a store rooted at `dir`, creating the directory if needed.
    /// `keep` is clamped to at least 1 (a store that keeps nothing could
    /// never recover anything).
    pub fn create(dir: impl Into<PathBuf>, keep: usize) -> Result<CheckpointStore, CkptError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            keep: keep.max(1),
        })
    }

    /// Open a store over an existing directory without creating anything
    /// (resume path: the directory must already hold checkpoints).
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> CheckpointStore {
        CheckpointStore {
            dir: dir.into(),
            keep: keep.max(1),
        }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn keep(&self) -> usize {
        self.keep
    }

    /// Final path of the checkpoint for `step`: zero-padded so the
    /// lexicographic name order is the numeric step order.
    pub fn checkpoint_path(&self, step: u64) -> PathBuf {
        self.dir.join(format!("{PREFIX}{step:012}{SUFFIX}"))
    }

    /// All finalized checkpoints in the directory, sorted by ascending
    /// step. `.tmp` leftovers and foreign files are ignored; a directory
    /// scan (not the manifest) is the source of truth.
    pub fn list(&self) -> Result<Vec<(u64, PathBuf)>, CkptError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else {
                continue;
            };
            let Some(stem) = name
                .strip_prefix(PREFIX)
                .and_then(|s| s.strip_suffix(SUFFIX))
            else {
                continue;
            };
            let Ok(step) = stem.parse::<u64>() else {
                continue;
            };
            out.push((step, entry.path()));
        }
        // read_dir order is filesystem-dependent; the sort restores the
        // deterministic step order.
        out.sort_unstable_by_key(|(step, _)| *step);
        Ok(out)
    }

    /// Write `snap` atomically, rotate, and rewrite the manifest.
    pub fn write(&self, snap: &Snapshot) -> Result<WriteReceipt, CkptError> {
        let bytes = snap.encode();
        let final_path = self.checkpoint_path(snap.step);
        atomic_write_bytes(&final_path, &bytes)?;

        let mut entries = self.list()?;
        let mut pruned = Vec::new();
        while entries.len() > self.keep {
            let (_, path) = entries.remove(0);
            // Never prune the file just written, even with keep=1 and a
            // rewound step counter producing an unexpected order.
            if path == final_path {
                entries.insert(0, (snap.step, path));
                break;
            }
            fs::remove_file(&path)?;
            pruned.push(path);
        }
        self.write_manifest(&entries)?;

        Ok(WriteReceipt {
            path: final_path,
            bytes: bytes.len() as u64,
            pruned,
        })
    }

    /// Atomically rewrite the advisory manifest listing `entries`.
    fn write_manifest(&self, entries: &[(u64, PathBuf)]) -> Result<(), CkptError> {
        let mut s = String::new();
        s.push_str("anton-ckpt manifest v1\n");
        s.push_str(&format!("written_unix_ms {}\n", wall_clock_ms()));
        s.push_str(&format!("keep {}\n", self.keep));
        for (step, path) in entries {
            let size = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
            s.push_str(&format!("{step} {size} {name}\n"));
        }
        atomic_write_bytes(&self.dir.join(MANIFEST_NAME), &s.into_bytes())
    }

    /// The newest checkpoint that loads cleanly, with full checksum
    /// verification; corrupted or truncated files fall through to the
    /// next-newest. Errors with [`CkptError::NoValidCheckpoint`] when the
    /// directory holds no loadable checkpoint at all.
    pub fn latest_valid(&self) -> Result<(PathBuf, Snapshot), CkptError> {
        let entries = self.list()?;
        for (_, path) in entries.iter().rev() {
            if let Ok(snap) = load_file(path) {
                return Ok((path.clone(), snap));
            }
        }
        Err(CkptError::NoValidCheckpoint {
            dir: self.dir.display().to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(step: u64) -> Snapshot {
        Snapshot {
            step,
            fingerprint: 0xabcd,
            n_atoms: 2,
            state: vec![7u8; 80],
            counters: vec![step; 13],
            trace_dropped: [0, 0],
            match_ref: vec![9u8; 24],
        }
    }

    fn temp_store(tag: &str, keep: usize) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!(
            "anton-ckpt-store-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::create(dir, keep).unwrap()
    }

    #[test]
    fn write_load_roundtrip() {
        let store = temp_store("roundtrip", 3);
        let snap = sample(16);
        let receipt = store.write(&snap).unwrap();
        assert_eq!(receipt.bytes, snap.encode().len() as u64);
        assert_eq!(load_file(&receipt.path).unwrap(), snap);
        let (path, latest) = store.latest_valid().unwrap();
        assert_eq!(path, receipt.path);
        assert_eq!(latest, snap);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn rotation_keeps_last_k_and_manifest_tracks() {
        let store = temp_store("rotate", 2);
        for step in [16u64, 32, 48, 64] {
            store.write(&sample(step)).unwrap();
        }
        let steps: Vec<u64> = store.list().unwrap().iter().map(|(s, _)| *s).collect();
        assert_eq!(steps, [48, 64]);
        let manifest = fs::read_to_string(store.dir().join(MANIFEST_NAME)).unwrap();
        assert!(manifest.contains("ckpt-000000000064.ant"), "{manifest}");
        assert!(!manifest.contains("ckpt-000000000016.ant"), "{manifest}");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupted_newest_falls_back_to_previous_valid() {
        let store = temp_store("fallback", 4);
        store.write(&sample(16)).unwrap();
        store.write(&sample(32)).unwrap();
        // Flip one payload bit in the newest file.
        let newest = store.checkpoint_path(32);
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();
        assert_eq!(load_file(&newest).unwrap_err().kind(), "checksum_mismatch");
        let (path, snap) = store.latest_valid().unwrap();
        assert_eq!(path, store.checkpoint_path(16));
        assert_eq!(snap.step, 16);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn tmp_leftovers_and_foreign_files_are_invisible() {
        let store = temp_store("tmp", 3);
        store.write(&sample(16)).unwrap();
        // A torn write that never reached the rename, plus garbage that
        // apes the name pattern badly.
        fs::write(store.dir().join("ckpt-000000000032.ant.tmp"), b"torn").unwrap();
        fs::write(store.dir().join("notackpt.bin"), b"junk").unwrap();
        let steps: Vec<u64> = store.list().unwrap().iter().map(|(s, _)| *s).collect();
        assert_eq!(steps, [16]);
        let (_, snap) = store.latest_valid().unwrap();
        assert_eq!(snap.step, 16);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn atomic_write_bytes_replaces_whole_files_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!(
            "anton-ckpt-atomic-write-test-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("queue.ant");
        atomic_write_bytes(&path, b"first revision").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first revision");
        // Overwrite: the replacement is whole-file, never an append or a
        // partial in-place update.
        atomic_write_bytes(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        // The intermediate temp name never survives a completed write.
        assert!(!dir.join("queue.ant.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store_reports_no_valid_checkpoint() {
        let store = temp_store("empty", 3);
        assert_eq!(
            store.latest_valid().unwrap_err().kind(),
            "no_valid_checkpoint"
        );
        let _ = fs::remove_dir_all(store.dir());
    }
}
