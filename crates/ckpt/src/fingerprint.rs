//! The config fingerprint: a labeled FNV-1a digest of every configuration
//! input that the bitwise-resume contract depends on.
//!
//! The rule (DESIGN.md §12): a snapshot may only be restored into a
//! simulation whose fingerprint equals the one stored in the header.
//! Anything that could change a single bit of the continued trajectory —
//! the system (atom count, box, run parameters), the node decomposition,
//! the worker-thread count — goes into the digest. Fields are mixed with
//! their names and a separator, so reordering or merging two fields can
//! never collide into the same digest by construction accident.

use crate::fnv::Fnv64;

/// Builder for a labeled config digest.
///
/// ```
/// use anton_ckpt::Fingerprint;
/// let fp = Fingerprint::new()
///     .field("n_atoms", 1020)
///     .field("nodes", 8)
///     .finish();
/// assert_ne!(fp, Fingerprint::new().field("n_atoms", 1020).finish());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fingerprint {
    h: Fnv64,
}

impl Fingerprint {
    pub fn new() -> Fingerprint {
        Fingerprint { h: Fnv64::new() }
    }

    /// Mix one labeled u64 field (f64 inputs go through `to_bits()` at the
    /// caller, keeping this crate float-free).
    pub fn field(mut self, name: &str, value: u64) -> Fingerprint {
        // detlint::allow(D8, reason = "field labels are &str, so these bytes are UTF-8 — identical on every architecture; no integer layout is involved")
        self.h.update(name.as_bytes());
        self.h.update(&[0xff]);
        self.h.update(&value.to_le_bytes());
        self
    }

    pub fn finish(self) -> u64 {
        self.h.finish()
    }
}

impl Default for Fingerprint {
    fn default() -> Fingerprint {
        Fingerprint::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_order_and_names_matter() {
        let a = Fingerprint::new().field("x", 1).field("y", 2).finish();
        let b = Fingerprint::new().field("y", 2).field("x", 1).finish();
        let c = Fingerprint::new().field("x", 2).field("y", 1).finish();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn value_changes_change_the_digest() {
        let base = Fingerprint::new().field("threads", 1).finish();
        for t in 2u64..32 {
            assert_ne!(Fingerprint::new().field("threads", t).finish(), base);
        }
    }

    #[test]
    fn digest_is_stable() {
        let a = Fingerprint::new().field("n_atoms", 1020).finish();
        let b = Fingerprint::new().field("n_atoms", 1020).finish();
        assert_eq!(a, b);
    }
}
