//! FNV-1a 64-bit: the workspace's canonical cheap checksum. The same
//! constants hash state bytes in the golden tests and the scaling bench,
//! so a checkpoint's payload checksum is directly comparable to the
//! `state_checksum` values those artifacts record.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100000001b3;

/// Streaming FNV-1a 64-bit hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    #[inline]
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// One-shot FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Classic FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn every_single_bit_flip_changes_the_hash() {
        let data: Vec<u8> = (0u8..=255).collect();
        let reference = fnv1a(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(fnv1a(&flipped), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
