//! Cα Gō model of gpW for the Figure 7 folding/unfolding experiment.
//!
//! The paper simulated the 62-residue viral protein gpW for 236 µs at its
//! melting temperature and observed repeated folding and unfolding events.
//! An all-atom explicit-water reproduction of that trajectory is compute-
//! gated, so this module implements the standard structure-based (Gō)
//! substitution: one bead per residue, native contacts attract with a 12-10
//! potential, everything else repels, and bonded terms bias the chain toward
//! its native geometry. Near the model's melting temperature, Langevin
//! dynamics shows the same two-state hopping in the fraction of native
//! contacts Q(t) that the paper's Figure 7 illustrates with snapshots.

use anton_geometry::Vec3;
use serde::{Deserialize, Serialize};

/// A structure-based (Gō) model over Cα beads.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GoModel {
    /// Native Cα coordinates (Å).
    pub native: Vec<Vec3>,
    /// Native pseudo-bond lengths between consecutive beads.
    bond_r0: Vec<f64>,
    /// Native pseudo-angles.
    angle_t0: Vec<f64>,
    /// Native contacts `(i, j, r_native)` with `|i - j| >= 4`.
    pub contacts: Vec<(u32, u32, f64)>,
    /// Sorted `(i, j)` keys of `contacts`, for O(log n) membership tests.
    contact_keys: Vec<(u32, u32)>,
    /// Contact well depth ε (kcal/mol).
    pub eps_contact: f64,
    /// Repulsive core σ for non-native pairs (Å).
    pub sigma_rep: f64,
    pub k_bond: f64,
    pub k_angle: f64,
}

/// Build a synthetic gpW-like native structure: an α+β topology rendered as
/// two helical segments packed against a hairpin, 62 residues. Deterministic.
pub fn gpw_native() -> Vec<Vec3> {
    let mut ca = Vec::with_capacity(62);
    // Helix 1: residues 0..24, axis +x.
    for i in 0..24 {
        let t = i as f64 * 100.0_f64.to_radians();
        ca.push(Vec3::new(i as f64 * 1.5, 2.3 * t.cos(), 2.3 * t.sin()));
    }
    // Turn + hairpin strand 1: residues 24..38, coming back along -x at y ≈ 6.
    for i in 0..14 {
        ca.push(Vec3::new(
            34.0 - i as f64 * 2.2,
            6.0,
            1.5 + 0.3 * (i % 2) as f64,
        ));
    }
    // Hairpin strand 2: residues 38..48, going +x at y ≈ 10.5.
    for i in 0..10 {
        ca.push(Vec3::new(
            4.0 + i as f64 * 2.2,
            10.5,
            1.5 - 0.3 * (i % 2) as f64,
        ));
    }
    // Helix 2: residues 48..62, packed above helix 1.
    for i in 0..14 {
        let t = i as f64 * 100.0_f64.to_radians() + 0.7;
        ca.push(Vec3::new(
            26.0 - i as f64 * 1.5,
            5.0 + 2.3 * t.cos(),
            6.5 + 2.3 * t.sin(),
        ));
    }
    // Rescale consecutive distances to the canonical 3.8 Å Cα spacing.
    for i in 1..ca.len() {
        let d = ca[i] - ca[i - 1];
        let n = d.norm();
        if n > 1e-9 {
            let fixed = ca[i - 1] + d * (3.8 / n);
            let shift = fixed - ca[i];
            for p in ca.iter_mut().skip(i) {
                *p += shift;
            }
        }
    }
    ca
}

impl GoModel {
    /// Build a Gō model from a native structure: contacts are residue pairs
    /// `|i-j| ≥ 4` with native Cα distance < `contact_cutoff` (Å, typically 8).
    pub fn from_native(native: Vec<Vec3>, contact_cutoff: f64) -> GoModel {
        let n = native.len();
        let bond_r0 = (1..n).map(|i| (native[i] - native[i - 1]).norm()).collect();
        let angle_t0 = (1..n - 1)
            .map(|i| {
                let a = (native[i - 1] - native[i]).normalized().unwrap();
                let b = (native[i + 1] - native[i]).normalized().unwrap();
                a.dot(b).clamp(-1.0, 1.0).acos()
            })
            .collect();
        let mut contacts = Vec::new();
        for i in 0..n {
            for j in (i + 4)..n {
                let r = (native[i] - native[j]).norm();
                if r < contact_cutoff {
                    contacts.push((i as u32, j as u32, r));
                }
            }
        }
        let mut contact_keys: Vec<(u32, u32)> = contacts.iter().map(|&(i, j, _)| (i, j)).collect();
        contact_keys.sort_unstable();
        GoModel {
            native,
            bond_r0,
            angle_t0,
            contacts,
            contact_keys,
            eps_contact: 1.0,
            sigma_rep: 4.0,
            k_bond: 100.0,
            k_angle: 10.0,
        }
    }

    /// The standard gpW model used by the Figure 7 harness.
    pub fn gpw() -> GoModel {
        GoModel::from_native(gpw_native(), 6.5)
    }

    pub fn n_beads(&self) -> usize {
        self.native.len()
    }

    /// Compute forces into `forces` (must be zeroed by the caller) and return
    /// the potential energy. Open boundaries (no box): the Gō chain cannot
    /// dissociate.
    pub fn forces(&self, pos: &[Vec3], forces: &mut [Vec3]) -> f64 {
        let n = self.n_beads();
        debug_assert_eq!(pos.len(), n);
        let mut energy = 0.0;

        // Pseudo-bonds.
        for (i, &r0) in self.bond_r0.iter().enumerate() {
            let d = pos[i + 1] - pos[i];
            let r = d.norm();
            let dr = r - r0;
            energy += self.k_bond * dr * dr;
            let f = d * (-2.0 * self.k_bond * dr / r.max(1e-9));
            forces[i + 1] += f;
            forces[i] -= f;
        }
        // Pseudo-angles.
        for (idx, &t0) in self.angle_t0.iter().enumerate() {
            let j = idx + 1;
            let va = pos[j - 1] - pos[j];
            let vb = pos[j + 1] - pos[j];
            let (la, lb) = (va.norm(), vb.norm());
            let (ua, ub) = (va / la, vb / lb);
            let c = ua.dot(ub).clamp(-1.0, 1.0);
            let theta = c.acos();
            let s = (1.0 - c * c).sqrt().max(1e-8);
            let dt = theta - t0;
            energy += self.k_angle * dt * dt;
            let dudtheta = 2.0 * self.k_angle * dt;
            let f_a = (ub - ua * c) * (dudtheta / (la * s));
            let f_b = (ua - ub * c) * (dudtheta / (lb * s));
            forces[j - 1] += f_a;
            forces[j + 1] += f_b;
            forces[j] -= f_a + f_b;
        }
        // Native contacts: 12-10 well with minimum exactly at r_native.
        for &(i, j, rn) in &self.contacts {
            let d = pos[i as usize] - pos[j as usize];
            let r2 = d.norm2();
            let s2 = rn * rn / r2;
            let s10 = s2 * s2 * s2 * s2 * s2;
            let s12 = s10 * s2;
            energy += self.eps_contact * (5.0 * s12 - 6.0 * s10);
            // dU/dr² = ε(5·(-6)s¹²/r² + (-6)·(-5)... ) worked out:
            // U = ε(5 σ¹²r⁻¹² − 6 σ¹⁰ r⁻¹⁰); dU/dr = ε(−60σ¹²r⁻¹³ + 60 σ¹⁰ r⁻¹¹)
            // force = −dU/dr · d̂ on i.
            let fmag_over_r = self.eps_contact * 60.0 * (s12 - s10) / r2;
            let f = d * fmag_over_r;
            forces[i as usize] += f;
            forces[j as usize] -= f;
        }
        // Non-native repulsion for |i-j| >= 4 (skip bonded/angle neighbors).
        let s2r = self.sigma_rep * self.sigma_rep;
        for i in 0..n as u32 {
            for j in (i + 4)..n as u32 {
                if self.contact_keys.binary_search(&(i, j)).is_ok() {
                    continue;
                }
                let d = pos[i as usize] - pos[j as usize];
                let r2 = d.norm2();
                if r2 > 4.0 * s2r {
                    continue;
                }
                let s2 = s2r / r2;
                let s12 = s2 * s2 * s2 * s2 * s2 * s2;
                energy += self.eps_contact * s12;
                let f = d * (12.0 * self.eps_contact * s12 / r2);
                forces[i as usize] += f;
                forces[j as usize] -= f;
            }
        }
        energy
    }

    /// Fraction of native contacts currently formed (contact counts as
    /// formed when `r < 1.2 r_native`): the Q(t) reaction coordinate.
    pub fn fraction_native(&self, pos: &[Vec3]) -> f64 {
        let formed = self
            .contacts
            .iter()
            .filter(|&&(i, j, rn)| (pos[i as usize] - pos[j as usize]).norm() < 1.2 * rn)
            .count();
        formed as f64 / self.contacts.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_structure_is_chain_like() {
        let ca = gpw_native();
        assert_eq!(ca.len(), 62);
        for w in ca.windows(2) {
            let d = (w[1] - w[0]).norm();
            assert!((d - 3.8).abs() < 1e-9, "consecutive Cα at {d}");
        }
    }

    #[test]
    fn model_has_reasonable_contact_count() {
        let m = GoModel::gpw();
        // A folded 62-residue protein has on the order of 1–2 contacts per
        // residue at an 8 Å Cα cutoff.
        assert!(
            m.contacts.len() > 40 && m.contacts.len() < 300,
            "contacts = {}",
            m.contacts.len()
        );
    }

    #[test]
    fn native_state_is_energy_minimum_with_q_one() {
        let m = GoModel::gpw();
        let mut f = vec![Vec3::ZERO; m.n_beads()];
        let e_native = m.forces(&m.native, &mut f);
        assert!((m.fraction_native(&m.native) - 1.0).abs() < 1e-12);
        // Perturbed structure has higher energy.
        let stretched: Vec<Vec3> = m.native.iter().map(|p| *p * 1.3).collect();
        let mut f2 = vec![Vec3::ZERO; m.n_beads()];
        let e_stretched = m.forces(&stretched, &mut f2);
        assert!(e_stretched > e_native + 10.0, "{e_stretched} vs {e_native}");
    }

    #[test]
    fn forces_match_numerical_gradient() {
        let m = GoModel::gpw();
        // Slightly perturbed from native so no term is exactly at a minimum.
        let pos: Vec<Vec3> = m
            .native
            .iter()
            .enumerate()
            .map(|(i, p)| *p + Vec3::new(0.05 * ((i % 3) as f64 - 1.0), 0.03, -0.04))
            .collect();
        let mut f = vec![Vec3::ZERO; m.n_beads()];
        m.forces(&pos, &mut f);
        let h = 1e-6;
        let mut p2 = pos.clone();
        for i in [0usize, 10, 30, 61] {
            for ax in 0..3 {
                p2[i][ax] += h;
                let mut tmp = vec![Vec3::ZERO; m.n_beads()];
                let up = m.forces(&p2, &mut tmp);
                p2[i][ax] -= 2.0 * h;
                let mut tmp2 = vec![Vec3::ZERO; m.n_beads()];
                let um = m.forces(&p2, &mut tmp2);
                p2[i][ax] += h;
                let num = -(up - um) / (2.0 * h);
                assert!(
                    (f[i][ax] - num).abs() < 1e-3 * (1.0 + num.abs()),
                    "bead {i} axis {ax}: {} vs {num}",
                    f[i][ax]
                );
            }
        }
    }

    #[test]
    fn net_force_is_zero() {
        let m = GoModel::gpw();
        let pos: Vec<Vec3> = m
            .native
            .iter()
            .map(|p| *p + Vec3::new(0.1, -0.07, 0.02))
            .collect();
        let mut f = vec![Vec3::ZERO; m.n_beads()];
        m.forces(&pos, &mut f);
        let net = f.iter().fold(Vec3::ZERO, |a, &b| a + b);
        assert!(net.norm() < 1e-9, "net {net:?}");
    }
}
