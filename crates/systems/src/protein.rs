//! Synthetic all-atom protein builder.
//!
//! Stands in for the PDB structures + AMBER99SB/OPLS-AA parameters of the
//! paper (see DESIGN.md §2). Each residue carries eight atoms in a realistic
//! bonded pattern:
//!
//! ```text
//!        H   HA  HB
//!        |   |   |
//!   ...- N - CA -CB      (CB is a side-chain stub)
//!            |
//!            C = O  -  N(next residue) ...
//! ```
//!
//! The heavy backbone (…N-CA-C-N…) is laid out along the arc of a helix with
//! a small radial zigzag (so that backbone angles stay away from the
//! collinear singularity); pendant atoms hang off radially/axially.
//! Equilibrium bond lengths, angles and dihedral phases are taken from the
//! *built* geometry, so every system starts strain-free — which makes the
//! NVE energy-drift measurements of Table 4 meaningful from step 0.
//! Hydrogens attach through rigid constraints ("bond lengths to hydrogen
//! atoms were constrained", Table 4 caption).

use anton_forcefield::exclusions::ExclusionPolicy;
use anton_forcefield::topology::{Angle, Bond, ConstraintGroup, Dihedral, Topology};
use anton_geometry::Vec3;

/// Atoms added per residue.
pub const ATOMS_PER_RESIDUE: usize = 8;

/// Backbone arc length consumed per residue: N–CA + CA–C + C–N(next).
const ARC_PER_RESIDUE: f64 = 1.458 + 1.525 + 1.329;
const R_X_H: f64 = 1.010;
const R_CA_CB: f64 = 1.530;
const R_C_O: f64 = 1.229;
/// Radial zigzag amplitude keeping backbone angles off the collinear
/// singularity of the harmonic angle force.
const ZIG: f64 = 0.35;

/// Shared LJ type table indices used across the workspace's systems:
/// 0 = water O, 1 = H (no LJ), 2 = C, 3 = N, 4 = O, 5 = ion.
pub const LJ_WATER_O: u16 = 0;
pub const LJ_H: u16 = 1;
pub const LJ_C: u16 = 2;
pub const LJ_N: u16 = 3;
pub const LJ_O: u16 = 4;
pub const LJ_ION: u16 = 5;
/// Protein hydrogens: a small LJ core (bare charged hydrogens collapse onto
/// carbonyl oxygens in vacuum otherwise; real force fields do the same).
pub const LJ_HP: u16 = 6;

/// `(σ, ε)` per LJ type for a given water model's oxygen.
pub fn standard_lj_types(water_sigma: f64, water_eps: f64) -> Vec<(f64, f64)> {
    vec![
        (water_sigma, water_eps), // water oxygen
        (1.0, 0.0),               // hydrogens: no LJ
        (3.40, 0.086),            // carbon
        (3.25, 0.170),            // nitrogen
        (2.96, 0.210),            // carbonyl oxygen
        (4.40, 0.100),            // chloride-like ion
        (2.00, 0.020),            // protein hydrogen (small core)
    ]
}

/// Per-residue charges, AMBER-like, summing to zero:
/// N, HN, CA, HA, CB, HB, C, O.
const CHARGES: [f64; 8] = [-0.40, 0.30, 0.05, 0.10, -0.15, 0.10, 0.50, -0.50];
const MASSES: [f64; 8] = [
    14.0067, 1.008, 12.011, 1.008, 12.011, 1.008, 12.011, 15.9994,
];
const LJ_TYPES: [u16; 8] = [LJ_N, LJ_HP, LJ_C, LJ_HP, LJ_C, LJ_HP, LJ_C, LJ_O];

/// A built protein fragment, before merging into a full system.
#[derive(Clone, Debug)]
pub struct ProteinChain {
    pub positions: Vec<Vec3>,
    pub mass: Vec<f64>,
    pub charge: Vec<f64>,
    pub lj_type: Vec<u16>,
    pub bonds: Vec<Bond>,
    pub angles: Vec<Angle>,
    pub dihedrals: Vec<Dihedral>,
    pub constraint_groups: Vec<ConstraintGroup>,
    /// `(N, HN)` index pairs per residue, for order-parameter analysis.
    pub nh_pairs: Vec<(u32, u32)>,
    pub n_residues: usize,
}

impl ProteinChain {
    pub fn n_atoms(&self) -> usize {
        self.positions.len()
    }
}

/// Point on (or offset from) a helix of radius `r` and pitch `pitch` wound
/// around the z-axis through `center`, parametrized by arc length `s`.
fn helix_point(
    center: Vec3,
    r: f64,
    pitch: f64,
    half_height: f64,
    s: f64,
    radial_off: f64,
    axial_off: f64,
) -> Vec3 {
    let l_turn = ((2.0 * std::f64::consts::PI * r).powi(2) + pitch * pitch).sqrt();
    let theta = 2.0 * std::f64::consts::PI * s / l_turn;
    let z = pitch * s / l_turn - half_height;
    center
        + Vec3::new(theta.cos(), theta.sin(), 0.0) * (r + radial_off)
        + Vec3::new(0.0, 0.0, z + axial_off)
}

fn measured_angle(pos: &[Vec3], i: u32, j: u32, k: u32) -> f64 {
    let a = (pos[i as usize] - pos[j as usize]).normalized().unwrap();
    let b = (pos[k as usize] - pos[j as usize]).normalized().unwrap();
    a.dot(b).clamp(-1.0, 1.0).acos()
}

fn measured_dist(pos: &[Vec3], i: u32, j: u32) -> f64 {
    (pos[i as usize] - pos[j as usize]).norm()
}

/// Build a synthetic protein of `n_residues` residues wound on a helix of
/// radius `helix_radius` (Å) advancing `pitch` Å per turn, centered at
/// `center`. Deterministic for given arguments, and strain-free at t = 0.
pub fn build_chain(n_residues: usize, center: Vec3, helix_radius: f64, pitch: f64) -> ProteinChain {
    assert!(n_residues >= 2);
    let l_turn = ((2.0 * std::f64::consts::PI * helix_radius).powi(2) + pitch * pitch).sqrt();
    let total_arc = n_residues as f64 * ARC_PER_RESIDUE;
    let half_height = pitch * total_arc / l_turn / 2.0;

    let mut positions = Vec::with_capacity(n_residues * ATOMS_PER_RESIDUE);
    let mut mass = Vec::new();
    let mut charge = Vec::new();
    let mut lj_type = Vec::new();
    let mut constraint_groups = Vec::new();
    let mut nh_pairs = Vec::new();

    let pt =
        |s: f64, ro: f64, ao: f64| helix_point(center, helix_radius, pitch, half_height, s, ro, ao);

    for res in 0..n_residues {
        let s0 = res as f64 * ARC_PER_RESIDUE;
        let zig = if res % 2 == 0 { ZIG } else { -ZIG };
        let (s_n, s_ca, s_c) = (s0, s0 + 1.458, s0 + 2.983);

        let p_n = pt(s_n, zig, 0.0);
        let p_hn = pt(s_n, zig - R_X_H, 0.0);
        let p_ca = pt(s_ca, zig, 0.0);
        let p_ha = pt(s_ca, zig, R_X_H);
        let p_cb = pt(s_ca, zig + R_CA_CB, 0.0);
        let p_hb = pt(s_ca, zig + R_CA_CB + R_X_H, 0.0);
        let p_c = pt(s_c, zig, 0.0);
        let p_o = pt(s_c, zig, -R_C_O);

        let base = positions.len() as u32;
        positions.extend_from_slice(&[p_n, p_hn, p_ca, p_ha, p_cb, p_hb, p_c, p_o]);
        mass.extend(MASSES);
        charge.extend(CHARGES);
        lj_type.extend(LJ_TYPES);

        let (n, hn, ca, ha, cb, hb) = (base, base + 1, base + 2, base + 3, base + 4, base + 5);
        nh_pairs.push((n, hn));
        constraint_groups.push(ConstraintGroup {
            pairs: vec![
                (n, hn, measured_dist(&positions, n, hn)),
                (ca, ha, measured_dist(&positions, ca, ha)),
                (cb, hb, measured_dist(&positions, cb, hb)),
            ],
        });
    }

    // Term lists with equilibrium values from the built geometry.
    let mut bonds = Vec::new();
    let mut angles = Vec::new();
    let mut dihedrals = Vec::new();
    let bond = |positions: &Vec<Vec3>, i: u32, j: u32, k: f64| Bond {
        i,
        j,
        r0: measured_dist(positions, i, j),
        k,
    };
    for res in 0..n_residues as u32 {
        let base = res * ATOMS_PER_RESIDUE as u32;
        let (n, ca, cb, c, o) = (base, base + 2, base + 4, base + 6, base + 7);
        bonds.push(bond(&positions, n, ca, 330.0));
        bonds.push(bond(&positions, ca, c, 310.0));
        bonds.push(bond(&positions, ca, cb, 310.0));
        bonds.push(bond(&positions, c, o, 570.0));
        let mut angle = |i: u32, j: u32, k_atom: u32, k: f64| {
            angles.push(Angle {
                i,
                j,
                k_atom,
                theta0: measured_angle(&positions, i, j, k_atom),
                k,
            });
        };
        angle(n, ca, c, 63.0);
        angle(n, ca, cb, 60.0);
        angle(cb, ca, c, 63.0);
        angle(ca, c, o, 80.0);

        if res > 0 {
            let prev = base - ATOMS_PER_RESIDUE as u32;
            let (pn, pca, pc) = (prev, prev + 2, prev + 6);
            bonds.push(bond(&positions, pc, n, 410.0));
            angle(pca, pc, n, 70.0);
            angle(pc, n, ca, 50.0);
            // Backbone dihedrals: phase chosen so the built conformation is
            // a minimum of each term (nφ₀ − phase = π).
            let mut dih = |i: u32, j: u32, k_atom: u32, l: u32, mult: u32, k: f64| {
                let phi = anton_forcefield::bonded::dihedral_angle(
                    &anton_geometry::PeriodicBox::cubic(1.0e6),
                    &positions,
                    i,
                    j,
                    k_atom,
                    l,
                );
                let phi0 = mult as f64 * phi - std::f64::consts::PI;
                dihedrals.push(Dihedral {
                    i,
                    j,
                    k_atom,
                    l,
                    n: mult,
                    phi0,
                    k,
                });
            };
            dih(pn, pca, pc, n, 1, 2.5);
            dih(pn, pca, pc, n, 2, 1.2);
            dih(pca, pc, n, ca, 2, 2.0);
            dih(pc, n, ca, c, 3, 0.8);
        }
    }

    ProteinChain {
        positions,
        mass,
        charge,
        lj_type,
        bonds,
        angles,
        dihedrals,
        constraint_groups,
        nh_pairs,
        n_residues,
    }
}

/// Build a compact multi-chain globule of `n_residues` residues filling a
/// sphere around `center`: concentric helical shells 5.5 Å apart, each shell
/// a separate chain (the larger catalog entries model multimeric complexes).
pub fn build_globule(n_residues: usize, center: Vec3) -> Vec<ProteinChain> {
    assert!(n_residues >= 2);
    // 7 Å between shells and between turns: the outermost pendant (HB at
    // +2.9 Å) and the next shell's inward HN (−1.4 Å) then stay ≥ 2.7 Å
    // apart — a physical contact distance, so built systems start cool.
    const SHELL_GAP: f64 = 7.0;
    const PITCH: f64 = 7.0;

    let shell_capacity = |radius: f64, max_radius: f64| -> usize {
        let height = 2.0 * (max_radius * max_radius - radius * radius).max(9.0).sqrt();
        let l_turn = ((2.0 * std::f64::consts::PI * radius).powi(2) + PITCH * PITCH).sqrt();
        let turns = (height / PITCH).max(1.0);
        ((turns * l_turn) / ARC_PER_RESIDUE) as usize
    };

    // Grow the bounding radius until the shells can host every residue.
    let mut max_radius: f64 = 8.0;
    loop {
        let mut capacity = 0usize;
        let mut radius = 3.2;
        while radius < max_radius {
            capacity += shell_capacity(radius, max_radius);
            radius += SHELL_GAP;
        }
        if capacity >= n_residues {
            break;
        }
        max_radius += 2.0;
    }

    let mut chains = Vec::new();
    let mut remaining = n_residues;
    let mut radius = 3.2;
    while remaining > 0 {
        let take = remaining.min(shell_capacity(radius, max_radius).max(2));
        if take >= 2 {
            chains.push(build_chain(take, center, radius, PITCH));
            remaining -= take;
        } else {
            // A trailing single residue folds into the previous shell.
            let prev = chains.pop().expect("at least one shell before a remainder");
            let merged = prev.n_residues + take;
            chains.push(build_chain(merged, center, radius - SHELL_GAP, PITCH));
            remaining = 0;
        }
        radius += SHELL_GAP;
    }
    chains
}

/// Radius of the sphere a globule of `n_residues` occupies (used for
/// box-size sanity checks).
pub fn globule_radius(n_residues: usize) -> f64 {
    build_globule(n_residues, Vec3::ZERO)
        .iter()
        .flat_map(|c| c.positions.iter())
        .map(|p| Vec3::new(p.x, p.y, 0.0).norm().max(p.z.abs()))
        .fold(0.0, f64::max)
}

/// Convenience: turn a bare chain into a standalone (in-vacuo) topology,
/// e.g. for the GB3 order-parameter runs.
pub fn chain_topology(chain: &ProteinChain, water_sigma: f64, water_eps: f64) -> Topology {
    let mut top = Topology {
        mass: chain.mass.clone(),
        charge: chain.charge.clone(),
        lj_type: chain.lj_type.clone(),
        lj_table: anton_forcefield::LjTable::from_types(&standard_lj_types(water_sigma, water_eps)),
        bonds: chain.bonds.clone(),
        angles: chain.angles.clone(),
        dihedrals: chain.dihedrals.clone(),
        constraint_groups: chain.constraint_groups.clone(),
        virtual_sites: vec![],
        exclusions: Default::default(),
        molecule_starts: vec![0, chain.n_atoms() as u32],
    };
    top.rebuild_exclusions(ExclusionPolicy::amber_like());
    top
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residue_charges_are_neutral() {
        assert!(CHARGES.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn chain_has_expected_counts() {
        let c = build_chain(10, Vec3::ZERO, 8.0, 6.0);
        assert_eq!(c.n_atoms(), 80);
        assert_eq!(c.nh_pairs.len(), 10);
        // 4 intra bonds per residue + 9 peptide links.
        assert_eq!(c.bonds.len(), 49);
        // 3 constraints per residue.
        assert_eq!(c.constraint_groups.len(), 10);
        // 4 dihedrals per link.
        assert_eq!(c.dihedrals.len(), 36);
    }

    #[test]
    fn initial_structure_is_strain_free() {
        let pbox = anton_geometry::PeriodicBox::cubic(1e6);
        let c = build_chain(20, Vec3::ZERO, 8.0, 5.5);
        for b in &c.bonds {
            let r = (c.positions[b.i as usize] - c.positions[b.j as usize]).norm();
            assert!((r - b.r0).abs() < 1e-9, "bond {b:?} strained (r = {r:.3})");
        }
        for a in &c.angles {
            let t = measured_angle(&c.positions, a.i, a.j, a.k_atom);
            assert!((t - a.theta0).abs() < 1e-9);
            // Away from the collinear singularity.
            assert!(a.theta0 < 3.05, "angle too close to π: {}", a.theta0);
        }
        for d in &c.dihedrals {
            let (u, ..) = anton_forcefield::bonded::dihedral_term(&pbox, &c.positions, d);
            assert!(u < 1e-9, "dihedral {d:?} starts with energy {u}");
        }
    }

    #[test]
    fn no_nonbonded_clashes() {
        let c = build_chain(30, Vec3::ZERO, 8.0, 5.5);
        let top = chain_topology(&c, 3.15, 0.15);
        for i in 0..c.n_atoms() {
            for j in (i + 1)..c.n_atoms() {
                if top.exclusions.is_excluded(i as u32, j as u32) {
                    continue;
                }
                let d = (c.positions[i] - c.positions[j]).norm();
                assert!(d > 1.2, "atoms {i},{j} clash at {d:.2} Å");
            }
        }
    }

    #[test]
    fn globule_hosts_all_residues_without_clashes() {
        let chains = build_globule(150, Vec3::ZERO);
        let total: usize = chains.iter().map(|c| c.n_residues).sum();
        assert_eq!(total, 150);
        assert!(
            chains.len() >= 2,
            "150 residues should need multiple shells"
        );
        let mut min_cross = f64::MAX;
        let mut all: Vec<(usize, Vec3)> = Vec::new();
        for (ci, c) in chains.iter().enumerate() {
            all.extend(c.positions.iter().map(|&p| (ci, p)));
        }
        for (i, &(ci, pi)) in all.iter().enumerate() {
            for &(cj, pj) in &all[i + 1..] {
                if ci != cj {
                    min_cross = min_cross.min((pi - pj).norm());
                }
            }
        }
        assert!(min_cross > 1.2, "inter-chain clash at {min_cross:.2} Å");
    }

    #[test]
    fn globule_radius_scales_with_size() {
        let r1 = globule_radius(50);
        let r2 = globule_radius(400);
        assert!(r2 > r1);
        assert!(r2 < 40.0, "400 residues should fit inside 40 Å: {r2}");
    }

    #[test]
    fn vacuum_topology_validates() {
        let c = build_chain(12, Vec3::ZERO, 8.0, 6.0);
        let top = chain_topology(&c, 3.15, 0.15);
        assert!(top.validate().is_ok());
        assert!(top.total_charge().abs() < 1e-9);
    }
}
