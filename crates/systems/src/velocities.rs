//! Maxwell–Boltzmann velocity initialization.

use anton_forcefield::{units::KB, Topology};
use anton_geometry::Vec3;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Draw velocities from the Maxwell–Boltzmann distribution at `temp_k`,
/// remove net momentum, and rescale to the exact target temperature.
/// Massless (virtual) sites get zero velocity. Deterministic per seed.
pub fn init_velocities(top: &Topology, temp_k: f64, seed: u64) -> Vec<Vec3> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7e10_c171);
    let mut v = vec![Vec3::ZERO; top.n_atoms()];
    for (i, vel) in v.iter_mut().enumerate() {
        let m = top.mass[i];
        if m <= 0.0 {
            continue;
        }
        // σ² = kB T / m in (Å/fs)²: kB in kcal/mol/K, convert with ACCEL
        // (kcal/mol/Å per amu → Å/fs²; multiplying kB T/m by ACCEL gives
        // (Å/fs)² because kB T/m has units kcal/mol/amu = Å²·(fs⁻²)/ACCEL).
        let sigma = (KB * temp_k / m * anton_forcefield::units::ACCEL).sqrt();
        *vel = Vec3::new(gauss(&mut rng), gauss(&mut rng), gauss(&mut rng)) * sigma;
    }
    remove_net_momentum(top, &mut v);
    rescale_to_temperature(top, &mut v, temp_k);
    v
}

/// Standard normal via Box–Muller.
fn gauss(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Subtract the center-of-mass velocity.
pub fn remove_net_momentum(top: &Topology, v: &mut [Vec3]) {
    let mut p = Vec3::ZERO;
    let mut m_tot = 0.0;
    for (i, vel) in v.iter().enumerate() {
        p += *vel * top.mass[i];
        m_tot += top.mass[i];
    }
    let v_com = p / m_tot;
    for (i, vel) in v.iter_mut().enumerate() {
        if top.mass[i] > 0.0 {
            *vel -= v_com;
        }
    }
}

/// Kinetic energy in kcal/mol.
pub fn kinetic_energy(top: &Topology, v: &[Vec3]) -> f64 {
    0.5 / anton_forcefield::units::ACCEL
        * v.iter()
            .enumerate()
            .map(|(i, vel)| top.mass[i] * vel.norm2())
            .sum::<f64>()
}

/// Instantaneous temperature (K) from kinetic energy and the constrained
/// degree-of-freedom count.
pub fn temperature(top: &Topology, v: &[Vec3]) -> f64 {
    2.0 * kinetic_energy(top, v) / (top.degrees_of_freedom() as f64 * KB)
}

fn rescale_to_temperature(top: &Topology, v: &mut [Vec3], temp_k: f64) {
    let t = temperature(top, v);
    if t > 1e-12 {
        let s = (temp_k / t).sqrt();
        for vel in v.iter_mut() {
            *vel = *vel * s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_forcefield::LjTable;

    fn argon_like(n: usize) -> Topology {
        Topology {
            mass: vec![39.9; n],
            charge: vec![0.0; n],
            lj_type: vec![0; n],
            lj_table: LjTable::from_types(&[(3.4, 0.24)]),
            molecule_starts: (0..=n as u32).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn exact_target_temperature_and_zero_momentum() {
        let top = argon_like(500);
        let v = init_velocities(&top, 300.0, 42);
        assert!((temperature(&top, &v) - 300.0).abs() < 1e-9);
        let p = v
            .iter()
            .enumerate()
            .fold(Vec3::ZERO, |a, (i, vel)| a + *vel * top.mass[i]);
        assert!(p.norm() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let top = argon_like(50);
        assert_eq!(
            init_velocities(&top, 300.0, 7),
            init_velocities(&top, 300.0, 7)
        );
        assert_ne!(
            init_velocities(&top, 300.0, 7),
            init_velocities(&top, 300.0, 8)
        );
    }

    #[test]
    fn speeds_are_physical() {
        // Argon at 300 K: RMS speed ≈ sqrt(3 kB T / m) ≈ 0.00432 Å/fs.
        let top = argon_like(5000);
        let v = init_velocities(&top, 300.0, 1);
        let rms = (v.iter().map(|x| x.norm2()).sum::<f64>() / v.len() as f64).sqrt();
        assert!((rms - 0.00432).abs() < 2e-4, "rms = {rms}");
    }
}
