//! The assembled system handed to an engine, plus its run parameters.

use anton_forcefield::Topology;
use anton_geometry::{PeriodicBox, Vec3};
use serde::{Deserialize, Serialize};

/// Tunable simulation parameters (paper Table 4 columns and §5.3).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RunParams {
    /// Range-limited cutoff radius (Å).
    pub cutoff: f64,
    /// Charge-spreading / force-interpolation cutoff (Å); the BPTI run used
    /// 7.1 Å against a 10.4 Å range-limited cutoff.
    pub spread_cutoff: f64,
    /// FFT mesh dimensions.
    pub mesh: [usize; 3],
    /// Time step (fs); 2.5 throughout the paper's evaluation.
    pub dt_fs: f64,
    /// Long-range electrostatics evaluated every this many steps (2–3).
    pub longrange_every: u32,
    /// Atom migration performed every this many steps (4–8, §3.2.4).
    pub migration_every: u32,
}

impl RunParams {
    /// Paper-standard parameters for a given cutoff/mesh.
    pub fn paper(cutoff: f64, mesh: usize) -> RunParams {
        RunParams {
            cutoff,
            spread_cutoff: (cutoff * 0.68).min(cutoff),
            mesh: [mesh; 3],
            dt_fs: 2.5,
            longrange_every: 2,
            migration_every: 6,
        }
    }

    /// Ewald splitting parameter β (1/Å) chosen so that erfc(β·rc)/rc is a
    /// fixed small fraction of the bare Coulomb term at the cutoff — the
    /// usual direct-space tolerance construction.
    pub fn ewald_beta(&self) -> f64 {
        // Solve erfc(beta * rc) = tol by bisection.
        let tol = 1e-5f64;
        let rc = self.cutoff;
        let (mut lo, mut hi) = (1e-3f64, 10.0f64);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if erfc_approx(mid * rc) > tol {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

use anton_forcefield::units::erfc as erfc_approx;

/// A complete simulatable system.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct System {
    pub name: String,
    pub pbox: PeriodicBox,
    pub topology: Topology,
    pub positions: Vec<Vec3>,
    pub params: RunParams,
}

impl System {
    pub fn n_atoms(&self) -> usize {
        self.positions.len()
    }

    /// Atom number density (atoms/Å³); ~0.1 for solvated biomolecular
    /// systems.
    pub fn density(&self) -> f64 {
        self.n_atoms() as f64 / self.pbox.volume()
    }

    /// Consistency checks run by every builder before returning.
    pub fn validate(&self) -> Result<(), String> {
        if self.positions.len() != self.topology.n_atoms() {
            return Err("positions/topology length mismatch".into());
        }
        self.topology.validate()?;
        let e = self.pbox.edge();
        let min_edge = e.x.min(e.y).min(e.z);
        if self.params.cutoff * 2.0 >= min_edge {
            return Err(format!(
                "cutoff {} too large for box edge {} (minimum image violated)",
                self.params.cutoff, min_edge
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_selection_hits_tolerance() {
        let p = RunParams::paper(13.0, 32);
        let beta = p.ewald_beta();
        let val = anton_forcefield::units::erfc(beta * 13.0);
        assert!((val - 1e-5).abs() < 1e-7, "erfc(beta rc) = {val}");
    }

    #[test]
    fn paper_params_defaults() {
        let p = RunParams::paper(10.5, 32);
        assert_eq!(p.mesh, [32; 3]);
        assert_eq!(p.dt_fs, 2.5);
        assert_eq!(p.longrange_every, 2);
        assert!(p.spread_cutoff < p.cutoff);
    }
}
