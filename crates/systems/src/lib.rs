//! Deterministic builders for the chemical systems evaluated in the paper.
//!
//! The paper's evaluation (Table 4, Figures 5–7, §5.3) runs on real proteins
//! solvated in explicit water. This workspace substitutes *synthetic*
//! protein-in-water systems with the same atom counts, box dimensions, run
//! parameters and term densities (see DESIGN.md §2 for the substitution
//! argument): all performance and numerics observables are functions of those
//! statistics, not of biological identity.
//!
//! * [`waterbox`] — jittered-lattice water at liquid density (TIP3P or
//!   TIP4P-Ew), the "water only" series of Figure 5.
//! * [`protein`] — a synthetic all-atom protein: an 8-atom residue (N, H,
//!   CA, HA, CB, HB, C, O) repeated along a helical backbone curve, with
//!   bonds/angles/dihedrals, AMBER-like charges, and hydrogen-bond
//!   constraints.
//! * [`catalog`] — the six Table 4 systems (gpW … T7Lig), their water-only
//!   counterparts, and the §5.3 BPTI system (17,758 particles, TIP4P-Ew,
//!   6 chloride ions).
//! * [`go_model`] — a Cα Gō model of gpW for the Figure 7 folding/unfolding
//!   experiment.
//! * [`velocities`] — Maxwell–Boltzmann initialization with seeded RNG and
//!   zero net momentum.

pub mod catalog;
pub mod go_model;
pub mod protein;
pub mod spec;
pub mod velocities;
pub mod waterbox;

pub use catalog::{bpti, table4_system, table4_water_only, Table4Entry, TABLE4};
pub use go_model::GoModel;
pub use spec::{RunParams, System};
pub use velocities::init_velocities;
