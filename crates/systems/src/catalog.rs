//! The paper's benchmark systems.
//!
//! [`TABLE4`] lists the six protein-in-water systems of Table 4 / Figure 5
//! with the paper's reported reference values; [`table4_system`] builds the
//! synthetic stand-in for each (same atom count, box edge and run
//! parameters). [`bpti`] builds the §5.3 millisecond-simulation system:
//! 17,758 particles — 892 protein atoms, 6 chloride ions, and 4,215 TIP4P-Ew
//! waters of 4 particles each — in a 51.3 Å cubic box.

use crate::protein::{build_globule, standard_lj_types, LJ_C, LJ_ION};
use crate::spec::{RunParams, System};
use crate::waterbox::{append_waters, water_sites, Buckets};
use anton_forcefield::exclusions::ExclusionPolicy;
use anton_forcefield::topology::{Bond, Topology};
use anton_forcefield::water::{WaterModel, TIP3P, TIP4P_EW};
use anton_geometry::{PeriodicBox, Vec3};

/// One row of the paper's Table 4, with its reported measurements (used by
/// the harness to print paper-vs-measured comparisons).
#[derive(Clone, Copy, Debug)]
pub struct Table4Entry {
    pub name: &'static str,
    pub pdb_id: &'static str,
    pub n_atoms: usize,
    /// Cubic box side length (Å).
    pub side: f64,
    /// Range-limited cutoff radius (Å).
    pub cutoff: f64,
    /// FFT mesh (cubic).
    pub mesh: usize,
    /// Synthetic-protein residue count (sized to a realistic protein atom
    /// fraction; see DESIGN.md §2).
    pub protein_residues: usize,
    /// Paper: performance on a 512-node Anton (µs/day).
    pub paper_us_per_day: f64,
    /// Paper: energy drift (kcal/mol/DoF/µs).
    pub paper_drift: f64,
    /// Paper: total force error (fraction of rms force).
    pub paper_total_force_err: f64,
    /// Paper: numerical force error (fraction of rms force).
    pub paper_numerical_force_err: f64,
}

/// Table 4 of the paper.
pub const TABLE4: [Table4Entry; 6] = [
    Table4Entry {
        name: "gpW",
        pdb_id: "1HYW",
        n_atoms: 9865,
        side: 46.8,
        cutoff: 10.5,
        mesh: 32,
        protein_residues: 118,
        paper_us_per_day: 18.7,
        paper_drift: 0.035,
        paper_total_force_err: 80.7e-6,
        paper_numerical_force_err: 9.8e-6,
    },
    Table4Entry {
        name: "DHFR",
        pdb_id: "5DFR",
        n_atoms: 23558,
        side: 62.2,
        cutoff: 13.0,
        mesh: 32,
        protein_residues: 314,
        paper_us_per_day: 16.4,
        paper_drift: 0.053,
        paper_total_force_err: 73.9e-6,
        paper_numerical_force_err: 9.0e-6,
    },
    Table4Entry {
        name: "aSFP",
        pdb_id: "1SFP",
        n_atoms: 48423,
        side: 78.8,
        cutoff: 15.5,
        mesh: 32,
        protein_residues: 700,
        paper_us_per_day: 11.2,
        paper_drift: 0.036,
        paper_total_force_err: 67.3e-6,
        paper_numerical_force_err: 11.5e-6,
    },
    Table4Entry {
        name: "NADHOx",
        pdb_id: "1NOX",
        n_atoms: 78017,
        side: 92.6,
        cutoff: 10.5,
        mesh: 64,
        protein_residues: 420,
        paper_us_per_day: 6.4,
        paper_drift: 0.015,
        paper_total_force_err: 58.4e-6,
        paper_numerical_force_err: 8.3e-6,
    },
    Table4Entry {
        name: "FtsZ",
        pdb_id: "1FSZ",
        n_atoms: 98236,
        side: 99.8,
        cutoff: 11.0,
        mesh: 64,
        protein_residues: 640,
        paper_us_per_day: 5.8,
        paper_drift: 0.015,
        paper_total_force_err: 62.0e-6,
        paper_numerical_force_err: 8.9e-6,
    },
    Table4Entry {
        name: "T7Lig",
        pdb_id: "1A0I",
        n_atoms: 116650,
        side: 105.6,
        cutoff: 11.0,
        mesh: 64,
        protein_residues: 1060,
        paper_us_per_day: 5.5,
        paper_drift: 0.021,
        paper_total_force_err: 60.6e-6,
        paper_numerical_force_err: 8.9e-6,
    },
];

/// Build a synthetic protein-in-water system with an exact total atom count.
///
/// `n_ions` chloride counter-ions are added; the protein gains `n_ions`
/// compensating +1 charges on CA atoms so the system stays neutral.
/// `extra_tail` forces that many additional heavy atoms onto the protein
/// (BPTI's 892 = 111×8 + 4); further tail atoms are added automatically so
/// the water particle count divides evenly.
// The parameter list mirrors the per-system columns of Table 4; a builder
// struct would just rename the same nine knobs.
#[allow(clippy::too_many_arguments)]
pub fn build_solvated(
    name: &str,
    total_atoms: usize,
    box_edge: f64,
    params: RunParams,
    model: &WaterModel,
    protein_residues: usize,
    extra_tail: usize,
    n_ions: usize,
    seed: u64,
) -> System {
    let pbox = PeriodicBox::cubic(box_edge);
    let center = Vec3::splat(box_edge / 2.0);

    let mut top = Topology {
        lj_table: anton_forcefield::LjTable::from_types(&standard_lj_types(
            model.sigma_o,
            model.eps_o,
        )),
        molecule_starts: vec![0],
        ..Default::default()
    };
    let mut positions: Vec<Vec3> = Vec::with_capacity(total_atoms);
    let mut occupied = Buckets::new(pbox, 4.5);

    // 1. Protein globule (one molecule per shell chain).
    for chain in build_globule(protein_residues, center) {
        let offset = positions.len() as u32;
        positions.extend(chain.positions.iter().map(|p| pbox.wrap(*p)));
        top.mass.extend(&chain.mass);
        top.charge.extend(&chain.charge);
        top.lj_type.extend(&chain.lj_type);
        top.bonds.extend(chain.bonds.iter().map(|b| Bond {
            i: b.i + offset,
            j: b.j + offset,
            ..*b
        }));
        top.angles.extend(chain.angles.iter().map(|a| {
            let mut a = *a;
            a.i += offset;
            a.j += offset;
            a.k_atom += offset;
            a
        }));
        top.dihedrals.extend(chain.dihedrals.iter().map(|d| {
            let mut d = *d;
            d.i += offset;
            d.j += offset;
            d.k_atom += offset;
            d.l += offset;
            d
        }));
        top.constraint_groups
            .extend(chain.constraint_groups.iter().map(|g| {
                anton_forcefield::ConstraintGroup {
                    pairs: g
                        .pairs
                        .iter()
                        .map(|&(i, j, r)| (i + offset, j + offset, r))
                        .collect(),
                }
            }));
        top.molecule_starts.push(positions.len() as u32);
    }
    let protein_core = positions.len();

    // 2. Compensating +1 charges on evenly spaced CA atoms (index 2 mod 8).
    if n_ions > 0 {
        let n_res_total = protein_core / crate::protein::ATOMS_PER_RESIDUE;
        assert!(n_res_total >= n_ions, "not enough residues to charge");
        for k in 0..n_ions {
            let res = k * n_res_total / n_ions;
            let ca = res * crate::protein::ATOMS_PER_RESIDUE + 2;
            top.charge[ca] += 1.0;
        }
    }

    // 3. Tail heavy atoms: the requested extras plus whatever is needed so
    //    that (total - protein - ions) divides the water site count exactly.
    let remaining = total_atoms - protein_core - n_ions - extra_tail;
    let tail = extra_tail + remaining % model.sites;
    if tail > 0 {
        let mut prev = (protein_core - 2) as u32; // last residue's C atom
                                                  // Extend radially outward from the globule so the tail lands in
                                                  // solvent, not inside the next helix turn.
        let anchor0 = positions[prev as usize];
        let dir = (anchor0 - center)
            .normalized()
            .unwrap_or(Vec3::new(1.0, 0.0, 0.0));
        for t in 0..tail {
            let idx = positions.len() as u32;
            let anchor = positions[prev as usize];
            let _ = anchor;
            positions.push(pbox.wrap(anchor0 + dir * (1.5 * (t + 1) as f64)));
            top.mass.push(12.011);
            top.charge.push(0.0);
            top.lj_type.push(LJ_C);
            top.bonds.push(Bond {
                i: prev,
                j: idx,
                r0: 1.5,
                k: 300.0,
            });
            prev = idx;
        }
        *top.molecule_starts.last_mut().unwrap() = positions.len() as u32;
    }
    let n_protein = positions.len();
    for (i, p) in positions.iter().enumerate() {
        occupied.insert(*p, top.charge[i]);
    }

    // 4. Water candidate sites around the solute.
    let mut sites = water_sites(&pbox, &occupied, 2.4, seed);
    let n_waters = (total_atoms - n_protein - n_ions) / model.sites;
    // If the solute shadows too much lattice, densify the candidate lattice
    // rather than relaxing the keep-out: sub-2.2 Å water–solute contacts
    // blow up 2.5 fs dynamics.
    for spacing_factor in [0.92, 0.87, 0.82] {
        if sites.len() >= n_waters + n_ions {
            break;
        }
        sites = crate::waterbox::water_sites_scaled(&pbox, &occupied, 2.4, spacing_factor, seed);
    }
    assert!(
        sites.len() >= n_waters + n_ions,
        "{name}: need {} solvent sites, found {}",
        n_waters + n_ions,
        sites.len()
    );

    // 5. Chloride ions on the last candidate sites (far from the shuffled
    //    front used by the waters).
    for k in 0..n_ions {
        let p = sites[sites.len() - 1 - k];
        positions.push(p);
        top.mass.push(35.453);
        top.charge.push(-1.0);
        top.lj_type.push(LJ_ION);
        top.molecule_starts.push(positions.len() as u32);
        occupied.insert(p, -1.0);
    }

    // 6. Waters.
    append_waters(
        &mut top,
        &mut positions,
        model,
        &sites,
        n_waters,
        &mut occupied,
        seed,
    );

    top.rebuild_exclusions(ExclusionPolicy::amber_like());
    let sys = System {
        name: name.to_string(),
        pbox,
        topology: top,
        positions,
        params,
    };
    assert_eq!(sys.n_atoms(), total_atoms, "{name}: atom count mismatch");
    sys.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
    debug_assert!(sys.topology.total_charge().abs() < 1e-6);
    sys
}

/// Build the synthetic stand-in for a Table 4 entry.
pub fn table4_system(entry: &Table4Entry, seed: u64) -> System {
    build_solvated(
        entry.name,
        entry.n_atoms,
        entry.side,
        RunParams::paper(entry.cutoff, entry.mesh),
        &TIP3P,
        entry.protein_residues,
        0,
        0,
        seed,
    )
}

/// The matching "water only" system of Figure 5: same box and parameters,
/// waters only, same nominal size.
pub fn table4_water_only(entry: &Table4Entry, seed: u64) -> System {
    let n_waters = entry.n_atoms / 3;
    let pbox = PeriodicBox::cubic(entry.side);
    let (top, positions) = crate::waterbox::pure_water_topology(&pbox, &TIP3P, n_waters, seed);
    let sys = System {
        name: format!("{}-water", entry.name),
        pbox,
        topology: top,
        positions,
        params: RunParams::paper(entry.cutoff, entry.mesh),
    };
    sys.validate().unwrap();
    sys
}

/// The §5.3 BPTI system: 892 protein atoms (112 residues of 8 atoms, minus a
/// 4-atom adjustment handled via the tail mechanism), 6 Cl⁻, and 4,215
/// TIP4P-Ew waters in a 51.3 Å box; 10.4 Å cutoff, 7.1 Å spreading cutoff,
/// 32³ mesh, 2.5 fs steps with long-range every other step.
pub fn bpti(seed: u64) -> System {
    let params = RunParams {
        cutoff: 10.4,
        spread_cutoff: 7.1,
        mesh: [32; 3],
        dt_fs: 2.5,
        longrange_every: 2,
        migration_every: 6,
    };
    // 111 residues × 8 = 888 atoms + 4 tail atoms = 892; with 6 ions that
    // leaves 16,860 = 4,215 × 4 water particles.
    build_solvated("BPTI", 17758, 51.3, params, &TIP4P_EW, 111, 4, 6, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpw_builds_exact_atom_count() {
        let sys = table4_system(&TABLE4[0], 1);
        assert_eq!(sys.n_atoms(), 9865);
        assert!(sys.topology.total_charge().abs() < 1e-9);
        // Density should be biomolecular (~0.1 atoms/Å³).
        assert!(
            (sys.density() - 0.0963).abs() < 0.002,
            "density {}",
            sys.density()
        );
    }

    #[test]
    fn bpti_matches_paper_particle_budget() {
        let sys = bpti(2);
        assert_eq!(sys.n_atoms(), 17758);
        // 4,215 four-site waters.
        assert_eq!(sys.topology.virtual_sites.len(), 4215);
        // 6 chloride ions.
        let n_ions = sys.topology.charge.iter().filter(|&&q| q == -1.0).count();
        assert_eq!(n_ions, 6);
        assert!(sys.topology.total_charge().abs() < 1e-9);
        assert_eq!(sys.params.spread_cutoff, 7.1);
    }

    #[test]
    fn water_only_variant_has_no_bonds() {
        let sys = table4_water_only(&TABLE4[0], 3);
        assert!(sys.topology.bonds.is_empty());
        assert_eq!(sys.n_atoms(), (9865 / 3) * 3);
    }

    #[test]
    fn table4_entries_are_well_formed() {
        for e in &TABLE4 {
            // Cutoff respects minimum image; protein fits in the box.
            assert!(e.cutoff * 2.0 < e.side, "{}", e.name);
            let r = crate::protein::globule_radius(e.protein_residues);
            assert!(
                r + 3.0 < e.side / 2.0,
                "{}: globule radius {r} too big",
                e.name
            );
        }
    }
}
