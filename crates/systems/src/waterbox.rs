//! Water placement at liquid density on a jittered lattice.
//!
//! Builders here have to assemble systems of up to ~117k atoms (Table 4's
//! T7Lig) in well under a second, so solute keep-out tests and the water
//! orientation relaxation both run through a periodic bucket grid instead of
//! O(N²) scans.

use crate::protein::{standard_lj_types, LJ_H, LJ_WATER_O};
use anton_forcefield::exclusions::ExclusionPolicy;
use anton_forcefield::topology::Topology;
use anton_forcefield::water::{WaterModel, MASS_H, MASS_O};
use anton_geometry::{PeriodicBox, Vec3};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Liquid-water molecule number density at 300 K (molecules/Å³).
pub const WATER_DENSITY: f64 = 0.0334;

/// A periodic bucket grid supporting incremental insertion, used for solute
/// keep-out queries and water orientation scoring during system assembly.
pub struct Buckets {
    pbox: PeriodicBox,
    cell: f64,
    // BTreeMap, not HashMap: assembly must be reproducible, and an ordered
    // map keeps any future iteration over buckets deterministic (detlint D2).
    map: BTreeMap<(i32, i32, i32), Vec<u32>>,
    points: Vec<Vec3>,
    charges: Vec<f64>,
}

impl Buckets {
    pub fn new(pbox: PeriodicBox, cell: f64) -> Buckets {
        Buckets {
            pbox,
            cell,
            map: BTreeMap::new(),
            points: Vec::new(),
            charges: Vec::new(),
        }
    }

    fn key(&self, p: Vec3) -> (i32, i32, i32) {
        let w = self.pbox.wrap(p);
        (
            (w.x / self.cell) as i32,
            (w.y / self.cell) as i32,
            (w.z / self.cell) as i32,
        )
    }

    pub fn insert(&mut self, p: Vec3, charge: f64) {
        let idx = self.points.len() as u32;
        self.points.push(p);
        self.charges.push(charge);
        self.map.entry(self.key(p)).or_default().push(idx);
    }

    /// Visit `(distance, charge)` of all stored points within `radius` of `p`.
    pub fn for_each_within(&self, p: Vec3, radius: f64, mut f: impl FnMut(f64, f64)) {
        let r2 = radius * radius;
        let (kx, ky, kz) = self.key(p);
        let reach = (radius / self.cell).ceil() as i32;
        for dz in -reach..=reach {
            for dy in -reach..=reach {
                for dx in -reach..=reach {
                    if let Some(v) = self.map.get(&(kx + dx, ky + dy, kz + dz)) {
                        for &i in v {
                            let d2 = self.pbox.dist2(p, self.points[i as usize]);
                            if d2 <= r2 {
                                f(d2.sqrt(), self.charges[i as usize]);
                            }
                        }
                    }
                }
            }
        }
    }

    pub fn min_dist(&self, p: Vec3, radius: f64) -> f64 {
        let mut best = f64::MAX;
        self.for_each_within(p, radius, |d, _| best = best.min(d));
        best
    }
}

/// Candidate oxygen sites: a cubic lattice slightly denser than liquid water,
/// jittered and deterministically shuffled, with sites closer than
/// `keep_out_radius` to any solute atom removed.
pub fn water_sites(
    pbox: &PeriodicBox,
    solute: &Buckets,
    keep_out_radius: f64,
    seed: u64,
) -> Vec<Vec3> {
    water_sites_scaled(pbox, solute, keep_out_radius, 0.97, seed)
}

/// As [`water_sites`], with an explicit lattice `spacing_factor`: shrinking
/// it yields more candidates near a crowded solute *without* relaxing the
/// keep-out radius (relaxing the keep-out creates hot contacts that blow up
/// 2.5 fs dynamics).
pub fn water_sites_scaled(
    pbox: &PeriodicBox,
    solute: &Buckets,
    keep_out_radius: f64,
    spacing_factor: f64,
    seed: u64,
) -> Vec<Vec3> {
    let e = pbox.edge();
    let spacing = (1.0 / WATER_DENSITY).cbrt() * spacing_factor;
    let (nx, ny, nz) = (
        (e.x / spacing).round().max(1.0) as usize,
        (e.y / spacing).round().max(1.0) as usize,
        (e.z / spacing).round().max(1.0) as usize,
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sites = Vec::with_capacity(nx * ny * nz);
    for iz in 0..nz {
        for iy in 0..ny {
            for ix in 0..nx {
                let jitter = Vec3::new(
                    (rng.gen::<f64>() - 0.5) * 0.35,
                    (rng.gen::<f64>() - 0.5) * 0.35,
                    (rng.gen::<f64>() - 0.5) * 0.35,
                );
                let p = pbox.wrap(
                    Vec3::new(
                        (ix as f64 + 0.5) * e.x / nx as f64,
                        (iy as f64 + 0.5) * e.y / ny as f64,
                        (iz as f64 + 0.5) * e.z / nz as f64,
                    ) + jitter,
                );
                if solute.min_dist(p, keep_out_radius) >= keep_out_radius {
                    sites.push(p);
                }
            }
        }
    }
    for i in (1..sites.len()).rev() {
        let j = rng.gen_range(0..=i);
        sites.swap(i, j);
    }
    sites
}

/// Append `n_waters` molecules of `model` to a topology/position set.
///
/// Each molecule tries a handful of seeded orientations and keeps the one
/// with the lowest electrostatic + soft-clash score against everything placed
/// so far (`occupied`, which this function extends). Deterministic per seed.
pub fn append_waters(
    top: &mut Topology,
    positions: &mut Vec<Vec3>,
    model: &WaterModel,
    sites: &[Vec3],
    n_waters: usize,
    occupied: &mut Buckets,
    seed: u64,
) -> u32 {
    assert!(
        sites.len() >= n_waters,
        "need {n_waters} water sites, have {} — box too small for the requested atom count",
        sites.len()
    );
    let first = positions.len() as u32;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_0000);
    const TRIES: usize = 8;

    for site in sites.iter().take(n_waters) {
        let mut best: Option<(f64, Vec<Vec3>)> = None;
        for _ in 0..TRIES {
            let dir = random_unit(&mut rng);
            let mut perp = random_unit(&mut rng).cross(dir);
            while perp.norm() < 1e-6 {
                perp = random_unit(&mut rng).cross(dir);
            }
            let perp = perp.normalized().unwrap();
            let cand = model.place(*site, dir, perp);
            let q_h = model.q_h;
            let q_neg = model.q_neg;
            let mut score = 0.0;
            // Score the charged sites against placed neighbors: bare Coulomb
            // plus a soft clash penalty — enough to steer hydrogens apart.
            let charges: &[f64] = if model.sites == 4 {
                &[0.0, q_h, q_h, q_neg]
            } else {
                &[q_neg, q_h, q_h]
            };
            for (site, &q) in cand.iter().zip(charges) {
                occupied.for_each_within(*site, 4.5, |d, qo| {
                    let d = d.max(0.4);
                    score += q * qo / d;
                    if d < 2.0 {
                        score += 5.0 / d.powi(6);
                    }
                });
            }
            if best.as_ref().is_none_or(|(s, _)| score < *s) {
                best = Some((score, cand));
            }
        }
        let placed = best.unwrap().1;

        let base = positions.len() as u32;
        top.mass.push(MASS_O);
        top.mass.push(MASS_H);
        top.mass.push(MASS_H);
        top.lj_type.push(LJ_WATER_O);
        top.lj_type.push(LJ_H);
        top.lj_type.push(LJ_H);
        if model.sites == 4 {
            top.charge.extend([0.0, model.q_h, model.q_h, model.q_neg]);
            top.mass.push(0.0);
            top.lj_type.push(LJ_H); // no LJ on M
        } else {
            top.charge.extend([model.q_neg, model.q_h, model.q_h]);
        }
        let charges: Vec<f64> = if model.sites == 4 {
            vec![0.0, model.q_h, model.q_h, model.q_neg]
        } else {
            vec![model.q_neg, model.q_h, model.q_h]
        };
        for (p, q) in placed.iter().zip(&charges) {
            occupied.insert(*p, *q);
        }
        positions.extend(placed);

        top.constraint_groups.push(model.constraint_group(base));
        if let Some(v) = model.virtual_site(base) {
            top.virtual_sites.push(v);
        }
        top.molecule_starts.push(positions.len() as u32);
    }
    first
}

fn random_unit(rng: &mut SmallRng) -> Vec3 {
    loop {
        let v = Vec3::new(
            rng.gen::<f64>() * 2.0 - 1.0,
            rng.gen::<f64>() * 2.0 - 1.0,
            rng.gen::<f64>() * 2.0 - 1.0,
        );
        let n2 = v.norm2();
        if n2 > 1e-4 && n2 <= 1.0 {
            return v / n2.sqrt();
        }
    }
}

/// Build a pure water box with `n_waters` molecules (Figure 5's "water only"
/// series).
pub fn pure_water_topology(
    pbox: &PeriodicBox,
    model: &WaterModel,
    n_waters: usize,
    seed: u64,
) -> (Topology, Vec<Vec3>) {
    let mut top = Topology {
        lj_table: anton_forcefield::LjTable::from_types(&standard_lj_types(
            model.sigma_o,
            model.eps_o,
        )),
        molecule_starts: vec![0],
        ..Default::default()
    };
    let mut positions = Vec::new();
    let empty = Buckets::new(*pbox, 4.5);
    let sites = water_sites(pbox, &empty, 0.0, seed);
    let mut occupied = Buckets::new(*pbox, 4.5);
    append_waters(
        &mut top,
        &mut positions,
        model,
        &sites,
        n_waters,
        &mut occupied,
        seed,
    );
    top.rebuild_exclusions(ExclusionPolicy::amber_like());
    (top, positions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_forcefield::water::TIP3P;

    #[test]
    fn site_density_near_liquid() {
        let pbox = PeriodicBox::cubic(30.0);
        let empty = Buckets::new(pbox, 4.5);
        let sites = water_sites(&pbox, &empty, 0.0, 1);
        let density = sites.len() as f64 / pbox.volume();
        assert!(
            density > WATER_DENSITY * 0.95 && density < WATER_DENSITY * 1.25,
            "density = {density}"
        );
    }

    #[test]
    fn keep_out_respected() {
        let pbox = PeriodicBox::cubic(30.0);
        let mut solute = Buckets::new(pbox, 4.5);
        let c = Vec3::splat(15.0);
        solute.insert(c, 0.0);
        let sites = water_sites(&pbox, &solute, 4.0, 2);
        for s in &sites {
            assert!(pbox.dist2(*s, c) >= 16.0 - 1e-9);
        }
        assert!(!sites.is_empty());
    }

    #[test]
    fn pure_water_box_is_consistent() {
        let pbox = PeriodicBox::cubic(25.0);
        let (top, pos) = pure_water_topology(&pbox, &TIP3P, 400, 3);
        assert_eq!(pos.len(), 1200);
        assert_eq!(top.n_atoms(), 1200);
        assert!(top.validate().is_ok());
        assert!(top.total_charge().abs() < 1e-9);
        assert_eq!(top.n_constraints(), 1200);
        assert!(top.bonds.is_empty());
        for g in &top.constraint_groups {
            for &(i, j, r0) in &g.pairs {
                let r = pbox.min_image(pos[i as usize], pos[j as usize]).norm();
                assert!((r - r0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn orientation_relaxation_avoids_hot_contacts() {
        // With orientation scoring, no two hydrogens of different molecules
        // should start closer than ~1 Å.
        let pbox = PeriodicBox::cubic(20.0);
        let (top, pos) = pure_water_topology(&pbox, &TIP3P, 200, 9);
        let mut min_hh = f64::MAX;
        for mi in 0..200usize {
            for mj in (mi + 1)..200 {
                for a in 1..3 {
                    for b in 1..3 {
                        let d = pbox.dist2(pos[mi * 3 + a], pos[mj * 3 + b]).sqrt();
                        min_hh = min_hh.min(d);
                    }
                }
            }
        }
        let _ = top;
        assert!(min_hh > 0.9, "H–H contact at {min_hh:.2} Å");
    }

    #[test]
    fn tip4p_box_has_virtual_sites() {
        use anton_forcefield::water::TIP4P_EW;
        let pbox = PeriodicBox::cubic(20.0);
        let (top, pos) = pure_water_topology(&pbox, &TIP4P_EW, 100, 4);
        assert_eq!(pos.len(), 400);
        assert_eq!(top.virtual_sites.len(), 100);
        assert!(top.validate().is_ok());
        for v in &top.virtual_sites {
            let m = anton_forcefield::water::vsite_position(v, &pos);
            assert!((m - pos[v.site as usize]).norm() < 1e-9);
            let d = (m - pos[v.a as usize]).norm();
            assert!((d - TIP4P_EW.d_om).abs() < 1e-9);
        }
    }
}
