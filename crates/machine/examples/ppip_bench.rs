//! Microbenchmark for the PPIP batch evaluator: ns per live lane over a
//! deterministic stream of synthetic match batches. Used to attribute the
//! range-limited phase cost (the full-engine numbers in BENCH_scaling.json
//! fold in tiling, match, and scatter; this isolates the table kernel).
use anton_machine::ppip::{PairBatch, Ppip, MATCH_WIDTH};
use std::time::Instant;

fn main() {
    let ppip = Ppip::build(0.35, 7.5);
    let r2_max_q20 = (ppip.r2_max * (1u64 << 20) as f64) as i64;

    // Deterministic LCG stream of batches with realistic lane occupancy.
    let mut s = 0x9e37_79b9_7f4a_7c15u64;
    let mut rng = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s
    };
    let batches: Vec<PairBatch> = (0..8192)
        .map(|_| {
            let mut b = PairBatch::EMPTY;
            for lane in 0..MATCH_WIDTH {
                if rng() % 8 < 6 {
                    b.mask |= 1 << lane;
                    b.r2_q20[lane] = 1 + (rng() % (r2_max_q20 as u64 - 1)) as i64;
                    b.qq[lane] = (rng() % 1000) as f64 / 2000.0 - 0.25;
                    b.lj_a[lane] = (rng() % 1000) as f64;
                    b.lj_b[lane] = (rng() % 1000) as f64 / 10.0;
                }
            }
            b
        })
        .collect();
    let live: u64 = batches.iter().map(|b| b.mask.count_ones() as u64).sum();

    let mut out = [(0.0f64, 0.0f64); MATCH_WIDTH];
    let mut acc = 0.0f64;
    // Warm up, then time.
    for _ in 0..2 {
        for b in &batches {
            ppip.pair_batch(b, &mut out);
            acc += out.iter().map(|&(f, e)| f + e).sum::<f64>();
        }
    }
    let reps = 200u64;
    let t0 = Instant::now();
    for _ in 0..reps {
        for b in &batches {
            ppip.pair_batch(b, &mut out);
            acc += out.iter().map(|&(f, e)| f + e).sum::<f64>();
        }
    }
    let dt = t0.elapsed();
    println!(
        "pair_batch: {:.1} ns/live-lane ({} batches x {} reps, {} live lanes/pass, sink {acc:.3e})",
        dt.as_nanos() as f64 / (live * reps) as f64,
        batches.len(),
        reps,
        live,
    );
}
