//! Property tests for the static long-range communication plans: the
//! [`MeshExchange`] halo geometry against a brute-force enumeration of the
//! wrapped mesh, and the distributed FFT's [`pencil_pass_stats`] against
//! exact accounting identities.
//!
//! These plans are pure functions of the mesh/node geometry — no simulation
//! data flows through them — so every claim here is checkable by direct
//! counting. The performance model (and now the trace subsystem's modeled
//! µs attribution) trusts these numbers; this file is what that trust
//! rests on.
//!
//! Divisibility (`nodes[a] | mesh[a]`) is guaranteed by sampling the node
//! count and the per-node slab size independently and multiplying, rather
//! than by filtering — the vendored proptest stand-in has no `prop_map`.

use std::collections::BTreeSet;

use anton_fft::{pencil_pass_stats, FxDistributedFft3d, FX_BYTES_PER_POINT};
use anton_machine::{ExchangeCounters, MeshExchange, MESH_BYTES};
use proptest::prelude::*;

/// Brute-force halo census: enumerate every point of the dilated slab
/// `[-h, s+h)³`, wrap it onto the mesh, and count (a) distinct wrapped
/// points outside the home slab and (b) distinct remote slab owners.
/// Slabs partition the wrapped mesh, so each point lands on exactly one
/// owner by construction.
fn brute_force_halo(mesh: [usize; 3], nodes: [usize; 3], halo: [usize; 3]) -> (u64, u64) {
    let s: [i64; 3] = std::array::from_fn(|a| (mesh[a] / nodes[a]) as i64);
    let mut points: BTreeSet<[i64; 3]> = BTreeSet::new();
    let mut owners: BTreeSet<[i64; 3]> = BTreeSet::new();
    for x in -(halo[0] as i64)..s[0] + halo[0] as i64 {
        for y in -(halo[1] as i64)..s[1] + halo[1] as i64 {
            for z in -(halo[2] as i64)..s[2] + halo[2] as i64 {
                let w = [
                    x.rem_euclid(mesh[0] as i64),
                    y.rem_euclid(mesh[1] as i64),
                    z.rem_euclid(mesh[2] as i64),
                ];
                let owner = [w[0] / s[0], w[1] / s[1], w[2] / s[2]];
                for a in 0..3 {
                    assert!((owner[a] as usize) < nodes[a], "owner outside node grid");
                }
                points.insert(w);
                owners.insert(owner);
            }
        }
    }
    let home_slab = (s[0] * s[1] * s[2]) as u64;
    let halo_points = points.len() as u64 - home_slab;
    let neighbors = owners.len() as u64 - 1; // home owner always present
    (halo_points, neighbors)
}

proptest! {
    /// The closed-form halo point and neighbor counts of [`MeshExchange`]
    /// agree with the brute-force wrapped enumeration for every valid
    /// (mesh, node grid, stencil reach) combination — including the
    /// wrap-around regimes where the dilated slab covers the whole axis.
    #[test]
    fn halo_census_matches_brute_force(
        nx in 1usize..5, sx in 1usize..7, hx in 0usize..5,
        ny in 1usize..5, sy in 1usize..7, hy in 0usize..5,
        nz in 1usize..5, sz in 1usize..7, hz in 0usize..5,
    ) {
        let nodes = [nx, ny, nz];
        let mesh = [nx * sx, ny * sy, nz * sz];
        let halo = [hx, hy, hz];
        let me = MeshExchange::new(mesh, nodes, halo, 0, 0);
        let (points, neighbors) = brute_force_halo(mesh, nodes, halo);
        prop_assert_eq!(me.halo_points_per_rank(), points,
            "halo points: mesh {:?} nodes {:?} halo {:?}", mesh, nodes, halo);
        prop_assert_eq!(me.halo_neighbors_per_rank(), neighbors,
            "halo neighbors: mesh {:?} nodes {:?} halo {:?}", mesh, nodes, halo);
    }

    /// Pencil-pass accounting identities: every line along the axis has
    /// exactly `g_axis - 1` non-owner segments, each gathered and scattered
    /// once, and every message carries one segment of `n/g` points.
    #[test]
    fn pencil_pass_accounting(
        nx in 1usize..5, sx in 1usize..7,
        ny in 1usize..5, sy in 1usize..7,
        nz in 1usize..5, sz in 1usize..7,
        axis_idx in 0usize..3, bytes_per_point in 1u64..17,
    ) {
        let nodes = [nx, ny, nz];
        let mesh = [nx * sx, ny * sy, nz * sz];
        let p = pencil_pass_stats(mesh, nodes, bytes_per_point, axis_idx);

        let g = nodes[axis_idx] as u64;
        let (u, v) = match axis_idx { 0 => (1, 2), 1 => (0, 2), _ => (0, 1) };
        let lines = (mesh[u] * mesh[v]) as u64;
        let seg_bytes = (mesh[axis_idx] / nodes[axis_idx]) as u64 * bytes_per_point;

        prop_assert_eq!(p.messages_total, 2 * lines * (g - 1));
        prop_assert_eq!(p.bytes_total, p.messages_total * seg_bytes);
        prop_assert_eq!(p.bytes_max_node, p.messages_max_node * seg_bytes);
        // The busiest node carries at least the mean load...
        let node_count = (nodes[0] * nodes[1] * nodes[2]) as u64;
        prop_assert!(p.messages_max_node * node_count >= p.messages_total);
        // ...and no node can exceed every message in the pass.
        prop_assert!(p.messages_max_node <= p.messages_total);
        // Single node along the axis: lines never leave their owner.
        if g == 1 {
            prop_assert_eq!(p.messages_total, 0);
            prop_assert_eq!(p.messages_max_node, 0);
        }
    }

    /// The fixed-point distributed FFT reports exactly the statically
    /// computed pass statistics — the numbers the trace's modeled-µs
    /// attribution divides between the forward and inverse transforms.
    #[test]
    fn fx_fft_stats_equal_static_pass_stats(
        jx in 0u32..3, kx in 1u32..4,
        jy in 0u32..3, ky in 1u32..4,
        jz in 0u32..3, kz in 1u32..4,
    ) {
        let nodes = [1usize << jx, 1usize << jy, 1usize << jz];
        let mesh = [1usize << (jx + kx), 1usize << (jy + ky), 1usize << (jz + kz)];
        let fft = FxDistributedFft3d::new(mesh, nodes);
        for axis_idx in 0..3 {
            prop_assert_eq!(
                *fft.stats().pass(axis_idx),
                pencil_pass_stats(mesh, nodes, FX_BYTES_PER_POINT, axis_idx),
                "axis {} of mesh {:?} on nodes {:?}", axis_idx, mesh, nodes
            );
        }
    }

    /// `record_lr_step` meters both directions of the halo exchange and
    /// both transforms of the step, linearly in the step count.
    #[test]
    fn record_lr_step_accounting(
        nx in 1usize..5, sx in 1usize..7, hx in 0usize..5,
        ny in 1usize..5, sy in 1usize..7, hy in 0usize..5,
        nz in 1usize..5, sz in 1usize..7, hz in 0usize..5,
        fft_msgs in 0u64..10_000, fft_bytes in 0u64..1_000_000,
        steps in 1u64..5,
    ) {
        let nodes = [nx, ny, nz];
        let mesh = [nx * sx, ny * sy, nz * sz];
        let halo = [hx, hy, hz];
        let me = MeshExchange::new(mesh, nodes, halo, fft_msgs, fft_bytes);
        let ranks = (nodes[0] * nodes[1] * nodes[2]) as u64;

        let mut c = ExchangeCounters::default();
        for _ in 0..steps {
            me.record_lr_step(&mut c);
        }
        prop_assert_eq!(c.lr_steps, steps);
        prop_assert_eq!(c.mesh_halo_messages,
            steps * 2 * ranks * me.halo_neighbors_per_rank());
        prop_assert_eq!(c.mesh_halo_bytes,
            steps * 2 * ranks * me.halo_points_per_rank() * MESH_BYTES);
        prop_assert_eq!(c.fft_messages, steps * 2 * fft_msgs);
        prop_assert_eq!(c.fft_bytes, steps * 2 * fft_bytes);
        // Only long-range fields move; the short-range phases stay silent.
        prop_assert_eq!(c.steps, 0);
        prop_assert_eq!(c.import_messages, 0);
        prop_assert_eq!(c.reduce_messages, 0);
    }
}
