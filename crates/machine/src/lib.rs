//! A model of the Anton machine (paper §2.2, §3, §4).
//!
//! Anton's headline results come from an ASIC whose subsystems this crate
//! models at two levels:
//!
//! * **Functional** — bit-level models of the numerically relevant datapaths:
//!   the PPIP's tiered, block-floating-point, piecewise-cubic function
//!   evaluators ([`tables`], [`ppip`]) fit with the Remez exchange algorithm
//!   exactly as the paper describes, and the match units' low-precision
//!   distance check. The Anton engine (`anton-core`) computes its
//!   range-limited forces through these models.
//! * **Performance** — a calibrated cycle/communication accounting model
//!   ([`perf`]) of a full time step: HTIS pipelines and match units, the
//!   torus links ([`topology`]), the distributed FFT traffic, the geometry
//!   cores and correction pipeline ([`flex`]). Free constants are calibrated
//!   against a single column of the paper's Table 2 (see DESIGN.md §6);
//!   everything else is prediction.

pub mod config;
pub mod exchange;
pub mod flex;
pub mod htis;
pub mod perf;
pub mod ppip;
pub mod ring;
pub mod tables;
pub mod topology;

pub use config::MachineConfig;
pub use exchange::{ExchangePlan, Link, MeshExchange, FORCE_BYTES, MESH_BYTES, POS_BYTES};
pub use htis::{HtisRun, HtisSim};
pub use perf::{modeled_burst_us, ExchangeCounters, PerfModel, StepBreakdown, SystemStats};
pub use ppip::{MatchUnit, PairBatch, Ppip, MATCH_WIDTH, R2_FRAC};
pub use ring::{Ring, Station};
pub use tables::{FunctionTable, TableSpec};
