//! Cycle-level model of the high-throughput interaction subsystem.
//!
//! The HTIS is a systolic-array-like engine: every cycle, each of the 32
//! PPIPs is fed by 8 match units that test candidate tower×plate pairs
//! against the (low-precision) cutoff; survivors pass through a concentrator
//! into the PPIP's input queue, and the PPIP retires at most one interaction
//! per cycle. "As long as the average number of such pairs per cycle per
//! PPIP is at least one, the PPIPs will approach full utilization" (§3.2.1)
//! — and Table 3 is about keeping the match efficiency high enough for that
//! to hold. This module simulates that queueing behavior so the claim can
//! be measured rather than assumed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Result of simulating one HTIS batch.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HtisRun {
    /// Cycles needed to retire every matched interaction.
    pub cycles: u64,
    /// Interactions computed.
    pub interactions: u64,
    /// Candidates examined by the match units.
    pub candidates: u64,
    /// PPIP utilization: interactions / (cycles × pipelines).
    pub utilization: f64,
    /// Peak occupancy observed in any PPIP input queue.
    pub peak_queue: usize,
}

/// Configuration of one HTIS.
#[derive(Clone, Copy, Debug)]
pub struct HtisSim {
    pub ppips: usize,
    pub match_units_per_ppip: usize,
    /// PPIP input queue depth; the concentrator stalls its match units when
    /// the queue is full.
    pub queue_depth: usize,
}

impl Default for HtisSim {
    fn default() -> HtisSim {
        HtisSim {
            ppips: 32,
            match_units_per_ppip: 8,
            queue_depth: 4,
        }
    }
}

impl HtisSim {
    /// Simulate retiring a workload in which each candidate pair passes the
    /// match units independently with probability `match_efficiency`, with
    /// `candidates` total candidates spread round-robin across PPIPs.
    /// Deterministic per seed.
    pub fn run(&self, candidates: u64, match_efficiency: f64, seed: u64) -> HtisRun {
        assert!((0.0..=1.0).contains(&match_efficiency));
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut remaining: Vec<u64> = {
            // Candidates per PPIP's match-unit group.
            let per = candidates / self.ppips as u64;
            let mut v = vec![per; self.ppips];
            for item in v.iter_mut().take((candidates % self.ppips as u64) as usize) {
                *item += 1;
            }
            v
        };
        let mut queues = vec![0usize; self.ppips];
        // Matched pairs the concentrator could not yet enqueue: the match
        // units stall behind them (back-pressure), but the pairs stay
        // matched — they are never re-tested.
        let mut pending = vec![0usize; self.ppips];
        let mut interactions = 0u64;
        let mut cycles = 0u64;
        let mut peak_queue = 0usize;

        loop {
            let all_drained = remaining.iter().all(|&r| r == 0)
                && queues.iter().all(|&q| q == 0)
                && pending.iter().all(|&q| q == 0);
            if all_drained {
                break;
            }
            cycles += 1;
            for p in 0..self.ppips {
                // Drain pending matches into the queue first.
                let mut room = self.queue_depth - queues[p];
                let moved = pending[p].min(room);
                pending[p] -= moved;
                queues[p] += moved;
                room -= moved;

                // Match units examine new candidates only when not stalled
                // behind pending matches.
                if pending[p] == 0 && room > 0 && remaining[p] > 0 {
                    let examine = (self.match_units_per_ppip as u64).min(remaining[p]);
                    remaining[p] -= examine;
                    let mut passed = 0usize;
                    for _ in 0..examine {
                        if rng.gen::<f64>() < match_efficiency {
                            passed += 1;
                        }
                    }
                    let accepted = passed.min(room);
                    queues[p] += accepted;
                    pending[p] += passed - accepted;
                }
                peak_queue = peak_queue.max(queues[p]);

                // PPIP retires one interaction per cycle.
                if queues[p] > 0 {
                    queues[p] -= 1;
                    interactions += 1;
                }
            }
        }

        HtisRun {
            cycles,
            interactions,
            candidates,
            utilization: interactions as f64 / (cycles.max(1) * self.ppips as u64) as f64,
            peak_queue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_match_efficiency_saturates_ppips() {
        // At 25% efficiency with 8 match units, ~2 pairs/cycle/PPIP arrive:
        // the pipelines approach full utilization (the §3.2.1 claim).
        let sim = HtisSim::default();
        let run = sim.run(1_000_000, 0.25, 3);
        assert!(run.utilization > 0.9, "utilization {:.2}", run.utilization);
    }

    #[test]
    fn low_match_efficiency_starves_ppips() {
        // At 4% efficiency (Table 3's 32 Å box without subboxes), only
        // ~0.32 pairs/cycle/PPIP arrive: utilization collapses toward it.
        let sim = HtisSim::default();
        let run = sim.run(1_000_000, 0.04, 3);
        assert!(run.utilization < 0.45, "utilization {:.2}", run.utilization);
    }

    #[test]
    fn utilization_breakpoint_at_one_pair_per_cycle() {
        // The break-even the paper states: 8 match units × eff = 1
        // pair/cycle at eff = 12.5%.
        let sim = HtisSim::default();
        let below = sim.run(400_000, 0.08, 5).utilization;
        let above = sim.run(400_000, 0.20, 5).utilization;
        assert!(below < 0.75, "below breakpoint: {below:.2}");
        assert!(above > 0.9, "above breakpoint: {above:.2}");
    }

    #[test]
    fn interaction_count_matches_efficiency() {
        let sim = HtisSim::default();
        let run = sim.run(500_000, 0.25, 9);
        let expected = 500_000.0 * 0.25;
        let rel = (run.interactions as f64 - expected).abs() / expected;
        assert!(
            rel < 0.02,
            "interactions {} vs expected {expected}",
            run.interactions
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let sim = HtisSim::default();
        assert_eq!(sim.run(100_000, 0.3, 7), sim.run(100_000, 0.3, 7));
    }
}
