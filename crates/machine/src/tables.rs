//! PPIP function tables (paper §4, Figure 4).
//!
//! Each PPIP evaluates interaction kernels as *tabulated piecewise-cubic
//! polynomials of r²*: a tiered indexing scheme divides the domain into
//! non-uniform segments (narrow where the kernel varies fast, near r² = 0),
//! each entry stores four coefficient mantissas sharing one block-floating-
//! point exponent, the minimax polynomial on each segment is computed with
//! the Remez exchange algorithm, and the constant terms are adjusted to make
//! the function continuous across segment boundaries. Evaluation runs in
//! integer arithmetic with round-to-nearest/even — deterministic and
//! bit-reproducible, like the hardware.

use anton_fixpoint::rounding::{rne_f64, rne_shr_i64};
use serde::{Deserialize, Serialize};

/// Exact `2^e` as an `f64`, built directly from the exponent field.
///
/// Bitwise identical to `(2.0f64).powi(e)` for every normal-range `e`
/// (powers of two are exact in binary floating point), but a couple of
/// integer ops instead of a libm-style call — this sits in the per-lane
/// mantissa→f64 decode of the PPIP evaluate path. Exponents outside the
/// normal range (never produced by the block-floating-point tables, whose
/// exponents are within a few hundred of zero) fall back to `powi`.
#[inline]
pub fn exp2i(e: i32) -> f64 {
    if (-1022..=1023).contains(&e) {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else {
        (2.0f64).powi(e)
    }
}

/// Tier layout: `(entries, domain_end)` pairs over the normalized domain
/// `u = r²/r²_max ∈ [0, 1)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TableSpec {
    pub tiers: Vec<(usize, f64)>,
    /// Mantissa width in bits (paper: 19–22 bit data paths).
    pub mantissa_bits: u32,
}

impl TableSpec {
    /// The paper's example configuration: 64 entries on [0, 1/128), 96 on
    /// [1/128, 1/32), 56 on [1/32, 1/4), 24 on [1/4, 1) — 240 segments.
    pub fn paper_default() -> TableSpec {
        TableSpec {
            tiers: vec![(64, 1.0 / 128.0), (96, 1.0 / 32.0), (56, 0.25), (24, 1.0)],
            mantissa_bits: 22,
        }
    }

    /// A geometric tier ladder: `levels` octaves from `2^-(levels-1)` to 1,
    /// each with `per_tier` entries, plus the base tier `[0, 2^-(levels-1))`.
    /// With `per_tier` a power of two every segment boundary is an exact
    /// binary fraction, and the relative segment width `w/u ≤ 1/per_tier`
    /// everywhere — the right shape for kernels with power-law divergence
    /// at r² → 0 (the van der Waals r⁻¹⁴/r⁻⁸ terms). The tables are
    /// user-configured per kernel on the real machine (§2.2), so different
    /// kernels using different layouts is faithful.
    pub fn geometric(levels: usize, per_tier: usize) -> TableSpec {
        assert!(levels >= 2 && per_tier.is_power_of_two());
        let tiers = (0..levels)
            .map(|k| (per_tier, (2.0f64).powi(-(levels as i32) + 1 + k as i32)))
            .collect();
        TableSpec {
            tiers,
            mantissa_bits: 22,
        }
    }

    pub fn total_entries(&self) -> usize {
        self.tiers.iter().map(|t| t.0).sum()
    }

    /// The greatest segment boundary ≤ `u` (used to align kernel clamp
    /// points with segment edges, so the clamp kink never falls inside a
    /// cubic fit).
    pub fn snap_down(&self, u: f64) -> f64 {
        let mut best = 0.0;
        let mut u0 = 0.0;
        for &(count, end) in &self.tiers {
            let w = (end - u0) / count as f64;
            for k in 0..count {
                let b = u0 + k as f64 * w;
                if b <= u {
                    best = b;
                } else {
                    return best;
                }
            }
            u0 = end;
        }
        best
    }
}

/// One table entry: four signed coefficient mantissas with a shared
/// power-of-two exponent (block floating point). The represented cubic is
/// `p(t) = Σ coeffs[i]·2^(exponent)·tⁱ` with `t ∈ [0,1)` the position within
/// the segment and mantissas scaled by `2^-(mantissa_bits-1)`.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Segment {
    pub coeffs: [i32; 4],
    pub exponent: i32,
}

/// One tier of the integer index ladder: valid only when the tier's segment
/// width is an exact power of two in Q31, in which case segment selection
/// and the within-segment coordinate reduce to a shift and a subtract.
#[derive(Clone, Copy, Debug)]
struct FastTier {
    /// Tier domain end as Q31 (exclusive).
    end_q31: i64,
    /// Tier domain start as Q31.
    u0_q31: i64,
    /// Global index of the tier's first segment.
    base: usize,
    /// Segment width = `2^(log2_w - 31)` in u units.
    log2_w: u32,
    /// Segments in this tier.
    count: usize,
}

/// A fitted, quantized function table over `u ∈ [0, 1)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FunctionTable {
    pub spec: TableSpec,
    pub segments: Vec<Segment>,
    /// `(u_start, u_width)` per segment.
    pub bounds: Vec<(f64, f64)>,
    /// Integer index ladder, present when every tier width is an exact
    /// power of two in Q31 (true for both shipped specs). Rebuilt by
    /// `fit`; deserialized tables fall back to the float lookup, which
    /// produces identical bits.
    #[serde(skip)]
    fast: Option<Vec<FastTier>>,
}

impl FunctionTable {
    /// Fit `f` on `[0, 1)` with per-segment Remez minimax cubics, stitch for
    /// continuity, and quantize to block floating point.
    pub fn fit(f: impl Fn(f64) -> f64, spec: TableSpec) -> FunctionTable {
        let mut bounds = Vec::with_capacity(spec.total_entries());
        let mut u0 = 0.0;
        for &(count, end) in &spec.tiers {
            let w = (end - u0) / count as f64;
            for k in 0..count {
                bounds.push((u0 + k as f64 * w, w));
            }
            u0 = end;
        }

        // Remez fit per segment (coefficients in t ∈ [0,1]), then pin each
        // segment's endpoint values to the exact kernel with a linear
        // correction. Both sides of every boundary then agree (they equal
        // f there), so the table is continuous *without* chaining constant
        // shifts across segments — chained shifts accumulate fit residuals
        // into a low-frequency error that dominates the table accuracy.
        let raw: Vec<[f64; 4]> = bounds
            .iter()
            .map(|&(s, w)| {
                let g = |t: f64| f(s + t * w);
                let mut c = remez_cubic(g, 1e-14);
                let p0 = c[0];
                let p1 = c[0] + c[1] + c[2] + c[3];
                let d0 = g(0.0) - p0;
                let d1 = g(1.0) - p1;
                // p̃(t) = p(t) + d0(1−t) + d1·t.
                c[0] += d0;
                c[1] += d1 - d0;
                c
            })
            .collect();

        // Block-float quantization.
        let mbits = spec.mantissa_bits;
        let segments = raw
            .iter()
            .map(|c| {
                let maxc = c.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
                let exponent = if maxc > 0.0 {
                    maxc.log2().floor() as i32 + 1
                } else {
                    0
                };
                let scale = (2.0f64).powi(mbits as i32 - 1 - exponent);
                let mut coeffs = [0i32; 4];
                for (q, &x) in coeffs.iter_mut().zip(c.iter()) {
                    let m = rne_f64(x * scale);
                    *q = m.clamp(
                        -(1i64 << (mbits - 1)) as f64,
                        ((1i64 << (mbits - 1)) - 1) as f64,
                    ) as i32;
                }
                Segment { coeffs, exponent }
            })
            .collect();

        let fast = Self::build_fast(&spec);
        FunctionTable {
            spec,
            segments,
            bounds,
            fast,
        }
    }

    /// Build the integer index ladder when the spec qualifies: every tier
    /// boundary must be an exact multiple of 2^-31 and every tier width an
    /// exact power of two in Q31, and the domain must end at exactly 1.
    /// Under those conditions the float lookup of [`Self::segment_of`] /
    /// [`Self::eval_fixed`] is exact integer arithmetic in disguise — the
    /// ladder computes the same index and the same Q31 `t`, bit for bit —
    /// because `u`, `u − u0`, and `(u − u0)/w` are all exactly
    /// representable and the `as usize` truncation equals the shift.
    fn build_fast(spec: &TableSpec) -> Option<Vec<FastTier>> {
        let q31 = (1i64 << 31) as f64;
        let mut tiers = Vec::with_capacity(spec.tiers.len());
        let mut base = 0usize;
        let mut u0 = 0.0f64;
        for &(count, end) in &spec.tiers {
            let u0_q31f = u0 * q31;
            let end_q31f = end * q31;
            if u0_q31f.fract() != 0.0 || end_q31f.fract() != 0.0 {
                return None;
            }
            let u0_q31 = u0_q31f as i64;
            let end_q31 = end_q31f as i64;
            let span = end_q31 - u0_q31;
            if count == 0 || span <= 0 || span % count as i64 != 0 {
                return None;
            }
            let w_q31 = span / count as i64;
            if !(w_q31 as u64).is_power_of_two() {
                return None;
            }
            // The float path's segment width must round-trip exactly.
            if (end - u0) / count as f64 != w_q31 as f64 / q31 {
                return None;
            }
            tiers.push(FastTier {
                end_q31,
                u0_q31,
                base,
                log2_w: (w_q31 as u64).trailing_zeros(),
                count,
            });
            base += count;
            u0 = end;
        }
        if u0 != 1.0 {
            return None;
        }
        Some(tiers)
    }

    /// Locate the segment containing `u` (tiered index lookup).
    #[inline]
    pub fn segment_of(&self, u: f64) -> usize {
        debug_assert!((0.0..1.0).contains(&u));
        let mut base = 0usize;
        let mut u0 = 0.0;
        for &(count, end) in &self.spec.tiers {
            if u < end {
                let w = (end - u0) / count as f64;
                let k = ((u - u0) / w) as usize;
                return base + k.min(count - 1);
            }
            base += count;
            u0 = end;
        }
        self.segments.len() - 1
    }

    /// The exact real value the quantized table represents at `u`
    /// (infinite-precision Horner over the dequantized coefficients).
    pub fn eval_f64(&self, u: f64) -> f64 {
        let idx = self.segment_of(u.clamp(0.0, 1.0 - 1e-15));
        let (s, w) = self.bounds[idx];
        let t = ((u - s) / w).clamp(0.0, 1.0);
        let seg = &self.segments[idx];
        let scale = (2.0f64).powi(seg.exponent - (self.spec.mantissa_bits as i32 - 1));
        let c: Vec<f64> = seg.coeffs.iter().map(|&m| m as f64 * scale).collect();
        ((c[3] * t + c[2]) * t + c[1]) * t + c[0]
    }

    /// Segment index and within-segment Q31 coordinate for a Q31 `u` —
    /// the match half of the HTIS evaluate: one lookup shared by every
    /// table with the same spec (the six PPIP kernels), bitwise identical
    /// to the lookup [`Self::eval_fixed`] has always done.
    #[inline]
    pub fn locate_q31(&self, u_q31: i64) -> (usize, i64) {
        let u_q31 = u_q31.clamp(0, (1i64 << 31) - 1);
        if let Some(tiers) = &self.fast {
            for tier in tiers {
                if u_q31 < tier.end_q31 {
                    let k = (((u_q31 - tier.u0_q31) >> tier.log2_w) as usize).min(tier.count - 1);
                    let s_q31 = tier.u0_q31 + ((k as i64) << tier.log2_w);
                    return (tier.base + k, (u_q31 - s_q31) << (31 - tier.log2_w));
                }
            }
            // Unreachable when the ladder exists (its domain ends at 1 and
            // u is clamped below it); fall through defensively.
        }
        let u = u_q31 as f64 / (1i64 << 31) as f64;
        let idx = self.segment_of(u);
        let (s, w) = self.bounds[idx];
        // t within segment as Q31, computed from integer u and quantized
        // segment bounds (w is an exact binary fraction by construction of
        // the tiers, so this is exact integer arithmetic in disguise).
        let s_q31 = rne_f64(s * (1i64 << 31) as f64) as i64;
        let inv_w = 1.0 / w;
        let t_q31 = rne_f64((u_q31 - s_q31) as f64 * inv_w) as i64;
        (idx, t_q31)
    }

    /// Integer Horner over one located segment (the evaluate half).
    #[inline]
    pub fn eval_at(&self, idx: usize, t_q31: i64) -> (i64, i32) {
        let t = t_q31.clamp(0, 1i64 << 31);
        let seg = &self.segments[idx];
        // Horner with Q31 t and mantissa-width accumulators.
        let mut acc = seg.coeffs[3] as i64;
        for k in (0..3).rev() {
            acc = rne_shr_i64(acc * t, 31) + seg.coeffs[k] as i64;
        }
        (acc, seg.exponent - (self.spec.mantissa_bits as i32 - 1))
    }

    /// Hardware-style evaluation: `u` as a Q31 raw value, Horner in integer
    /// arithmetic with round-to-nearest/even after each multiply, mantissa
    /// result + exponent out. Deterministic.
    pub fn eval_fixed(&self, u_q31: i64) -> (i64, i32) {
        let (idx, t_q31) = self.locate_q31(u_q31);
        self.eval_at(idx, t_q31)
    }

    /// Convenience: the fixed-path value as f64 (exact conversion).
    pub fn eval_fixed_f64(&self, u_q31: i64) -> f64 {
        let (m, e) = self.eval_fixed(u_q31);
        m as f64 * exp2i(e)
    }

    /// Maximum |table − f| over `samples` points in `[lo, hi)`, and the rms,
    /// both relative to the max |f| on the range.
    pub fn error_vs(&self, f: impl Fn(f64) -> f64, lo: f64, hi: f64, samples: usize) -> (f64, f64) {
        let mut max_err: f64 = 0.0;
        let mut sum2 = 0.0;
        let mut max_f: f64 = 0.0;
        for i in 0..samples {
            let u = lo + (hi - lo) * (i as f64 + 0.5) / samples as f64;
            let e = self.eval_f64(u) - f(u);
            max_err = max_err.max(e.abs());
            sum2 += e * e;
            max_f = max_f.max(f(u).abs());
        }
        (max_err / max_f, (sum2 / samples as f64).sqrt() / max_f)
    }
}

/// Minimax cubic fit of `g` on `[0, 1]` by the Remez exchange algorithm:
/// returns `[a0, a1, a2, a3]`.
pub fn remez_cubic(g: impl Fn(f64) -> f64, tol: f64) -> [f64; 4] {
    // 5 reference points for a degree-3 equioscillation (n + 2).
    let mut x: Vec<f64> = (0..5)
        .map(|i| 0.5 - 0.5 * (std::f64::consts::PI * i as f64 / 4.0).cos())
        .collect();
    let mut coeffs = [0.0f64; 4];

    for _iter in 0..30 {
        // Solve p(x_i) + (-1)^i E = g(x_i) for (a0..a3, E).
        let mut m = [[0.0f64; 5]; 5];
        let mut rhs = [0.0f64; 5];
        for (i, &xi) in x.iter().enumerate() {
            m[i][0] = 1.0;
            m[i][1] = xi;
            m[i][2] = xi * xi;
            m[i][3] = xi * xi * xi;
            m[i][4] = if i % 2 == 0 { 1.0 } else { -1.0 };
            rhs[i] = g(xi);
        }
        let sol = solve5(m, rhs);
        coeffs = [sol[0], sol[1], sol[2], sol[3]];
        let e_level = sol[4].abs();

        // Find extrema of the error on a dense grid.
        const GRID: usize = 512;
        let err = |t: f64| ((coeffs[3] * t + coeffs[2]) * t + coeffs[1]) * t + coeffs[0] - g(t);
        let mut extrema: Vec<(f64, f64)> = Vec::new();
        let mut best_in_run: Option<(f64, f64)> = None;
        let mut last_sign = 0i32;
        for i in 0..=GRID {
            let t = i as f64 / GRID as f64;
            let e = err(t);
            let sign = if e >= 0.0 { 1 } else { -1 };
            if sign != last_sign && last_sign != 0 {
                if let Some(b) = best_in_run.take() {
                    extrema.push(b);
                }
            }
            last_sign = sign;
            if best_in_run.is_none_or(|(_, be)| e.abs() > be.abs()) {
                best_in_run = Some((t, e));
            }
        }
        if let Some(b) = best_in_run {
            extrema.push(b);
        }
        if extrema.len() < 5 {
            break; // error effectively at rounding level
        }
        // Keep the 5 largest-amplitude alternating extrema (they already
        // alternate by construction of the runs).
        while extrema.len() > 5 {
            // Drop the smallest end extremum.
            if extrema.first().unwrap().1.abs() < extrema.last().unwrap().1.abs() {
                extrema.remove(0);
            } else {
                extrema.pop();
            }
        }
        let new_x: Vec<f64> = extrema.iter().map(|&(t, _)| t).collect();
        let max_dev = extrema.iter().map(|&(_, e)| e.abs()).fold(0.0f64, f64::max);
        x = new_x;
        if (max_dev - e_level).abs() < tol * (1.0 + max_dev) {
            break;
        }
    }
    coeffs
}

/// Solve a 5×5 linear system by Gaussian elimination with partial pivoting.
// Gaussian elimination touches rows r and col simultaneously; index loops
// beat split_at_mut gymnastics for a fixed 5x5 system.
#[allow(clippy::needless_range_loop)]
fn solve5(mut m: [[f64; 5]; 5], mut b: [f64; 5]) -> [f64; 5] {
    for col in 0..5 {
        let piv = (col..5)
            .max_by(|&a, &bb| m[a][col].abs().partial_cmp(&m[bb][col].abs()).unwrap())
            .unwrap();
        m.swap(col, piv);
        b.swap(col, piv);
        let d = m[col][col];
        assert!(d.abs() > 1e-300, "singular Remez system");
        for r in (col + 1)..5 {
            let f = m[r][col] / d;
            for c in col..5 {
                m[r][c] -= f * m[col][c];
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = [0.0f64; 5];
    for r in (0..5).rev() {
        let mut s = b[r];
        for c in (r + 1)..5 {
            s -= m[r][c] * x[c];
        }
        x[r] = s / m[r][r];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `exp2i` must be bit-for-bit `powi` everywhere, including the
    /// subnormal/overflow fallback edges — the PPIP decode path relies on
    /// the substitution being invisible to every checksum.
    #[test]
    fn exp2i_is_bitwise_powi() {
        for e in -1100..=1100 {
            assert_eq!(
                exp2i(e).to_bits(),
                (2.0f64).powi(e).to_bits(),
                "exp2i({e}) diverged from powi"
            );
        }
    }

    #[test]
    fn remez_fits_cubic_exactly() {
        let c = remez_cubic(|t| 1.0 + 2.0 * t - 3.0 * t * t + 0.5 * t * t * t, 1e-14);
        assert!((c[0] - 1.0).abs() < 1e-10);
        assert!((c[1] - 2.0).abs() < 1e-9);
        assert!((c[2] + 3.0).abs() < 1e-9);
        assert!((c[3] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn remez_beats_taylor_on_exp() {
        // Minimax error of cubic on exp over [0,1] is ~1.1e-4 (Taylor: ~1.5e-2).
        let c = remez_cubic(|t| t.exp(), 1e-14);
        let mut max_err: f64 = 0.0;
        for i in 0..1000 {
            let t = i as f64 / 999.0;
            let p = ((c[3] * t + c[2]) * t + c[1]) * t + c[0];
            max_err = max_err.max((p - t.exp()).abs());
        }
        // True minimax error of a cubic for exp on [0,1] is ~5.45e-4 (Taylor: 1.5e-2).
        assert!(max_err < 6e-4, "max_err = {max_err:e}");
    }

    #[test]
    fn spec_matches_paper_entry_count() {
        let spec = TableSpec::paper_default();
        assert_eq!(spec.total_entries(), 240);
    }

    #[test]
    fn tiered_lookup_is_consistent_with_bounds() {
        let table = FunctionTable::fit(|u| u, TableSpec::paper_default());
        for i in 0..10_000 {
            let u = (i as f64 + 0.5) / 10_000.0;
            let s = table.segment_of(u);
            let (lo, w) = table.bounds[s];
            assert!(u >= lo - 1e-12 && u < lo + w + 1e-12, "u={u} seg={s}");
        }
    }

    #[test]
    fn table_is_continuous_across_segments() {
        let table = FunctionTable::fit(|u| (1.0 / (u + 0.01)).sqrt(), TableSpec::paper_default());
        for k in 1..table.segments.len() {
            let (s, _) = table.bounds[k];
            let left = table.eval_f64(s - 1e-13);
            let right = table.eval_f64(s + 1e-13);
            // Continuity up to one quantization step of the larger segment.
            let tol = (2.0f64).powi(
                table.segments[k]
                    .exponent
                    .max(table.segments[k - 1].exponent)
                    - (table.spec.mantissa_bits as i32 - 1),
            ) * 4.0;
            assert!(
                (left - right).abs() <= tol,
                "jump {} at seg {k}",
                (left - right).abs()
            );
        }
    }

    #[test]
    fn smooth_kernel_error_near_quantization_floor() {
        // A smooth bounded kernel should be represented to ~1e-5 relative.
        let f = |u: f64| (-3.0 * u).exp() * (1.0 + u);
        let table = FunctionTable::fit(f, TableSpec::paper_default());
        let (max_rel, rms_rel) = table.error_vs(f, 1e-4, 1.0, 20_000);
        assert!(max_rel < 3e-5, "max rel err {max_rel:e}");
        assert!(rms_rel < 1e-5, "rms rel err {rms_rel:e}");
    }

    #[test]
    fn fixed_eval_matches_f64_eval() {
        let f = |u: f64| 1.0 / (u + 0.05);
        let table = FunctionTable::fit(f, TableSpec::paper_default());
        for i in 0..5000 {
            let u = (i as f64 + 0.5) / 5000.0;
            let u_q31 = (u * (1i64 << 31) as f64) as i64;
            let fx = table.eval_fixed_f64(u_q31);
            let fl = table.eval_f64(u);
            assert!(
                (fx - fl).abs() < 2e-5 * fl.abs().max(1.0),
                "u={u}: fixed {fx} vs f64 {fl}"
            );
        }
    }

    #[test]
    fn fast_ladder_is_bitwise_identical_to_float_lookup() {
        // Both shipped specs qualify for the integer index ladder; a table
        // stripped of it (the deserialization fallback) must produce the
        // same segment index, the same Q31 t, and the same mantissa and
        // exponent for every representable input — including the segment
        // boundaries, where an index ladder would first diverge.
        for spec in [TableSpec::paper_default(), TableSpec::geometric(8, 32)] {
            let table = FunctionTable::fit(|u| 1.0 / (u + 0.03), spec);
            assert!(table.fast.is_some(), "shipped spec must qualify");
            let mut slow = table.clone();
            slow.fast = None;
            let mut probes: Vec<i64> = (0..40_000)
                .map(|i| (i as i64 * 53687) % ((1i64 << 31) - 1))
                .collect();
            for &(s, w) in &table.bounds {
                let q = (s * (1i64 << 31) as f64) as i64;
                let e = ((s + w) * (1i64 << 31) as f64) as i64;
                probes.extend([q, q + 1, e - 1]);
            }
            probes.extend([0, (1i64 << 31) - 1]);
            for u_q31 in probes {
                assert_eq!(
                    table.locate_q31(u_q31),
                    slow.locate_q31(u_q31),
                    "lookup diverged at u_q31={u_q31}"
                );
                assert_eq!(
                    table.eval_fixed(u_q31),
                    slow.eval_fixed(u_q31),
                    "eval diverged at u_q31={u_q31}"
                );
            }
        }
    }

    #[test]
    fn non_binary_tier_widths_fall_back_to_float_lookup() {
        // 3 segments over [0,1): width 1/3 is not a power of two in Q31,
        // so the ladder must refuse and the float path must carry.
        let spec = TableSpec {
            tiers: vec![(3, 1.0)],
            mantissa_bits: 22,
        };
        let table = FunctionTable::fit(|u| u * u, spec);
        assert!(table.fast.is_none());
        let (m, e) = table.eval_fixed(1 << 30);
        assert!((m as f64 * (2.0f64).powi(e) - 0.25).abs() < 1e-4);
    }

    #[test]
    fn fixed_eval_is_deterministic() {
        let table = FunctionTable::fit(|u| (1.0 - u).sqrt(), TableSpec::paper_default());
        for raw in [0i64, 12345678, 1 << 30, (1 << 31) - 1] {
            assert_eq!(table.eval_fixed(raw), table.eval_fixed(raw));
        }
    }
}
