//! Flexible-subsystem cost model (paper §2.2, §3.2.3–3.2.4).
//!
//! Eight geometry cores evaluate bonded terms and integrate; a dedicated
//! correction pipeline (a PPIP with list-driven control) processes excluded
//! and 1-4 pairs. Cycle costs below are effective per-item costs at the
//! 485 MHz flexible clock, calibrated jointly with the performance model.

use serde::{Deserialize, Serialize};

/// Effective cycle costs on the flexible subsystem.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FlexModel {
    /// Effective cycles per bonded term on a GC (evaluation + position
    /// gather + force scatter).
    pub bond_term_cycles: f64,
    /// Cycles per atom for integration (kick + drift + bookkeeping).
    pub integrate_atom_cycles: f64,
    /// Cycles per constraint pair per SHAKE-style sweep set.
    pub constraint_pair_cycles: f64,
    /// Correction-pipeline throughput: pairs per cycle.
    pub correction_pairs_per_cycle: f64,
}

impl Default for FlexModel {
    fn default() -> FlexModel {
        FlexModel {
            bond_term_cycles: 375.0,
            integrate_atom_cycles: 40.0,
            constraint_pair_cycles: 80.0,
            correction_pairs_per_cycle: 1.0,
        }
    }
}

impl FlexModel {
    /// Seconds to evaluate `terms` bonded terms spread over `gcs` cores at
    /// `clock_hz`, assuming LPT-quality balance (max ≈ mean for many terms).
    pub fn bonded_time_s(&self, terms: f64, gcs: usize, clock_hz: f64) -> f64 {
        terms / gcs as f64 * self.bond_term_cycles / clock_hz
    }

    pub fn integrate_time_s(
        &self,
        atoms: f64,
        constraint_pairs: f64,
        gcs: usize,
        clock_hz: f64,
    ) -> f64 {
        (atoms * self.integrate_atom_cycles + constraint_pairs * self.constraint_pair_cycles)
            / gcs as f64
            / clock_hz
    }

    pub fn correction_time_s(&self, pairs: f64, clock_hz: f64) -> f64 {
        pairs / self.correction_pairs_per_cycle / clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bonded_scales_linearly() {
        let m = FlexModel::default();
        let t1 = m.bonded_time_s(100.0, 8, 485e6);
        let t2 = m.bonded_time_s(200.0, 8, 485e6);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dhfr_node_costs_land_in_microseconds() {
        // ~42 bonded terms and ~46 atoms per node: both phases in the low
        // microseconds, as in Table 2.
        let m = FlexModel::default();
        assert!(m.bonded_time_s(42.0, 8, 485e6) * 1e6 > 2.0);
        assert!(m.bonded_time_s(42.0, 8, 485e6) * 1e6 < 6.0);
        let integ = m.integrate_time_s(46.0, 43.0, 8, 485e6) * 1e6;
        assert!(integ > 0.5 && integ < 3.0, "{integ}");
    }
}
