//! Machine configuration constants (paper §2.2).

use serde::{Deserialize, Serialize};

/// Configuration of an Anton machine. Defaults reflect the 512-node
/// machines evaluated in the paper; node counts may be any power of two
/// from 1 to 32,768 (§5.1).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of nodes (power of two).
    pub nodes: usize,
    /// Torus dimensions (product = nodes).
    pub torus: [usize; 3],
    /// Flexible-subsystem clock (Hz): 485 MHz.
    pub clock_flex_hz: f64,
    /// PPIP array clock (Hz): 970 MHz.
    pub clock_ppip_hz: f64,
    /// Pairwise point interaction pipelines per ASIC.
    pub ppips: usize,
    /// Match units feeding each PPIP.
    pub match_units_per_ppip: usize,
    /// Geometry cores per ASIC.
    pub gcs: usize,
    /// Inter-node channels per ASIC (6 on the 3D torus).
    pub channels: usize,
    /// Per-direction channel bandwidth (bit/s): 50.6 Gbit/s.
    pub link_bits_per_s: f64,
    /// One-hop latency (s): "tens of nanoseconds".
    pub hop_latency_s: f64,
    /// Fixed per-message overhead (s); small messages are efficient.
    pub message_overhead_s: f64,
}

impl MachineConfig {
    /// A machine with `nodes` nodes (power of two) and near-cubic torus.
    pub fn with_nodes(nodes: usize) -> MachineConfig {
        assert!(nodes.is_power_of_two() && (1..=32768).contains(&nodes));
        MachineConfig {
            nodes,
            torus: near_cubic_torus(nodes),
            clock_flex_hz: 485e6,
            clock_ppip_hz: 970e6,
            ppips: 32,
            match_units_per_ppip: 8,
            gcs: 8,
            channels: 6,
            link_bits_per_s: 50.6e9,
            hop_latency_s: 50e-9,
            message_overhead_s: 12e-9,
        }
    }

    /// The paper's standard 512-node machine (8×8×8 torus).
    pub fn anton_512() -> MachineConfig {
        MachineConfig::with_nodes(512)
    }

    /// Total match-unit candidate throughput per node (pairs/s).
    pub fn match_throughput(&self) -> f64 {
        (self.ppips * self.match_units_per_ppip) as f64 * self.clock_ppip_hz
    }

    /// Total PPIP interaction throughput per node (pairs/s).
    pub fn ppip_throughput(&self) -> f64 {
        self.ppips as f64 * self.clock_ppip_hz
    }

    /// Aggregate outgoing link bandwidth per node (bytes/s).
    pub fn node_bandwidth_bytes(&self) -> f64 {
        self.channels as f64 * self.link_bits_per_s / 8.0
    }
}

/// Factor a power of two into three near-equal powers of two
/// (512 → 8×8×8, 128 → 8×4×4, 2 → 2×1×1).
pub fn near_cubic_torus(nodes: usize) -> [usize; 3] {
    let k = nodes.trailing_zeros() as usize;
    let a = k.div_ceil(3);
    let b = (k - a).div_ceil(2);
    let c = k - a - b;
    [1usize << a, 1 << b, 1 << c]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_factorizations() {
        assert_eq!(near_cubic_torus(512), [8, 8, 8]);
        assert_eq!(near_cubic_torus(128), [8, 4, 4]);
        assert_eq!(near_cubic_torus(64), [4, 4, 4]);
        assert_eq!(near_cubic_torus(8), [2, 2, 2]);
        assert_eq!(near_cubic_torus(2), [2, 1, 1]);
        assert_eq!(near_cubic_torus(1), [1, 1, 1]);
        for k in 0..=15 {
            let n = 1usize << k;
            let t = near_cubic_torus(n);
            assert_eq!(t[0] * t[1] * t[2], n);
            assert!(t[0] >= t[1] && t[1] >= t[2]);
        }
    }

    #[test]
    fn throughput_numbers() {
        let cfg = MachineConfig::anton_512();
        // 32 PPIPs at 970 MHz ≈ 31 G interactions/s/node.
        assert!((cfg.ppip_throughput() - 31.04e9).abs() < 1e7);
        // 256 candidates per cycle.
        assert!((cfg.match_throughput() - 248.3e9).abs() < 1e8);
    }
}
