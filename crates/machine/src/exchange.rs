//! Static torus exchange plan for the simulated rank architecture.
//!
//! The NT method fixes, at decomposition time, which boxes every node
//! imports (its tower and plate, §3.2.1) — so the communication pattern of
//! a time step is a *static plan*: the same directed links carry position
//! imports forward and force reductions backward on every step. This module
//! builds that plan from an [`NtAssignment`] and the torus geometry, and
//! meters it into [`ExchangeCounters`](crate::perf::ExchangeCounters) so
//! bench binaries can report modeled communication volume alongside
//! measured step time.

use crate::perf::ExchangeCounters;
use crate::topology::Torus;
use anton_geometry::IVec3;
use anton_nt::assign::{NodeGrid, NtAssignment};
use serde::{Deserialize, Serialize};

/// Wire bytes per imported atom position (3 × 32-bit fixed-point words).
pub const POS_BYTES: u64 = 12;
/// Wire bytes per reduced atom force (3 × 64-bit raw accumulator words).
pub const FORCE_BYTES: u64 = 24;
/// Wire bytes per exchanged mesh point (one 64-bit fixed-point charge or
/// potential accumulator word).
pub const MESH_BYTES: u64 = 8;

/// One directed import link: rank `dst` needs the atoms of the box owned by
/// rank `src`, a dimension-order-routed `hops` away on the torus. The force
/// reduction traverses the same link in reverse.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    pub src: u32,
    pub dst: u32,
    pub hops: u32,
}

/// The static per-step exchange schedule of a node grid under the NT
/// assignment: for every rank, the links over which it imports remote boxes
/// (tower ∪ plate, home box excluded).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExchangePlan {
    grid: NodeGrid,
    /// `imports[rank]` — links with `dst == rank`, in deterministic
    /// (tower-then-plate enumeration) order.
    imports: Vec<Vec<Link>>,
}

impl ExchangePlan {
    /// Build the plan for an NT assignment. The torus dimensions are the
    /// node-grid dimensions (one home box per node).
    pub fn build(nt: &NtAssignment) -> ExchangePlan {
        let grid = nt.grid;
        let torus = Torus::new([
            grid.dims.x as usize,
            grid.dims.y as usize,
            grid.dims.z as usize,
        ]);
        let mut imports = Vec::with_capacity(grid.node_count());
        for rank in 0..grid.node_count() {
            let node = grid.coord(rank);
            let home = node.rem_euclid(grid.dims);
            let mut links: Vec<Link> = Vec::new();
            let mut push = |b: IVec3| {
                if b == home {
                    return;
                }
                let src = grid.index(b) as u32;
                if links.iter().any(|l| l.src == src) {
                    return;
                }
                links.push(Link {
                    src,
                    dst: rank as u32,
                    hops: torus.hops(home, b),
                });
            };
            for b in nt.tower_boxes(node) {
                push(b);
            }
            for b in nt.plate_boxes(node) {
                push(b);
            }
            imports.push(links);
        }
        ExchangePlan { grid, imports }
    }

    pub fn grid(&self) -> NodeGrid {
        self.grid
    }

    pub fn rank_count(&self) -> usize {
        self.imports.len()
    }

    /// Import links terminating at `rank`.
    pub fn imports(&self, rank: usize) -> &[Link] {
        &self.imports[rank]
    }

    /// Total directed import links across the machine (the reduction adds
    /// the same number again, reversed).
    pub fn total_links(&self) -> usize {
        self.imports.iter().map(Vec::len).sum()
    }

    /// Links into the busiest rank — the import-phase critical path.
    pub fn max_links_per_rank(&self) -> usize {
        self.imports.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Mean torus hop count over all import links.
    pub fn mean_hops(&self) -> f64 {
        let (n, h) = self
            .imports
            .iter()
            .flatten()
            .fold((0u64, 0u64), |acc, l| (acc.0 + 1, acc.1 + l.hops as u64));
        if n == 0 {
            0.0
        } else {
            h as f64 / n as f64
        }
    }

    /// Meter one step of the plan into `c`: every import link carries its
    /// source box's atoms forward as positions, and the reduction returns
    /// forces for the same atoms over the same links in reverse.
    /// `atoms_per_box[b]` is the current population of box `b`.
    pub fn record_step(&self, atoms_per_box: &[u32], c: &mut ExchangeCounters) {
        assert_eq!(atoms_per_box.len(), self.grid.node_count());
        c.steps += 1;
        for links in &self.imports {
            for l in links {
                let atoms = atoms_per_box[l.src as usize] as u64;
                let pos = atoms * POS_BYTES;
                let force = atoms * FORCE_BYTES;
                c.import_messages += 1;
                c.import_atoms += atoms;
                c.import_bytes += pos;
                c.import_hop_bytes += pos * l.hops as u64;
                c.reduce_messages += 1;
                c.reduce_bytes += force;
                c.reduce_hop_bytes += force * l.hops as u64;
            }
        }
    }
}

/// Static long-range (reciprocal) communication plan: the mesh-halo
/// exchange of the spread/interpolate phases plus the pencil gather/scatter
/// traffic of the distributed FFT (paper §3.2.2).
///
/// Each node owns the mesh slab `mesh/nodes` covering its home box. An
/// atom's spreading stencil reaches up to `halo_cells` mesh cells beyond
/// the slab in each direction, so the slab owner must exchange the dilated
/// shell with every node whose slab the shell overlaps — once outbound
/// after spreading (charge merge) and once inbound before interpolation
/// (potential halo). The FFT message counts are input-independent and come
/// precomputed from the planned transform's
/// [`CommStats`](anton_fft::CommStats).
///
/// Like [`ExchangePlan`], the pattern is static: population shifts change
/// nothing, so one plan meters every long-range step.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MeshExchange {
    ranks: u64,
    /// Mesh points in one rank's halo shell (dilated slab minus slab).
    halo_points_per_rank: u64,
    /// Distinct remote slab owners a rank's halo shell overlaps.
    halo_neighbors_per_rank: u64,
    /// Pencil messages of ONE 3D transform (whole machine).
    fft_messages_per_transform: u64,
    /// Pencil bytes of ONE 3D transform (whole machine).
    fft_bytes_per_transform: u64,
}

impl MeshExchange {
    /// Plan for a `mesh` distributed over `nodes` (each axis divides), with
    /// a spreading stencil reaching `halo_cells[a]` cells beyond the slab
    /// per direction, and the FFT's per-transform message/byte totals.
    pub fn new(
        mesh: [usize; 3],
        nodes: [usize; 3],
        halo_cells: [usize; 3],
        fft_messages_per_transform: u64,
        fft_bytes_per_transform: u64,
    ) -> MeshExchange {
        let mut slab = [0u64; 3];
        let mut dilated = [0u64; 3];
        let mut cover = [0u64; 3];
        for a in 0..3 {
            assert!(nodes[a] > 0 && mesh[a].is_multiple_of(nodes[a]), "axis {a}");
            let s = (mesh[a] / nodes[a]) as i64;
            let h = halo_cells[a] as i64;
            slab[a] = s as u64;
            dilated[a] = ((s + 2 * h) as u64).min(mesh[a] as u64);
            // Slabs overlapped by [-h, s+h): integer interval of slab
            // indices, clamped to the node count (wrap-around dedup).
            let lo = (-h).div_euclid(s);
            let hi = (s + h - 1).div_euclid(s);
            cover[a] = ((hi - lo + 1) as u64).min(nodes[a] as u64);
        }
        let ranks = (nodes[0] * nodes[1] * nodes[2]) as u64;
        let halo_points_per_rank =
            dilated[0] * dilated[1] * dilated[2] - slab[0] * slab[1] * slab[2];
        let halo_neighbors_per_rank = cover[0] * cover[1] * cover[2] - 1;
        MeshExchange {
            ranks,
            halo_points_per_rank,
            halo_neighbors_per_rank,
            fft_messages_per_transform,
            fft_bytes_per_transform,
        }
    }

    pub fn halo_points_per_rank(&self) -> u64 {
        self.halo_points_per_rank
    }

    pub fn halo_neighbors_per_rank(&self) -> u64 {
        self.halo_neighbors_per_rank
    }

    /// Meter one long-range step into `c`: charge-halo merge after
    /// spreading + potential-halo broadcast before interpolation (factor
    /// two), and the forward + inverse FFT (factor two).
    pub fn record_lr_step(&self, c: &mut ExchangeCounters) {
        let [halo_msgs, halo_bytes, fft_msgs, fft_bytes] = self.per_lr_step();
        c.lr_steps += 1;
        c.mesh_halo_messages += halo_msgs;
        c.mesh_halo_bytes += halo_bytes;
        c.fft_messages += fft_msgs;
        c.fft_bytes += fft_bytes;
    }

    /// The exact per-step increments of [`Self::record_lr_step`]:
    /// `[mesh_halo_messages, mesh_halo_bytes, fft_messages, fft_bytes]`
    /// added per long-range step. The plan is static, so the cumulative
    /// counters are *linear* in `lr_steps` with exactly these rates — the
    /// closed-form identity the `anton-analysis` verifier checks
    /// [`ExchangeCounters`] against every sampled cycle.
    pub fn per_lr_step(&self) -> [u64; 4] {
        [
            2 * self.ranks * self.halo_neighbors_per_rank,
            2 * self.ranks * self.halo_points_per_rank * MESH_BYTES,
            2 * self.fft_messages_per_transform,
            2 * self.fft_bytes_per_transform,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(g: i32, zr: i32, xyr: i32) -> ExchangePlan {
        ExchangePlan::build(&NtAssignment::new(NodeGrid::cubic(g), zr, xyr))
    }

    #[test]
    fn two_cubed_grid_has_four_import_links_per_rank() {
        // On a 2×2×2 grid with zr = xyr = 1, ±1 wraps to the same box:
        // 1 unique tower import + 3 unique plate imports.
        let p = plan(2, 1, 1);
        for r in 0..p.rank_count() {
            assert_eq!(p.imports(r).len(), 4, "rank {r}");
            for l in p.imports(r) {
                assert_eq!(l.dst as usize, r);
                assert_ne!(l.src as usize, r, "home box is never imported");
                assert!(l.hops >= 1 && l.hops <= 3);
            }
        }
    }

    #[test]
    fn link_counts_match_import_counts() {
        let nt = NtAssignment::new(NodeGrid::cubic(8), 2, 2);
        let p = ExchangePlan::build(&nt);
        for r in 0..p.rank_count() {
            let (t, pl) = nt.import_counts(p.grid().coord(r));
            assert_eq!(p.imports(r).len(), t + pl, "rank {r}");
        }
        assert_eq!(p.total_links(), 512 * (4 + 12));
        assert_eq!(p.max_links_per_rank(), 16);
    }

    #[test]
    fn hops_are_bounded_by_the_diameter() {
        let p = plan(4, 2, 2);
        let torus = Torus::new([4, 4, 4]);
        for r in 0..p.rank_count() {
            for l in p.imports(r) {
                assert!(l.hops >= 1 && l.hops <= torus.diameter());
            }
        }
        assert!(p.mean_hops() >= 1.0);
    }

    #[test]
    fn record_step_meters_positions_and_forces() {
        let p = plan(2, 1, 1);
        let atoms = vec![10u32; 8];
        let mut c = ExchangeCounters::default();
        p.record_step(&atoms, &mut c);
        p.record_step(&atoms, &mut c);
        assert_eq!(c.steps, 2);
        let links = p.total_links() as u64;
        assert_eq!(c.import_messages, 2 * links);
        assert_eq!(c.reduce_messages, 2 * links);
        assert_eq!(c.import_bytes, 2 * links * 10 * POS_BYTES);
        assert_eq!(c.reduce_bytes, 2 * links * 10 * FORCE_BYTES);
        // Hop-weighted volume strictly exceeds plain volume: no 0-hop links.
        assert!(c.import_hop_bytes >= c.import_bytes);
    }

    #[test]
    fn single_rank_plan_is_empty() {
        let p = plan(1, 1, 1);
        assert_eq!(p.rank_count(), 1);
        assert_eq!(p.total_links(), 0);
        let mut c = ExchangeCounters::default();
        p.record_step(&[42], &mut c);
        assert_eq!(c.import_bytes, 0);
    }

    #[test]
    fn mesh_exchange_counts_halo_shell_and_neighbors() {
        // 16³ mesh over 2×2×2 nodes with a 5-cell stencil reach: the slab
        // is 8³, the dilated box (8+10 clamped to 16)³ = 16³, so the halo
        // shell is 16³ − 8³ = 3584 points and covers both slabs per axis —
        // all 7 other nodes are neighbors.
        let me = MeshExchange::new([16; 3], [2; 3], [5; 3], 100, 800);
        assert_eq!(me.halo_points_per_rank(), 16 * 16 * 16 - 8 * 8 * 8);
        assert_eq!(me.halo_neighbors_per_rank(), 7);
        let mut c = ExchangeCounters::default();
        me.record_lr_step(&mut c);
        assert_eq!(c.lr_steps, 1);
        assert_eq!(c.mesh_halo_messages, 2 * 8 * 7);
        assert_eq!(c.mesh_halo_bytes, 2 * 8 * 3584 * MESH_BYTES);
        // Forward + inverse transform.
        assert_eq!(c.fft_messages, 200);
        assert_eq!(c.fft_bytes, 1600);
    }

    #[test]
    fn single_node_mesh_exchange_is_free() {
        let me = MeshExchange::new([16; 3], [1; 3], [5; 3], 0, 0);
        assert_eq!(me.halo_points_per_rank(), 0);
        assert_eq!(me.halo_neighbors_per_rank(), 0);
        let mut c = ExchangeCounters::default();
        me.record_lr_step(&mut c);
        me.record_lr_step(&mut c);
        assert_eq!(c.lr_steps, 2);
        assert_eq!(c.mesh_halo_bytes, 0);
        assert_eq!(c.fft_messages, 0);
    }

    #[test]
    fn mesh_halo_traffic_feeds_modeled_comm_time() {
        use crate::config::MachineConfig;
        let me = MeshExchange::new([16; 3], [2; 3], [5; 3], 100, 800);
        let p = plan(2, 1, 1);
        let mut with_mesh = ExchangeCounters::default();
        p.record_step(&[10; 8], &mut with_mesh);
        let mut without_mesh = with_mesh;
        me.record_lr_step(&mut with_mesh);
        without_mesh.lr_steps += 1;
        let cfg = MachineConfig::anton_512();
        assert!(
            with_mesh.modeled_step_comm_us(&cfg, 8) > without_mesh.modeled_step_comm_us(&cfg, 8),
            "mesh traffic must increase modeled comm time"
        );
    }
}
