//! The bidirectional on-chip communication ring (paper Figure 2).
//!
//! Every unit on the Anton ASIC — the HTIS, the four flexible-subsystem
//! slices, the two DRAM controllers, the six channel interfaces and the host
//! interface — hangs off one bidirectional ring. Intra-node data
//! choreography (§3.2: "data transfers between these subunits are carefully
//! choreographed … to deliver data just when it is needed") rides on it.
//! This model provides hop counts and transfer-time estimates used when
//! reasoning about intra-node latency budgets.

use serde::{Deserialize, Serialize};

/// Ring stations, in their order around the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Station {
    Htis,
    Flex0,
    Flex1,
    Flex2,
    Flex3,
    Dram0,
    Dram1,
    Channel(u8),
    Host,
}

/// The on-chip ring: fixed station order, bidirectional routing.
#[derive(Clone, Debug)]
pub struct Ring {
    stations: Vec<Station>,
    /// Per-hop latency (cycles at the 485 MHz flexible clock).
    pub hop_cycles: u32,
    /// Payload bandwidth per direction (bytes per cycle).
    pub bytes_per_cycle: f64,
}

impl Default for Ring {
    fn default() -> Ring {
        let mut stations = vec![Station::Htis, Station::Flex0, Station::Flex1];
        stations.push(Station::Dram0);
        stations.extend((0..3).map(Station::Channel));
        stations.push(Station::Host);
        stations.push(Station::Flex2);
        stations.push(Station::Flex3);
        stations.push(Station::Dram1);
        stations.extend((3..6).map(Station::Channel));
        Ring {
            stations,
            hop_cycles: 1,
            bytes_per_cycle: 32.0,
        }
    }
}

impl Ring {
    pub fn len(&self) -> usize {
        self.stations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.stations.is_empty()
    }

    fn index_of(&self, s: Station) -> usize {
        self.stations
            .iter()
            .position(|&x| x == s)
            .unwrap_or_else(|| panic!("station {s:?} not on ring"))
    }

    /// Hop count taking the shorter ring direction.
    pub fn hops(&self, from: Station, to: Station) -> u32 {
        let n = self.len() as i32;
        let d = (self.index_of(to) as i32 - self.index_of(from) as i32).rem_euclid(n);
        d.min(n - d) as u32
    }

    /// Transfer time in flexible-clock cycles: wire hops plus payload
    /// serialization.
    pub fn transfer_cycles(&self, from: Station, to: Station, bytes: f64) -> f64 {
        self.hops(from, to) as f64 * self.hop_cycles as f64 + bytes / self.bytes_per_cycle
    }

    /// Seconds at a given clock.
    pub fn transfer_time_s(&self, from: Station, to: Station, bytes: f64, clock_hz: f64) -> f64 {
        self.transfer_cycles(from, to, bytes) / clock_hz
    }

    /// Worst-case cycles to funnel `bytes` of imported positions from the
    /// channel interfaces into the HTIS (the intra-node leg of the §3.2.1
    /// import): the farthest channel's wire hops plus serialization.
    pub fn import_fan_in_cycles(&self, bytes: f64) -> f64 {
        let worst = self
            .stations
            .iter()
            .filter(|s| matches!(s, Station::Channel(_)))
            .map(|&s| self.hops(s, Station::Htis))
            .max()
            .unwrap_or(0);
        worst as f64 * self.hop_cycles as f64 + bytes / self.bytes_per_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_has_all_units() {
        let r = Ring::default();
        // HTIS + 4 flexible + 2 DRAM + 6 channels + host = 14 stations.
        assert_eq!(r.len(), 14);
    }

    #[test]
    fn hops_take_shorter_direction() {
        let r = Ring::default();
        let n = r.len() as u32;
        for &a in &[Station::Htis, Station::Dram1, Station::Channel(5)] {
            for &b in &[Station::Host, Station::Flex3, Station::Channel(0)] {
                let h = r.hops(a, b);
                assert!(h <= n / 2, "{a:?}→{b:?}: {h} hops");
                assert_eq!(h, r.hops(b, a), "ring distance must be symmetric");
            }
        }
        assert_eq!(r.hops(Station::Htis, Station::Htis), 0);
    }

    #[test]
    fn intra_node_latency_is_nanoseconds() {
        // A 256-byte position bundle from a channel interface to the HTIS
        // should take tens of nanoseconds at 485 MHz — far below the
        // microseconds of a commodity memory hierarchy round trip, which is
        // what makes the §3.2 choreography viable.
        let r = Ring::default();
        let t = r.transfer_time_s(Station::Channel(0), Station::Htis, 256.0, 485e6);
        assert!(t < 50e-9, "transfer took {t:e} s");
        assert!(t > 1e-9);
    }

    #[test]
    fn import_fan_in_dominated_by_serialization() {
        let r = Ring::default();
        // A full import region (~2400 atoms × 12 B) serializes in ~900
        // cycles; the wire hops are negligible next to that.
        let cycles = r.import_fan_in_cycles(2400.0 * 12.0);
        assert!(cycles > 800.0 && cycles < 1000.0, "{cycles}");
        assert!(r.import_fan_in_cycles(0.0) <= 7.0);
    }
}
