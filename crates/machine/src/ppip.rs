//! Pairwise point interaction pipelines and match units (paper §2.2, §3.2.1,
//! Figure 4).
//!
//! A PPIP computes the interaction of two points as table-driven functions
//! of r². [`Ppip`] bundles the fitted force/energy tables for the Ewald
//! direct-space Coulomb kernel and the two Lennard-Jones powers; the Anton
//! engine evaluates every range-limited pair through this model, so the
//! engine's force field *is* the quantized piecewise-cubic one — which is
//! what Table 4's "numerical force error" measures.
//!
//! [`MatchUnit`] models the 8-bit low-precision distance check
//! (Figure 4b): conservative — it may pass a pair beyond the cutoff (the
//! exact r² test downstream rejects it) but never rejects a true pair.

use crate::tables::{FunctionTable, TableSpec};
use anton_forcefield::units::{erfc, COULOMB};

/// Fraction bits of the r² values handed to the PPIP (Q20 Å²).
pub const R2_FRAC: u32 = 20;

/// Lanes per match batch: the ASIC pairs each PPIP with 8 match units
/// (paper §2.2), so the natural unit of work entering the evaluator is an
/// 8-wide bundle of cutoff-surviving pairs.
pub const MATCH_WIDTH: usize = 8;

/// One 8-wide bundle of matched pairs headed into the tabulated evaluator:
/// per-lane Q20 r², charge products, and LJ coefficients, plus a survivor
/// mask (bit `k` set = lane `k` holds a real pair). The geometry sidecar
/// (who `i`/`j` are, the displacement for the force scatter) stays with the
/// caller — the PPIP only ever sees r² and per-pair kernel parameters,
/// like the hardware.
#[derive(Clone, Copy, Debug)]
pub struct PairBatch {
    pub r2_q20: [i64; MATCH_WIDTH],
    pub qq: [f64; MATCH_WIDTH],
    pub lj_a: [f64; MATCH_WIDTH],
    pub lj_b: [f64; MATCH_WIDTH],
    pub mask: u8,
}

impl PairBatch {
    pub const EMPTY: PairBatch = PairBatch {
        r2_q20: [0; MATCH_WIDTH],
        qq: [0.0; MATCH_WIDTH],
        lj_a: [0.0; MATCH_WIDTH],
        lj_b: [0.0; MATCH_WIDTH],
        mask: 0,
    };
}

/// One segment's worth of all six kernels, packed contiguously.
///
/// The six `FunctionTable`s share one `TableSpec`, so segment `idx` means
/// the same u-interval in each; fusing their coefficients puts everything
/// [`Ppip::pair`] needs for a lane behind a single data-dependent address
/// instead of six pointer-chases into six separate `Vec<Segment>`s (which
/// is where the evaluator spent most of its time — the per-pair segment
/// index is effectively random, so each chase was a cache miss).
///
/// `scale[k]` is the exact block-floating-point decode factor
/// `2^(exponent_k − (mantissa_bits − 1))` of table `k`'s segment
/// (see [`crate::tables::exp2i`]); multiplying the integer Horner result by
/// it is bit-identical to the `(mantissa, exponent)` decode it replaces.
#[derive(Clone, Debug)]
struct FusedSeg {
    /// `coeffs[k]` = cubic coefficients of table `k` on this segment,
    /// tables in the order f_elec, f12, f6, e_elec, e12, e6.
    coeffs: [[i32; 4]; 6],
    scale: [f64; 6],
}

/// A PPIP bound to an Ewald splitting parameter and cutoff.
#[derive(Clone, Debug)]
pub struct Ppip {
    /// Table domain scale: u = r² / r2_max, with r2_max slightly above rc².
    pub r2_max: f64,
    pub beta: f64,
    pub cutoff: f64,
    /// Force tables: scalar such that F = d · table(u) (per unit charge
    /// product / LJ coefficient). Electrostatic table excludes the Coulomb
    /// constant (applied at evaluation, as the charge product is).
    pub f_elec: FunctionTable,
    pub f12: FunctionTable,
    pub f6: FunctionTable,
    /// Energy tables.
    pub e_elec: FunctionTable,
    pub e12: FunctionTable,
    pub e6: FunctionTable,
    /// u below which the kernels are clamped (pairs never get this close).
    pub u_clamp_elec: f64,
    pub u_clamp_vdw: f64,
    inv_r2max_q31: f64,
    /// Segment-fused view of the six tables (see [`FusedSeg`]).
    fused: Vec<FusedSeg>,
}

impl Ppip {
    /// Build tables for the erfc-screened Coulomb and LJ kernels.
    pub fn build(beta: f64, cutoff: f64) -> Ppip {
        let r2_max = (cutoff * cutoff) * 1.05;
        // Geometric tier ladder (w/u ≤ 1/32 in every segment): the steep
        // power-law kernels need relative, not absolute, resolution in r².
        let spec = TableSpec::geometric(8, 32);
        let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();

        // Clamp radii: real nonbonded pairs never approach closer than the
        // steepest LJ contact; the tables hold the clamped value below.
        // Clamp points snap to segment boundaries so the kink never falls
        // inside one cubic fit.
        let r_min_elec: f64 = 0.5;
        let r_min_vdw: f64 = 1.4;
        let u_clamp_elec = spec.snap_down((r_min_elec * r_min_elec) / r2_max);
        let u_clamp_vdw = spec.snap_down((r_min_vdw * r_min_vdw) / r2_max);

        let r_of = move |u: f64, uc: f64| (u.max(uc) * r2_max).sqrt();
        let f_elec_fn = move |u: f64| {
            let r = r_of(u, u_clamp_elec);
            let x = beta * r;
            (erfc(x) / r + two_over_sqrt_pi * beta * (-x * x).exp()) / (r * r)
        };
        let e_elec_fn = move |u: f64| {
            let r = r_of(u, u_clamp_elec);
            erfc(beta * r) / r
        };
        let f12_fn = move |u: f64| {
            let r2 = u.max(u_clamp_vdw) * r2_max;
            12.0 / (r2 * r2 * r2 * r2 * r2 * r2 * r2)
        };
        let e12_fn = move |u: f64| {
            let r2 = u.max(u_clamp_vdw) * r2_max;
            1.0 / (r2 * r2 * r2 * r2 * r2 * r2)
        };
        let f6_fn = move |u: f64| {
            let r2 = u.max(u_clamp_vdw) * r2_max;
            6.0 / (r2 * r2 * r2 * r2)
        };
        let e6_fn = move |u: f64| {
            let r2 = u.max(u_clamp_vdw) * r2_max;
            1.0 / (r2 * r2 * r2)
        };

        let f_elec = FunctionTable::fit(f_elec_fn, spec.clone());
        let f12 = FunctionTable::fit(f12_fn, spec.clone());
        let f6 = FunctionTable::fit(f6_fn, spec.clone());
        let e_elec = FunctionTable::fit(e_elec_fn, spec.clone());
        let e12 = FunctionTable::fit(e12_fn, spec.clone());
        let e6 = FunctionTable::fit(e6_fn, spec);
        let fused = Self::fuse([&f_elec, &f12, &f6, &e_elec, &e12, &e6]);

        Ppip {
            r2_max,
            beta,
            cutoff,
            f_elec,
            f12,
            f6,
            e_elec,
            e12,
            e6,
            u_clamp_elec,
            u_clamp_vdw,
            inv_r2max_q31: (1i64 << 31) as f64 / (r2_max * (1i64 << R2_FRAC) as f64),
            fused,
        }
    }

    /// Pack the six per-table segment arrays into one segment-major array.
    /// Pure layout change: the coefficients and decode scales are exactly
    /// the values the separate tables would have produced.
    fn fuse(tables: [&FunctionTable; 6]) -> Vec<FusedSeg> {
        let n = tables[0].segments.len();
        for t in &tables {
            assert_eq!(t.segments.len(), n, "PPIP tables must share one spec");
        }
        (0..n)
            .map(|idx| {
                let mut coeffs = [[0i32; 4]; 6];
                let mut scale = [0.0f64; 6];
                for (k, t) in tables.iter().enumerate() {
                    let seg = &t.segments[idx];
                    coeffs[k] = seg.coeffs;
                    scale[k] =
                        crate::tables::exp2i(seg.exponent - (t.spec.mantissa_bits as i32 - 1));
                }
                FusedSeg { coeffs, scale }
            })
            .collect()
    }

    /// Convert a Q20 r² raw value to the Q31 table coordinate
    /// (deterministic: one rounded multiply).
    #[inline]
    pub fn u_q31(&self, r2_q20: i64) -> i64 {
        anton_fixpoint::rounding::rne_f64(r2_q20 as f64 * self.inv_r2max_q31) as i64
    }

    /// Table-driven `(force/r, energy)` of one range-limited pair:
    /// `F⃗ = d⃗ · force_over_r`. Deterministic for given raw inputs.
    ///
    /// All six tables share one spec, so the tiered segment lookup is done
    /// once and reused — bitwise identical to six independent lookups.
    #[inline]
    pub fn pair(&self, r2_q20: i64, qq: f64, lj_a: f64, lj_b: f64) -> (f64, f64) {
        let u = self.u_q31(r2_q20).clamp(0, (1i64 << 31) - 1);
        let (idx, t_q31) = self.f_elec.locate_q31(u);
        // Evaluate all six kernels out of the fused segment record: same
        // integer Horner and block-floating-point decode as
        // `FunctionTable::eval_at` + `exp2i`, but one load stream instead of
        // six scattered `segments[idx]` chases (`pair_tracks_tables` pins
        // the equivalence bit-for-bit).
        let t = t_q31.clamp(0, 1i64 << 31);
        let seg = &self.fused[idx];
        let mut v = [0.0f64; 6];
        for (k, val) in v.iter_mut().enumerate() {
            let c = &seg.coeffs[k];
            let mut acc = c[3] as i64;
            for j in (0..3).rev() {
                acc = anton_fixpoint::rounding::rne_shr_i64(acc * t, 31) + c[j] as i64;
            }
            *val = acc as f64 * seg.scale[k];
        }
        let f = COULOMB * qq * v[0] + lj_a * v[1] - lj_b * v[2];
        let e = COULOMB * qq * v[3] + lj_a * v[4] - lj_b * v[5];
        (f, e)
    }

    /// Evaluate a whole masked match batch: lane `k` of `out` receives the
    /// `(force/r, energy)` of lane `k` of the batch when mask bit `k` is
    /// set (unset lanes are zeroed). Lane order is fixed, so downstream
    /// force accumulation happens in one canonical batch order; each lane
    /// is bitwise identical to a [`Self::pair`] call with its inputs.
    #[inline]
    pub fn pair_batch(&self, batch: &PairBatch, out: &mut [(f64, f64); MATCH_WIDTH]) {
        for (lane, slot) in out.iter_mut().enumerate() {
            *slot = if batch.mask & (1u8 << lane) == 0 {
                (0.0, 0.0)
            } else {
                self.pair(
                    batch.r2_q20[lane],
                    batch.qq[lane],
                    batch.lj_a[lane],
                    batch.lj_b[lane],
                )
            };
        }
    }

    /// Exact (double-precision) kernels with the same clamping, for error
    /// measurements against the table path.
    pub fn pair_exact(&self, r2: f64, qq: f64, lj_a: f64, lj_b: f64) -> (f64, f64) {
        let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
        let re2 = r2.max(self.u_clamp_elec * self.r2_max);
        let r = re2.sqrt();
        let x = self.beta * r;
        let f_c = (erfc(x) / r + two_over_sqrt_pi * self.beta * (-x * x).exp()) / re2;
        let e_c = erfc(x) / r;
        let rv2 = r2.max(self.u_clamp_vdw * self.r2_max);
        let inv6 = 1.0 / (rv2 * rv2 * rv2);
        let f = COULOMB * qq * f_c + lj_a * 12.0 * inv6 * inv6 / rv2 - lj_b * 6.0 * inv6 / rv2;
        let e = COULOMB * qq * e_c + lj_a * inv6 * inv6 - lj_b * inv6;
        (f, e)
    }
}

/// Low-precision distance check (one of 256 per ASIC, Figure 4b).
#[derive(Clone, Copy, Debug)]
pub struct MatchUnit {
    pub cutoff: f64,
    /// Low-precision coordinate grid (Å); 8 bits cover ±32 Å at 0.25 Å.
    pub grid: f64,
}

impl MatchUnit {
    pub fn new(cutoff: f64) -> MatchUnit {
        MatchUnit { cutoff, grid: 0.25 }
    }

    /// Conservative pass/fail on a displacement: quantizes each component
    /// toward zero (a lower bound on the true distance), so a pair within
    /// the cutoff always passes.
    #[inline]
    pub fn passes(&self, d: [f64; 3]) -> bool {
        let lb = |x: f64| (x.abs() / self.grid).floor() * self.grid;
        let r2_lb = lb(d[0]).powi(2) + lb(d[1]).powi(2) + lb(d[2]).powi(2);
        r2_lb <= self.cutoff * self.cutoff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn table_force_tracks_exact_kernel() {
        let ppip = Ppip::build(0.24, 13.0);
        let mut worst: f64 = 0.0;
        for i in 0..4000 {
            let r = 2.0 + 11.0 * (i as f64 + 0.5) / 4000.0;
            let r2 = r * r;
            let r2_q20 = (r2 * (1i64 << 20) as f64) as i64;
            let (f_t, e_t) = ppip.pair(r2_q20, 0.3, 5.0e5, 600.0);
            let (f_x, e_x) = ppip.pair_exact(r2, 0.3, 5.0e5, 600.0);
            let scale = f_x.abs().max(1.0);
            worst = worst.max((f_t - f_x).abs() / scale);
            assert!((e_t - e_x).abs() < 1e-3 * e_x.abs().max(1.0), "r={r}");
        }
        assert!(worst < 1e-4, "worst relative force deviation {worst:e}");
    }

    /// The fused-segment evaluation in `pair` is bit-identical to composing
    /// the six standalone tables through `locate_q31` + `eval_at` + `exp2i`
    /// (the path it replaced), over a dense r² sweep including the clamp
    /// regions and both domain endpoints.
    #[test]
    fn pair_tracks_tables() {
        let ppip = Ppip::build(0.35, 7.5);
        let r2_max_q20 = (ppip.r2_max * (1i64 << 20) as f64) as i64;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(41);
        let mut probes: Vec<i64> = vec![0, 1, r2_max_q20 - 1, r2_max_q20, r2_max_q20 + 7];
        for _ in 0..20_000 {
            probes.push(rng.gen_range(0..r2_max_q20 + 4096));
        }
        for r2_q20 in probes {
            let (qq, lj_a, lj_b) = (0.41, 6.0e5, 530.0);
            let got = ppip.pair(r2_q20, qq, lj_a, lj_b);
            let u = ppip.u_q31(r2_q20).clamp(0, (1i64 << 31) - 1);
            let (idx, t_q31) = ppip.f_elec.locate_q31(u);
            let fixed = |table: &FunctionTable| {
                let (m, e) = table.eval_at(idx, t_q31);
                m as f64 * crate::tables::exp2i(e)
            };
            let want_f = COULOMB * qq * fixed(&ppip.f_elec) + lj_a * fixed(&ppip.f12)
                - lj_b * fixed(&ppip.f6);
            let want_e = COULOMB * qq * fixed(&ppip.e_elec) + lj_a * fixed(&ppip.e12)
                - lj_b * fixed(&ppip.e6);
            assert_eq!(
                got.0.to_bits(),
                want_f.to_bits(),
                "force at r2_q20={r2_q20}"
            );
            assert_eq!(
                got.1.to_bits(),
                want_e.to_bits(),
                "energy at r2_q20={r2_q20}"
            );
        }
    }

    #[test]
    fn rms_force_error_near_paper_numerical_error() {
        // The paper's "numerical force error" is ~9e-6 of the rms force;
        // our table path should land in the same decade.
        let ppip = Ppip::build(0.24, 13.0);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
        let mut err2 = 0.0;
        let mut norm2 = 0.0;
        for _ in 0..20_000 {
            let r = 2.4 + rng.gen::<f64>() * 10.0;
            let r2 = r * r;
            let qq = (rng.gen::<f64>() - 0.5) * 0.6;
            let a = rng.gen::<f64>() * 8e5;
            let b = rng.gen::<f64>() * 1.2e3;
            let r2_q20 = (r2 * (1i64 << 20) as f64) as i64;
            let (f_t, _) = ppip.pair(r2_q20, qq, a, b);
            let (f_x, _) = ppip.pair_exact(r2, qq, a, b);
            err2 += ((f_t - f_x) * r).powi(2);
            norm2 += (f_x * r).powi(2);
        }
        let rel = (err2 / norm2).sqrt();
        assert!(rel < 5e-5, "rms relative force error {rel:e}");
        assert!(rel > 1e-9, "suspiciously exact: {rel:e}");
    }

    #[test]
    fn batch_lanes_match_scalar_pairs_bitwise() {
        let ppip = Ppip::build(0.24, 13.0);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        for mask in [0xffu8, 0x00, 0x5a, 0x01, 0x80] {
            let mut batch = PairBatch::EMPTY;
            batch.mask = mask;
            for lane in 0..MATCH_WIDTH {
                let r = 2.0 + rng.gen::<f64>() * 10.5;
                batch.r2_q20[lane] = (r * r * (1i64 << 20) as f64) as i64;
                batch.qq[lane] = (rng.gen::<f64>() - 0.5) * 0.6;
                batch.lj_a[lane] = rng.gen::<f64>() * 8e5;
                batch.lj_b[lane] = rng.gen::<f64>() * 1.2e3;
            }
            let mut out = [(0.0, 0.0); MATCH_WIDTH];
            ppip.pair_batch(&batch, &mut out);
            for (lane, got) in out.iter().enumerate() {
                if mask & (1 << lane) == 0 {
                    assert_eq!(*got, (0.0, 0.0));
                    continue;
                }
                let (f, e) = ppip.pair(
                    batch.r2_q20[lane],
                    batch.qq[lane],
                    batch.lj_a[lane],
                    batch.lj_b[lane],
                );
                assert_eq!(got.0.to_bits(), f.to_bits(), "lane {lane}");
                assert_eq!(got.1.to_bits(), e.to_bits(), "lane {lane}");
            }
        }
    }

    #[test]
    fn match_unit_never_rejects_true_pairs() {
        let mu = MatchUnit::new(9.0);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        for _ in 0..50_000 {
            let d = [
                (rng.gen::<f64>() - 0.5) * 26.0,
                (rng.gen::<f64>() - 0.5) * 26.0,
                (rng.gen::<f64>() - 0.5) * 26.0,
            ];
            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
            if r2 <= 81.0 {
                assert!(mu.passes(d), "rejected in-range pair at r²={r2}");
            }
        }
    }

    #[test]
    fn match_unit_rejects_far_pairs() {
        let mu = MatchUnit::new(9.0);
        // Far beyond cutoff + quantization margin.
        assert!(!mu.passes([9.5, 2.0, 0.0]));
        assert!(!mu.passes([6.0, 6.0, 6.0]));
        // Just inside passes.
        assert!(mu.passes([5.0, 5.0, 5.0]));
    }

    #[test]
    fn match_unit_false_accept_band_is_thin() {
        // Pairs accepted but beyond the cutoff must lie within the
        // quantization margin (~0.44 Å for a 0.25 Å grid).
        let mu = MatchUnit::new(9.0);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
        for _ in 0..50_000 {
            let d = [
                (rng.gen::<f64>() - 0.5) * 26.0,
                (rng.gen::<f64>() - 0.5) * 26.0,
                (rng.gen::<f64>() - 0.5) * 26.0,
            ];
            let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            if mu.passes(d) {
                assert!(r < 9.0 + 0.5, "accepted pair at r={r}");
            }
        }
    }
}
