//! Calibrated performance model of an Anton time step.
//!
//! Structure (matching the execution described in §3.2 and Table 2):
//!
//! ```text
//!   position import/multicast
//!   HTIS chain: range-limited  →  charge spreading  →  [FFT on flexible]
//!               →  force interpolation
//!   flexible chain (concurrent): bonded terms, correction forces
//!   integration (+ constraints)
//! ```
//!
//! Per-phase times come from first-principles throughput numbers (PPIP and
//! match-unit rates, link bandwidth, distributed-FFT message counts, GC
//! costs) plus a small set of calibration constants fit against the Anton
//! (13 Å, 32³) column of Table 2 and the measured 16.4 µs/day DHFR rate
//! (see DESIGN.md §6). The (9 Å, 64³) column, Figure 5, Table 4 and the
//! 128-node partition numbers are *predictions*.

use crate::config::MachineConfig;
use crate::flex::FlexModel;
use crate::topology::Torus;
use anton_nt::regions::ImportRegions;
use serde::{Deserialize, Serialize};

/// Workload statistics of a chemical system + run parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SystemStats {
    pub n_atoms: usize,
    pub box_edge: [f64; 3],
    pub cutoff: f64,
    pub spread_cutoff: f64,
    pub mesh: [usize; 3],
    pub dt_fs: f64,
    pub longrange_every: u32,
    /// Excluded + 1-4 pairs (correction-pipeline items).
    pub n_correction_pairs: usize,
    /// Bond + angle + dihedral terms.
    pub n_bonded_terms: usize,
    /// Atoms belonging to the solute (bonded terms concentrate there).
    pub protein_atoms: usize,
    /// Scalar distance constraints.
    pub n_constraint_pairs: usize,
}

impl SystemStats {
    pub fn density(&self) -> f64 {
        self.n_atoms as f64 / self.volume()
    }

    pub fn volume(&self) -> f64 {
        self.box_edge[0] * self.box_edge[1] * self.box_edge[2]
    }

    /// Bonded terms on the busiest node: the solute occupies only the nodes
    /// its globule overlaps, concentrating bonded work (the reason the
    /// paper's water-only systems run 3–24% faster).
    pub fn hot_node_bonded_terms(&self, nodes: usize) -> f64 {
        if self.n_bonded_terms == 0 {
            return 0.0;
        }
        // Solute volume at typical packing, clamped to the box.
        let protein_volume = (self.protein_atoms as f64 / 0.047).min(self.volume());
        let node_volume = self.volume() / nodes as f64;
        let protein_nodes = (protein_volume / node_volume).clamp(1.0, nodes as f64);
        self.n_bonded_terms as f64 / protein_nodes
    }
}

/// Accumulated communication volume of a simulated run, metered by
/// [`ExchangePlan::record_step`](crate::exchange::ExchangePlan::record_step)
/// (position imports forward over the torus, force reductions backward) and
/// [`MeshExchange::record_lr_step`](crate::exchange::MeshExchange::record_lr_step)
/// (charge-halo exchange plus the distributed FFT's pencil messages on
/// long-range steps). Hop-weighted byte counts capture link occupancy under
/// dimension-order routing (a 3-hop message consumes three links' bandwidth).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ExchangeCounters {
    pub steps: u64,
    pub import_messages: u64,
    pub import_atoms: u64,
    pub import_bytes: u64,
    pub import_hop_bytes: u64,
    pub reduce_messages: u64,
    pub reduce_bytes: u64,
    pub reduce_hop_bytes: u64,
    /// Steps that evaluated the long-range (reciprocal) phase.
    pub lr_steps: u64,
    /// Pencil gather/scatter messages of the distributed FFT (both
    /// transforms of a long-range step).
    pub fft_messages: u64,
    pub fft_bytes: u64,
    /// Charge-spreading / force-interpolation halo exchange between mesh
    /// slab owners.
    pub mesh_halo_messages: u64,
    pub mesh_halo_bytes: u64,
    /// Match batches dispatched into the PPIP evaluator (8-wide bundles,
    /// including partially-filled tails).
    pub match_batches: u64,
    /// Pairs that survived the exact cutoff test and filled a batch lane.
    pub match_pairs: u64,
    /// Candidate pairs streamed through the match stage (tile-pair lanes
    /// examined, before the cutoff mask). Only rebuild steps stream
    /// candidates; reuse steps replay the cached batches.
    pub match_candidates: u64,
    /// Range-limited evaluations that rebuilt the match cache (tiling,
    /// tile SoA, pair matching from scratch).
    pub rebuild_steps: u64,
    /// Range-limited evaluations that reused the cached batch structure,
    /// refreshing only tile positions.
    pub reuse_steps: u64,
}

impl ExchangeCounters {
    /// Mean torus hops per byte moved (import + reduction; mesh traffic is
    /// nearest-neighbor-dominated and excluded from the hop estimate).
    pub fn mean_hops(&self) -> f64 {
        let bytes = self.import_bytes + self.reduce_bytes;
        if bytes == 0 {
            return 0.0;
        }
        (self.import_hop_bytes + self.reduce_hop_bytes) as f64 / bytes as f64
    }

    /// Total bytes moved per step across all three force phases.
    fn total_bytes(&self) -> u64 {
        self.import_bytes + self.reduce_bytes + self.fft_bytes + self.mesh_halo_bytes
    }

    /// Total messages across all three force phases.
    fn total_messages(&self) -> u64 {
        self.import_messages + self.reduce_messages + self.fft_messages + self.mesh_halo_messages
    }

    /// Bytes injected per rank per step (all phases).
    pub fn per_rank_step_bytes(&self, n_ranks: usize) -> f64 {
        if self.steps == 0 || n_ranks == 0 {
            return 0.0;
        }
        self.total_bytes() as f64 / self.steps as f64 / n_ranks as f64
    }

    /// FFT pencil messages per rank per long-range step.
    pub fn fft_messages_per_rank_lr_step(&self, n_ranks: usize) -> f64 {
        if self.lr_steps == 0 || n_ranks == 0 {
            return 0.0;
        }
        self.fft_messages as f64 / self.lr_steps as f64 / n_ranks as f64
    }

    /// FFT pencil bytes per rank per long-range step.
    pub fn fft_bytes_per_rank_lr_step(&self, n_ranks: usize) -> f64 {
        if self.lr_steps == 0 || n_ranks == 0 {
            return 0.0;
        }
        self.fft_bytes as f64 / self.lr_steps as f64 / n_ranks as f64
    }

    /// Mesh-halo bytes per rank per long-range step.
    pub fn mesh_halo_bytes_per_rank_lr_step(&self, n_ranks: usize) -> f64 {
        if self.lr_steps == 0 || n_ranks == 0 {
            return 0.0;
        }
        self.mesh_halo_bytes as f64 / self.lr_steps as f64 / n_ranks as f64
    }

    /// Number of u64 words in the [`Self::to_words`] serialization.
    pub const WORDS: usize = 18;

    /// Serialize to a fixed word array for the checkpoint payload. The
    /// word order is the struct declaration order and is part of the
    /// `anton-ckpt` format: changing it (or [`Self::WORDS`]) requires a
    /// format version bump.
    pub fn to_words(&self) -> [u64; Self::WORDS] {
        [
            self.steps,
            self.import_messages,
            self.import_atoms,
            self.import_bytes,
            self.import_hop_bytes,
            self.reduce_messages,
            self.reduce_bytes,
            self.reduce_hop_bytes,
            self.lr_steps,
            self.fft_messages,
            self.fft_bytes,
            self.mesh_halo_messages,
            self.mesh_halo_bytes,
            self.match_batches,
            self.match_pairs,
            self.match_candidates,
            self.rebuild_steps,
            self.reuse_steps,
        ]
    }

    /// Inverse of [`Self::to_words`]; `None` when `words` has the wrong
    /// arity (a snapshot from an incompatible layout).
    pub fn from_words(words: &[u64]) -> Option<ExchangeCounters> {
        let w: &[u64; Self::WORDS] = words.try_into().ok()?;
        Some(ExchangeCounters {
            steps: w[0],
            import_messages: w[1],
            import_atoms: w[2],
            import_bytes: w[3],
            import_hop_bytes: w[4],
            reduce_messages: w[5],
            reduce_bytes: w[6],
            reduce_hop_bytes: w[7],
            lr_steps: w[8],
            fft_messages: w[9],
            fft_bytes: w[10],
            mesh_halo_messages: w[11],
            mesh_halo_bytes: w[12],
            match_batches: w[13],
            match_pairs: w[14],
            match_candidates: w[15],
            rebuild_steps: w[16],
            reuse_steps: w[17],
        })
    }

    /// Field-wise difference `self − earlier`: the traffic metered between
    /// two snapshots of the same counter set, for attributing a burst of
    /// communication to the pipeline phase that emitted it. Saturating, so
    /// mismatched snapshots degrade to zero rather than wrapping.
    pub fn delta_since(&self, earlier: &ExchangeCounters) -> ExchangeCounters {
        ExchangeCounters {
            steps: self.steps.saturating_sub(earlier.steps),
            import_messages: self.import_messages.saturating_sub(earlier.import_messages),
            import_atoms: self.import_atoms.saturating_sub(earlier.import_atoms),
            import_bytes: self.import_bytes.saturating_sub(earlier.import_bytes),
            import_hop_bytes: self
                .import_hop_bytes
                .saturating_sub(earlier.import_hop_bytes),
            reduce_messages: self.reduce_messages.saturating_sub(earlier.reduce_messages),
            reduce_bytes: self.reduce_bytes.saturating_sub(earlier.reduce_bytes),
            reduce_hop_bytes: self
                .reduce_hop_bytes
                .saturating_sub(earlier.reduce_hop_bytes),
            lr_steps: self.lr_steps.saturating_sub(earlier.lr_steps),
            fft_messages: self.fft_messages.saturating_sub(earlier.fft_messages),
            fft_bytes: self.fft_bytes.saturating_sub(earlier.fft_bytes),
            mesh_halo_messages: self
                .mesh_halo_messages
                .saturating_sub(earlier.mesh_halo_messages),
            mesh_halo_bytes: self.mesh_halo_bytes.saturating_sub(earlier.mesh_halo_bytes),
            match_batches: self.match_batches.saturating_sub(earlier.match_batches),
            match_pairs: self.match_pairs.saturating_sub(earlier.match_pairs),
            match_candidates: self
                .match_candidates
                .saturating_sub(earlier.match_candidates),
            rebuild_steps: self.rebuild_steps.saturating_sub(earlier.rebuild_steps),
            reuse_steps: self.reuse_steps.saturating_sub(earlier.reuse_steps),
        }
    }

    /// Modeled per-step communication time (µs) on `cfg`'s links: per-rank
    /// serialization through the node's channels, wire latency of the mean
    /// hop distance, and per-message overhead. Covers all three force
    /// phases (range-limited import/reduce, mesh halo, FFT pencils).
    pub fn modeled_step_comm_us(&self, cfg: &MachineConfig, n_ranks: usize) -> f64 {
        if self.steps == 0 || n_ranks == 0 {
            return 0.0;
        }
        let msgs_per_rank_step = self.total_messages() as f64 / self.steps as f64 / n_ranks as f64;
        let wire_s = self.per_rank_step_bytes(n_ranks) / cfg.node_bandwidth_bytes()
            + self.mean_hops() * cfg.hop_latency_s
            + msgs_per_rank_step * cfg.message_overhead_s;
        wire_s * 1e6
    }
}

/// Modeled wire time (µs) of one traffic burst on `cfg`'s links: `bytes`
/// over `messages` messages spread across `n_ranks` injecting ranks, with
/// `hop_bytes` the hop-weighted volume (pass `bytes` for nearest-neighbor
/// traffic like mesh halos and FFT pencil segments). The per-burst analogue
/// of [`ExchangeCounters::modeled_step_comm_us`], used by the tracing layer
/// to attribute modeled link time to the emitting pipeline phase.
pub fn modeled_burst_us(
    cfg: &MachineConfig,
    n_ranks: usize,
    messages: u64,
    bytes: u64,
    hop_bytes: u64,
) -> f64 {
    if n_ranks == 0 || (messages == 0 && bytes == 0) {
        return 0.0;
    }
    let mean_hops = if bytes == 0 {
        0.0
    } else {
        hop_bytes as f64 / bytes as f64
    };
    let wire_s = bytes as f64 / n_ranks as f64 / cfg.node_bandwidth_bytes()
        + mean_hops * cfg.hop_latency_s
        + messages as f64 / n_ranks as f64 * cfg.message_overhead_s;
    wire_s * 1e6
}

/// Calibration constants (see module docs).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Calibration {
    /// Load-imbalance coefficient: factor = 1 + c/√(atoms per node).
    pub imbalance_coeff: f64,
    /// HTIS cycles of overhead per subbox round (pipeline fill/drain).
    pub rl_round_overhead_cycles: f64,
    /// Fixed per-phase overhead of the mesh (spread + interpolate) phase (µs).
    pub mesh_fixed_us: f64,
    /// Distributed-FFT per-transform fixed cost (sync + wire latency, µs).
    pub fft_fixed_us: f64,
    /// Distributed-FFT cost per message (µs).
    pub fft_per_msg_us: f64,
    /// Distributed-FFT compute cost per local mesh point (µs).
    pub fft_per_point_us: f64,
    /// Correction-phase fixed cost (pair-list delivery, µs).
    pub corr_fixed_us: f64,
    /// Integration fixed cost (µs).
    pub integ_fixed_us: f64,
    /// Position import fixed cost (µs).
    pub import_fixed_us: f64,
    /// Per-step costs outside Table 2's rows: host interaction, migration
    /// amortization, global synchronization (µs).
    pub step_fixed_us: f64,
}

impl Calibration {
    /// Constants calibrated against the Anton (13 Å, 32³) DHFR column of
    /// Table 2 and the 16.4 µs/day DHFR rate.
    pub fn paper() -> Calibration {
        Calibration {
            imbalance_coeff: 2.0,
            rl_round_overhead_cycles: 40.0,
            mesh_fixed_us: 0.5,
            fft_fixed_us: 2.36,
            fft_per_msg_us: 0.020,
            fft_per_point_us: 0.0064,
            corr_fixed_us: 2.3,
            integ_fixed_us: 0.2,
            import_fixed_us: 0.5,
            step_fixed_us: 2.3,
        }
    }
}

/// Per-task and per-step times (µs), the Table 2 quantities.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct StepBreakdown {
    pub import_us: f64,
    pub range_limited_us: f64,
    pub mesh_us: f64,
    pub fft_us: f64,
    pub correction_us: f64,
    pub bonded_us: f64,
    pub integration_us: f64,
    /// Wall time of a step evaluating long-range forces.
    pub lr_step_us: f64,
    /// Wall time of a range-limited-only step.
    pub nonlr_step_us: f64,
    /// Average over the RESPA cycle plus fixed per-step costs.
    pub avg_step_us: f64,
    /// Simulated µs per wall-clock day.
    pub us_per_day: f64,
    /// Subbox subdivision the model selected for the HTIS.
    pub chosen_subdiv: usize,
}

/// The calibrated machine performance model.
#[derive(Clone, Copy, Debug)]
pub struct PerfModel {
    pub cfg: MachineConfig,
    pub cal: Calibration,
    pub flex: FlexModel,
}

impl PerfModel {
    pub fn new(cfg: MachineConfig) -> PerfModel {
        PerfModel {
            cfg,
            cal: Calibration::paper(),
            flex: FlexModel::default(),
        }
    }

    pub fn anton_512() -> PerfModel {
        PerfModel::new(MachineConfig::anton_512())
    }

    /// Full step-time breakdown for a system.
    pub fn breakdown(&self, s: &SystemStats) -> StepBreakdown {
        let nodes = self.cfg.nodes as f64;
        let rho = s.density();
        let atoms_per_node = s.n_atoms as f64 / nodes;
        let imb = 1.0 + self.cal.imbalance_coeff / atoms_per_node.max(1.0).sqrt();
        let node_edge = [
            s.box_edge[0] / self.cfg.torus[0] as f64,
            s.box_edge[1] / self.cfg.torus[1] as f64,
            s.box_edge[2] / self.cfg.torus[2] as f64,
        ];
        // Geometric-mean node box edge for the region arithmetic.
        let c_node = (node_edge[0] * node_edge[1] * node_edge[2]).cbrt();
        let rc = s.cutoff;

        // --- Range-limited phase: pick the subbox division minimizing time.
        let necessary =
            0.5 * rho * atoms_per_node * (4.0 / 3.0) * std::f64::consts::PI * rc.powi(3);
        let mut best = (f64::INFINITY, 1usize);
        for &sub in &[1usize, 2, 4] {
            let csub = c_node / sub as f64;
            let rounds = (sub * sub * sub) as f64;
            let tower = rho * csub * csub * (csub + 2.0 * rc);
            let plate =
                rho * csub * (csub * csub + 2.0 * csub * rc + std::f64::consts::PI * rc * rc / 2.0);
            let considered = rounds * tower * plate;
            let interact = (considered / (self.cfg.ppips * self.cfg.match_units_per_ppip) as f64)
                .max(necessary / self.cfg.ppips as f64);
            let stream = 2.0 * rounds * (tower + plate);
            let cycles = interact * imb + stream + rounds * self.cal.rl_round_overhead_cycles;
            let t = cycles / self.cfg.clock_ppip_hz * 1e6;
            if t < best.0 {
                best = (t, sub);
            }
        }
        let (range_limited_us, chosen_subdiv) = best;

        // --- Position import (NT import region with migration margin).
        let margin = 1.5;
        let reg = ImportRegions::new(c_node, rc + margin);
        let import_atoms = rho * reg.nt_total_volume();
        let torus = Torus::from_config(&self.cfg);
        let import_us = torus.transfer_time_s(&self.cfg, import_atoms * 12.0, 2) * 1e6
            + self.cal.import_fixed_us;

        // --- Mesh phase (charge spreading + force interpolation on HTIS).
        let vc = s.volume() / (s.mesh[0] * s.mesh[1] * s.mesh[2]) as f64;
        let pts_per_atom = (4.0 / 3.0) * std::f64::consts::PI * s.spread_cutoff.powi(3) / vc;
        let mesh_inter = 2.0 * atoms_per_node * pts_per_atom;
        let mesh_us = mesh_inter / self.cfg.ppip_throughput() * imb * 1e6 + self.cal.mesh_fixed_us;

        // --- FFT (forward + inverse), message counts per §3.2.2.
        let fft_us = 2.0 * self.fft_one_transform_us(s.mesh);

        // --- Correction pipeline.
        let corr_pairs = s.n_correction_pairs as f64 / nodes;
        let correction_us = self
            .flex
            .correction_time_s(corr_pairs, self.cfg.clock_flex_hz)
            * imb
            * 1e6
            + self.cal.corr_fixed_us;

        // --- Bonded terms (hot-node load: the solute is spatially compact).
        let hot_terms = s.hot_node_bonded_terms(self.cfg.nodes);
        let bonded_us = self
            .flex
            .bonded_time_s(hot_terms, self.cfg.gcs, self.cfg.clock_flex_hz)
            * 1e6;

        // --- Integration + constraints.
        let integration_us = self.flex.integrate_time_s(
            atoms_per_node,
            s.n_constraint_pairs as f64 / nodes,
            self.cfg.gcs,
            self.cfg.clock_flex_hz,
        ) * imb
            * 1e6
            + self.cal.integ_fixed_us;

        // --- Step assembly: HTIS chain is serial (range-limited, spreading,
        // FFT, interpolation share hardware or depend on each other); the
        // flexible chain (bonded + correction) overlaps it.
        let htis_chain = range_limited_us + mesh_us + fft_us;
        let flex_chain = bonded_us + correction_us;
        let lr_step_us = import_us + htis_chain.max(flex_chain) + integration_us;
        let nonlr_step_us = import_us + range_limited_us.max(bonded_us) + integration_us;
        let k = s.longrange_every.max(1) as f64;
        let avg_step_us = (lr_step_us + (k - 1.0) * nonlr_step_us) / k + self.cal.step_fixed_us;
        let us_per_day = s.dt_fs * (86_400.0 / (avg_step_us * 1e-6)) * 1e-9;

        StepBreakdown {
            import_us,
            range_limited_us,
            mesh_us,
            fft_us,
            correction_us,
            bonded_us,
            integration_us,
            lr_step_us,
            nonlr_step_us,
            avg_step_us,
            us_per_day,
            chosen_subdiv,
        }
    }

    /// One distributed 3D transform (µs): per-axis pencil exchange message
    /// counts (2·lines·(1−1/g) per node per axis) plus local butterflies.
    fn fft_one_transform_us(&self, mesh: [usize; 3]) -> f64 {
        let g = self.cfg.torus;
        let mut msgs = 0.0;
        for axis in 0..3 {
            let (u, v) = match axis {
                0 => (1, 2),
                1 => (0, 2),
                _ => (0, 1),
            };
            let lines_per_node =
                (mesh[u] / g[u].min(mesh[u])) as f64 * (mesh[v] / g[v].min(mesh[v])) as f64;
            let ga = g[axis].min(mesh[axis]) as f64;
            msgs += 2.0 * lines_per_node * (1.0 - 1.0 / ga);
        }
        let points_per_node = (mesh[0] * mesh[1] * mesh[2]) as f64 / self.cfg.nodes as f64;
        self.cal.fft_fixed_us
            + msgs * self.cal.fft_per_msg_us
            + points_per_node * self.cal.fft_per_point_us
    }

    /// Crude commodity-cluster model for the §5.1 Desmond comparison: pair
    /// compute spread over cores plus PME all-to-all latency per step.
    pub fn commodity_cluster_us_per_day(
        s: &SystemStats,
        cluster_nodes: usize,
        cores_per_node: usize,
    ) -> f64 {
        let pairs = 0.5
            * s.density()
            * s.n_atoms as f64
            * (4.0 / 3.0)
            * std::f64::consts::PI
            * s.cutoff.powi(3);
        let cores = (cluster_nodes * cores_per_node) as f64;
        let compute_us = pairs * 2.5e-3 / cores; // ~2.5 ns per pair-interaction per core
                                                 // Two PME transposes: ~0.4 µs of network service per peer message.
        let comm_us = 2.0 * cluster_nodes as f64 * 0.4;
        let step_us = compute_us + comm_us;
        s.dt_fs * (86_400.0 / (step_us * 1e-6)) * 1e-9
    }
}

/// The DHFR benchmark workload of Table 2 / §5.1 (23,558 atoms, 62.2 Å box).
pub fn dhfr_stats(cutoff: f64, mesh: usize) -> SystemStats {
    SystemStats {
        n_atoms: 23558,
        box_edge: [62.2; 3],
        cutoff,
        spread_cutoff: cutoff * 0.68,
        mesh: [mesh; 3],
        dt_fs: 2.5,
        longrange_every: 2,
        n_correction_pairs: 41_000,
        n_bonded_terms: 4_700,
        protein_atoms: 2_512,
        n_constraint_pairs: 22_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Calibration check: the DHFR (13 Å, 32³) column of Table 2.
    #[test]
    fn dhfr_13a_column_matches_table2() {
        let model = PerfModel::anton_512();
        let b = model.breakdown(&dhfr_stats(13.0, 32));
        let within = |got: f64, paper: f64, tol: f64| {
            assert!(
                (got - paper).abs() <= tol * paper,
                "got {got:.2} µs, paper {paper:.2} µs"
            );
        };
        within(b.range_limited_us, 1.9, 0.35);
        within(b.fft_us, 8.9, 0.15);
        within(b.mesh_us, 2.0, 0.35);
        within(b.correction_us, 2.5, 0.30);
        within(b.bonded_us, 4.1, 0.40);
        within(b.integration_us, 1.6, 0.40);
        within(b.lr_step_us, 15.4, 0.25);
        // The headline: 16.4 µs/day.
        within(b.us_per_day, 16.4, 0.15);
    }

    /// Prediction check: the (9 Å, 64³) column — parameters Anton does NOT
    /// prefer. The model must reproduce the *direction* of every change and
    /// the >2× overall slowdown.
    #[test]
    fn small_cutoff_fine_mesh_is_slower_on_anton() {
        let model = PerfModel::anton_512();
        let coarse = model.breakdown(&dhfr_stats(13.0, 32));
        let fine = model.breakdown(&dhfr_stats(9.0, 64));
        assert!(fine.range_limited_us < coarse.range_limited_us);
        assert!(fine.fft_us > 2.0 * coarse.fft_us);
        assert!(fine.mesh_us > 2.0 * coarse.mesh_us);
        assert!(
            fine.lr_step_us > 1.8 * coarse.lr_step_us,
            "fine {:.1} vs coarse {:.1}",
            fine.lr_step_us,
            coarse.lr_step_us
        );
    }

    /// §5.1: a 128-node partition achieves "well over 25%" of the 512-node
    /// DHFR performance (paper: 7.5 µs/day).
    #[test]
    fn dhfr_128_node_partition() {
        let m512 = PerfModel::anton_512().breakdown(&dhfr_stats(13.0, 32));
        let m128 = PerfModel::new(MachineConfig::with_nodes(128)).breakdown(&dhfr_stats(13.0, 32));
        let frac = m128.us_per_day / m512.us_per_day;
        assert!(frac > 0.25 && frac < 0.8, "128-node fraction {frac}");
        assert!(
            (m128.us_per_day - 7.5).abs() < 3.5,
            "128-node rate {}",
            m128.us_per_day
        );
    }

    /// Figure 5 shape: rate scales roughly inversely with atom count above
    /// 25k atoms and plateaus below.
    #[test]
    fn rate_scales_inversely_with_size() {
        let model = PerfModel::anton_512();
        let mk = |n: usize, edge: f64| SystemStats {
            n_atoms: n,
            box_edge: [edge; 3],
            cutoff: 11.0,
            spread_cutoff: 7.5,
            mesh: [if n > 60_000 { 64 } else { 32 }; 3],
            dt_fs: 2.5,
            longrange_every: 2,
            n_correction_pairs: n * 2,
            n_bonded_terms: n / 5,
            protein_atoms: n / 10,
            n_constraint_pairs: n,
        };
        let r50 = model.breakdown(&mk(50_000, 80.0)).us_per_day;
        let r100 = model.breakdown(&mk(100_000, 100.8)).us_per_day;
        let ratio = r50 / r100;
        assert!(ratio > 1.4 && ratio < 2.6, "inverse scaling ratio {ratio}");
    }

    /// Desmond on a 512-node commodity cluster: hundreds of ns/day (the
    /// paper reports 471 ns/day), two orders of magnitude below Anton.
    #[test]
    fn commodity_cluster_is_two_orders_slower() {
        let s = dhfr_stats(13.0, 32);
        let cluster = PerfModel::commodity_cluster_us_per_day(&s, 512, 2);
        assert!(
            cluster > 0.1 && cluster < 1.5,
            "cluster rate {cluster} µs/day"
        );
        let anton = PerfModel::anton_512().breakdown(&s).us_per_day;
        assert!(anton / cluster > 10.0, "speedup {}", anton / cluster);
    }

    #[test]
    fn counter_words_roundtrip_and_reject_wrong_arity() {
        let c = ExchangeCounters {
            steps: 1,
            import_messages: 2,
            import_atoms: 3,
            import_bytes: 4,
            import_hop_bytes: 5,
            reduce_messages: 6,
            reduce_bytes: 7,
            reduce_hop_bytes: 8,
            lr_steps: 9,
            fft_messages: 10,
            fft_bytes: 11,
            mesh_halo_messages: 12,
            mesh_halo_bytes: 13,
            match_batches: 14,
            match_pairs: 15,
            match_candidates: 16,
            rebuild_steps: 17,
            reuse_steps: 18,
        };
        let words = c.to_words();
        // Every field is distinct, so a permutation or a dropped field
        // cannot round-trip unnoticed.
        assert_eq!(
            words,
            [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18]
        );
        let back = ExchangeCounters::from_words(&words).unwrap();
        assert_eq!(back.to_words(), words);
        assert!(ExchangeCounters::from_words(&words[..17]).is_none());
        assert!(ExchangeCounters::from_words(&[0; 19]).is_none());
    }

    #[test]
    fn water_only_is_faster_than_protein() {
        let model = PerfModel::anton_512();
        let mut s = dhfr_stats(13.0, 32);
        let with_protein = model.breakdown(&s).us_per_day;
        s.n_bonded_terms = 0;
        s.protein_atoms = 0;
        let water_only = model.breakdown(&s).us_per_day;
        let gain = water_only / with_protein;
        assert!(gain > 1.0 && gain < 1.35, "water-only speedup {gain}");
    }
}
