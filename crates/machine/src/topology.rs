//! The 3D torus interconnect (paper §2.2).
//!
//! Six 50.6 Gbit/s channels per ASIC, tens-of-nanoseconds hop latency, and
//! efficient 4-byte messages — the properties that make the NT method's many
//! small messages and the distributed FFT viable (§3.2).

use crate::config::MachineConfig;
use anton_geometry::IVec3;

/// Torus routing/geometry helper.
#[derive(Clone, Copy, Debug)]
pub struct Torus {
    pub dims: [usize; 3],
}

impl Torus {
    pub fn new(dims: [usize; 3]) -> Torus {
        assert!(dims.iter().all(|&d| d >= 1));
        Torus { dims }
    }

    pub fn from_config(cfg: &MachineConfig) -> Torus {
        Torus::new(cfg.torus)
    }

    pub fn node_count(&self) -> usize {
        self.dims.iter().product()
    }

    /// Minimal per-axis hop distance on the ring.
    #[inline]
    fn axis_hops(&self, a: i32, b: i32, dim: usize) -> u32 {
        let d = (a - b).rem_euclid(dim as i32) as u32;
        d.min(dim as u32 - d)
    }

    /// Dimension-order routing hop count between two nodes.
    pub fn hops(&self, a: IVec3, b: IVec3) -> u32 {
        self.axis_hops(a.x, b.x, self.dims[0])
            + self.axis_hops(a.y, b.y, self.dims[1])
            + self.axis_hops(a.z, b.z, self.dims[2])
    }

    /// Network diameter (maximum hop count).
    pub fn diameter(&self) -> u32 {
        (self.dims[0] as u32 / 2) + (self.dims[1] as u32 / 2) + (self.dims[2] as u32 / 2)
    }

    /// Average hop count over all destination nodes (uniform traffic).
    pub fn mean_hops(&self) -> f64 {
        let mean_axis =
            |d: usize| -> f64 { (0..d).map(|k| (k.min(d - k)) as f64).sum::<f64>() / d as f64 };
        mean_axis(self.dims[0]) + mean_axis(self.dims[1]) + mean_axis(self.dims[2])
    }

    /// Depth of a multicast tree reaching every node within `range` boxes on
    /// each axis (the NT import multicast, §3.2.1): bounded by the farthest
    /// destination.
    pub fn multicast_depth(&self, range: [u32; 3]) -> u32 {
        range[0].min(self.dims[0] as u32 / 2)
            + range[1].min(self.dims[1] as u32 / 2)
            + range[2].min(self.dims[2] as u32 / 2)
    }

    /// Time to push `bytes` through one node's links plus the wire latency
    /// of `hops` hops.
    pub fn transfer_time_s(&self, cfg: &MachineConfig, bytes: f64, hops: u32) -> f64 {
        bytes / cfg.node_bandwidth_bytes() + hops as f64 * cfg.hop_latency_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_counts_wrap() {
        let t = Torus::new([8, 8, 8]);
        assert_eq!(t.hops(IVec3::new(0, 0, 0), IVec3::new(7, 0, 0)), 1);
        assert_eq!(t.hops(IVec3::new(0, 0, 0), IVec3::new(4, 4, 4)), 12);
        assert_eq!(t.diameter(), 12);
    }

    #[test]
    fn mean_hops_sane() {
        let t = Torus::new([8, 8, 8]);
        // Per axis mean = (0+1+2+3+4+3+2+1)/8 = 2.0 → 6.0 total.
        assert!((t.mean_hops() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn multicast_depth_clamps() {
        let t = Torus::new([4, 4, 4]);
        assert_eq!(t.multicast_depth([10, 1, 0]), 2 + 1);
    }

    #[test]
    fn transfer_time_orders_of_magnitude() {
        let cfg = MachineConfig::anton_512();
        let t = Torus::from_config(&cfg);
        // 6 kB over ~38 GB/s plus 3 hops ≈ 0.3 µs.
        let s = t.transfer_time_s(&cfg, 6000.0, 3);
        assert!(s > 0.1e-6 && s < 1e-6, "{s}");
    }
}
