//! The event model: phases, spans, and counters.

/// Rank id used for work executed on the calling ("trunk") thread rather
/// than inside a per-rank fan-out: the FFT trunk, mesh merges, integration.
pub const RANK_MAIN: u32 = u32::MAX;

/// The phases of a simulated Anton time step (paper §3.2 / Table 2). One
/// span per phase execution; the fixed enumeration order below is the
/// canonical sort order of every exporter, so summaries are deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// One inner integration step end to end.
    Step,
    /// Re-homing atoms to boxes + metering the static exchange plan (the
    /// position import / force reduction of §3.2.1, bookkeeping side).
    ReHome,
    /// NT tower×plate pair enumeration on one rank.
    RangeLimited,
    /// Match sub-phase of the range-limited pipeline: tile-pair candidate
    /// streaming, the low-precision prefilter, and the exact cutoff test
    /// that packs surviving pairs into 8-wide batches (the ASIC's match
    /// units).
    Match,
    /// Evaluate sub-phase of the range-limited pipeline: masked batch
    /// dispatch through the PPIP table evaluator plus the force scatter.
    Evaluate,
    /// Match-cache rebuild: re-binning atoms to cells, refilling the SoA
    /// tiles, and re-running the padded-cutoff match from scratch (taken
    /// only when the displacement monitor trips).
    CacheRebuild,
    /// Match-cache reuse: refreshing tile positions in place and replaying
    /// the cached batch structure (the steady-state step shape).
    CacheReuse,
    /// Trunk-side fan-out overhead: the span covers thread-pool dispatch
    /// and join around one per-rank parallel section, so the nodes=1
    /// threads>1 pool cost is measured rather than inferred.
    Dispatch,
    /// Statically assigned bonded terms on one rank.
    Bonded,
    /// Correction pairs (excluded + 1-4) on one rank.
    Correction,
    /// GSE charge spreading into one rank's private mesh.
    Spread,
    /// Serial rank-ordered merge of the private charge meshes (the modeled
    /// charge-halo exchange).
    MeshMerge,
    /// Forward fixed-point FFT of the distributed trunk.
    FftForward,
    /// Green-function multiply between the transforms.
    FftGreen,
    /// Inverse fixed-point FFT of the distributed trunk.
    FftInverse,
    /// Per-rank force interpolation from the shared potential mesh.
    Interpolate,
    /// Monolithic reciprocal evaluation (single-rank decomposition only).
    Reciprocal,
    /// Kick/drift/constraint/virtual-site work of the integrator.
    Integrate,
    /// Checkpoint serialization + atomic write (`anton-ckpt`): snapshot
    /// encode, checksum, temp-file write, rename, rotation. Observability
    /// of the checkpoint cost — never on the inner-step path (checkpoints
    /// happen at cycle boundaries only).
    Checkpoint,
}

impl Phase {
    /// Every phase, in canonical order.
    pub const ALL: [Phase; 19] = [
        Phase::Step,
        Phase::ReHome,
        Phase::RangeLimited,
        Phase::Match,
        Phase::Evaluate,
        Phase::CacheRebuild,
        Phase::CacheReuse,
        Phase::Dispatch,
        Phase::Bonded,
        Phase::Correction,
        Phase::Spread,
        Phase::MeshMerge,
        Phase::FftForward,
        Phase::FftGreen,
        Phase::FftInverse,
        Phase::Interpolate,
        Phase::Reciprocal,
        Phase::Integrate,
        Phase::Checkpoint,
    ];

    /// Stable snake_case name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Step => "step",
            Phase::ReHome => "re_home",
            Phase::RangeLimited => "range_limited",
            Phase::Match => "match",
            Phase::Evaluate => "evaluate",
            Phase::CacheRebuild => "cache_rebuild",
            Phase::CacheReuse => "cache_reuse",
            Phase::Dispatch => "dispatch",
            Phase::Bonded => "bonded",
            Phase::Correction => "correction",
            Phase::Spread => "spread",
            Phase::MeshMerge => "mesh_merge",
            Phase::FftForward => "fft_forward",
            Phase::FftGreen => "fft_green",
            Phase::FftInverse => "fft_inverse",
            Phase::Interpolate => "interpolate",
            Phase::Reciprocal => "reciprocal",
            Phase::Integrate => "integrate",
            Phase::Checkpoint => "checkpoint",
        }
    }

    /// Index into [`Phase::ALL`].
    pub fn index(self) -> usize {
        Phase::ALL.iter().position(|&p| p == self).unwrap_or(0)
    }
}

/// One completed phase execution: measured wall-clock interval (monotonic
/// ns since the sink's origin) on one rank at one step. Timestamps are
/// observability payload only — they never feed back into the simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    pub phase: Phase,
    /// Rank that executed the work, or [`RANK_MAIN`] for the trunk thread.
    pub rank: u32,
    pub step: u64,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl Span {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One communication-volume sample attributed to the emitting span's phase:
/// message/byte counts from the static exchange plans (deterministic) plus
/// the modeled link time of that traffic under the machine config's hop
/// math (deterministic, microseconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Counter {
    /// Name of the metered traffic class (e.g. `"import"`, `"fft_pencils"`).
    pub name: &'static str,
    /// Phase of the span this traffic is attributed to.
    pub phase: Phase,
    pub rank: u32,
    pub step: u64,
    pub messages: u64,
    pub bytes: u64,
    /// Modeled wire time of this traffic (µs, machine model — not wall
    /// clock).
    pub modeled_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_unique_and_ordered() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), Phase::ALL.len(), "duplicate phase name");
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn span_duration_saturates() {
        let s = Span {
            phase: Phase::Step,
            rank: 0,
            step: 0,
            start_ns: 10,
            end_ns: 4,
        };
        assert_eq!(s.duration_ns(), 0);
    }
}
