//! chrome://tracing (Trace Event Format) exporter.
//!
//! Mapping: one *process* per simulated node (`pid = rank + 1`; the trunk
//! thread — integration, FFT, merges — is `pid 0`), a single thread lane
//! per process (`tid = 0`). Spans become complete (`"X"`) events with
//! microsecond `ts`/`dur`; counters become `"C"` events so the modeled
//! byte volume plots as a track under the phase lanes. The output is a
//! plain JSON array loadable by `chrome://tracing` and Perfetto.

use crate::event::RANK_MAIN;
use crate::sink::TraceBuf;

fn pid_of(rank: u32) -> u64 {
    if rank == RANK_MAIN {
        0
    } else {
        u64::from(rank) + 1
    }
}

fn push_name_meta(out: &mut String, pid: u64, name: &str) {
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"{name}\"}}}}"
    ));
}

/// Serialize a recorded buffer as a Trace Event Format JSON array.
pub fn chrome_trace_json(buf: &TraceBuf) -> String {
    let mut out = String::with_capacity(128 + buf.spans().len() * 128);
    out.push('[');

    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };

    // Process-name metadata: the trunk plus every rank that appears.
    let mut max_rank: Option<u32> = None;
    let mut has_main = false;
    for s in buf.spans() {
        if s.rank == RANK_MAIN {
            has_main = true;
        } else {
            max_rank = Some(max_rank.map_or(s.rank, |m| m.max(s.rank)));
        }
    }
    if has_main {
        sep(&mut out);
        push_name_meta(&mut out, 0, "trunk");
    }
    if let Some(max_rank) = max_rank {
        for rank in 0..=max_rank {
            sep(&mut out);
            push_name_meta(&mut out, pid_of(rank), &format!("node {rank}"));
        }
    }

    for s in buf.spans() {
        sep(&mut out);
        let ts = s.start_ns as f64 / 1e3;
        let dur = s.duration_ns() as f64 / 1e3;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":{},\"tid\":0,\
             \"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{{\"step\":{}}}}}",
            s.phase.name(),
            pid_of(s.rank),
            s.step,
        ));
    }

    for c in buf.counters() {
        sep(&mut out);
        // Anchor the counter sample at the step index (µs scale is
        // irrelevant for "C" tracks; monotone placement is what matters).
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"comm\",\"ph\":\"C\",\"pid\":{},\"tid\":0,\
             \"ts\":{},\"args\":{{\"messages\":{},\"bytes\":{},\"modeled_us\":{:.3}}}}}",
            c.name,
            pid_of(c.rank),
            c.step,
            c.messages,
            c.bytes,
            c.modeled_us,
        ));
    }

    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;
    use crate::sink::TraceSink;

    #[test]
    fn export_is_a_json_array_with_one_event_per_span_and_counter() {
        let mut s = TraceSink::with_capacity(16, 16);
        s.set_step(3);
        s.push_span(Phase::Step, RANK_MAIN, 0, 5000);
        s.push_span(Phase::Spread, 0, 1000, 2000);
        s.push_span(Phase::Spread, 1, 1000, 2100);
        s.counter("halo", Phase::MeshMerge, 6, 4800, 2.5);
        let json = chrome_trace_json(s.buf().unwrap());
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 1);
        // trunk + node 0 + node 1 metadata
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 3);
        // Trunk maps to pid 0, rank r to pid r+1.
        assert!(json.contains("\"name\":\"step\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":0"));
        assert!(json.contains("\"name\":\"spread\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":2"));
        assert!(json.contains("\"args\":{\"step\":3}"));
    }

    #[test]
    fn empty_buffer_exports_an_empty_array() {
        let s = TraceSink::with_capacity(4, 4);
        assert_eq!(chrome_trace_json(s.buf().unwrap()), "[]");
    }
}
