//! The recorder: per-rank lanes and the central fixed-capacity buffer.

use crate::clock::TraceClock;
use crate::event::{Counter, Phase, Span, RANK_MAIN};

/// A span as recorded inside a rank's lane: rank and step are attached at
/// merge time (the lane belongs to exactly one rank, and a whole fan-out
/// executes within one step).
#[derive(Clone, Copy, Debug)]
struct LaneSpan {
    phase: Phase,
    start_ns: u64,
    end_ns: u64,
}

/// One rank's private recording lane. Exactly one worker thread mutates a
/// lane during a fan-out (it lives in that rank's scratch), so recording
/// needs no synchronization; the sink drains lanes serially in fixed rank
/// order afterward. Fixed capacity: a full lane drops further spans and
/// counts them.
#[derive(Clone, Debug)]
pub struct Lane {
    entries: Vec<LaneSpan>,
    dropped: u64,
}

/// Spans per lane per fan-out: the pipeline records at most a handful of
/// phases per rank per call, so this never drops in practice.
const LANE_CAPACITY: usize = 16;

impl Lane {
    pub fn new() -> Lane {
        Lane {
            entries: Vec::with_capacity(LANE_CAPACITY),
            dropped: 0,
        }
    }

    /// Record one completed phase interval. Never allocates: a full lane
    /// drops the span and counts it.
    #[inline]
    pub fn push(&mut self, phase: Phase, start_ns: u64, end_ns: u64) {
        if self.entries.len() < LANE_CAPACITY {
            self.entries.push(LaneSpan {
                phase,
                start_ns,
                end_ns,
            });
        } else {
            self.dropped += 1;
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for Lane {
    fn default() -> Lane {
        Lane::new()
    }
}

/// The central event buffer: every span and counter of a traced run, in
/// deterministic order (recording order on the trunk thread; rank order
/// within every fan-out). Fixed capacity — overflow drops and counts.
#[derive(Debug)]
pub struct TraceBuf {
    clock: TraceClock,
    step: u64,
    spans: Vec<Span>,
    counters: Vec<Counter>,
    max_spans: usize,
    max_counters: usize,
    dropped_spans: u64,
    dropped_counters: u64,
}

impl TraceBuf {
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    pub fn counters(&self) -> &[Counter] {
        &self.counters
    }

    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans
    }

    pub fn dropped_counters(&self) -> u64 {
        self.dropped_counters
    }

    #[inline]
    fn push_span(&mut self, span: Span) {
        if self.spans.len() < self.max_spans {
            self.spans.push(span);
        } else {
            self.dropped_spans += 1;
        }
    }
}

/// The sink the engine and pipeline write through. [`TraceSink::Off`]
/// short-circuits every operation before any clock read or formatting, so
/// an untraced run pays one predictable branch per instrumentation site.
#[derive(Debug, Default)]
pub enum TraceSink {
    #[default]
    Off,
    On(Box<TraceBuf>),
}

/// Default central-buffer span capacity (~4 MB of spans).
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 17;
/// Default central-buffer counter capacity.
pub const DEFAULT_COUNTER_CAPACITY: usize = 1 << 15;

impl TraceSink {
    /// The disabled sink.
    pub fn off() -> TraceSink {
        TraceSink::Off
    }

    /// An enabled sink with default capacity.
    pub fn on() -> TraceSink {
        TraceSink::with_capacity(DEFAULT_SPAN_CAPACITY, DEFAULT_COUNTER_CAPACITY)
    }

    /// An enabled sink holding at most `max_spans` spans and `max_counters`
    /// counters; all buffer memory is reserved here, the hot path never
    /// allocates.
    pub fn with_capacity(max_spans: usize, max_counters: usize) -> TraceSink {
        TraceSink::On(Box::new(TraceBuf {
            clock: TraceClock::new(),
            step: 0,
            spans: Vec::with_capacity(max_spans),
            counters: Vec::with_capacity(max_counters),
            max_spans,
            max_counters,
            dropped_spans: 0,
            dropped_counters: 0,
        }))
    }

    #[inline]
    pub fn is_on(&self) -> bool {
        matches!(self, TraceSink::On(_))
    }

    /// Current monotonic time (ns); 0 when off, without touching the clock.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match self {
            TraceSink::Off => 0,
            TraceSink::On(b) => b.clock.now_ns(),
        }
    }

    /// The step id attached to subsequently recorded events.
    #[inline]
    pub fn step(&self) -> u64 {
        match self {
            TraceSink::Off => 0,
            TraceSink::On(b) => b.step,
        }
    }

    pub fn set_step(&mut self, step: u64) {
        if let TraceSink::On(b) = self {
            b.step = step;
        }
    }

    /// Record a trunk-thread span that started at `start_ns` (a value from
    /// [`Self::now_ns`]) and ends now.
    #[inline]
    pub fn end_span(&mut self, phase: Phase, rank: u32, start_ns: u64) {
        if let TraceSink::On(b) = self {
            let end_ns = b.clock.now_ns();
            let step = b.step;
            b.push_span(Span {
                phase,
                rank,
                step,
                start_ns,
                end_ns,
            });
        }
    }

    /// Record a span with both endpoints already measured (used for the FFT
    /// trunk, whose stage marks are collected inside the overlapped
    /// closure).
    #[inline]
    pub fn push_span(&mut self, phase: Phase, rank: u32, start_ns: u64, end_ns: u64) {
        if let TraceSink::On(b) = self {
            let step = b.step;
            b.push_span(Span {
                phase,
                rank,
                step,
                start_ns,
                end_ns,
            });
        }
    }

    /// Record a machine-wide communication counter attributed to `phase`.
    pub fn counter(
        &mut self,
        name: &'static str,
        phase: Phase,
        messages: u64,
        bytes: u64,
        modeled_us: f64,
    ) {
        if let TraceSink::On(b) = self {
            if b.counters.len() < b.max_counters {
                let step = b.step;
                b.counters.push(Counter {
                    name,
                    phase,
                    rank: RANK_MAIN,
                    step,
                    messages,
                    bytes,
                    modeled_us,
                });
            } else {
                b.dropped_counters += 1;
            }
        }
    }

    /// Drain per-rank lanes into the central buffer **in the order given**,
    /// which callers must make the fixed rank order (lane `i` belongs to
    /// rank `i`). This is the determinism pivot: the merged event order is
    /// a pure function of the work structure, independent of which worker
    /// thread finished first. Lanes are cleared either way (an off sink
    /// discards whatever a disabled-path lane might hold).
    pub fn merge_lanes<'a>(&mut self, lanes: impl IntoIterator<Item = &'a mut Lane>) {
        match self {
            TraceSink::Off => {
                for lane in lanes {
                    lane.entries.clear();
                    lane.dropped = 0;
                }
            }
            TraceSink::On(b) => {
                for (rank, lane) in lanes.into_iter().enumerate() {
                    b.dropped_spans += lane.dropped;
                    lane.dropped = 0;
                    let step = b.step;
                    for e in lane.entries.drain(..) {
                        b.push_span(Span {
                            phase: e.phase,
                            rank: rank as u32,
                            step,
                            start_ns: e.start_ns,
                            end_ns: e.end_ns,
                        });
                    }
                }
            }
        }
    }

    /// Overwrite the dropped-event counts (checkpoint resume: the counts
    /// are part of the snapshot, so post-resume observability bookkeeping
    /// continues from the values the interrupted run had accumulated
    /// rather than restarting from zero). No-op when off.
    pub fn set_dropped(&mut self, spans: u64, counters: u64) {
        if let TraceSink::On(b) = self {
            b.dropped_spans = spans;
            b.dropped_counters = counters;
        }
    }

    /// The recorded buffer, if tracing is on.
    pub fn buf(&self) -> Option<&TraceBuf> {
        match self {
            TraceSink::Off => None,
            TraceSink::On(b) => Some(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_sink_records_nothing_and_reads_no_clock() {
        let mut s = TraceSink::off();
        assert_eq!(s.now_ns(), 0);
        s.end_span(Phase::Step, RANK_MAIN, 0);
        s.counter("import", Phase::ReHome, 10, 100, 1.0);
        let mut lanes = [Lane::new(), Lane::new()];
        lanes[1].push(Phase::Spread, 1, 2);
        s.merge_lanes(lanes.iter_mut());
        assert!(s.buf().is_none());
        assert!(lanes.iter().all(Lane::is_empty), "lanes must be drained");
    }

    #[test]
    fn lanes_merge_in_rank_order_not_finish_order() {
        let mut s = TraceSink::with_capacity(16, 4);
        let mut lanes = [Lane::new(), Lane::new(), Lane::new()];
        // "Finish order" 2, 0, 1 — but the merge only sees slice order.
        lanes[2].push(Phase::RangeLimited, 30, 31);
        lanes[0].push(Phase::RangeLimited, 10, 11);
        lanes[1].push(Phase::RangeLimited, 20, 21);
        s.merge_lanes(lanes.iter_mut());
        let ranks: Vec<u32> = s.buf().unwrap().spans().iter().map(|e| e.rank).collect();
        assert_eq!(ranks, [0, 1, 2]);
    }

    #[test]
    fn full_buffers_drop_and_count_instead_of_reallocating() {
        let mut s = TraceSink::with_capacity(2, 1);
        for _ in 0..5 {
            s.end_span(Phase::Step, RANK_MAIN, 0);
        }
        s.counter("a", Phase::Step, 1, 1, 0.0);
        s.counter("b", Phase::Step, 1, 1, 0.0);
        let b = s.buf().unwrap();
        assert_eq!(b.spans().len(), 2);
        assert_eq!(b.dropped_spans(), 3);
        assert_eq!(b.counters().len(), 1);
        assert_eq!(b.dropped_counters(), 1);
        // Capacity was reserved up front; the drops never grew the buffer.
        assert!(b.spans.capacity() >= 2);
    }

    #[test]
    fn lane_overflow_is_counted_through_the_merge() {
        let mut lane = Lane::new();
        for i in 0..(LANE_CAPACITY + 3) {
            lane.push(Phase::Spread, i as u64, i as u64 + 1);
        }
        assert_eq!(lane.len(), LANE_CAPACITY);
        let mut s = TraceSink::with_capacity(64, 4);
        s.merge_lanes(std::iter::once(&mut lane));
        assert_eq!(s.buf().unwrap().dropped_spans(), 3);
    }

    #[test]
    fn dropped_counts_can_be_restored_for_resume() {
        let mut s = TraceSink::with_capacity(8, 8);
        s.set_dropped(5, 9);
        let b = s.buf().unwrap();
        assert_eq!(b.dropped_spans(), 5);
        assert_eq!(b.dropped_counters(), 9);
        let mut off = TraceSink::off();
        off.set_dropped(1, 1);
        assert!(off.buf().is_none());
    }

    #[test]
    fn steps_stamp_events() {
        let mut s = TraceSink::with_capacity(8, 8);
        s.set_step(7);
        let t0 = s.now_ns();
        s.end_span(Phase::Integrate, RANK_MAIN, t0);
        s.counter("import", Phase::ReHome, 2, 24, 0.5);
        let b = s.buf().unwrap();
        assert_eq!(b.spans()[0].step, 7);
        assert_eq!(b.counters()[0].step, 7);
        assert_eq!(b.counters()[0].name, "import");
    }
}
