//! `anton-trace`: deterministic per-rank tracing for the simulated machine.
//!
//! The paper's performance story (Table 1, §5) rests on attributing every
//! microsecond of an ~11 µs step budget to a phase, a node, and a network
//! hop. This crate is the observability layer of the reproduction: a
//! fixed-capacity structured event recorder the force pipeline and engine
//! write into, with two exporters (chrome://tracing JSON and a
//! deterministic per-phase summary table).
//!
//! Design constraints, in order:
//!
//! 1. **The tracer must provably not perturb the simulation.** Events carry
//!    *measured* wall-clock nanoseconds (monotonic, host-dependent) and
//!    *modeled* microseconds (from the exchange-plan hop math,
//!    deterministic) — but no value read from the clock ever flows back
//!    into simulation state. The golden-trajectory test tier runs every
//!    nodes×threads configuration with tracing on and off and asserts
//!    bitwise-identical trajectories.
//! 2. **Recording is deterministic in structure.** Worker threads never
//!    write a shared buffer: each rank records into its own fixed-capacity
//!    [`Lane`] (owned by that rank's scratch, mutated by exactly one worker
//!    per fan-out), and lanes are merged into the central [`TraceBuf`] *in
//!    fixed rank order* at flush — never by wall-clock interleaving. Event
//!    order in the buffer is therefore a pure function of the work
//!    structure; only the timestamp payloads vary run to run.
//! 3. **Allocation-free in the hot path.** Lanes and the central buffer
//!    reserve capacity up front; a full buffer *drops* events (counted)
//!    rather than reallocating.
//! 4. **Zero cost when disabled.** [`TraceSink::Off`] short-circuits before
//!    any clock read or formatting; the instrumented hot loops pay one
//!    predictable branch.
//!
//! The wall-clock read itself lives behind a sanctioned
//! `detlint::allow(D4)` boundary in [`clock`] — the one place on the
//! simulation path allowed to observe host time, because its output is
//! observability-only by construction.

pub mod chrome;
pub mod clock;
pub mod event;
pub mod sink;
pub mod summary;

pub use chrome::chrome_trace_json;
pub use clock::TraceClock;
pub use event::{Counter, Phase, Span, RANK_MAIN};
pub use sink::{Lane, TraceBuf, TraceSink};
pub use summary::{phase_summary, summary_table, PhaseRow};
