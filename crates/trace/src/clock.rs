//! The sanctioned wall-clock boundary of the simulation path.
//!
//! The determinism policy (DESIGN.md §8, rule D4) bans wall-clock reads on
//! the simulation path because host time must never influence simulation
//! state. Tracing needs *measured* nanoseconds, so this module is the one
//! audited exception: a monotonic clock whose readings flow only into
//! trace events — observability output — and are structurally incapable of
//! reaching an accumulator, a position, or a velocity (the trace crate
//! exposes no path from a timestamp back to the engine). Each `Instant`
//! mention below carries a `detlint::allow(D4)` with this argument.

/// Monotonic nanosecond clock, origin fixed at construction.
#[derive(Clone, Copy, Debug)]
pub struct TraceClock {
    // detlint::allow(D4, reason = "trace clock origin: measured ns are observability payload only; no trace value ever flows back into simulation state")
    origin: std::time::Instant,
}

impl TraceClock {
    pub fn new() -> TraceClock {
        TraceClock {
            // detlint::allow(D4, reason = "trace clock origin: measured ns are observability payload only; no trace value ever flows back into simulation state")
            origin: std::time::Instant::now(),
        }
    }

    /// Nanoseconds since the clock's origin (saturating at u64::MAX, which
    /// is ~584 years of tracing).
    // detlint::boundary(reason = "audited absorber: span timestamps feed only trace event payloads consumed by offline analysis; replay and perf-gate comparisons diff event sequences and counters, never these wall-clock stamps")
    #[inline]
    pub fn now_ns(&self) -> u64 {
        let ns = self.origin.elapsed().as_nanos();
        if ns > u64::MAX as u128 {
            u64::MAX
        } else {
            ns as u64
        }
    }
}

impl Default for TraceClock {
    fn default() -> TraceClock {
        TraceClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_from_origin() {
        let c = TraceClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
