//! Deterministic per-phase summary: the aggregate view the perf gate diffs.

use crate::event::Phase;
use crate::sink::TraceBuf;

/// Aggregates for one phase over a whole recorded run. The *deterministic*
/// columns (`spans`, `messages`, `bytes`, `modeled_us`) are pure functions
/// of the simulation configuration; only `measured_ns` varies with the
/// host.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseRow {
    pub phase: Phase,
    /// Number of recorded spans of this phase.
    pub spans: u64,
    /// Total measured wall-clock nanoseconds across those spans.
    pub measured_ns: u64,
    /// Total metered messages attributed to this phase.
    pub messages: u64,
    /// Total metered bytes attributed to this phase.
    pub bytes: u64,
    /// Total modeled wire time attributed to this phase (µs).
    pub modeled_us: f64,
}

/// Aggregate a recorded buffer into one row per phase, in the canonical
/// [`Phase::ALL`] order. Phases that never fired still get a (zeroed) row,
/// so the table shape is independent of the run configuration.
pub fn phase_summary(buf: &TraceBuf) -> Vec<PhaseRow> {
    let mut rows: Vec<PhaseRow> = Phase::ALL
        .iter()
        .map(|&phase| PhaseRow {
            phase,
            spans: 0,
            measured_ns: 0,
            messages: 0,
            bytes: 0,
            modeled_us: 0.0,
        })
        .collect();
    for s in buf.spans() {
        let row = &mut rows[s.phase.index()];
        row.spans += 1;
        row.measured_ns += s.duration_ns();
    }
    for c in buf.counters() {
        let row = &mut rows[c.phase.index()];
        row.messages += c.messages;
        row.bytes += c.bytes;
        row.modeled_us += c.modeled_us;
    }
    rows
}

/// Render the summary as a fixed-width text table. Row order and formatting
/// are deterministic; the measured column is the only host-dependent part.
pub fn summary_table(rows: &[PhaseRow]) -> String {
    let mut out = String::with_capacity(rows.len() * 80 + 160);
    out.push_str(&format!(
        "{:<14} {:>8} {:>14} {:>10} {:>12} {:>12}\n",
        "phase", "spans", "measured_ms", "messages", "bytes", "modeled_us"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>8} {:>14.3} {:>10} {:>12} {:>12.3}\n",
            r.phase.name(),
            r.spans,
            r.measured_ns as f64 / 1e6,
            r.messages,
            r.bytes,
            r.modeled_us,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RANK_MAIN;
    use crate::sink::TraceSink;

    #[test]
    fn summary_covers_every_phase_in_canonical_order() {
        let mut s = TraceSink::with_capacity(16, 16);
        s.push_span(Phase::Spread, 0, 100, 400);
        s.push_span(Phase::Spread, 1, 120, 270);
        s.push_span(Phase::Step, RANK_MAIN, 0, 1000);
        s.counter("halo", Phase::MeshMerge, 6, 4800, 2.5);
        let rows = phase_summary(s.buf().unwrap());
        assert_eq!(rows.len(), Phase::ALL.len());
        for (row, phase) in rows.iter().zip(Phase::ALL) {
            assert_eq!(row.phase, phase);
        }
        let spread = rows[Phase::Spread.index()];
        assert_eq!(spread.spans, 2);
        assert_eq!(spread.measured_ns, 300 + 150);
        let merge = rows[Phase::MeshMerge.index()];
        assert_eq!(merge.spans, 0);
        assert_eq!((merge.messages, merge.bytes), (6, 4800));
        assert!((merge.modeled_us - 2.5).abs() < 1e-12);
    }

    #[test]
    fn table_renders_one_line_per_phase_plus_header() {
        let s = TraceSink::with_capacity(4, 4);
        let rows = phase_summary(s.buf().unwrap());
        let table = summary_table(&rows);
        assert_eq!(table.lines().count(), Phase::ALL.len() + 1);
        assert!(table.starts_with("phase"));
        assert!(table.contains("range_limited"));
    }
}
