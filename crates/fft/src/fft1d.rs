//! Iterative radix-2 decimation-in-time FFT for power-of-two lengths.

use crate::Complex;

/// A reusable 1D FFT plan (twiddle factors precomputed once).
#[derive(Clone, Debug)]
pub struct Fft1d {
    n: usize,
    log2n: u32,
    /// Twiddles for the forward transform: `w[j] = e^{-2πi j / n}` for
    /// `j < n/2`.
    twiddles: Vec<Complex>,
    bitrev: Vec<u32>,
}

impl Fft1d {
    pub fn new(n: usize) -> Fft1d {
        assert!(
            n.is_power_of_two() && n >= 1,
            "FFT length must be a power of two, got {n}"
        );
        let log2n = n.trailing_zeros();
        let twiddles = (0..n / 2)
            .map(|j| Complex::cis(-2.0 * std::f64::consts::PI * j as f64 / n as f64))
            .collect();
        let bitrev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - log2n.max(1)))
            .map(|i| if n == 1 { 0 } else { i })
            .collect();
        Fft1d {
            n,
            log2n,
            twiddles,
            bitrev,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward DFT: `X_k = Σ_n x_n e^{-2πi nk/N}`.
    pub fn forward(&self, data: &mut [Complex]) {
        self.transform(data, false);
    }

    /// In-place inverse DFT including the 1/N factor:
    /// `x_n = (1/N) Σ_k X_k e^{+2πi nk/N}`.
    pub fn inverse(&self, data: &mut [Complex]) {
        self.transform(data, true);
        let s = 1.0 / self.n as f64;
        for v in data.iter_mut() {
            *v = v.scale(s);
        }
    }

    fn transform(&self, data: &mut [Complex], inverse: bool) {
        assert_eq!(data.len(), self.n);
        if self.n == 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..self.n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterflies.
        let mut len = 2usize;
        while len <= self.n {
            let half = len / 2;
            let stride = self.n / len;
            for start in (0..self.n).step_by(len) {
                for k in 0..half {
                    let w = self.twiddles[k * stride];
                    let w = if inverse { w.conj() } else { w };
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
        let _ = self.log2n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut s = Complex::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    s += v * Complex::cis(-2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64);
                }
                s
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        for &n in &[1usize, 2, 4, 8, 32, 64, 128] {
            let x: Vec<Complex> = (0..n)
                .map(|_| Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
                .collect();
            let mut got = x.clone();
            Fft1d::new(n).forward(&mut got);
            let want = naive_dft(&x);
            for (g, w) in got.iter().zip(&want) {
                assert!((*g - *w).norm2() < 1e-18 * n as f64, "n={n}");
            }
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        let n = 64;
        let x: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        let plan = Fft1d::new(n);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).norm2() < 1e-24);
        }
    }

    #[test]
    fn parseval_holds() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let n = 32;
        let x: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        let mut y = x.clone();
        Fft1d::new(n).forward(&mut y);
        let time: f64 = x.iter().map(|v| v.norm2()).sum();
        let freq: f64 = y.iter().map(|v| v.norm2()).sum::<f64>() / n as f64;
        assert!((time - freq).abs() < 1e-12);
    }

    #[test]
    fn delta_transforms_to_constant() {
        let n = 16;
        let mut x = vec![Complex::ZERO; n];
        x[0] = Complex::ONE;
        Fft1d::new(n).forward(&mut x);
        for v in &x {
            assert!((*v - Complex::ONE).norm2() < 1e-24);
        }
    }
}
