//! The spatially distributed 3D FFT of paper §3.2.2.
//!
//! With Anton's Ewald parameters the mesh is tiny (32³ over 512 nodes leaves
//! 64 points per node), so the FFT is communication-dominated. The paper's
//! strategy is "a straightforward decomposition into sets of one-dimensional
//! FFTs oriented along each of the three axes", exchanging pencils with a
//! large number of very small messages — hundreds per node — which is only
//! viable because Anton's inter-node latency is tens of nanoseconds.
//!
//! This module performs the transform with exactly that message pattern,
//! executing the same per-line arithmetic as the serial [`crate::Fft3d`]
//! (so results match the serial transform bit for bit) while counting every
//! message and byte each node sends, per axis pass. The counts feed the
//! performance model in `anton-machine`.

use crate::{Complex, Fft1d};

/// Per-pass communication statistics (gather + scatter of one axis pass).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PassStats {
    /// Messages sent by the busiest node during this pass.
    pub messages_max_node: u64,
    /// Bytes sent by the busiest node during this pass.
    pub bytes_max_node: u64,
    /// Total messages across all nodes.
    pub messages_total: u64,
    /// Total bytes across all nodes.
    pub bytes_total: u64,
}

/// Communication statistics for one full 3D transform (three axis passes).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommStats {
    pub passes: [PassStats; 3],
}

impl CommStats {
    /// Messages sent by the busiest node over the whole transform.
    pub fn messages_max_node(&self) -> u64 {
        self.passes.iter().map(|p| p.messages_max_node).sum()
    }

    pub fn bytes_max_node(&self) -> u64 {
        self.passes.iter().map(|p| p.bytes_max_node).sum()
    }
}

/// A 3D FFT distributed over a grid of `gx × gy × gz` nodes, mesh dimensions
/// `nx × ny × nz` (each node dimension must divide the corresponding mesh
/// dimension).
#[derive(Clone, Debug)]
pub struct DistributedFft3d {
    mesh: [usize; 3],
    nodes: [usize; 3],
    plans: [Fft1d; 3],
    /// Bytes per mesh point on the wire (Anton sends fixed-point values;
    /// 8 covers a complex 32+32-bit payload).
    pub bytes_per_point: u64,
}

impl DistributedFft3d {
    pub fn new(mesh: [usize; 3], nodes: [usize; 3]) -> DistributedFft3d {
        for a in 0..3 {
            assert!(
                mesh[a].is_multiple_of(nodes[a]) && nodes[a] >= 1,
                "node grid {nodes:?} must divide mesh {mesh:?}"
            );
        }
        DistributedFft3d {
            mesh,
            nodes,
            plans: [
                Fft1d::new(mesh[0]),
                Fft1d::new(mesh[1]),
                Fft1d::new(mesh[2]),
            ],
            bytes_per_point: 8,
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.iter().product()
    }

    /// Mesh points owned by each node.
    pub fn points_per_node(&self) -> usize {
        (self.mesh[0] / self.nodes[0])
            * (self.mesh[1] / self.nodes[1])
            * (self.mesh[2] / self.nodes[2])
    }

    /// Forward transform; returns communication statistics. `data` is the
    /// full mesh, x-fastest. The arithmetic is identical to
    /// [`crate::Fft3d::forward`], so the output is bitwise equal to the
    /// serial transform; the distribution affects only the counted traffic.
    pub fn forward(&self, data: &mut [Complex]) -> CommStats {
        self.transform(data, true)
    }

    /// Inverse transform (with 1/N), plus communication statistics.
    pub fn inverse(&self, data: &mut [Complex]) -> CommStats {
        self.transform(data, false)
    }

    fn transform(&self, data: &mut [Complex], fwd: bool) -> CommStats {
        let [nx, ny, nz] = self.mesh;
        assert_eq!(data.len(), nx * ny * nz);
        let mut stats = CommStats::default();
        for axis in 0..3 {
            stats.passes[axis] = self.axis_pass(data, axis, fwd);
        }
        stats
    }

    /// One axis pass: every line along `axis` is gathered to an owner node
    /// (chosen round-robin among the nodes the line passes through),
    /// transformed, and scattered back. Message accounting assumes one
    /// message per (source node, line) segment, as on Anton where a segment
    /// of a 32-point line held by one node is a handful of mesh points.
    fn axis_pass(&self, data: &mut [Complex], axis: usize, fwd: bool) -> PassStats {
        let [nx, ny, _nz] = self.mesh;
        let n_axis = self.mesh[axis];
        let g_axis = self.nodes[axis];
        let seg = n_axis / g_axis; // points per node per line
        let (u_axis, v_axis) = match axis {
            0 => (1usize, 2usize),
            1 => (0, 2),
            _ => (0, 1),
        };
        let (nu, nv) = (self.mesh[u_axis], self.mesh[v_axis]);
        let (gu, gv) = (self.nodes[u_axis], self.nodes[v_axis]);
        let (su, sv) = (nu / gu, nv / gv); // points per node along u, v

        let mut sends_per_node = vec![0u64; self.node_count()];
        let mut bytes_per_node = vec![0u64; self.node_count()];
        let mut line = vec![Complex::ZERO; n_axis];

        let node_id =
            |c: [usize; 3]| -> usize { (c[2] * self.nodes[1] + c[1]) * self.nodes[0] + c[0] };

        for v in 0..nv {
            for u in 0..nu {
                // The owner of this line among the g_axis nodes it crosses:
                // round-robin on the local (u, v) index within the node tile,
                // so ownership is balanced within every row of nodes.
                let local_line_idx = (u % su) + su * (v % sv);
                let owner_along = local_line_idx % g_axis;

                // Gather: every node holding a segment that is not the owner
                // sends one message of `seg` points; the owner later scatters
                // the transformed segments back (another message each).
                for a in 0..g_axis {
                    if a != owner_along {
                        let mut c = [0usize; 3];
                        c[axis] = a;
                        c[u_axis] = u / su;
                        c[v_axis] = v / sv;
                        let src = node_id(c);
                        sends_per_node[src] += 1;
                        bytes_per_node[src] += seg as u64 * self.bytes_per_point;
                        // Scatter back: owner sends the transformed segment.
                        let mut oc = c;
                        oc[axis] = owner_along;
                        let own = node_id(oc);
                        sends_per_node[own] += 1;
                        bytes_per_node[own] += seg as u64 * self.bytes_per_point;
                    }
                }

                // Execute the line transform (same arithmetic as serial).
                let index = |t: usize| -> usize {
                    let mut c = [0usize; 3];
                    c[axis] = t;
                    c[u_axis] = u;
                    c[v_axis] = v;
                    c[0] + nx * (c[1] + ny * c[2])
                };
                for (t, slot) in line.iter_mut().enumerate() {
                    *slot = data[index(t)];
                }
                if fwd {
                    self.plans[axis].forward(&mut line);
                } else {
                    self.plans[axis].inverse(&mut line);
                }
                for (t, slot) in line.iter().enumerate() {
                    data[index(t)] = *slot;
                }
            }
        }

        PassStats {
            messages_max_node: sends_per_node.iter().copied().max().unwrap_or(0),
            bytes_max_node: sends_per_node
                .iter()
                .zip(&bytes_per_node)
                .map(|(_, &b)| b)
                .max()
                .unwrap_or(0),
            messages_total: sends_per_node.iter().sum(),
            bytes_total: bytes_per_node.iter().sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fft3d;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_serial_bitwise() {
        let mesh = [16usize, 16, 16];
        let dist = DistributedFft3d::new(mesh, [4, 4, 4]);
        let serial = Fft3d::new(mesh[0], mesh[1], mesh[2]);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(21);
        let x: Vec<Complex> = (0..mesh.iter().product::<usize>())
            .map(|_| Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        let mut a = x.clone();
        let mut b = x;
        dist.forward(&mut a);
        serial.forward(&mut b);
        assert_eq!(
            a.iter()
                .map(|c| (c.re.to_bits(), c.im.to_bits()))
                .collect::<Vec<_>>(),
            b.iter()
                .map(|c| (c.re.to_bits(), c.im.to_bits()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn anton_config_sends_hundreds_of_messages_per_node() {
        // The paper's configuration: 32³ mesh over an 8×8×8 torus.
        let dist = DistributedFft3d::new([32, 32, 32], [8, 8, 8]);
        assert_eq!(dist.points_per_node(), 64);
        let mut data = vec![Complex::ONE; 32 * 32 * 32];
        let stats = dist.forward(&mut data);
        let msgs = stats.messages_max_node();
        // Forward pass alone: "hundreds per node" counting both FFTs; a
        // single transform should be in the high tens to low hundreds.
        assert!(
            (50..500).contains(&msgs),
            "unexpected per-node message count for 32^3/8^3: {msgs}"
        );
    }

    #[test]
    fn single_node_sends_nothing() {
        let dist = DistributedFft3d::new([8, 8, 8], [1, 1, 1]);
        let mut data = vec![Complex::ONE; 512];
        let stats = dist.forward(&mut data);
        assert_eq!(stats.messages_max_node(), 0);
        assert_eq!(stats.passes[0].bytes_total, 0);
    }

    #[test]
    fn inverse_roundtrip() {
        let mesh = [8usize, 8, 8];
        let dist = DistributedFft3d::new(mesh, [2, 2, 2]);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(22);
        let x: Vec<Complex> = (0..512)
            .map(|_| Complex::new(rng.gen::<f64>(), 0.0))
            .collect();
        let mut y = x.clone();
        dist.forward(&mut y);
        dist.inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).norm2() < 1e-20);
        }
    }
}
